//! The hash-table sizing heuristic of §4.5.
//!
//! With VGC there is no tight upper bound on the number of reachability
//! pairs generated in a batch, so the paper sizes the next batch's table
//! from two observables: `a` = number of pairs produced by the previous
//! batch, and `b` = number of unfinished vertices. The next capacity is
//! `max(0.3·b, 1.5·a)`, rounded up to a power of two. Only when an insert
//! still overflows does the (costly) copying resize happen — rarely.

/// Returns the §4.5 capacity estimate `roundup_pow2(max(0.3·b, 1.5·a))`.
///
/// `prev_pairs` is `a`; `unfinished` is `b`. A floor of 1024 keeps tiny
/// batches from thrashing.
pub fn next_table_capacity(prev_pairs: usize, unfinished: usize) -> usize {
    let a = (1.5 * prev_pairs as f64).ceil() as usize;
    let b = (0.3 * unfinished as f64).ceil() as usize;
    a.max(b).max(1024).next_power_of_two()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn takes_max_of_both_terms() {
        // 1.5a dominates.
        assert_eq!(next_table_capacity(10_000, 1_000), (15_000usize).next_power_of_two());
        // 0.3b dominates.
        assert_eq!(next_table_capacity(100, 1_000_000), (300_000usize).next_power_of_two());
    }

    #[test]
    fn result_is_power_of_two() {
        for (a, b) in [(0, 0), (7, 13), (100_000, 3), (12345, 67890)] {
            assert!(next_table_capacity(a, b).is_power_of_two());
        }
    }

    #[test]
    fn has_floor() {
        assert_eq!(next_table_capacity(0, 0), 1024);
    }

    #[test]
    fn monotone_in_both_arguments() {
        let base = next_table_capacity(1000, 1000);
        assert!(next_table_capacity(10_000, 1000) >= base);
        assert!(next_table_capacity(1000, 100_000) >= base);
    }
}

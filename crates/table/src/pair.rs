//! Packing of `(vertex, source)` reachability pairs into `u64` keys.
//!
//! The vertex occupies the high 32 bits and the source the low 32 bits, so
//! keys sort by vertex first — convenient when grouping pairs per vertex.
//! `u32::MAX` is not a valid vertex/source id (it is the graph crate's
//! `NONE_V` sentinel), which guarantees a packed pair never equals the
//! table's `u64::MAX` empty sentinel.

/// Packs a `(vertex, source)` pair.
#[inline(always)]
pub fn pack_pair(vertex: u32, source: u32) -> u64 {
    debug_assert!(vertex != u32::MAX && source != u32::MAX);
    ((vertex as u64) << 32) | source as u64
}

/// Extracts the vertex from a packed pair.
#[inline(always)]
pub fn pair_vertex(pair: u64) -> u32 {
    (pair >> 32) as u32
}

/// Extracts the source from a packed pair.
#[inline(always)]
pub fn pair_source(pair: u64) -> u32 {
    pair as u32
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        for &(v, s) in &[(0u32, 0u32), (1, 2), (u32::MAX - 1, u32::MAX - 1), (123456, 654321)] {
            let p = pack_pair(v, s);
            assert_eq!(pair_vertex(p), v);
            assert_eq!(pair_source(p), s);
        }
    }

    #[test]
    fn never_equals_sentinel() {
        assert_ne!(pack_pair(u32::MAX - 1, u32::MAX - 1), u64::MAX);
    }

    #[test]
    fn orders_by_vertex_first() {
        assert!(pack_pair(1, 999) < pack_pair(2, 0));
    }
}

//! # pscc-table — phase-concurrent hash table for reachability pairs
//!
//! The multi-reachability searches of the BGSS SCC algorithm maintain the
//! set of pairs `(v, s)` — "vertex `v` is reachable from source `s`" — in a
//! hash table supporting concurrent `insert` and `contains` within a phase
//! (Shun–Blelloch phase-concurrent table, ref. \[95\] in the paper). Keys are 64-bit packed
//! pairs; open addressing with linear probing over a power-of-two slot
//! array of `AtomicU64`.
//!
//! The table does not grow during concurrent insertion. Instead the SCC
//! driver sizes it up front with the paper's heuristic (§4.5,
//! [`heuristic::next_table_capacity`]) and, if an insert still hits the
//! probe limit, rebuilds into a doubled table between operations
//! ([`PairTable::grow`]) — that rebuild time is exactly the green
//! "hash table resizing" cost of Fig. 9.

pub mod heuristic;
pub mod pair;

pub use heuristic::next_table_capacity;
pub use pair::{pack_pair, pair_source, pair_vertex};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

use pscc_runtime::{hash64, pack_map, par_range};

/// Slot sentinel for "empty".
const EMPTY: u64 = u64::MAX;

/// Result of an insertion attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Insert {
    /// The key was inserted by this call.
    Added,
    /// The key was already present.
    Present,
    /// The probe limit was hit; the caller must [`PairTable::grow`] (not
    /// concurrently) and retry.
    Full,
}

/// A phase-concurrent open-addressing hash set of `u64` keys.
///
/// `u64::MAX` is reserved as the empty sentinel and cannot be stored.
pub struct PairTable {
    slots: Box<[AtomicU64]>,
    mask: usize,
    len: AtomicUsize,
    /// Probe limit before reporting [`Insert::Full`].
    probe_limit: usize,
}

impl PairTable {
    /// Creates a table able to hold about `capacity` keys (rounded up to a
    /// power of two with 2× headroom).
    pub fn with_capacity(capacity: usize) -> Self {
        let slots = (capacity.max(8) * 2).next_power_of_two();
        Self {
            slots: (0..slots).map(|_| AtomicU64::new(EMPTY)).collect(),
            mask: slots - 1,
            len: AtomicUsize::new(0),
            probe_limit: 128 + slots.trailing_zeros() as usize * 8,
        }
    }

    /// Number of slots (always a power of two).
    pub fn slot_count(&self) -> usize {
        self.slots.len()
    }

    /// Number of stored keys.
    pub fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }

    /// True if no keys are stored.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Inserts `key`; returns whether it was added, already present, or the
    /// table needs growing. Concurrent-safe with other `insert`/`contains`.
    pub fn insert(&self, key: u64) -> Insert {
        debug_assert_ne!(key, EMPTY, "u64::MAX is the empty sentinel");
        let mut i = (hash64(key) as usize) & self.mask;
        for _ in 0..self.probe_limit {
            let cur = self.slots[i].load(Ordering::Relaxed);
            if cur == key {
                return Insert::Present;
            }
            if cur == EMPTY {
                match self.slots[i].compare_exchange(
                    EMPTY,
                    key,
                    Ordering::Release,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        self.len.fetch_add(1, Ordering::Relaxed);
                        return Insert::Added;
                    }
                    Err(now) => {
                        if now == key {
                            return Insert::Present;
                        }
                        // Lost the race to a different key: fall through to
                        // probe the next slot.
                    }
                }
            }
            i = (i + 1) & self.mask;
        }
        Insert::Full
    }

    /// Membership test. Concurrent-safe with `insert`.
    ///
    /// Note: under the phase-concurrent discipline a `contains` racing an
    /// in-flight `insert` of the same key may return either answer; once
    /// the insert returns, `contains` is guaranteed `true`.
    pub fn contains(&self, key: u64) -> bool {
        debug_assert_ne!(key, EMPTY);
        let mut i = (hash64(key) as usize) & self.mask;
        for _ in 0..self.probe_limit {
            let cur = self.slots[i].load(Ordering::Acquire);
            if cur == key {
                return true;
            }
            if cur == EMPTY {
                return false;
            }
            i = (i + 1) & self.mask;
        }
        false
    }

    /// All stored keys, packed in slot order. Not concurrent with `insert`.
    pub fn keys(&self) -> Vec<u64> {
        pack_map(&self.slots, |s| {
            let v = s.load(Ordering::Relaxed);
            (v != EMPTY).then_some(v)
        })
    }

    /// Applies `f` to every stored key in parallel. Not concurrent with
    /// `insert`.
    pub fn for_each<F>(&self, f: F)
    where
        F: Fn(u64) + Sync,
    {
        par_range(0..self.slots.len(), 2048, &|r| {
            for i in r {
                let v = self.slots[i].load(Ordering::Relaxed);
                if v != EMPTY {
                    f(v);
                }
            }
        });
    }

    /// Rebuilds into a table with at least double the slots, rehashing all
    /// keys (parallel). This is the copy cost the §4.5 heuristic avoids.
    pub fn grow(&mut self) {
        let keys = self.keys();
        let mut bigger = PairTable::with_capacity(self.slots.len());
        debug_assert!(bigger.slot_count() > self.slot_count());
        loop {
            let ok = std::sync::atomic::AtomicBool::new(true);
            par_range(0..keys.len(), 1024, &|r| {
                for &k in &keys[r.clone()] {
                    if bigger.insert(k) == Insert::Full {
                        ok.store(false, Ordering::Relaxed);
                    }
                }
            });
            if ok.load(Ordering::Relaxed) {
                break;
            }
            // Extremely unlikely: double again.
            bigger = PairTable::with_capacity(bigger.slot_count());
        }
        *self = bigger;
    }

    /// Clears all keys (parallel), keeping the allocation.
    pub fn clear(&self) {
        par_range(0..self.slots.len(), 4096, &|r| {
            for i in r {
                self.slots[i].store(EMPTY, Ordering::Relaxed);
            }
        });
        self.len.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_runtime::par_for;
    use std::collections::HashSet;

    #[test]
    fn insert_and_contains() {
        let t = PairTable::with_capacity(100);
        assert_eq!(t.insert(42), Insert::Added);
        assert_eq!(t.insert(42), Insert::Present);
        assert!(t.contains(42));
        assert!(!t.contains(43));
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn parallel_inserts_count_unique_keys() {
        let t = PairTable::with_capacity(100_000);
        // Each key inserted twice; Added must fire exactly once per key.
        use std::sync::atomic::AtomicUsize;
        let added = AtomicUsize::new(0);
        par_for(200_000, |i| {
            let key = (i / 2) as u64;
            if t.insert(key) == Insert::Added {
                added.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(added.load(Ordering::Relaxed), 100_000);
        assert_eq!(t.len(), 100_000);
    }

    #[test]
    fn keys_returns_exact_set() {
        let t = PairTable::with_capacity(1000);
        for k in 0..500u64 {
            t.insert(k * 3);
        }
        let got: HashSet<u64> = t.keys().into_iter().collect();
        let expected: HashSet<u64> = (0..500u64).map(|k| k * 3).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn grow_preserves_contents() {
        let mut t = PairTable::with_capacity(8);
        for k in 0..16u64 {
            // May report Full on a tiny table; grow and retry like the
            // driver does.
            while t.insert(k) == Insert::Full {
                t.grow();
            }
        }
        for k in 0..16u64 {
            assert!(t.contains(k), "lost key {k} after grow");
        }
        assert_eq!(t.len(), 16);
    }

    #[test]
    fn overfill_reports_full_eventually() {
        // Saturate a minimum-size table; at some point Full must appear.
        let t = PairTable::with_capacity(1);
        let mut got_full = false;
        for k in 0..100_000u64 {
            if t.insert(k) == Insert::Full {
                got_full = true;
                break;
            }
        }
        assert!(got_full);
    }

    #[test]
    fn clear_resets() {
        let t = PairTable::with_capacity(100);
        for k in 0..50u64 {
            t.insert(k);
        }
        t.clear();
        assert!(t.is_empty());
        assert!(!t.contains(7));
        assert_eq!(t.insert(7), Insert::Added);
    }

    #[test]
    fn for_each_visits_all() {
        use std::sync::atomic::AtomicU64;
        let t = PairTable::with_capacity(1000);
        for k in 1..=100u64 {
            t.insert(k);
        }
        let sum = AtomicU64::new(0);
        t.for_each(|k| {
            sum.fetch_add(k, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), (1..=100u64).sum::<u64>());
    }

    #[test]
    fn slot_count_is_power_of_two() {
        for cap in [1, 7, 100, 1000, 12345] {
            let t = PairTable::with_capacity(cap);
            assert!(t.slot_count().is_power_of_two());
            assert!(t.slot_count() >= cap);
        }
    }

    #[test]
    fn adversarial_colliding_keys() {
        // Keys engineered to collide in low bits still disperse via hash64.
        let t = PairTable::with_capacity(4096);
        let stride = t.slot_count() as u64;
        for k in 0..2000u64 {
            assert_ne!(t.insert(k * stride), Insert::Full);
        }
        assert_eq!(t.len(), 2000);
    }
}

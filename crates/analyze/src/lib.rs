//! `pscc-analyze` — a zero-dependency static checker for this workspace's
//! concurrency and hygiene invariants.
//!
//! The engine's correctness rests on invariants that live in comments and
//! reviewers' heads: the catalog's `update → store → state` lock order and
//! off-lock rebuild protocol, the telemetry crate's relaxed-atomics-only
//! hot path, documented `unsafe`, and error-returning (not panicking)
//! library code. This crate machine-checks them on every CI run:
//!
//! | rule | enforces |
//! |------|----------|
//! | `lock-order` | `update` → `store` → `state` acquisition order, no re-entrant guards, no index build/merge under a `state` guard |
//! | `safety-comment` | every `unsafe` carries a `SAFETY` comment |
//! | `atomic-ordering` | no `SeqCst`; telemetry metrics stay `Relaxed` |
//! | `panic` | no `unwrap`/`expect`/`panic!` in non-test library code (poisoned-lock `expect("… lock")` excepted) |
//! | `logging` | no `println!`/`eprintln!`/`dbg!` in library crates |
//!
//! Findings diff against the committed `analyze-baseline.json` (see
//! [`baseline`]): new violations fail, fixed ones must shrink the
//! baseline. `// analyze: allow(rule): reason` suppresses a single line
//! auditable in review. Run via `cargo run -p pscc-analyze -- --check`.

pub mod baseline;
pub mod lexer;
pub mod rules;

use rules::{check_file, FileClass, Finding};
use std::io;
use std::path::{Path, PathBuf};

/// Directories scanned under the workspace root.
const SCAN_ROOTS: &[&str] = &["crates", "src", "tests", "examples"];

/// Path prefixes excluded from the scan: vendored stand-ins for external
/// crates (`proptest`/`criterion` shims) mirror *their* upstream APIs and
/// idioms, not this workspace's.
const EXCLUDED_PREFIXES: &[&str] = &["crates/devtools/"];

/// The baseline's file name at the workspace root.
pub const BASELINE_FILE: &str = "analyze-baseline.json";

/// The findings of one whole-workspace run.
#[derive(Clone, Debug, Default)]
pub struct Analysis {
    /// All unsuppressed findings, sorted by `(file, line, rule)`.
    pub findings: Vec<Finding>,
    /// Number of files scanned.
    pub files_scanned: usize,
}

/// Scans every workspace `.rs` file under `root` and returns the findings.
///
/// Fails only on IO errors (unreadable file or directory); findings —
/// including zero findings — are a success.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let mut files = Vec::new();
    for scan_root in SCAN_ROOTS {
        let dir = root.join(scan_root);
        if dir.is_dir() {
            collect_rs_files(&dir, &mut files)?;
        }
    }
    files.sort();

    let mut analysis = Analysis::default();
    for path in files {
        let rel = relative_slash_path(root, &path);
        if EXCLUDED_PREFIXES.iter().any(|p| rel.starts_with(p)) {
            continue;
        }
        let src = std::fs::read_to_string(&path)?;
        analysis.files_scanned += 1;
        analysis.findings.extend(check_file(&rel, &src, classify(&rel)));
    }
    analysis.findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    Ok(analysis)
}

/// Recursively collects `.rs` files, skipping `target` build dirs and
/// hidden directories.
fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if entry.file_type()?.is_dir() {
            if name == "target" || name.starts_with('.') {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// `root`-relative path with forward slashes (stable across platforms, so
/// baselines and annotations are portable).
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let mut out = String::new();
    for comp in rel.components() {
        if !out.is_empty() {
            out.push('/');
        }
        out.push_str(&comp.as_os_str().to_string_lossy());
    }
    out
}

/// Classifies a workspace-relative path: harness code (tests, benches,
/// examples, binaries) is exempt from the panic and logging rules;
/// library code gets all five.
pub fn classify(rel: &str) -> FileClass {
    let harness_dir =
        |d: &str| rel.starts_with(&format!("{d}/")) || rel.contains(&format!("/{d}/"));
    if harness_dir("tests")
        || harness_dir("benches")
        || harness_dir("examples")
        || harness_dir("bin")
        || rel.ends_with("src/main.rs")
    {
        FileClass::Harness
    } else {
        FileClass::Library
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_covers_the_workspace_layout() {
        for (rel, class) in [
            ("crates/engine/src/catalog.rs", FileClass::Library),
            ("crates/bench/src/lib.rs", FileClass::Library),
            ("src/lib.rs", FileClass::Library),
            ("tests/engine_repair_planner.rs", FileClass::Harness),
            ("tests/common/scenarios.rs", FileClass::Harness),
            ("examples/reachability_server.rs", FileClass::Harness),
            ("crates/bench/benches/tab2_scc.rs", FileClass::Harness),
            ("crates/bench/src/bin/bench_engine.rs", FileClass::Harness),
            ("crates/analyze/src/main.rs", FileClass::Harness),
        ] {
            assert_eq!(classify(rel), class, "{rel}");
        }
    }
}

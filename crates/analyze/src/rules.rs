//! The project-specific rules and the per-file checking engine.
//!
//! Every rule works on the token stream from [`crate::lexer`] — never on
//! raw text — so string literals and comments can't fool it. Findings can
//! be suppressed by an *annotation comment*, the auditable escape hatch:
//!
//! ```text
//! // analyze: allow(lock-order): querying both guards is safe here because …
//! let st = entry.state.lock().expect("entry lock");
//! ```
//!
//! An annotation on its own line covers the next line with code; an
//! annotation trailing code covers its own line. See [`RuleId`] for the
//! rule catalog and the README's "Static analysis" section for the
//! rationale behind each rule.

use crate::lexer::{lex, Token, TokenKind};
use std::collections::{HashMap, HashSet};

/// Files allowed to use `Ordering::SeqCst`. Nothing in the workspace
/// needs sequential consistency today; extend this list (with a comment
/// explaining the proof obligation) if something ever does.
const SEQCST_ALLOWED_FILES: &[&str] = &[];

/// Files whose atomics must be entirely `Ordering::Relaxed` — the
/// telemetry hot path, where one relaxed op per record is the budget
/// (PR 6) and an accidental `Acquire`/`Release`/`SeqCst` is a perf
/// regression the type system can't catch.
const RELAXED_ONLY_FILES: &[&str] = &["crates/telemetry/src/metrics.rs"];

/// Lock names participating in the catalog's lock order, outermost
/// first: `update` (long-hold writer lock) → `store` (durable-backing
/// slot) → `state` (short-hold swap lock). Acquiring a lock while
/// holding one that comes *after* it in this list is an order violation.
const LOCK_ORDER: &[&str] = &["update", "store", "state"];

/// Calls that must never run inside a `state` guard's scope: the whole
/// point of the off-lock rebuild protocol (PR 3) is that merges and
/// index builds happen against `Arc` clones, never under the short-hold
/// swap lock.
const BANNED_UNDER_STATE: &[&str] = &["build", "build_with_config", "with_delta", "merge_csr"];

/// `.expect("…")` calls whose message contains one of these substrings
/// are the blessed poisoned-lock idiom (`expect("entry lock")`,
/// `expect("registry poisoned")`) and pass the panic rule.
const EXPECT_ALLOWED_SUBSTRINGS: &[&str] = &["lock", "poisoned"];

/// The five rule families. `Display`/[`RuleId::name`] yields the
/// kebab-case id used in findings, baselines, and `allow` annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum RuleId {
    /// Catalog locking protocol: `update` → `store` → `state` acquisition
    /// order, no re-entrant guard of the same lock, no index build/merge
    /// under a live `state` guard.
    LockOrder,
    /// Every `unsafe` block, fn, or impl carries a `// SAFETY:` comment
    /// immediately above it.
    SafetyComment,
    /// `SeqCst` is banned outside an allowlist; telemetry's metrics hot
    /// path stays `Relaxed`-only.
    AtomicOrdering,
    /// `.unwrap()` / `.expect(…)` / `panic!` / `todo!` / `unimplemented!`
    /// are banned in non-test library code, except the poisoned-lock
    /// `expect("… lock")` idiom.
    Panic,
    /// `println!` / `eprintln!` / `print!` / `eprint!` / `dbg!` are banned
    /// in library crates — diagnostics go through `telemetry::log!`.
    Logging,
}

impl RuleId {
    /// All rules, in reporting order.
    pub const ALL: [RuleId; 5] = [
        RuleId::LockOrder,
        RuleId::SafetyComment,
        RuleId::AtomicOrdering,
        RuleId::Panic,
        RuleId::Logging,
    ];

    /// The kebab-case rule id (`lock-order`, `safety-comment`, …).
    pub fn name(self) -> &'static str {
        match self {
            RuleId::LockOrder => "lock-order",
            RuleId::SafetyComment => "safety-comment",
            RuleId::AtomicOrdering => "atomic-ordering",
            RuleId::Panic => "panic",
            RuleId::Logging => "logging",
        }
    }

    /// Inverse of [`RuleId::name`].
    pub fn parse(s: &str) -> Option<RuleId> {
        RuleId::ALL.into_iter().find(|r| r.name() == s)
    }
}

impl std::fmt::Display for RuleId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a file is library code (panic/logging rules apply) or harness
/// code — tests, benches, examples, binaries — where panics and stdout
/// are the job.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FileClass {
    /// `src/` of a crate (excluding `src/bin/`): all five rules apply.
    Library,
    /// Tests / benches / examples / binaries: lock-order, SAFETY, and
    /// atomic-ordering still apply; panic and logging do not.
    Harness,
}

/// One rule violation at a source location.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Which rule fired.
    pub rule: RuleId,
    /// Human-readable description of the violation.
    pub message: String,
}

impl std::fmt::Display for Finding {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file, self.line, self.rule, self.message)
    }
}

/// Checks one file's source, returning all unsuppressed findings.
pub fn check_file(rel: &str, src: &str, class: FileClass) -> Vec<Finding> {
    let tokens = lex(src);
    let code: Vec<&Token> = tokens.iter().filter(|t| !t.kind.is_comment()).collect();
    let lines = LineIndex::build(src, &tokens);
    let test_mask = test_region_mask(src, &code);

    let mut findings = Vec::new();
    lock_order_rule(rel, src, &code, &mut findings);
    safety_comment_rule(rel, src, &code, &lines, &mut findings);
    atomic_ordering_rule(rel, src, &code, &mut findings);
    if class == FileClass::Library {
        panic_rule(rel, src, &code, &test_mask, &mut findings);
        logging_rule(rel, src, &code, &test_mask, &mut findings);
    }

    let allows = collect_allows(src, &tokens, &lines);
    findings.retain(|f| !allows.contains(&(f.rule, f.line)));
    findings.sort_by_key(|f| (f.line, f.rule));
    findings
}

// ---- Line bookkeeping ---------------------------------------------------

/// Per-line facts needed by the SAFETY rule and annotation resolution.
struct LineIndex {
    /// Lines holding at least one non-comment token.
    code_lines: HashSet<u32>,
    /// First non-comment token text per line (attribute detection).
    first_code: HashMap<u32, String>,
    /// Lines that are neither blank nor whitespace-only (so a gap stops
    /// the SAFETY comment walk-up).
    nonblank_lines: HashSet<u32>,
}

impl LineIndex {
    fn build(src: &str, tokens: &[Token]) -> LineIndex {
        let mut code_lines = HashSet::new();
        let mut first_code = HashMap::new();
        let mut nonblank_lines = HashSet::new();
        for t in tokens {
            // A multi-line token (block comment, raw string) marks every
            // line it spans as non-blank.
            let span_lines = t.text(src).matches('\n').count() as u32;
            for l in t.line..=t.line + span_lines {
                nonblank_lines.insert(l);
            }
            if !t.kind.is_comment() {
                for l in t.line..=t.line + span_lines {
                    code_lines.insert(l);
                }
                first_code.entry(t.line).or_insert_with(|| t.text(src).to_string());
            }
        }
        LineIndex { code_lines, first_code, nonblank_lines }
    }

    /// True if `line` is an attribute line (first code token is `#`).
    fn is_attr_line(&self, line: u32) -> bool {
        self.first_code.get(&line).is_some_and(|t| t == "#")
    }
}

// ---- Annotations --------------------------------------------------------

/// Extracts `analyze: allow(rule)` annotations. Returns `(rule, line)`
/// pairs of suppressed findings: an annotation trailing code covers its
/// own line; an annotation on a comment-only line covers the next line
/// holding code.
fn collect_allows(src: &str, tokens: &[Token], lines: &LineIndex) -> HashSet<(RuleId, u32)> {
    let mut allows = HashSet::new();
    let max_line = tokens.last().map(|t| t.line + 1).unwrap_or(1);
    for t in tokens {
        if !t.kind.is_comment() {
            continue;
        }
        let text = t.text(src);
        let Some(idx) = text.find("analyze: allow(") else { continue };
        let rest = &text[idx + "analyze: allow(".len()..];
        let Some(close) = rest.find(')') else { continue };
        let Some(rule) = RuleId::parse(&rest[..close]) else { continue };
        let target = if lines.code_lines.contains(&t.line) {
            t.line
        } else {
            // Comment-only line: cover the next code-bearing line.
            (t.line + 1..=max_line).find(|l| lines.code_lines.contains(l)).unwrap_or(t.line + 1)
        };
        allows.insert((rule, target));
    }
    allows
}

// ---- Test-region detection ----------------------------------------------

/// Marks the code-token indices living inside `#[cfg(test)]` items or
/// `#[test]` functions, so the panic/logging rules skip them. Regions are
/// found by matching the attribute token sequence and then skipping the
/// following item: through its `{ … }` block, or to the `;` if none opens
/// first (e.g. `#[cfg(test)] use …;`).
fn test_region_mask(src: &str, code: &[&Token]) -> Vec<bool> {
    let mut mask = vec![false; code.len()];
    let mut i = 0;
    while i < code.len() {
        if let Some(after_attr) = match_test_attr(src, code, i) {
            let mut depth = 0usize;
            let mut j = after_attr;
            while j < code.len() {
                let text = code[j].text(src);
                match text {
                    "{" => depth += 1,
                    "}" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    ";" if depth == 0 => break,
                    _ => {}
                }
                j += 1;
            }
            for m in mask.iter_mut().take((j + 1).min(code.len())).skip(i) {
                *m = true;
            }
            i = j + 1;
        } else {
            i += 1;
        }
    }
    mask
}

/// If code tokens starting at `i` spell `#[cfg(test)]` or `#[test]`,
/// returns the index just past the closing `]`.
fn match_test_attr(src: &str, code: &[&Token], i: usize) -> Option<usize> {
    let texts = |range: std::ops::Range<usize>| -> Option<Vec<&str>> {
        code.get(range).map(|ts| ts.iter().map(|t| t.text(src)).collect())
    };
    if texts(i..i + 2)? != ["#", "["] {
        return None;
    }
    if texts(i + 2..i + 3)? == ["test"] && texts(i + 3..i + 4)? == ["]"] {
        return Some(i + 4);
    }
    if texts(i + 2..i + 6)? == ["cfg", "(", "test", ")"] && texts(i + 6..i + 7)? == ["]"] {
        return Some(i + 7);
    }
    None
}

// ---- Rule: safety-comment -----------------------------------------------

/// Every `unsafe` token (block, fn, or impl) must be justified by a
/// line comment starting the `SAFETY` marker directly above the
/// statement it starts — comment and attribute lines may intervene, a
/// blank line or unrelated code may not. A trailing block-comment
/// marker earlier on the same line also counts.
fn safety_comment_rule(
    rel: &str,
    src: &str,
    code: &[&Token],
    lines: &LineIndex,
    findings: &mut Vec<Finding>,
) {
    // Marker lines: any comment token containing the SAFETY marker.
    // (Recomputed here rather than in LineIndex to keep that struct rule-
    // agnostic; files are small.)
    let tokens = lex(src);
    let mut safety_lines: HashSet<u32> = HashSet::new();
    let mut safety_before: Vec<(u32, usize)> = Vec::new(); // (line, end offset)
    for t in &tokens {
        if t.kind.is_comment() && t.text(src).contains("SAFETY:") {
            let span_lines = t.text(src).matches('\n').count() as u32;
            for l in t.line..=t.line + span_lines {
                safety_lines.insert(l);
            }
            safety_before.push((t.line + span_lines, t.end));
        }
    }

    for t in code {
        if t.text(src) != "unsafe" {
            continue;
        }
        // A block-comment marker on the same line, before the keyword.
        if safety_before.iter().any(|&(l, end)| l == t.line && end <= t.start) {
            continue;
        }
        let mut justified = false;
        let mut l = t.line;
        while l > 1 {
            l -= 1;
            if safety_lines.contains(&l) && !lines.code_lines.contains(&l) {
                justified = true;
                break;
            }
            let comment_only = lines.nonblank_lines.contains(&l) && !lines.code_lines.contains(&l);
            if comment_only || lines.is_attr_line(l) {
                continue; // keep walking through the comment/attr block
            }
            break; // blank line or unrelated code: the chain is broken
        }
        if !justified {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: RuleId::SafetyComment,
                message: "`unsafe` without a `// SAFETY:` comment immediately above".to_string(),
            });
        }
    }
}

// ---- Rule: atomic-ordering ----------------------------------------------

fn atomic_ordering_rule(rel: &str, src: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    let relaxed_only = RELAXED_ONLY_FILES.contains(&rel);
    let seqcst_ok = SEQCST_ALLOWED_FILES.contains(&rel);
    for t in code {
        let text = t.text(src);
        if text == "SeqCst" && !seqcst_ok {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: RuleId::AtomicOrdering,
                message: "`SeqCst` is banned outside the allowlist; state the ordering you \
                          actually need (and why) or extend SEQCST_ALLOWED_FILES"
                    .to_string(),
            });
        } else if relaxed_only && matches!(text, "Acquire" | "Release" | "AcqRel") {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: RuleId::AtomicOrdering,
                message: format!(
                    "`{text}` in a Relaxed-only file: the telemetry hot path budgets one \
                     relaxed atomic op per record"
                ),
            });
        }
    }
}

// ---- Rule: panic --------------------------------------------------------

fn panic_rule(
    rel: &str,
    src: &str,
    code: &[&Token],
    test_mask: &[bool],
    findings: &mut Vec<Finding>,
) {
    let mut push = |line: u32, message: String| {
        findings.push(Finding { file: rel.to_string(), line, rule: RuleId::Panic, message });
    };
    for (i, t) in code.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        let text = t.text(src);
        let next = |k: usize| code.get(i + k).map(|t| t.text(src));
        match text {
            "panic" | "todo" | "unimplemented" if next(1) == Some("!") => {
                push(t.line, format!("`{text}!` in non-test library code; return an error"));
            }
            "unwrap" if prev_is_dot(src, code, i) && next(1) == Some("(") => {
                push(t.line, "`.unwrap()` in non-test library code; return an error".to_string());
            }
            "expect" if prev_is_dot(src, code, i) && next(1) == Some("(") => {
                let msg_tok = code.get(i + 2);
                let allowed = msg_tok.is_some_and(|m| {
                    matches!(m.kind, TokenKind::Str | TokenKind::RawStr)
                        && EXPECT_ALLOWED_SUBSTRINGS.iter().any(|s| m.text(src).contains(s))
                });
                if !allowed {
                    push(
                        t.line,
                        "`.expect(…)` in non-test library code (only the poisoned-lock \
                         `expect(\"… lock\")` idiom is allowed); return an error"
                            .to_string(),
                    );
                }
            }
            _ => {}
        }
    }
}

fn prev_is_dot(src: &str, code: &[&Token], i: usize) -> bool {
    i > 0 && code[i - 1].text(src) == "."
}

// ---- Rule: logging ------------------------------------------------------

fn logging_rule(
    rel: &str,
    src: &str,
    code: &[&Token],
    test_mask: &[bool],
    findings: &mut Vec<Finding>,
) {
    for (i, t) in code.iter().enumerate() {
        if test_mask[i] {
            continue;
        }
        let text = t.text(src);
        if matches!(text, "println" | "eprintln" | "print" | "eprint" | "dbg")
            && code.get(i + 1).map(|t| t.text(src)) == Some("!")
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: RuleId::Logging,
                message: format!("`{text}!` in a library crate; use `pscc_telemetry::log!`"),
            });
        }
    }
}

// ---- Rule: lock-order ---------------------------------------------------

/// A currently-live mutex guard.
struct Guard {
    /// Index into [`LOCK_ORDER`].
    rank: usize,
    /// The `let` binding holding the guard, if any (killed by `drop(x)`).
    binding: Option<String>,
    /// Brace depth at acquisition; popped when the block closes.
    depth: usize,
    /// Guard is a temporary (not `let`-bound): dies at end of statement.
    temp: bool,
}

/// Per-function acquisition bookkeeping for the "update before state"
/// whole-function check.
struct FnTrack {
    /// Depth of the function body's opening brace.
    body_depth: usize,
    first_update: Option<u32>,
    first_state: Option<u32>,
}

fn lock_order_rule(rel: &str, src: &str, code: &[&Token], findings: &mut Vec<Finding>) {
    let mut push = |line: u32, message: String| {
        findings.push(Finding { file: rel.to_string(), line, rule: RuleId::LockOrder, message });
    };

    let mut depth = 0usize;
    let mut guards: Vec<Guard> = Vec::new();
    let mut fns: Vec<FnTrack> = Vec::new();
    let mut pending_fn = false;
    // Statement tracking for `let` bindings of guards.
    let mut stmt_first: Option<usize> = None; // index of statement's first token
    let mut i = 0;
    while i < code.len() {
        let text = code[i].text(src);
        let line = code[i].line;
        if stmt_first.is_none() && !matches!(text, "{" | "}" | ";") {
            stmt_first = Some(i);
        }
        match text {
            "fn" => {
                // `fn` the item/method keyword, not an `fn(…)` pointer type
                // (those follow `:`/`<`/`(`/`,`/`&`/`->`).
                let prev = i.checked_sub(1).map(|p| code[p].text(src));
                if !matches!(prev, Some(":" | "<" | "(" | "," | "&" | ">" | "-")) {
                    pending_fn = true;
                }
            }
            "{" => {
                depth += 1;
                if pending_fn {
                    fns.push(FnTrack { body_depth: depth, first_update: None, first_state: None });
                    pending_fn = false;
                }
                stmt_first = None;
            }
            "}" => {
                // End of block: guards scoped to it die; a temp guard's
                // statement can't outlive the block either.
                guards.retain(|g| g.depth < depth);
                if fns.last().is_some_and(|f| f.body_depth == depth) {
                    if let Some(f) = fns.pop() {
                        if let (Some(state_line), Some(update_line)) =
                            (f.first_state, f.first_update)
                        {
                            if state_line < update_line {
                                push(
                                    state_line,
                                    "function takes both `update` and `state` but acquires \
                                     `state` first (required order: update → store → state)"
                                        .to_string(),
                                );
                            }
                        }
                    }
                }
                depth = depth.saturating_sub(1);
                stmt_first = None;
            }
            ";" => {
                guards.retain(|g| !(g.temp && g.depth == depth));
                stmt_first = None;
            }
            "drop" => {
                // `drop(x)` ends x's guard early.
                if code.get(i + 1).map(|t| t.text(src)) == Some("(") {
                    if let Some(victim) = code.get(i + 2).map(|t| t.text(src)) {
                        guards.retain(|g| g.binding.as_deref() != Some(victim));
                    }
                }
            }
            "lock" => {
                if prev_is_dot(src, code, i) && code.get(i + 1).map(|t| t.text(src)) == Some("(") {
                    let receiver = i.checked_sub(2).map(|r| code[r].text(src));
                    if let Some(rank) =
                        receiver.and_then(|r| LOCK_ORDER.iter().position(|&n| n == r))
                    {
                        let name = LOCK_ORDER[rank];
                        if let Some(held) = guards.iter().find(|g| g.rank == rank) {
                            let _ = held;
                            push(
                                line,
                                format!(
                                    "`{name}.lock()` while another `{name}` guard is live \
                                     (self-deadlock)"
                                ),
                            );
                        } else if let Some(held) = guards.iter().find(|g| g.rank > rank) {
                            push(
                                line,
                                format!(
                                    "`{name}.lock()` while a `{}` guard is live (required \
                                     order: update → store → state)",
                                    LOCK_ORDER[held.rank]
                                ),
                            );
                        }
                        if let Some(f) = fns.last_mut() {
                            if name == "update" && f.first_update.is_none() {
                                f.first_update = Some(line);
                            }
                            if name == "state" && f.first_state.is_none() {
                                f.first_state = Some(line);
                            }
                        }
                        let binding = stmt_first
                            .filter(|&s| code[s].text(src) == "let")
                            .and_then(|s| first_binding(src, code, s, i));
                        let temp = binding.is_none();
                        guards.push(Guard { rank, binding, depth, temp });
                    }
                }
            }
            _ => {
                // An index build or graph merge must never run under the
                // short-hold state lock.
                if BANNED_UNDER_STATE.contains(&text)
                    && code.get(i + 1).map(|t| t.text(src)) == Some("(")
                    && guards.iter().any(|g| LOCK_ORDER[g.rank] == "state")
                {
                    push(
                        line,
                        format!(
                            "`{text}(…)` inside a `state` guard's scope — merges and index \
                             builds run off-lock against Arc clones"
                        ),
                    );
                }
            }
        }
        i += 1;
    }
}

/// For a statement `let <pat> = …`, the first plausible binding ident
/// between `let` and `=` (skipping `mut`/`ref`/`_`). Good enough to match
/// a later `drop(binding)`.
fn first_binding(src: &str, code: &[&Token], let_idx: usize, lock_idx: usize) -> Option<String> {
    for t in &code[let_idx + 1..lock_idx] {
        let text = t.text(src);
        if text == "=" {
            break;
        }
        if t.kind == TokenKind::Word && !matches!(text, "mut" | "ref" | "_") {
            return Some(text.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lib(src: &str) -> Vec<Finding> {
        check_file("crates/x/src/lib.rs", src, FileClass::Library)
    }

    fn rules_of(findings: &[Finding]) -> Vec<RuleId> {
        findings.iter().map(|f| f.rule).collect()
    }

    // -- panic rule --

    #[test]
    fn panic_rule_catches_unwrap_expect_and_macros() {
        let src = "fn f() { x.unwrap(); y.expect(\"nope\"); panic!(\"boom\"); todo!(); }";
        let f = lib(src);
        assert_eq!(rules_of(&f), vec![RuleId::Panic; 4], "{f:?}");
    }

    #[test]
    fn panic_rule_allows_poisoned_lock_idiom() {
        let src = r#"
            fn f() {
                let a = m.lock().expect("entry lock");
                let b = sink().lock().expect("registry poisoned");
            }
        "#;
        assert!(lib(src).is_empty(), "{:?}", lib(src));
    }

    #[test]
    fn panic_rule_skips_tests_and_harness() {
        let src = "#[cfg(test)]\nmod tests {\n fn g() { x.unwrap(); panic!(); }\n}";
        assert!(lib(src).is_empty());
        let src2 = "#[test]\nfn t() { x.unwrap(); }";
        assert!(lib(src2).is_empty());
        let harness = check_file("tests/t.rs", "fn f() { x.unwrap(); }", FileClass::Harness);
        assert!(harness.is_empty());
    }

    #[test]
    fn panic_rule_ignores_strings_and_comments() {
        let src = "fn f() { let s = \".unwrap()\"; } // call .unwrap() and panic!(…)\n";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn panic_rule_resumes_after_test_module() {
        let src = "#[cfg(test)]\nmod tests { fn g() { x.unwrap(); } }\nfn real() { y.unwrap(); }";
        let f = lib(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    // -- logging rule --

    #[test]
    fn logging_rule_catches_print_macros() {
        let src = "fn f() { println!(\"x\"); eprintln!(\"y\"); dbg!(z); }";
        assert_eq!(rules_of(&lib(src)), vec![RuleId::Logging; 3]);
    }

    #[test]
    fn logging_rule_spares_harness_and_telemetry_log() {
        let h = check_file("examples/e.rs", "fn main() { println!(\"ok\"); }", FileClass::Harness);
        assert!(h.is_empty());
        let src = "fn f() { pscc_telemetry::log!(Warn, \"x\"); }";
        assert!(lib(src).is_empty());
    }

    // -- atomic-ordering rule --

    #[test]
    fn seqcst_is_banned_everywhere() {
        let src = "fn f() { x.store(1, Ordering::SeqCst); }";
        assert_eq!(rules_of(&lib(src)), vec![RuleId::AtomicOrdering]);
        let h = check_file("tests/t.rs", src, FileClass::Harness);
        assert_eq!(rules_of(&h), vec![RuleId::AtomicOrdering]);
    }

    #[test]
    fn relaxed_only_file_rejects_acquire_release() {
        let src = "fn f() { x.store(1, Ordering::Release); y.load(Ordering::Relaxed); }";
        let f = check_file("crates/telemetry/src/metrics.rs", src, FileClass::Library);
        assert_eq!(rules_of(&f), vec![RuleId::AtomicOrdering]);
        // The same source elsewhere is fine.
        assert!(lib(src).is_empty());
    }

    // -- safety-comment rule --

    #[test]
    fn undocumented_unsafe_is_flagged() {
        let src = "fn f() { unsafe { danger() } }";
        assert_eq!(rules_of(&lib(src)), vec![RuleId::SafetyComment]);
    }

    #[test]
    fn safety_comment_above_passes() {
        for src in [
            "// SAFETY: fine\nunsafe fn g() {}",
            "// SAFETY: multi\n// line two\nfn f() { unsafe { d() } }",
            "// SAFETY: above the statement\nlet x = unsafe { d() };",
            "// SAFETY: through attributes\n#[inline]\nunsafe fn g() {}",
            "/* SAFETY: same line */ unsafe fn g() {}",
            "// SAFETY: impl\nunsafe impl Sync for P {}",
        ] {
            assert!(lib(src).is_empty(), "{src:?} -> {:?}", lib(src));
        }
    }

    #[test]
    fn blank_line_breaks_the_safety_chain() {
        let src = "// SAFETY: too far away\n\nunsafe fn g() {}";
        assert_eq!(rules_of(&lib(src)), vec![RuleId::SafetyComment]);
    }

    #[test]
    fn safety_in_string_does_not_count() {
        let src = "let s = \"SAFETY: nope\";\nunsafe fn g() {}";
        assert_eq!(rules_of(&lib(src)), vec![RuleId::SafetyComment]);
    }

    // -- lock-order rule --

    #[test]
    fn nested_state_guard_is_flagged() {
        let src = r#"
            fn f(e: &Entry) {
                let a = e.state.lock().expect("entry lock");
                let b = e.state.lock().expect("entry lock");
            }
        "#;
        let f = lib(src);
        assert_eq!(rules_of(&f), vec![RuleId::LockOrder]);
        assert!(f[0].message.contains("self-deadlock"));
    }

    #[test]
    fn scoped_state_guards_are_fine() {
        let src = r#"
            fn f(e: &Entry) {
                let g = { let st = e.state.lock().expect("entry lock"); st.graph.clone() };
                let mut st = e.state.lock().expect("entry lock");
            }
        "#;
        assert!(lib(src).is_empty(), "{:?}", lib(src));
    }

    #[test]
    fn drop_ends_a_guard() {
        let src = r#"
            fn f(e: &Entry) {
                let st = e.state.lock().expect("entry lock");
                drop(st);
                let st2 = e.state.lock().expect("entry lock");
            }
        "#;
        assert!(lib(src).is_empty(), "{:?}", lib(src));
    }

    #[test]
    fn statement_temporary_guard_dies_at_semicolon() {
        let src = r#"
            fn f(e: &Entry) {
                e.state.lock().expect("entry lock").index.take();
                let st = e.state.lock().expect("entry lock");
            }
        "#;
        assert!(lib(src).is_empty(), "{:?}", lib(src));
    }

    #[test]
    fn state_before_update_in_one_function_is_flagged() {
        let src = r#"
            fn f(e: &Entry) {
                { let st = e.state.lock().expect("entry lock"); }
                let w = e.update.lock().expect("update lock");
            }
        "#;
        let f = lib(src);
        assert_eq!(rules_of(&f), vec![RuleId::LockOrder]);
        assert!(f[0].message.contains("acquires `state` first"));
    }

    #[test]
    fn update_then_state_is_the_blessed_order() {
        let src = r#"
            fn f(e: &Entry) {
                let w = e.update.lock().expect("update lock");
                let mut slot = e.store.lock().expect("store lock");
                let st = e.state.lock().expect("entry lock");
            }
        "#;
        assert!(lib(src).is_empty(), "{:?}", lib(src));
    }

    #[test]
    fn store_while_state_held_is_flagged() {
        let src = r#"
            fn f(e: &Entry) {
                let st = e.state.lock().expect("entry lock");
                let slot = e.store.lock().expect("store lock");
            }
        "#;
        let f = lib(src);
        assert_eq!(rules_of(&f), vec![RuleId::LockOrder]);
        assert!(f[0].message.contains("required order"));
    }

    #[test]
    fn index_build_under_state_guard_is_flagged() {
        let src = r#"
            fn f(e: &Entry) {
                let st = e.state.lock().expect("entry lock");
                let idx = Index::build_with_config(&st.graph, &cfg);
            }
        "#;
        let f = lib(src);
        assert_eq!(rules_of(&f), vec![RuleId::LockOrder]);
        assert!(f[0].message.contains("off-lock"));
    }

    #[test]
    fn index_build_outside_guard_is_fine() {
        let src = r#"
            fn f(e: &Entry) {
                let g = { let st = e.state.lock().expect("entry lock"); st.graph.clone() };
                let idx = Index::build_with_config(&g, &cfg);
                let mut st = e.state.lock().expect("entry lock");
                st.index = Some(idx);
            }
        "#;
        assert!(lib(src).is_empty(), "{:?}", lib(src));
    }

    #[test]
    fn unrelated_locks_are_ignored() {
        let src = r#"
            fn f() {
                let a = overflow.lock().expect("overflow lock");
                let b = missed.lock().expect("missed lock");
            }
        "#;
        assert!(lib(src).is_empty());
    }

    // -- annotations --

    #[test]
    fn allow_annotation_on_preceding_line_suppresses() {
        let src = "fn f() {\n    // analyze: allow(panic): demo invariant\n    x.unwrap();\n}";
        assert!(lib(src).is_empty(), "{:?}", lib(src));
    }

    #[test]
    fn allow_annotation_trailing_code_suppresses_same_line() {
        let src = "fn f() { x.unwrap(); } // analyze: allow(panic): demo";
        assert!(lib(src).is_empty());
    }

    #[test]
    fn allow_annotation_is_rule_specific() {
        let src = "fn f() {\n    // analyze: allow(logging): wrong rule\n    x.unwrap();\n}";
        assert_eq!(rules_of(&lib(src)), vec![RuleId::Panic]);
    }

    #[test]
    fn allow_annotation_does_not_leak_past_its_line() {
        let src = "fn f() {\n    // analyze: allow(panic): one line only\n    x.unwrap();\n    y.unwrap();\n}";
        let f = lib(src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }
}

//! A small hand-rolled Rust lexer, just deep enough for rule checking.
//!
//! The rules in [`crate::rules`] must never be fooled by `.unwrap()` inside
//! a string literal or `unsafe` inside a doc comment, so the lexer handles
//! the token classes where naive text search goes wrong:
//!
//! * line comments (`//`, `///`, `//!`) and **nested** block comments;
//! * string literals with escapes, byte strings, and raw strings with any
//!   number of `#` guards (`r"…"`, `r#"…"#`, `br##"…"##`);
//! * character literals vs. lifetimes (`'a'` vs. `'a`), including escaped
//!   chars (`'\n'`, `'\u{1F600}'`);
//! * identifiers, numbers, and single-character punctuation.
//!
//! It is *not* a full lexer: numbers are lexed as [`TokenKind::Word`]s,
//! multi-character operators come out as single [`TokenKind::Punct`]
//! tokens, and no keyword table exists — the rules match on token text.
//! Every token carries its byte span and 1-based line, so findings point
//! at real source locations and the proptest suite can assert the token
//! stream reconstructs the input byte-for-byte.

/// Classification of one [`Token`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier, keyword, or number literal.
    Word,
    /// A lifetime such as `'a` (including the quote).
    Lifetime,
    /// A character or byte literal such as `'x'` or `'\n'`.
    CharLit,
    /// A string or byte-string literal, quotes included.
    Str,
    /// A raw (byte-)string literal, `r#"…"#` guards included.
    RawStr,
    /// A line comment (`//…`, to end of line, newline excluded).
    LineComment,
    /// A block comment (`/* … */`, possibly nested), delimiters included.
    BlockComment,
    /// Any other single character (operators, brackets, `;`, …).
    Punct,
}

impl TokenKind {
    /// True for both comment kinds.
    pub fn is_comment(self) -> bool {
        matches!(self, TokenKind::LineComment | TokenKind::BlockComment)
    }
}

/// One lexed token: kind plus byte span and 1-based start line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Token {
    /// What the token is.
    pub kind: TokenKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
    /// 1-based line of `start`.
    pub line: u32,
}

impl Token {
    /// The token's text within `src` (the string it was lexed from).
    pub fn text<'s>(&self, src: &'s str) -> &'s str {
        &src[self.start..self.end]
    }
}

fn is_word_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_' || b >= 0x80
}

fn is_word_continue(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_' || b >= 0x80
}

/// Lexes `src` into a token stream (comments included, whitespace
/// dropped). Never panics: malformed input (an unterminated string or
/// comment) produces a final token running to end of input.
pub fn lex(src: &str) -> Vec<Token> {
    Lexer { src: src.as_bytes(), pos: 0, line: 1, out: Vec::new() }.run()
}

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

impl Lexer<'_> {
    fn run(mut self) -> Vec<Token> {
        while self.pos < self.src.len() {
            let start = self.pos;
            let line = self.line;
            let b = self.src[self.pos];
            let kind = match b {
                b'\n' => {
                    self.line += 1;
                    self.pos += 1;
                    continue;
                }
                _ if b.is_ascii_whitespace() => {
                    self.pos += 1;
                    continue;
                }
                b'/' if self.peek(1) == Some(b'/') => self.line_comment(),
                b'/' if self.peek(1) == Some(b'*') => self.block_comment(),
                b'"' => self.string(),
                b'\'' => self.quote(),
                _ if is_word_start(b) || b.is_ascii_digit() => self.word(),
                _ => {
                    self.pos += 1;
                    TokenKind::Punct
                }
            };
            self.out.push(Token { kind, start, end: self.pos, line });
        }
        self.out
    }

    fn peek(&self, ahead: usize) -> Option<u8> {
        self.src.get(self.pos + ahead).copied()
    }

    fn bump_tracking_newlines(&mut self) {
        if self.src[self.pos] == b'\n' {
            self.line += 1;
        }
        self.pos += 1;
    }

    fn line_comment(&mut self) -> TokenKind {
        while self.pos < self.src.len() && self.src[self.pos] != b'\n' {
            self.pos += 1;
        }
        TokenKind::LineComment
    }

    fn block_comment(&mut self) -> TokenKind {
        self.pos += 2; // "/*"
        let mut depth = 1usize;
        while self.pos < self.src.len() && depth > 0 {
            if self.src[self.pos] == b'/' && self.peek(1) == Some(b'*') {
                depth += 1;
                self.pos += 2;
            } else if self.src[self.pos] == b'*' && self.peek(1) == Some(b'/') {
                depth -= 1;
                self.pos += 2;
            } else {
                self.bump_tracking_newlines();
            }
        }
        TokenKind::BlockComment
    }

    /// A non-raw string body starting at the opening quote.
    fn string(&mut self) -> TokenKind {
        self.pos += 1; // opening quote
        while self.pos < self.src.len() {
            match self.src[self.pos] {
                b'\\' => {
                    self.pos += 1; // the backslash
                    if self.pos < self.src.len() {
                        self.bump_tracking_newlines(); // escaped char (or line continuation)
                    }
                }
                b'"' => {
                    self.pos += 1;
                    break;
                }
                _ => self.bump_tracking_newlines(),
            }
        }
        TokenKind::Str
    }

    /// `'` — a character literal or a lifetime.
    fn quote(&mut self) -> TokenKind {
        // Escaped char: '\n', '\u{…}', '\''.
        if self.peek(1) == Some(b'\\') {
            self.pos += 2; // "'\"
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.bump_tracking_newlines();
            }
            self.pos = (self.pos + 1).min(self.src.len()); // closing quote
            return TokenKind::CharLit;
        }
        // Count word chars after the quote (UTF-8 continuation bytes count
        // as word chars, so a multi-byte char literal scans as one run).
        let mut j = self.pos + 1;
        while j < self.src.len() && is_word_continue(self.src[j]) {
            j += 1;
        }
        if self.src.get(j) == Some(&b'\'') && j > self.pos + 1 {
            // 'x' — a char literal (any word-char run closed by a quote;
            // real Rust allows only one char, but we only need spans).
            self.pos = j + 1;
            TokenKind::CharLit
        } else if j > self.pos + 1 {
            // 'a with no closing quote — a lifetime.
            self.pos = j;
            TokenKind::Lifetime
        } else {
            // Nothing word-like follows: a literal like ' ' or '('.
            self.pos += 1; // opening quote
            while self.pos < self.src.len() && self.src[self.pos] != b'\'' {
                self.bump_tracking_newlines();
            }
            self.pos = (self.pos + 1).min(self.src.len());
            TokenKind::CharLit
        }
    }

    /// An identifier / keyword / number — possibly a raw-string prefix.
    fn word(&mut self) -> TokenKind {
        let start = self.pos;
        while self.pos < self.src.len() && is_word_continue(self.src[self.pos]) {
            self.pos += 1;
        }
        let text = &self.src[start..self.pos];
        // r"…" / r#"…"# / br"…" / br##"…"## — raw string ahead?
        if matches!(text, b"r" | b"br" | b"rb") {
            let mut j = self.pos;
            while self.src.get(j) == Some(&b'#') {
                j += 1;
            }
            if self.src.get(j) == Some(&b'"') {
                let hashes = j - self.pos;
                self.pos = j + 1;
                self.raw_string_body(hashes);
                return TokenKind::RawStr;
            }
        }
        TokenKind::Word
    }

    /// Scans past the body of a raw string until `"` followed by `hashes`
    /// `#`s (or end of input).
    fn raw_string_body(&mut self, hashes: usize) {
        while self.pos < self.src.len() {
            if self.src[self.pos] == b'"' {
                let tail = &self.src[self.pos + 1..];
                if tail.len() >= hashes && tail[..hashes].iter().all(|&b| b == b'#') {
                    self.pos += 1 + hashes;
                    return;
                }
            }
            self.bump_tracking_newlines();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<(TokenKind, String)> {
        lex(src).into_iter().map(|t| (t.kind, t.text(src).to_string())).collect()
    }

    #[test]
    fn words_and_punct() {
        let toks = kinds("let x = foo(1);");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Word, "let".into()),
                (TokenKind::Word, "x".into()),
                (TokenKind::Punct, "=".into()),
                (TokenKind::Word, "foo".into()),
                (TokenKind::Punct, "(".into()),
                (TokenKind::Word, "1".into()),
                (TokenKind::Punct, ")".into()),
                (TokenKind::Punct, ";".into()),
            ]
        );
    }

    #[test]
    fn line_and_block_comments() {
        let toks = kinds("a // c1\nb /* c2 /* nested */ end */ c");
        assert_eq!(
            toks,
            vec![
                (TokenKind::Word, "a".into()),
                (TokenKind::LineComment, "// c1".into()),
                (TokenKind::Word, "b".into()),
                (TokenKind::BlockComment, "/* c2 /* nested */ end */".into()),
                (TokenKind::Word, "c".into()),
            ]
        );
    }

    #[test]
    fn string_hides_comment_and_unwrap() {
        let src = r#"let s = "no // comment .unwrap() here";"#;
        let toks = kinds(src);
        assert!(toks.iter().any(|(k, t)| *k == TokenKind::Str && t.contains("unwrap")));
        assert!(toks.iter().all(|(k, _)| !k.is_comment()));
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Word && t == "unwrap"));
    }

    #[test]
    fn escaped_quote_does_not_end_string() {
        let src = r#""a\"b" c"#;
        let toks = kinds(src);
        assert_eq!(toks[0], (TokenKind::Str, r#""a\"b""#.into()));
        assert_eq!(toks[1], (TokenKind::Word, "c".into()));
    }

    #[test]
    fn raw_strings_with_guards() {
        let src = r###"r#"quote " and // fake"# x"###;
        let toks = kinds(src);
        assert_eq!(toks[0].0, TokenKind::RawStr);
        assert_eq!(toks[1], (TokenKind::Word, "x".into()));
        let src2 = "r\"plain\" y";
        assert_eq!(kinds(src2)[0].0, TokenKind::RawStr);
        let src3 = "br##\"b \"# raw\"## z";
        let t3 = kinds(src3);
        assert_eq!(t3[0], (TokenKind::RawStr, "br##\"b \"# raw\"##".into()));
        assert_eq!(t3[1], (TokenKind::Word, "z".into()));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = kinds("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; let sp = ' '; }");
        let lifetimes: Vec<_> =
            toks.iter().filter(|(k, _)| *k == TokenKind::Lifetime).cloned().collect();
        assert_eq!(
            lifetimes,
            vec![(TokenKind::Lifetime, "'a".into()), (TokenKind::Lifetime, "'a".into())]
        );
        let chars: Vec<_> = toks.iter().filter(|(k, _)| *k == TokenKind::CharLit).collect();
        assert_eq!(chars.len(), 3);
    }

    #[test]
    fn doc_comment_hides_code() {
        let toks = kinds("/// let x = y.unwrap();\nfn real() {}");
        assert_eq!(toks[0].0, TokenKind::LineComment);
        assert!(!toks.iter().any(|(k, t)| *k == TokenKind::Word && t == "unwrap"));
    }

    #[test]
    fn lines_are_tracked() {
        let src = "a\nbb /* x\ny */ c\n'z'";
        let toks = lex(src);
        let lines: Vec<(String, u32)> =
            toks.iter().map(|t| (t.text(src).to_string(), t.line)).collect();
        assert_eq!(
            lines,
            vec![
                ("a".to_string(), 1),
                ("bb".to_string(), 2),
                ("/* x\ny */".to_string(), 2),
                ("c".to_string(), 3),
                ("'z'".to_string(), 4),
            ]
        );
    }

    #[test]
    fn unterminated_inputs_do_not_panic() {
        for src in ["\"abc", "/* never closed", "r#\"open", "'", "b'"] {
            let toks = lex(src);
            assert!(!toks.is_empty());
            assert_eq!(toks.last().unwrap().end, src.len());
        }
    }

    #[test]
    fn multibyte_chars_in_strings_and_idents() {
        let src = "let héllo = \"wörld ∀\"; // ünïcode";
        let toks = lex(src);
        // Spans must lie on char boundaries so text() never panics.
        for t in &toks {
            let _ = t.text(src);
        }
        assert_eq!(toks.last().unwrap().kind, TokenKind::LineComment);
    }
}

//! CLI for the workspace invariant checker.
//!
//! ```text
//! pscc-analyze                  report every finding (baselined included)
//! pscc-analyze --check          gate: diff findings against the baseline
//! pscc-analyze --write-baseline regenerate analyze-baseline.json
//! pscc-analyze --root <dir>     scan a different workspace root
//! ```
//!
//! `--check` exits non-zero on *any* drift from `analyze-baseline.json`:
//! new violations, and also formerly-baselined violations that no longer
//! fire (the baseline must then be regenerated, so frozen debt can only
//! shrink). This is the required CI gate.

use pscc_analyze::baseline::{diff, Baseline};
use pscc_analyze::{analyze_workspace, BASELINE_FILE};
use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    root: PathBuf,
    check: bool,
    write_baseline: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args { root: PathBuf::from("."), check: false, write_baseline: false };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--check" => args.check = true,
            "--write-baseline" => args.write_baseline = true,
            "--root" => {
                args.root = PathBuf::from(
                    it.next().ok_or_else(|| "--root needs a directory argument".to_string())?,
                );
            }
            "--help" | "-h" => {
                return Err(
                    "usage: pscc-analyze [--check | --write-baseline] [--root <dir>]".to_string()
                )
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
    }
    if args.check && args.write_baseline {
        return Err("--check and --write-baseline are mutually exclusive".to_string());
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let analysis = match analyze_workspace(&args.root) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("pscc-analyze: scanning {}: {e}", args.root.display());
            return ExitCode::from(2);
        }
    };

    if args.write_baseline {
        let base = Baseline::from_findings(&analysis.findings);
        let path = args.root.join(BASELINE_FILE);
        if let Err(e) = std::fs::write(&path, base.to_json()) {
            eprintln!("pscc-analyze: writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "pscc-analyze: wrote {} ({} finding(s) across {} file(s) scanned)",
            path.display(),
            analysis.findings.len(),
            analysis.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    if !args.check {
        // Report mode: list everything, never fail.
        for f in &analysis.findings {
            println!("{f}");
        }
        println!(
            "pscc-analyze: {} finding(s) across {} file(s) scanned",
            analysis.findings.len(),
            analysis.files_scanned
        );
        return ExitCode::SUCCESS;
    }

    // --check: diff against the committed baseline.
    let baseline_path = args.root.join(BASELINE_FILE);
    let baseline = match std::fs::read_to_string(&baseline_path) {
        Ok(text) => match Baseline::from_json(&text) {
            Ok(b) => b,
            Err(e) => {
                eprintln!("pscc-analyze: {}: {e}", baseline_path.display());
                return ExitCode::from(2);
            }
        },
        Err(e) => {
            eprintln!(
                "pscc-analyze: reading {}: {e} (run --write-baseline to create it)",
                baseline_path.display()
            );
            return ExitCode::from(2);
        }
    };

    let discrepancies = diff(&analysis.findings, &baseline);
    if discrepancies.is_empty() {
        println!(
            "pscc-analyze: clean — {} file(s) scanned, {} baselined finding(s) frozen",
            analysis.files_scanned,
            baseline.total()
        );
        return ExitCode::SUCCESS;
    }

    for d in &discrepancies {
        if d.found > d.baselined {
            eprintln!(
                "{}: [{}] {} violation(s), {} baselined — new violations:",
                d.file, d.rule, d.found, d.baselined
            );
            for f in analysis.findings.iter().filter(|f| f.file == d.file && f.rule == d.rule) {
                eprintln!("  {f}");
            }
        } else {
            eprintln!(
                "{}: [{}] {} violation(s), {} baselined — debt shrank; run \
                 `cargo run -p pscc-analyze -- --write-baseline` to ratchet the baseline down",
                d.file, d.rule, d.found, d.baselined
            );
        }
    }
    eprintln!(
        "pscc-analyze: FAILED — {} (file, rule) pair(s) drifted from the baseline",
        discrepancies.len()
    );
    ExitCode::FAILURE
}

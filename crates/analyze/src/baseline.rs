//! The committed findings baseline: pre-existing debt, visible but frozen.
//!
//! `analyze-baseline.json` at the workspace root records, per `(file,
//! rule)` pair, how many violations are grandfathered in. [`diff`]
//! compares a fresh run against it:
//!
//! * **more** findings than baselined → *new* violations, check fails;
//! * **fewer** findings than baselined → debt shrank, and the check also
//!   fails until the baseline is regenerated (`--write-baseline`), so the
//!   recorded debt can only ratchet downward;
//! * equal → the findings are suppressed.
//!
//! Entries are keyed by file and rule — not line — so unrelated edits
//! shifting line numbers don't churn the baseline. The JSON is written
//! and parsed by hand (this crate takes no dependencies, crates.io or
//! otherwise, beyond std).

use crate::rules::{Finding, RuleId};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Grandfathered violation counts, keyed by `(file, rule)`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    /// `(workspace-relative file, rule) → frozen count`, ordered for
    /// stable serialization.
    pub entries: BTreeMap<(String, RuleId), u64>,
}

/// One `(file, rule)` discrepancy between a run and the baseline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Discrepancy {
    /// Workspace-relative file.
    pub file: String,
    /// Rule that fired.
    pub rule: RuleId,
    /// Violations found in this run.
    pub found: u64,
    /// Violations the baseline freezes.
    pub baselined: u64,
}

impl Baseline {
    /// Aggregates findings into a fresh baseline.
    pub fn from_findings(findings: &[Finding]) -> Baseline {
        let mut entries = BTreeMap::new();
        for f in findings {
            *entries.entry((f.file.clone(), f.rule)).or_insert(0) += 1;
        }
        Baseline { entries }
    }

    /// Serializes to the committed JSON form (sorted, trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"entries\": [");
        let mut first = true;
        for ((file, rule), count) in &self.entries {
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "\n    {{\"file\": {}, \"rule\": \"{}\", \"count\": {}}}",
                json_string(file),
                rule,
                count
            );
        }
        if !first {
            out.push_str("\n  ");
        }
        out.push_str("]\n}\n");
        out
    }

    /// Parses the JSON form. Returns a description of the first problem on
    /// malformed input (bad JSON, unknown rule, duplicate key).
    pub fn from_json(text: &str) -> Result<Baseline, String> {
        let value = Json::parse(text)?;
        let entries_value = value
            .get("entries")
            .ok_or_else(|| "missing top-level \"entries\" array".to_string())?;
        let Json::Array(items) = entries_value else {
            return Err("\"entries\" is not an array".to_string());
        };
        let mut entries = BTreeMap::new();
        for item in items {
            let file = item
                .get("file")
                .and_then(Json::as_str)
                .ok_or_else(|| "entry missing string \"file\"".to_string())?;
            let rule_name = item
                .get("rule")
                .and_then(Json::as_str)
                .ok_or_else(|| "entry missing string \"rule\"".to_string())?;
            let rule = RuleId::parse(rule_name)
                .ok_or_else(|| format!("unknown rule {rule_name:?} in baseline"))?;
            let count = item
                .get("count")
                .and_then(Json::as_u64)
                .ok_or_else(|| "entry missing numeric \"count\"".to_string())?;
            if entries.insert((file.to_string(), rule), count).is_some() {
                return Err(format!("duplicate baseline entry for {file}:{rule}"));
            }
        }
        Ok(Baseline { entries })
    }

    /// Total frozen violations.
    pub fn total(&self) -> u64 {
        self.entries.values().sum()
    }
}

/// Compares a run's findings against the baseline; empty result means the
/// check passes. Both directions are discrepancies (see module docs).
pub fn diff(findings: &[Finding], baseline: &Baseline) -> Vec<Discrepancy> {
    let actual = Baseline::from_findings(findings);
    let mut keys: Vec<&(String, RuleId)> =
        actual.entries.keys().chain(baseline.entries.keys()).collect();
    keys.sort();
    keys.dedup();
    keys.into_iter()
        .filter_map(|key| {
            let found = actual.entries.get(key).copied().unwrap_or(0);
            let baselined = baseline.entries.get(key).copied().unwrap_or(0);
            (found != baselined).then(|| Discrepancy {
                file: key.0.clone(),
                rule: key.1,
                found,
                baselined,
            })
        })
        .collect()
}

/// Escapes `s` as a JSON string literal (quotes included).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

// ---- Minimal JSON value parser ------------------------------------------

/// A parsed JSON value — just enough structure for the baseline file.
#[derive(Clone, Debug, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Json>),
    Object(Vec<(String, Json)>),
}

impl Json {
    fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_whitespace()) {
            self.pos += 1;
        }
    }

    fn expect_byte(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(b) if b.is_ascii_digit() || *b == b'-' => self.number(),
            _ => Err(format!("unexpected byte at {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .map(Json::Number)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect_byte(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied();
                    self.pos += 1;
                    match esc {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .and_then(|h| u32::from_str_radix(h, 16).ok())
                                .ok_or_else(|| format!("bad \\u escape at byte {}", self.pos))?;
                            self.pos += 4;
                            // Surrogates are not expected in baseline paths;
                            // map them to the replacement character.
                            out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                Some(_) => {
                    // Copy one UTF-8 character (1–4 bytes).
                    let start = self.pos;
                    self.pos += 1;
                    while self.bytes.get(self.pos).is_some_and(|b| b & 0xc0 == 0x80) {
                        self.pos += 1;
                    }
                    match std::str::from_utf8(&self.bytes[start..self.pos]) {
                        Ok(s) => out.push_str(s),
                        Err(_) => return Err(format!("invalid UTF-8 at byte {start}")),
                    }
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect_byte(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect_byte(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect_byte(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn finding(file: &str, line: u32, rule: RuleId) -> Finding {
        Finding { file: file.to_string(), line, rule, message: "m".to_string() }
    }

    #[test]
    fn json_roundtrip() {
        let findings = vec![
            finding("a/b.rs", 3, RuleId::Panic),
            finding("a/b.rs", 9, RuleId::Panic),
            finding("c.rs", 1, RuleId::Logging),
        ];
        let base = Baseline::from_findings(&findings);
        let json = base.to_json();
        let back = Baseline::from_json(&json).expect("roundtrip parse");
        assert_eq!(base, back);
        assert_eq!(back.total(), 3);
        assert_eq!(back.entries[&("a/b.rs".to_string(), RuleId::Panic)], 2);
    }

    #[test]
    fn empty_baseline_roundtrip() {
        let base = Baseline::default();
        let back = Baseline::from_json(&base.to_json()).expect("empty parse");
        assert_eq!(base, back);
    }

    #[test]
    fn diff_flags_new_and_fixed() {
        let baselined = vec![finding("a.rs", 1, RuleId::Panic), finding("a.rs", 2, RuleId::Panic)];
        let base = Baseline::from_findings(&baselined);
        // Same count: clean.
        assert!(diff(&baselined, &base).is_empty());
        // One extra: new violation.
        let mut more = baselined.clone();
        more.push(finding("a.rs", 7, RuleId::Panic));
        let d = diff(&more, &base);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].found, d[0].baselined), (3, 2));
        // One fewer: stale baseline (debt must ratchet down).
        let fewer = vec![finding("a.rs", 1, RuleId::Panic)];
        let d = diff(&fewer, &base);
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].found, d[0].baselined), (1, 2));
        // Different rule in a new file.
        let cross = vec![finding("b.rs", 1, RuleId::Logging)];
        let d = diff(&cross, &Baseline::default());
        assert_eq!(d.len(), 1);
        assert_eq!((d[0].found, d[0].baselined), (1, 0));
    }

    #[test]
    fn malformed_baselines_are_rejected() {
        for bad in [
            "",
            "{",
            "[]",
            "{\"entries\": 3}",
            "{\"entries\": [{\"file\": \"a\", \"rule\": \"no-such-rule\", \"count\": 1}]}",
            "{\"entries\": [{\"file\": \"a\", \"count\": 1}]}",
            "{\"entries\": [{\"file\": \"a\", \"rule\": \"panic\", \"count\": -2}]}",
            "{\"entries\": [{\"file\": \"a\", \"rule\": \"panic\", \"count\": 1}, \
              {\"file\": \"a\", \"rule\": \"panic\", \"count\": 2}]}",
        ] {
            assert!(Baseline::from_json(bad).is_err(), "{bad:?}");
        }
    }

    #[test]
    fn json_string_escaping() {
        let mut entries = BTreeMap::new();
        entries.insert(("we\"ird\\path\n.rs".to_string(), RuleId::Panic), 1);
        let base = Baseline { entries };
        let back = Baseline::from_json(&base.to_json()).expect("escaped parse");
        assert_eq!(base, back);
    }
}

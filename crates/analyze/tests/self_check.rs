//! End-to-end checks for the analyzer: the workspace itself must be clean
//! against the committed baseline, deliberately injected violations of
//! every rule must be caught, and the lexer must tokenize arbitrary
//! byte-soup without panicking or losing a byte.

use pscc_analyze::baseline::{diff, Baseline};
use pscc_analyze::lexer::lex;
use pscc_analyze::rules::{check_file, FileClass, RuleId};
use pscc_analyze::{analyze_workspace, BASELINE_FILE};
use std::path::Path;

fn workspace_root() -> &'static Path {
    // crates/analyze -> crates -> workspace root
    Path::new(env!("CARGO_MANIFEST_DIR")).parent().unwrap().parent().unwrap()
}

/// The gate CI runs, as a test: the live workspace tree must match the
/// committed `analyze-baseline.json` exactly. Catches both fresh
/// violations and a stale (insufficiently ratcheted) baseline.
#[test]
fn workspace_matches_committed_baseline() {
    let root = workspace_root();
    let analysis = analyze_workspace(root).expect("scan workspace");
    assert!(analysis.files_scanned > 50, "scan looks truncated: {} files", analysis.files_scanned);
    let text = std::fs::read_to_string(root.join(BASELINE_FILE)).expect("committed baseline");
    let baseline = Baseline::from_json(&text).expect("baseline parses");
    let drift = diff(&analysis.findings, &baseline);
    assert!(
        drift.is_empty(),
        "workspace drifted from analyze-baseline.json:\n{}",
        analysis.findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

/// The logging baseline must stay empty: every library crate routes
/// diagnostics through `pscc_telemetry::log!`.
#[test]
fn logging_debt_is_zero() {
    let root = workspace_root();
    let analysis = analyze_workspace(root).expect("scan workspace");
    let logging: Vec<_> = analysis.findings.iter().filter(|f| f.rule == RuleId::Logging).collect();
    assert!(logging.is_empty(), "logging debt reappeared: {logging:?}");
}

/// Every `unsafe` in the workspace carries a SAFETY comment.
#[test]
fn unsafe_is_fully_documented() {
    let root = workspace_root();
    let analysis = analyze_workspace(root).expect("scan workspace");
    let undocumented: Vec<_> =
        analysis.findings.iter().filter(|f| f.rule == RuleId::SafetyComment).collect();
    assert!(undocumented.is_empty(), "undocumented unsafe: {undocumented:?}");
}

// ---- Injected violations: each rule must catch its own poison. ----------

fn rules_fired(src: &str) -> Vec<RuleId> {
    let mut rules: Vec<RuleId> = check_file("crates/x/src/lib.rs", src, FileClass::Library)
        .into_iter()
        .map(|f| f.rule)
        .collect();
    rules.dedup();
    rules
}

#[test]
fn injected_lock_order_violation_is_caught() {
    let src = r#"
fn bad(entry: &Entry) {
    let st = entry.state.lock().expect("entry lock");
    let up = entry.update.lock().expect("update lock");
    drop(up);
    drop(st);
}
"#;
    assert!(rules_fired(src).contains(&RuleId::LockOrder), "state-before-update not caught");
}

#[test]
fn injected_rebuild_under_state_guard_is_caught() {
    let src = r#"
fn bad(entry: &Entry) {
    let st = entry.state.lock().expect("entry lock");
    let index = Index::build_with_config(&st.graph, &entry.config);
    drop(st);
}
"#;
    assert!(rules_fired(src).contains(&RuleId::LockOrder), "build under state guard not caught");
}

#[test]
fn injected_undocumented_unsafe_is_caught() {
    let src = "fn f(p: *mut u32) { unsafe { *p = 1 }; }\n";
    assert!(rules_fired(src).contains(&RuleId::SafetyComment));
    let ok = "fn f(p: *mut u32) {\n    // SAFETY: p is valid and exclusive.\n    unsafe { *p = 1 };\n}\n";
    assert!(!rules_fired(ok).contains(&RuleId::SafetyComment));
}

#[test]
fn injected_seqcst_is_caught() {
    let src = "fn f(a: &AtomicU64) { a.store(1, Ordering::SeqCst); }\n";
    assert!(rules_fired(src).contains(&RuleId::AtomicOrdering));
    let ok = "fn f(a: &AtomicU64) { a.store(1, Ordering::Release); }\n";
    assert!(!rules_fired(ok).contains(&RuleId::AtomicOrdering));
}

#[test]
fn injected_panic_is_caught() {
    assert!(rules_fired("fn f(x: Option<u32>) -> u32 { x.unwrap() }\n").contains(&RuleId::Panic));
    assert!(rules_fired("fn f() { panic!(\"boom\"); }\n").contains(&RuleId::Panic));
    // The poisoned-lock idiom stays legal.
    assert!(!rules_fired("fn f(m: &Mutex<u32>) { m.lock().expect(\"m lock\"); }\n")
        .contains(&RuleId::Panic));
}

#[test]
fn injected_println_is_caught() {
    assert!(rules_fired("fn f() { println!(\"hi\"); }\n").contains(&RuleId::Logging));
    assert!(rules_fired("fn f() { dbg!(42); }\n").contains(&RuleId::Logging));
    // Harness files may print.
    let harness = check_file("tests/t.rs", "fn f() { println!(\"hi\"); }\n", FileClass::Harness);
    assert!(harness.iter().all(|f| f.rule != RuleId::Logging));
}

#[test]
fn allow_annotation_suppresses_exactly_one_line() {
    let src = r#"
fn f() {
    // analyze: allow(logging): test fixture
    println!("allowed");
    println!("not allowed");
}
"#;
    let findings = check_file("crates/x/src/lib.rs", src, FileClass::Library);
    let logging: Vec<_> = findings.iter().filter(|f| f.rule == RuleId::Logging).collect();
    assert_eq!(logging.len(), 1, "{logging:?}");
    assert_eq!(logging[0].line, 5);
}

// ---- Lexer property tests. ----------------------------------------------

use proptest::collection::vec;
use proptest::proptest;

/// Fragments chosen to collide lexer states: comment openers inside
/// strings, quotes inside comments, raw-string guards, lifetimes next to
/// char literals, multibyte text, and unterminated everything.
const FRAGMENTS: &[&str] = &[
    "fn ",
    "let x = 1;\n",
    "// line\n",
    "/* block */",
    "/*",
    "*/",
    "\n",
    "\"str\"",
    "\"",
    "\\\"",
    "r#\"raw\"#",
    "r#\"",
    "\"#",
    "b\"bytes\"",
    "'a",
    "'a,",
    "'x'",
    "'\\n'",
    "'",
    "ident",
    "_w0rd",
    "λµ→",
    "\"λ\"",
    "{",
    "}",
    "(",
    ")",
    ";",
    "unsafe",
    "lock()",
    "0x1f",
    "r",
    "#",
];

proptest! {
    #![proptest_config(proptest::ProptestConfig::with_cases(256))]

    /// Tokens must tile the input: in-bounds, ordered, non-overlapping,
    /// on char boundaries, and slicing back out of the source must
    /// reproduce each token verbatim. Holds for arbitrary fragment soup,
    /// including malformed/unterminated code.
    #[test]
    fn lexer_round_trips_arbitrary_soup(idxs in vec(0usize..FRAGMENTS.len(), 0..60)) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        let tokens = lex(&src);
        let mut prev_end = 0usize;
        let mut prev_line = 1u32;
        for t in &tokens {
            assert!(t.start >= prev_end, "overlapping tokens in {src:?}");
            assert!(t.end > t.start, "empty token in {src:?}");
            assert!(t.end <= src.len(), "token past EOF in {src:?}");
            // Spans must be valid char boundaries or .get() returns None.
            let text = src.get(t.start..t.end);
            assert!(text.is_some(), "token splits a char in {src:?}");
            assert_eq!(text.unwrap(), t.text(&src));
            assert!(t.line >= prev_line, "line numbers regressed in {src:?}");
            assert_eq!(
                t.line as usize,
                1 + src[..t.start].bytes().filter(|&b| b == b'\n').count(),
                "wrong line for token at {} in {src:?}",
                t.start
            );
            prev_end = t.end;
            prev_line = t.line;
        }
    }

    /// The rule engine must never panic on arbitrary soup either — it
    /// runs on every file of the tree, malformed or not.
    #[test]
    fn rules_never_panic_on_arbitrary_soup(idxs in vec(0usize..FRAGMENTS.len(), 0..40)) {
        let src: String = idxs.iter().map(|&i| FRAGMENTS[i]).collect();
        let _ = check_file("crates/x/src/lib.rs", &src, FileClass::Library);
        let _ = check_file("tests/x.rs", &src, FileClass::Harness);
    }
}

//! Offline stand-in for [criterion](https://crates.io/crates/criterion).
//!
//! Implements the subset of the criterion API that this workspace's benches
//! use — `Criterion::benchmark_group`, `sample_size` / `measurement_time` /
//! `warm_up_time`, `bench_function`, `Bencher::iter`, and the
//! `criterion_group!` / `criterion_main!` macros — with a simple
//! min/mean/max timing report instead of criterion's statistical analysis.
//! Benches using it must set `harness = false` (as with real criterion).

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver.
pub struct Criterion {
    warm_up: Duration,
    measurement: Duration,
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_secs(2),
            sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        println!("\n== {name} ==");
        BenchmarkGroup { parent: self, warm_up: None, measurement: None, sample_size: None }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, name: &str, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        let (warm_up, measurement, samples) = (self.warm_up, self.measurement, self.sample_size);
        run_one(name, warm_up, measurement, samples, f);
    }
}

/// A group of benchmarks sharing timing configuration.
pub struct BenchmarkGroup<'a> {
    parent: &'a Criterion,
    warm_up: Option<Duration>,
    measurement: Option<Duration>,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(1));
        self
    }

    /// Sets the total measurement budget per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement = Some(d);
        self
    }

    /// Sets the warm-up budget per benchmark.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.warm_up = Some(d);
        self
    }

    /// Times `f` under this group's configuration.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(
            name,
            self.warm_up.unwrap_or(self.parent.warm_up),
            self.measurement.unwrap_or(self.parent.measurement),
            self.sample_size.unwrap_or(self.parent.sample_size),
            f,
        );
        self
    }

    /// Ends the group (printing is incremental, so this is a no-op).
    pub fn finish(&mut self) {}
}

/// Passed to the closure of `bench_function`; call [`Bencher::iter`].
pub struct Bencher {
    /// Accumulated time of the routine under measurement.
    elapsed: Duration,
    /// Iterations to run per sample.
    iters: u64,
}

impl Bencher {
    /// Times `routine`, running it the harness-chosen number of times.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

fn run_one<F>(name: &str, warm_up: Duration, measurement: Duration, samples: usize, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    // Warm-up and per-iteration cost estimate.
    let mut iters_done: u64 = 0;
    let warm_start = Instant::now();
    while warm_start.elapsed() < warm_up || iters_done == 0 {
        let mut b = Bencher { elapsed: Duration::ZERO, iters: 1 };
        f(&mut b);
        iters_done += 1;
    }
    let per_iter = warm_start.elapsed().as_secs_f64() / iters_done as f64;

    // Choose iterations per sample so that all samples fit the budget.
    let budget_per_sample = measurement.as_secs_f64() / samples as f64;
    let iters = ((budget_per_sample / per_iter.max(1e-9)) as u64).clamp(1, 1_000_000);

    let mut times: Vec<f64> = Vec::with_capacity(samples);
    for _ in 0..samples {
        let mut b = Bencher { elapsed: Duration::ZERO, iters };
        f(&mut b);
        times.push(b.elapsed.as_secs_f64() / iters as f64);
    }
    times.sort_by(|a, b| a.partial_cmp(b).expect("non-NaN timings"));
    let min = times[0];
    let max = times[times.len() - 1];
    let mean: f64 = times.iter().sum::<f64>() / times.len() as f64;
    println!(
        "{name:<28} [{} {} {}]  ({samples} samples x {iters} iters)",
        fmt_time(min),
        fmt_time(mean),
        fmt_time(max),
    );
}

fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.3}ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3}us", s * 1e6)
    } else {
        format!("{:.1}ns", s * 1e9)
    }
}

/// Declares a set of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion {
            warm_up: Duration::from_millis(1),
            measurement: Duration::from_millis(5),
            sample_size: 3,
        };
        let mut calls = 0u64;
        {
            let mut g = c.benchmark_group("unit");
            g.sample_size(3)
                .measurement_time(Duration::from_millis(5))
                .warm_up_time(Duration::from_millis(1));
            g.bench_function("counter", |b| {
                b.iter(|| {
                    calls += 1;
                    calls
                })
            });
            g.finish();
        }
        assert!(calls > 0);
    }

    #[test]
    fn fmt_time_units() {
        assert_eq!(fmt_time(2.0), "2.000s");
        assert_eq!(fmt_time(2e-3), "2.000ms");
        assert_eq!(fmt_time(2e-6), "2.000us");
        assert_eq!(fmt_time(2e-9), "2.0ns");
    }
}

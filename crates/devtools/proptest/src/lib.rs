//! Offline stand-in for [proptest](https://crates.io/crates/proptest).
//!
//! This workspace builds in environments with no network access, so the
//! real `proptest` cannot be fetched. This crate implements the subset of
//! its API that the workspace's property tests use — range/tuple/collection
//! strategies, `prop_map` / `prop_flat_map`, the [`proptest!`] macro, and
//! the `prop_assert*` family — on top of a deterministic SplitMix64
//! generator. There is no shrinking: a failing case prints its case number
//! and seed so it can be replayed (cases are a pure function of the test
//! name and case index).
//!
//! Case counts honour `PROPTEST_CASES` (an override) the way the real crate
//! honours its environment configuration.

use std::collections::HashSet;
use std::hash::Hash;
use std::ops::Range;

/// Deterministic generator state handed to strategies.
pub struct TestRng(u64);

impl TestRng {
    /// Creates a generator from a raw seed.
    pub fn new(seed: u64) -> Self {
        TestRng(seed)
    }

    /// Next raw 64-bit value (SplitMix64).
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        // Multiply-shift rejection-free mapping; bias is negligible for
        // test-data bounds (all far below 2^48).
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// A generator of values of one type. Mirrors `proptest::strategy::Strategy`
/// minus shrinking.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Feeds generated values into a strategy-producing `f` and draws from
    /// the result.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S, T, F> Strategy for FlatMap<S, F>
where
    S: Strategy,
    T: Strategy,
    F: Fn(S::Value) -> T,
{
    type Value = T::Value;
    fn generate(&self, rng: &mut TestRng) -> T::Value {
        (self.f)(self.inner.generate(rng)).generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, usize);

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.below(self.end - self.start)
    }
}

impl Strategy for Range<i32> {
    type Value = i32;
    fn generate(&self, rng: &mut TestRng) -> i32 {
        assert!(self.start < self.end, "empty strategy range");
        let span = (self.end as i64 - self.start as i64) as u64;
        (self.start as i64 + rng.below(span) as i64) as i32
    }
}

macro_rules! tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
}

/// Types with a canonical "any value" strategy (only what the tests need).
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The `proptest::prelude::any::<T>()` entry point.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::*;

    /// Strategy for `Vec<S::Value>` with length drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// Mirrors `proptest::collection::vec`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet<S::Value>` with size drawn from `size`.
    pub struct HashSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Mirrors `proptest::collection::hash_set`.
    pub fn hash_set<S>(element: S, size: Range<usize>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        HashSetStrategy { element, size }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Eq + Hash,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let want = self.size.generate(rng);
            let mut out = HashSet::with_capacity(want);
            // Bounded attempts: small element domains may not contain
            // `want` distinct values.
            let mut budget = want * 20 + 100;
            while out.len() < want && budget > 0 {
                out.insert(self.element.generate(rng));
                budget -= 1;
            }
            out
        }
    }
}

/// Run configuration for a [`proptest!`] block.
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases (overridable via `PROPTEST_CASES`).
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Support machinery used by the macro expansion; not part of the public
/// proptest API surface.
pub mod runner {
    use super::ProptestConfig;

    /// Effective case count: config, unless `PROPTEST_CASES` overrides it.
    pub fn case_count(config: &ProptestConfig) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(config.cases)
            .max(1)
    }

    /// Seed for one case of one property: a pure function of the property
    /// path and the case index, so failures replay exactly.
    pub fn case_seed(name: &str, case: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^ (case as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
    }

    /// Prints replay info if dropped while panicking.
    pub struct CaseGuard<'a> {
        /// Property path.
        pub name: &'a str,
        /// Case index.
        pub case: u32,
    }

    impl Drop for CaseGuard<'_> {
        fn drop(&mut self) {
            if std::thread::panicking() {
                eprintln!(
                    "proptest (offline shim): property `{}` failed at case {} (seed {:#x})",
                    self.name,
                    self.case,
                    case_seed(self.name, self.case)
                );
            }
        }
    }
}

/// The `proptest!` macro: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$attr])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let path = concat!(module_path!(), "::", stringify!($name));
                for case in 0..$crate::runner::case_count(&config) {
                    let _guard = $crate::runner::CaseGuard { name: path, case };
                    let mut rng =
                        $crate::TestRng::new($crate::runner::case_seed(path, case));
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                }
            }
        )*
    };
    ($($(#[$attr:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$attr])* fn $name($($arg in $strat),*) $body)*
        }
    };
}

/// `prop_assert!`: plain assertion (no shrinking to report).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// `prop_assert_eq!`: plain equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// `prop_assert_ne!`: plain inequality assertion.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// What `use proptest::prelude::*` brings in.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{any, Arbitrary, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = TestRng::new(1);
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u32..17), &mut rng);
            assert!((3..17).contains(&v));
            let w = Strategy::generate(&(5usize..6), &mut rng);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a: Vec<u64> = {
            let mut rng = TestRng::new(9);
            (0..10).map(|_| Strategy::generate(&(0u64..1000), &mut rng)).collect()
        };
        let b: Vec<u64> = {
            let mut rng = TestRng::new(9);
            (0..10).map(|_| Strategy::generate(&(0u64..1000), &mut rng)).collect()
        };
        assert_eq!(a, b);
    }

    #[test]
    fn collections_respect_sizes() {
        let mut rng = TestRng::new(2);
        let v = Strategy::generate(&collection::vec(0u32..50, 3..7), &mut rng);
        assert!((3..7).contains(&v.len()));
        let s = Strategy::generate(&collection::hash_set(0u32..1_000_000, 10..20), &mut rng);
        assert!((10..20).contains(&s.len()));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 0u32..100, pair in (0usize..5, any::<bool>())) {
            prop_assert!(x < 100);
            prop_assert!(pair.0 < 5);
        }
    }
}

//! Induced-subgraph views: run graph algorithms on a vertex subset
//! without materializing anything per-vertex for the rest of the graph's
//! vertex set.
//!
//! A [`SubgraphView`] maps a chosen vertex subset to dense local ids
//! `0..len` and can extract the induced subgraph (optionally with extra
//! arcs) as a standalone [`DiGraph`] whose vertex `i` is
//! `view.to_global(i)`. The incremental condensation repair in
//! `pscc-engine` uses this to run the full SCC machinery on just the
//! affected region of a condensation DAG instead of the whole graph.

use crate::csr::DiGraph;
use crate::{NONE_V, V};

/// A dense relabeling of a vertex subset of one digraph.
///
/// ```
/// use pscc_graph::{DiGraph, SubgraphView};
///
/// // 0 -> 1 -> 2 -> 3, plus 1 -> 3.
/// let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (1, 3)]);
/// let view = SubgraphView::new(&g, &[1, 2, 3]);
/// let sub = view.extract();
/// assert_eq!(sub.n(), 3);
/// assert_eq!(sub.m(), 3); // 1->2, 2->3, 1->3 survive; 0->1 is cut
/// assert_eq!(view.to_global(0), 1);
/// assert_eq!(view.local_of(0), None); // vertex 0 is outside the view
/// ```
pub struct SubgraphView<'g> {
    graph: &'g DiGraph,
    verts: Vec<V>,
    /// `local[global] == NONE_V` for vertices outside the view.
    local: Vec<V>,
}

impl<'g> SubgraphView<'g> {
    /// A view of `g` restricted to `vertices` (order defines local ids).
    ///
    /// Panics if a vertex is out of range or appears twice.
    pub fn new(g: &'g DiGraph, vertices: &[V]) -> Self {
        let mut local = vec![NONE_V; g.n()];
        for (i, &v) in vertices.iter().enumerate() {
            assert!((v as usize) < g.n(), "view vertex {v} out of range (n={})", g.n());
            assert_eq!(local[v as usize], NONE_V, "view vertex {v} listed twice");
            local[v as usize] = i as V;
        }
        SubgraphView { graph: g, verts: vertices.to_vec(), local }
    }

    /// Number of vertices in the view.
    pub fn len(&self) -> usize {
        self.verts.len()
    }

    /// True if the view is empty.
    pub fn is_empty(&self) -> bool {
        self.verts.is_empty()
    }

    /// The underlying graph.
    pub fn graph(&self) -> &DiGraph {
        self.graph
    }

    /// The global id of local vertex `i`.
    #[inline]
    pub fn to_global(&self, i: usize) -> V {
        self.verts[i]
    }

    /// The view's vertices, in local-id order.
    pub fn vertices(&self) -> &[V] {
        &self.verts
    }

    /// The local id of global vertex `v`, if it is in the view.
    #[inline]
    pub fn local_of(&self, v: V) -> Option<V> {
        match self.local[v as usize] {
            NONE_V => None,
            l => Some(l),
        }
    }

    /// Materializes the induced subgraph: every edge of the base graph
    /// whose endpoints are both in the view, relabeled to local ids.
    pub fn extract(&self) -> DiGraph {
        self.extract_with_arcs(&[])
    }

    /// [`SubgraphView::extract`] plus extra arcs given with **global**
    /// endpoints (both must be in the view) — the repair path uses this to
    /// overlay freshly inserted condensation arcs on the affected region.
    pub fn extract_with_arcs(&self, extra: &[(V, V)]) -> DiGraph {
        let mut edges: Vec<(V, V)> = Vec::with_capacity(extra.len());
        for (i, &v) in self.verts.iter().enumerate() {
            for &w in self.graph.out_neighbors(v) {
                if let Some(lw) = self.local_of(w) {
                    edges.push((i as V, lw));
                }
            }
        }
        for &(u, v) in extra {
            // analyze: allow(panic): documented precondition — extra arcs must join view vertices
            let lu = self.local_of(u).unwrap_or_else(|| panic!("extra arc source {u} not in view"));
            // analyze: allow(panic): documented precondition — extra arcs must join view vertices
            let lv = self.local_of(v).unwrap_or_else(|| panic!("extra arc target {v} not in view"));
            edges.push((lu, lv));
        }
        DiGraph::from_edges(self.verts.len(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond_plus_tail() -> DiGraph {
        // 0 -> {1, 2} -> 3 -> 4, and 4 -> 3 (a 2-cycle at the end).
        DiGraph::from_edges(5, &[(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (4, 3)])
    }

    #[test]
    fn extract_keeps_only_inner_edges() {
        let g = diamond_plus_tail();
        let view = SubgraphView::new(&g, &[1, 3, 4]);
        let sub = view.extract();
        assert_eq!(sub.n(), 3);
        // 1->3, 3->4, 4->3 survive; edges touching 0 or 2 are cut.
        assert_eq!(sub.m(), 3);
        assert_eq!(sub.out_neighbors(0), &[1]); // local 0 = global 1
        assert_eq!(sub.out_neighbors(1), &[2]);
        assert_eq!(sub.out_neighbors(2), &[1]);
    }

    #[test]
    fn local_global_roundtrip() {
        let g = diamond_plus_tail();
        let view = SubgraphView::new(&g, &[4, 0, 2]);
        assert_eq!(view.len(), 3);
        for i in 0..view.len() {
            assert_eq!(view.local_of(view.to_global(i)), Some(i as V));
        }
        assert_eq!(view.local_of(1), None);
        assert_eq!(view.local_of(3), None);
        assert_eq!(view.vertices(), &[4, 0, 2]);
    }

    #[test]
    fn extra_arcs_are_overlaid() {
        let g = diamond_plus_tail();
        let view = SubgraphView::new(&g, &[1, 2]);
        // No induced edges between 1 and 2; overlay both directions.
        let sub = view.extract_with_arcs(&[(1, 2), (2, 1)]);
        assert_eq!(sub.m(), 2);
        assert_eq!(sub.out_neighbors(0), &[1]);
        assert_eq!(sub.out_neighbors(1), &[0]);
    }

    #[test]
    fn empty_view() {
        let g = diamond_plus_tail();
        let view = SubgraphView::new(&g, &[]);
        assert!(view.is_empty());
        let sub = view.extract();
        assert_eq!(sub.n(), 0);
        assert_eq!(sub.m(), 0);
    }

    #[test]
    #[should_panic(expected = "listed twice")]
    fn duplicate_vertex_rejected() {
        let g = diamond_plus_tail();
        let _ = SubgraphView::new(&g, &[1, 1]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_vertex_rejected() {
        let g = diamond_plus_tail();
        let _ = SubgraphView::new(&g, &[9]);
    }

    #[test]
    #[should_panic(expected = "not in view")]
    fn extra_arc_outside_view_rejected() {
        let g = diamond_plus_tail();
        let view = SubgraphView::new(&g, &[1, 2]);
        let _ = view.extract_with_arcs(&[(1, 3)]);
    }
}

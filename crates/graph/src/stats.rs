//! Structural statistics: degree summaries and BFS-based diameter
//! estimates (the `D` column of Tab. 2 is also "a lower bound of the
//! actual value" obtained the same way).

use std::collections::VecDeque;

use pscc_runtime::par_sum_u64;

use crate::csr::DiGraph;
use crate::V;

/// Summary statistics of a digraph.
#[derive(Clone, Debug, PartialEq)]
pub struct GraphStats {
    /// Vertex count.
    pub n: usize,
    /// Directed edge count.
    pub m: usize,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Maximum in-degree.
    pub max_in_degree: usize,
    /// Number of vertices with zero in-degree or zero out-degree (the
    /// vertices the SCC trimming pass removes immediately).
    pub trimmable: usize,
    /// Average degree m/n.
    pub avg_degree: f64,
}

/// Computes [`GraphStats`] for `g`.
pub fn graph_stats(g: &DiGraph) -> GraphStats {
    let n = g.n();
    let max_out = (0..n).map(|v| g.out_degree(v as V)).max().unwrap_or(0);
    let max_in = (0..n).map(|v| g.in_degree(v as V)).max().unwrap_or(0);
    let trimmable =
        par_sum_u64(n, |v| (g.out_degree(v as V) == 0 || g.in_degree(v as V) == 0) as u64) as usize;
    GraphStats {
        n,
        m: g.m(),
        max_out_degree: max_out,
        max_in_degree: max_in,
        trimmable,
        avg_degree: if n == 0 { 0.0 } else { g.m() as f64 / n as f64 },
    }
}

/// Sequential BFS returning (distance array with `u32::MAX` = unreached,
/// eccentricity, index of a farthest vertex). Treats the graph as
/// undirected if `undirected` is set (follows both edge directions).
pub fn bfs_ecc(g: &DiGraph, src: V, undirected: bool) -> (Vec<u32>, u32, V) {
    let n = g.n();
    let mut dist = vec![u32::MAX; n];
    let mut q = VecDeque::new();
    dist[src as usize] = 0;
    q.push_back(src);
    let (mut ecc, mut far) = (0u32, src);
    while let Some(v) = q.pop_front() {
        let d = dist[v as usize];
        if d > ecc {
            ecc = d;
            far = v;
        }
        let mut push = |u: V| {
            if dist[u as usize] == u32::MAX {
                dist[u as usize] = d + 1;
                q.push_back(u);
            }
        };
        for &u in g.out_neighbors(v) {
            push(u);
        }
        if undirected {
            for &u in g.in_neighbors(v) {
                push(u);
            }
        }
    }
    (dist, ecc, far)
}

/// Double-sweep lower bound on the (undirected) diameter: BFS from `src`,
/// then BFS again from the farthest vertex found.
pub fn estimate_diameter(g: &DiGraph, src: V) -> u32 {
    if g.n() == 0 {
        return 0;
    }
    let (_, _, far) = bfs_ecc(g, src, true);
    let (_, ecc2, _) = bfs_ecc(g, far, true);
    ecc2
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::simple::{cycle_digraph, path_digraph};

    #[test]
    fn stats_of_cycle() {
        let g = cycle_digraph(10);
        let s = graph_stats(&g);
        assert_eq!(s.n, 10);
        assert_eq!(s.m, 10);
        assert_eq!(s.max_out_degree, 1);
        assert_eq!(s.max_in_degree, 1);
        assert_eq!(s.trimmable, 0);
        assert!((s.avg_degree - 1.0).abs() < 1e-12);
    }

    #[test]
    fn stats_counts_trimmable() {
        let g = path_digraph(5);
        let s = graph_stats(&g);
        // Endpoints 0 (no in) and 4 (no out) are trimmable.
        assert_eq!(s.trimmable, 2);
    }

    #[test]
    fn bfs_distances_on_path() {
        let g = path_digraph(5);
        let (dist, ecc, far) = bfs_ecc(&g, 0, false);
        assert_eq!(dist, vec![0, 1, 2, 3, 4]);
        assert_eq!(ecc, 4);
        assert_eq!(far, 4);
    }

    #[test]
    fn bfs_directed_does_not_go_backwards() {
        let g = path_digraph(5);
        let (dist, _, _) = bfs_ecc(&g, 2, false);
        assert_eq!(dist[0], u32::MAX);
        assert_eq!(dist[4], 2);
    }

    #[test]
    fn bfs_undirected_goes_both_ways() {
        let g = path_digraph(5);
        let (dist, ecc, _) = bfs_ecc(&g, 2, true);
        assert_eq!(dist[0], 2);
        assert_eq!(dist[4], 2);
        assert_eq!(ecc, 2);
    }

    #[test]
    fn diameter_of_path_is_length() {
        let g = path_digraph(50);
        assert_eq!(estimate_diameter(&g, 25), 49);
    }

    #[test]
    fn diameter_of_cycle_is_half() {
        let g = cycle_digraph(20);
        assert_eq!(estimate_diameter(&g, 0), 10);
    }

    #[test]
    fn lattice_diameter_scales_like_sqrt_n() {
        // Torus w×w has undirected diameter w (w/2 + w/2); verify the
        // double sweep gets within 2× of it.
        let w = 16;
        let g = crate::generators::lattice::lattice_sqr(w, w, 1);
        let d = estimate_diameter(&g, 0);
        assert!(d as usize >= w / 2 && (d as usize) <= 2 * w, "d={d}");
    }
}

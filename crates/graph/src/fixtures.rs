//! Small hand-built graphs used across the workspace's tests, including the
//! 12-vertex example of Fig. 2 in the paper.

use crate::csr::DiGraph;
use crate::V;

/// Vertex names for [`fig2_graph`], in id order.
pub const FIG2_NAMES: [char; 12] = ['A', 'B', 'C', 'D', 'E', 'F', 'G', 'H', 'I', 'J', 'K', 'L'];

/// The example digraph of Fig. 2. Its SCCs are
/// `{A,B,C,K}`, `{D,E,F}`, `{G,H}`, `{I}`, `{J}`, `{L}`.
///
/// Edges are reconstructed from the figure's reachability facts:
/// everything is reachable from A; D, E, F, G, H, L are reachable *to* G;
/// the four non-trivial SCCs are cycles A→B→C→K→A, D→E→F→D, G→H→G.
pub fn fig2_graph() -> DiGraph {
    let (a, b, c, d, e, f, g, h, i, j, k, l) = (0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11);
    let edges: [(V, V); 15] = [
        // SCC {A,B,C,K}
        (a, b),
        (b, c),
        (c, k),
        (k, a),
        // SCC {D,E,F}
        (d, e),
        (e, f),
        (f, d),
        // SCC {G,H}
        (g, h),
        (h, g),
        // Cross edges wiring the condensation
        (a, d), // A's SCC reaches D's
        (b, j), // …and the singleton J
        (c, i), // …and the singleton I
        (f, g), // D's SCC reaches G's
        (l, g), // L reaches G's SCC (L reachable to G, not from A)
        (i, g), // I reaches G's SCC
    ];
    DiGraph::from_edges(12, &edges)
}

/// The expected SCC partition of [`fig2_graph`] as sorted groups of ids.
pub fn fig2_sccs() -> Vec<Vec<V>> {
    vec![
        vec![0, 1, 2, 10], // A B C K
        vec![3, 4, 5],     // D E F
        vec![6, 7],        // G H
        vec![8],           // I
        vec![9],           // J
        vec![11],          // L
    ]
}

/// Two disjoint 3-cycles plus an isolated vertex (7 vertices).
pub fn two_triangles_and_isolated() -> DiGraph {
    DiGraph::from_edges(7, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_graph_shape() {
        let g = fig2_graph();
        assert_eq!(g.n(), 12);
        assert_eq!(g.m(), 15);
    }

    #[test]
    fn fig2_partition_covers_all_vertices() {
        let sccs = fig2_sccs();
        let mut all: Vec<V> = sccs.into_iter().flatten().collect();
        all.sort_unstable();
        assert_eq!(all, (0..12).collect::<Vec<V>>());
    }

    #[test]
    fn isolated_vertex_has_no_edges() {
        let g = two_triangles_and_isolated();
        assert_eq!(g.out_degree(6), 0);
        assert_eq!(g.in_degree(6), 0);
    }
}

//! # pscc-graph
//!
//! Graph substrate for the parallel-scc workspace: compressed-sparse-row
//! digraphs and undirected graphs, parallel builders from edge lists,
//! text/binary I/O, structural statistics, and deterministic generators for
//! every graph family in the paper's evaluation (§6): social-style RMAT
//! graphs, web-style bowtie digraphs, k-NN graphs from synthetic point
//! clouds, and the four circular-lattice models SQR/REC/SQR'/REC'.

pub mod builder;
pub mod csr;
pub mod fixtures;
pub mod generators;
pub mod io;
pub mod stats;
pub mod view;
pub mod wcsr;

pub use builder::{build_csr, contracted_support, dedup_edges, merge_csr};
pub use csr::{Csr, DiGraph, UnGraph};
pub use view::SubgraphView;
pub use wcsr::WCsr;

/// Vertex identifier. Graphs are capped at `u32::MAX - 1` vertices;
/// `u32::MAX` serves as an EMPTY sentinel in the concurrent structures.
pub type V = u32;

/// Sentinel "no vertex" value.
pub const NONE_V: V = u32::MAX;

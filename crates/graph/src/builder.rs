//! Parallel CSR construction from edge lists, and parallel CSR *merging*
//! for batched edge updates.
//!
//! Edges are sorted (parallel), deduplicated, and packed into offsets +
//! targets. Self loops are preserved (SCC/reachability treat them as
//! no-ops); duplicates are removed so degree-based heuristics stay honest.
//!
//! [`merge_csr`] applies a sorted insertion/deletion delta to an existing
//! CSR with one counting pass and one filling pass, both parallel over
//! vertices — O(n/P + m/P + |delta|) instead of a from-scratch edge-list
//! rebuild.

use crate::csr::Csr;
use crate::V;

/// Sorts and removes duplicate edges (in place + truncate semantics).
pub fn dedup_edges(edges: &mut Vec<(V, V)>) {
    pscc_runtime::par_sort_unstable(&mut edges[..]);
    edges.dedup();
}

/// Builds an out-adjacency CSR with `n` vertices from `edges`.
///
/// Panics if an endpoint is out of range.
pub fn build_csr(n: usize, edges: &[(V, V)]) -> Csr {
    assert!(n < u32::MAX as usize, "graph too large for u32 vertex ids");
    let mut sorted: Vec<(V, V)> = edges.to_vec();
    dedup_edges(&mut sorted);
    if let Some(&(u, v)) = sorted.last() {
        assert!((u as usize) < n, "edge source {u} out of range (n={n})");
        let maxv = sorted.iter().map(|&(_, v)| v).max().unwrap_or(0);
        assert!((maxv as usize) < n, "edge target {maxv} out of range (n={n})");
        let _ = v;
    }
    let m = sorted.len();
    let mut offsets = vec![0u64; n + 1];
    // Count degrees sequentially over the sorted list (cheap, cache-friendly;
    // the sort dominates).
    for &(u, _) in &sorted {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let targets: Vec<V> = sorted.into_iter().map(|(_, v)| v).collect();
    debug_assert_eq!(offsets[n] as usize, m);
    Csr::from_parts(offsets, targets)
}

/// Merges a sorted, deduplicated edge delta into `base`, producing
/// `(base ∖ deletions) ∪ insertions`.
///
/// `insertions` and `deletions` must be sorted lexicographically with no
/// duplicates (use [`dedup_edges`]) and every endpoint must be `< base.n()`.
/// An edge present in both lists ends up **present**: insertions win.
///
/// Both passes (degree counting and adjacency filling) run in parallel
/// over vertices; each vertex merges its already-sorted adjacency list
/// with its slice of the delta, so the whole merge is
/// O(n/P + m/P + |delta|) and the output keeps the sorted,
/// duplicate-free adjacency invariant of [`build_csr`].
pub fn merge_csr(base: &Csr, insertions: &[(V, V)], deletions: &[(V, V)]) -> Csr {
    // Real asserts, not debug: unsorted input would make the binary
    // searches silently return wrong slices and corrupt the output. The
    // O(|delta|) scans are noise next to the merge itself.
    assert!(insertions.windows(2).all(|w| w[0] < w[1]), "insertions must be sorted+deduped");
    assert!(deletions.windows(2).all(|w| w[0] < w[1]), "deletions must be sorted+deduped");
    let n = base.n();
    let check = |edges: &[(V, V)]| {
        if let Some(&(u, v)) = edges.last() {
            assert!((u as usize) < n, "delta source {u} out of range (n={n})");
            let maxv = edges.iter().map(|&(_, v)| v).max().unwrap_or(0);
            assert!((maxv as usize) < n, "delta target {maxv} out of range (n={n})");
            let _ = v;
        }
    };
    check(insertions);
    check(deletions);

    // The delta slice owned by vertex u starts where edges with source >= u
    // do; found by binary search per vertex inside the parallel passes.
    fn slice_of(edges: &[(V, V)], u: V) -> &[(V, V)] {
        let lo = edges.partition_point(|&(s, _)| s < u);
        let hi = lo + edges[lo..].partition_point(|&(s, _)| s == u);
        &edges[lo..hi]
    }

    // Pass 1: new per-vertex degrees.
    let mut offsets = vec![0u64; n + 1];
    {
        let off = SendPtr(offsets.as_mut_ptr());
        pscc_runtime::par_range(0..n, 1024, &|r| {
            for u in r {
                let ins = slice_of(insertions, u as V);
                let del = slice_of(deletions, u as V);
                let mut count = 0u64;
                merge_adjacency(base.neighbors(u as V), ins, del, |_| count += 1);
                // SAFETY: offsets has n+1 slots and each task writes
                // only its own vertex slot u < n, exactly once.
                unsafe { *off.get().add(u) = count };
            }
        });
    }
    let m = pscc_runtime::scan_exclusive(&mut offsets[..n]) as usize;
    offsets[n] = m as u64;

    // Pass 2: fill each (disjoint) adjacency segment.
    let mut targets = vec![0 as V; m];
    {
        let tgt = SendPtr(targets.as_mut_ptr());
        let offsets = &offsets;
        pscc_runtime::par_range(0..n, 1024, &|r| {
            for u in r {
                let ins = slice_of(insertions, u as V);
                let del = slice_of(deletions, u as V);
                let mut pos = offsets[u] as usize;
                merge_adjacency(base.neighbors(u as V), ins, del, |v| {
                    // SAFETY: pos walks [offsets[u], offsets[u+1]),
                    // vertex u's exclusive segment of `targets`; segments
                    // tile the buffer without overlap and the scan sized
                    // it to exactly m entries.
                    unsafe { *tgt.get().add(pos) = v };
                    pos += 1;
                });
                debug_assert_eq!(pos, offsets[u + 1] as usize);
            }
        });
    }
    Csr::from_parts(offsets, targets)
}

/// Multiplicity of every *contracted* cross-label edge of `csr`: how many
/// edges `u → v` map to each ordered pair `(labels[u], labels[v])` with
/// distinct labels (same-label edges and self loops contribute nothing).
///
/// This is the arc-support table of a condensation: an arc of the
/// contracted graph exists iff its pair has a non-zero count, and deleting
/// a single edge can only remove the arc when its count reaches zero —
/// which is what lets batched updates ([`merge_csr`] /
/// `DiGraph::with_delta`) classify most deletions as metadata-only
/// decrements instead of structural repairs. Callers keep the table in
/// lockstep with the deltas they merge: `+1` per inserted cross-label
/// edge, `-1` per deleted one.
pub fn contracted_support(csr: &Csr, labels: &[u32]) -> std::collections::HashMap<(u32, u32), u64> {
    assert_eq!(labels.len(), csr.n(), "one label per vertex");
    let mut support = std::collections::HashMap::new();
    for (u, v) in csr.edges() {
        let (a, b) = (labels[u as usize], labels[v as usize]);
        if a != b {
            *support.entry((a, b)).or_insert(0u64) += 1;
        }
    }
    support
}

/// Emits the sorted union of `nb` and `ins` minus the members of `del`
/// that are not in `ins` (insertions win over deletions). All three
/// inputs are sorted and duplicate-free; each surviving target is emitted
/// exactly once, in ascending order.
fn merge_adjacency(nb: &[V], ins: &[(V, V)], del: &[(V, V)], mut emit: impl FnMut(V)) {
    let (mut i, mut j, mut k) = (0usize, 0usize, 0usize);
    while i < nb.len() || j < ins.len() {
        let take_ins = j < ins.len() && (i >= nb.len() || ins[j].1 <= nb[i]);
        let v = if take_ins { ins[j].1 } else { nb[i] };
        let also_in_base = i < nb.len() && nb[i] == v;
        if take_ins {
            j += 1;
        }
        if also_in_base {
            i += 1;
        }
        while k < del.len() && del[k].1 < v {
            k += 1;
        }
        let deleted = k < del.len() && del[k].1 == v;
        if take_ins || !deleted {
            emit(v);
        }
    }
}

/// Raw-pointer wrapper letting disjoint parallel writers share one buffer.
struct SendPtr<T>(*mut T);
// SAFETY: SendPtr is only handed to the two per-vertex passes above,
// where every task writes a disjoint slot or segment.
unsafe impl<T> Sync for SendPtr<T> {}
// SAFETY: see Sync above — plain memory, no thread affinity.
unsafe impl<T> Send for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let g = build_csr(3, &[(2, 0), (0, 2), (0, 1), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn dedup_removes_duplicates_only() {
        let mut edges = vec![(1, 2), (0, 1), (1, 2), (0, 1), (2, 0)];
        dedup_edges(&mut edges);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn empty_edge_list() {
        let g = build_csr(4, &[]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn zero_vertices() {
        let g = build_csr(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_source() {
        let _ = build_csr(2, &[(5, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_target() {
        let _ = build_csr(2, &[(0, 5)]);
    }

    #[test]
    fn isolated_vertices_have_empty_lists() {
        let g = build_csr(10, &[(0, 9)]);
        for v in 1..9 {
            assert!(g.neighbors(v).is_empty());
        }
        assert_eq!(g.neighbors(0), &[9]);
    }

    /// Oracle for merge_csr: rebuild from the merged edge list.
    fn merge_oracle(base: &Csr, ins: &[(V, V)], del: &[(V, V)]) -> Csr {
        let mut edges: Vec<(V, V)> = base.edges().filter(|e| !del.contains(e)).collect();
        edges.extend_from_slice(ins);
        dedup_edges(&mut edges);
        build_csr(base.n(), &edges)
    }

    #[test]
    fn merge_inserts_and_deletes() {
        let base = build_csr(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        let ins = vec![(0, 3), (3, 0)];
        let del = vec![(0, 2), (1, 3)];
        let merged = merge_csr(&base, &ins, &del);
        assert_eq!(merged, merge_oracle(&base, &ins, &del));
        assert_eq!(merged.neighbors(0), &[1, 3]);
        assert_eq!(merged.neighbors(1), &[] as &[V]);
        assert_eq!(merged.neighbors(3), &[0]);
    }

    #[test]
    fn merge_empty_delta_is_identity() {
        let base = build_csr(5, &[(0, 1), (2, 4), (4, 4)]);
        assert_eq!(merge_csr(&base, &[], &[]), base);
    }

    #[test]
    fn merge_insert_wins_over_delete() {
        let base = build_csr(3, &[(0, 1)]);
        // Same edge inserted and deleted: present afterwards.
        let merged = merge_csr(&base, &[(0, 1)], &[(0, 1)]);
        assert_eq!(merged.neighbors(0), &[1]);
        // And for an edge absent from the base, too.
        let merged = merge_csr(&base, &[(2, 0)], &[(2, 0)]);
        assert_eq!(merged.neighbors(2), &[0]);
    }

    #[test]
    fn merge_ignores_redundant_operations() {
        let base = build_csr(3, &[(0, 1), (1, 2)]);
        // Inserting a present edge and deleting an absent one: no change.
        let merged = merge_csr(&base, &[(0, 1)], &[(2, 0)]);
        assert_eq!(merged, base);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn merge_rejects_out_of_range_insertion() {
        let base = build_csr(2, &[(0, 1)]);
        let _ = merge_csr(&base, &[(0, 5)], &[]);
    }

    #[test]
    fn merge_random_matches_rebuild_oracle() {
        use pscc_runtime::SplitMix64;
        let n = 300usize;
        let mut rng = SplitMix64::new(0xde17a);
        let pair =
            |rng: &mut SplitMix64| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V);
        let mut base_edges: Vec<(V, V)> = (0..3000).map(|_| pair(&mut rng)).collect();
        dedup_edges(&mut base_edges);
        let base = build_csr(n, &base_edges);
        for _ in 0..10 {
            let mut ins: Vec<(V, V)> = (0..200).map(|_| pair(&mut rng)).collect();
            dedup_edges(&mut ins);
            // Deletions: a mix of real edges and absent ones.
            let mut del: Vec<(V, V)> = base_edges.iter().step_by(7).copied().collect();
            del.extend((0..50).map(|_| pair(&mut rng)));
            dedup_edges(&mut del);
            assert_eq!(merge_csr(&base, &ins, &del), merge_oracle(&base, &ins, &del));
        }
    }

    #[test]
    fn contracted_support_counts_cross_label_multiplicities() {
        // Labels: {0,1} -> 0, {2} -> 1, {3} -> 2.
        let labels = vec![0u32, 0, 1, 2];
        let g = build_csr(4, &[(0, 1), (1, 0), (0, 2), (1, 2), (2, 3), (3, 3)]);
        let support = contracted_support(&g, &labels);
        // Intra-label edges (0,1), (1,0) and the self loop (3,3) vanish;
        // the two parallel supports of (0 -> 1) are both counted.
        assert_eq!(support.len(), 2);
        assert_eq!(support[&(0, 1)], 2);
        assert_eq!(support[&(1, 2)], 1);
    }

    #[test]
    fn contracted_support_stays_in_lockstep_with_merge() {
        let labels = vec![0u32, 0, 1];
        let base = build_csr(3, &[(0, 2), (1, 2)]);
        let merged = merge_csr(&base, &[], &[(1, 2)]);
        let mut support = contracted_support(&base, &labels);
        // The caller-side decrement matches a recount over the merged CSR.
        *support.get_mut(&(0, 1)).unwrap() -= 1;
        assert_eq!(support, contracted_support(&merged, &labels));
    }

    #[test]
    fn large_random_build_consistent() {
        use pscc_runtime::hash64;
        let n = 1000usize;
        let edges: Vec<(V, V)> = (0..20_000u64)
            .map(|i| {
                let h = hash64(i);
                (((h >> 32) % n as u64) as V, (h % n as u64) as V)
            })
            .collect();
        let g = build_csr(n, &edges);
        // Every adjacency list is sorted and duplicate-free.
        for v in 0..n as V {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "v={v}");
        }
        // Edge count equals the number of distinct pairs.
        let mut uniq = edges.clone();
        dedup_edges(&mut uniq);
        assert_eq!(g.m(), uniq.len());
    }
}

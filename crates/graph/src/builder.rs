//! Parallel CSR construction from edge lists.
//!
//! Edges are sorted (parallel), deduplicated, and packed into offsets +
//! targets. Self loops are preserved (SCC/reachability treat them as
//! no-ops); duplicates are removed so degree-based heuristics stay honest.

use crate::csr::Csr;
use crate::V;

/// Sorts and removes duplicate edges (in place + truncate semantics).
pub fn dedup_edges(edges: &mut Vec<(V, V)>) {
    pscc_runtime::par_sort_unstable(&mut edges[..]);
    edges.dedup();
}

/// Builds an out-adjacency CSR with `n` vertices from `edges`.
///
/// Panics if an endpoint is out of range.
pub fn build_csr(n: usize, edges: &[(V, V)]) -> Csr {
    assert!(n < u32::MAX as usize, "graph too large for u32 vertex ids");
    let mut sorted: Vec<(V, V)> = edges.to_vec();
    dedup_edges(&mut sorted);
    if let Some(&(u, v)) = sorted.last() {
        assert!((u as usize) < n, "edge source {u} out of range (n={n})");
        let maxv = sorted.iter().map(|&(_, v)| v).max().unwrap_or(0);
        assert!((maxv as usize) < n, "edge target {maxv} out of range (n={n})");
        let _ = v;
    }
    let m = sorted.len();
    let mut offsets = vec![0u64; n + 1];
    // Count degrees sequentially over the sorted list (cheap, cache-friendly;
    // the sort dominates).
    for &(u, _) in &sorted {
        offsets[u as usize + 1] += 1;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let targets: Vec<V> = sorted.into_iter().map(|(_, v)| v).collect();
    debug_assert_eq!(offsets[n] as usize, m);
    Csr::from_parts(offsets, targets)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builds_sorted_adjacency() {
        let g = build_csr(3, &[(2, 0), (0, 2), (0, 1), (1, 0)]);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(1), &[0]);
        assert_eq!(g.neighbors(2), &[0]);
    }

    #[test]
    fn dedup_removes_duplicates_only() {
        let mut edges = vec![(1, 2), (0, 1), (1, 2), (0, 1), (2, 0)];
        dedup_edges(&mut edges);
        assert_eq!(edges, vec![(0, 1), (1, 2), (2, 0)]);
    }

    #[test]
    fn empty_edge_list() {
        let g = build_csr(4, &[]);
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 0);
    }

    #[test]
    fn zero_vertices() {
        let g = build_csr(0, &[]);
        assert_eq!(g.n(), 0);
        assert_eq!(g.m(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_source() {
        let _ = build_csr(2, &[(5, 0)]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_target() {
        let _ = build_csr(2, &[(0, 5)]);
    }

    #[test]
    fn isolated_vertices_have_empty_lists() {
        let g = build_csr(10, &[(0, 9)]);
        for v in 1..9 {
            assert!(g.neighbors(v).is_empty());
        }
        assert_eq!(g.neighbors(0), &[9]);
    }

    #[test]
    fn large_random_build_consistent() {
        use pscc_runtime::hash64;
        let n = 1000usize;
        let edges: Vec<(V, V)> = (0..20_000u64)
            .map(|i| {
                let h = hash64(i);
                (((h >> 32) % n as u64) as V, (h % n as u64) as V)
            })
            .collect();
        let g = build_csr(n, &edges);
        // Every adjacency list is sorted and duplicate-free.
        for v in 0..n as V {
            let ns = g.neighbors(v);
            assert!(ns.windows(2).all(|w| w[0] < w[1]), "v={v}");
        }
        // Edge count equals the number of distinct pairs.
        let mut uniq = edges.clone();
        dedup_edges(&mut uniq);
        assert_eq!(g.m(), uniq.len());
    }
}

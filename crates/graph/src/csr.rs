//! Compressed-sparse-row graph representations.
//!
//! [`Csr`] is a read-only adjacency structure: an offsets array of length
//! `n + 1` into a flat targets array. [`DiGraph`] pairs the out-adjacency
//! CSR with its transpose (in-adjacency), which backward reachability
//! searches (Alg. 1 line 7) and the dense mode of §4.2 both need.
//! [`UnGraph`] is a symmetric CSR for connectivity and LE-lists.

use crate::V;

/// A static compressed-sparse-row adjacency structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Csr {
    offsets: Box<[u64]>,
    targets: Box<[V]>,
}

impl Csr {
    /// Builds a CSR from raw parts. `offsets` must be monotone with
    /// `offsets[0] == 0` and `offsets[n] == targets.len()`.
    pub fn from_parts(offsets: Vec<u64>, targets: Vec<V>) -> Self {
        assert!(!offsets.is_empty(), "offsets must have length n+1");
        assert_eq!(offsets[0], 0);
        assert_eq!(offsets.last().copied(), Some(targets.len() as u64));
        debug_assert!(offsets.windows(2).all(|w| w[0] <= w[1]));
        Self { offsets: offsets.into_boxed_slice(), targets: targets.into_boxed_slice() }
    }

    /// An empty graph with `n` vertices and no edges.
    pub fn empty(n: usize) -> Self {
        Self::from_parts(vec![0; n + 1], Vec::new())
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of (directed) edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: V) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Neighbors of `v` as a slice.
    #[inline]
    pub fn neighbors(&self, v: V) -> &[V] {
        let v = v as usize;
        &self.targets[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Iterates all edges `(src, dst)` sequentially.
    pub fn edges(&self) -> impl Iterator<Item = (V, V)> + '_ {
        (0..self.n() as V).flat_map(move |v| self.neighbors(v).iter().map(move |&u| (v, u)))
    }

    /// The raw offsets array (length `n + 1`).
    #[inline]
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw targets array (length `m`).
    #[inline]
    pub fn targets(&self) -> &[V] {
        &self.targets
    }

    /// Builds the transpose (reversed-edge) CSR via parallel counting sort.
    pub fn transpose(&self) -> Csr {
        use pscc_runtime::{par_range, scan_exclusive};
        use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

        let n = self.n();
        let m = self.m();
        // Count in-degrees.
        let counts: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(0)).collect();
        par_range(0..n, 256, &|r| {
            for v in r {
                for &u in self.neighbors(v as V) {
                    counts[u as usize].fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        let mut offsets: Vec<u64> = counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        offsets.push(0);
        // Exclusive scan turns counts into offsets; the pushed 0 becomes m.
        let total = scan_exclusive(&mut offsets[..n]);
        debug_assert_eq!(total as usize, m);
        offsets[n] = total;

        // Scatter edges to their transposed positions.
        let cursors: Vec<AtomicU64> = offsets[..n].iter().map(|&o| AtomicU64::new(o)).collect();
        let targets: Vec<AtomicU32> = (0..m).map(|_| AtomicU32::new(0)).collect();
        par_range(0..n, 256, &|r| {
            for v in r {
                for &u in self.neighbors(v as V) {
                    let pos = cursors[u as usize].fetch_add(1, Ordering::Relaxed) as usize;
                    targets[pos].store(v as V, Ordering::Relaxed);
                }
            }
        });
        let mut targets: Vec<V> = targets.into_iter().map(|a| a.into_inner()).collect();
        // Sort each in-neighbor list for deterministic layout.
        let tptr = TargetsPtr(targets.as_mut_ptr());
        par_range(0..n, 64, &|r| {
            for v in r {
                let lo = offsets[v] as usize;
                let hi = offsets[v + 1] as usize;
                // SAFETY: [offsets[v], offsets[v+1]) is vertex v's
                // exclusive segment of `targets`; segments tile the
                // buffer without overlap, so each task sorts private
                // memory.
                unsafe {
                    let seg = std::slice::from_raw_parts_mut(tptr.get().add(lo), hi - lo);
                    seg.sort_unstable();
                }
            }
        });
        Csr::from_parts(offsets, targets)
    }
}

struct TargetsPtr(*mut V);
// SAFETY: TargetsPtr is only shared with the per-vertex segment sort
// above, where tasks mutate disjoint CSR segments.
unsafe impl Sync for TargetsPtr {}
// SAFETY: see Sync above — plain memory, no thread affinity.
unsafe impl Send for TargetsPtr {}
impl TargetsPtr {
    fn get(&self) -> *mut V {
        self.0
    }
}

/// A directed graph storing both the out-adjacency and in-adjacency CSR.
#[derive(Clone, Debug)]
pub struct DiGraph {
    out: Csr,
    inn: Csr,
}

impl DiGraph {
    /// Builds from an out-adjacency CSR, computing the transpose.
    pub fn from_out_csr(out: Csr) -> Self {
        let inn = out.transpose();
        Self { out, inn }
    }

    /// Builds from a (possibly duplicated, possibly self-looped) edge list.
    /// Duplicates are removed; self loops are kept (they are harmless for
    /// reachability and SCC).
    pub fn from_edges(n: usize, edges: &[(V, V)]) -> Self {
        Self::from_out_csr(crate::builder::build_csr(n, edges))
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.out.n()
    }

    /// Number of directed edges.
    #[inline]
    pub fn m(&self) -> usize {
        self.out.m()
    }

    /// Out-neighbors of `v`.
    #[inline]
    pub fn out_neighbors(&self, v: V) -> &[V] {
        self.out.neighbors(v)
    }

    /// In-neighbors of `v`.
    #[inline]
    pub fn in_neighbors(&self, v: V) -> &[V] {
        self.inn.neighbors(v)
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn out_degree(&self, v: V) -> usize {
        self.out.degree(v)
    }

    /// In-degree of `v`.
    #[inline]
    pub fn in_degree(&self, v: V) -> usize {
        self.inn.degree(v)
    }

    /// The out-adjacency CSR.
    #[inline]
    pub fn out_csr(&self) -> &Csr {
        &self.out
    }

    /// The in-adjacency (transpose) CSR.
    #[inline]
    pub fn in_csr(&self) -> &Csr {
        &self.inn
    }

    /// Neighbors in the given direction (`true` = forward/out).
    #[inline]
    pub fn neighbors_dir(&self, v: V, forward: bool) -> &[V] {
        if forward {
            self.out.neighbors(v)
        } else {
            self.inn.neighbors(v)
        }
    }

    /// The CSR for a search direction (`true` = forward/out).
    #[inline]
    pub fn csr_dir(&self, forward: bool) -> &Csr {
        if forward {
            &self.out
        } else {
            &self.inn
        }
    }

    /// Returns the same graph with every edge reversed (swaps the two CSRs —
    /// O(1)).
    pub fn reversed(self) -> Self {
        Self { out: self.inn, inn: self.out }
    }

    /// Applies a batched edge update, producing
    /// `(self ∖ deletions) ∪ insertions` over the same vertex set.
    ///
    /// The inputs need not be sorted or duplicate-free; an edge appearing
    /// in both lists ends up **present** (insertions win). Inserting an
    /// edge that already exists or deleting one that doesn't is a no-op.
    /// Both adjacency structures are updated by a parallel per-vertex merge
    /// ([`crate::builder::merge_csr`]) — O(n/P + m/P + |delta| log |delta|)
    /// — rather than a from-scratch edge-list rebuild.
    ///
    /// Panics if an endpoint is `>= self.n()`, matching [`DiGraph::from_edges`].
    pub fn with_delta(&self, insertions: &[(V, V)], deletions: &[(V, V)]) -> DiGraph {
        let mut ins = insertions.to_vec();
        let mut del = deletions.to_vec();
        crate::builder::dedup_edges(&mut ins);
        crate::builder::dedup_edges(&mut del);
        let out = crate::builder::merge_csr(&self.out, &ins, &del);
        // The transpose is merged directly with the reversed delta instead
        // of being recomputed from the merged out-CSR.
        let reverse = |edges: &mut Vec<(V, V)>| {
            for e in edges.iter_mut() {
                *e = (e.1, e.0);
            }
            crate::builder::dedup_edges(edges);
        };
        reverse(&mut ins);
        reverse(&mut del);
        let inn = crate::builder::merge_csr(&self.inn, &ins, &del);
        debug_assert_eq!(out.m(), inn.m());
        DiGraph { out, inn }
    }

    /// Symmetrizes into an undirected graph: keeps an edge `{u, v}` if
    /// either direction exists.
    pub fn symmetrize(&self) -> UnGraph {
        let mut edges: Vec<(V, V)> = Vec::with_capacity(self.m() * 2);
        for (u, v) in self.out.edges() {
            if u != v {
                edges.push((u, v));
                edges.push((v, u));
            }
        }
        UnGraph::from_undirected_edges(self.n(), &edges)
    }
}

/// An undirected graph stored as a symmetric CSR.
#[derive(Clone, Debug)]
pub struct UnGraph {
    adj: Csr,
}

impl UnGraph {
    /// Builds from a directed edge list that is already symmetric
    /// (contains both `(u,v)` and `(v,u)`); duplicates are removed.
    pub fn from_undirected_edges(n: usize, edges: &[(V, V)]) -> Self {
        // Ensure symmetry regardless of input discipline.
        let mut sym: Vec<(V, V)> = Vec::with_capacity(edges.len() * 2);
        for &(u, v) in edges {
            if u != v {
                sym.push((u, v));
                sym.push((v, u));
            }
        }
        Self { adj: crate::builder::build_csr(n, &sym) }
    }

    /// Wraps an existing symmetric CSR without checking symmetry.
    pub fn from_symmetric_csr(adj: Csr) -> Self {
        Self { adj }
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.adj.n()
    }

    /// Number of directed edge slots (twice the undirected edge count).
    #[inline]
    pub fn m(&self) -> usize {
        self.adj.m()
    }

    /// Neighbors of `v`.
    #[inline]
    pub fn neighbors(&self, v: V) -> &[V] {
        self.adj.neighbors(v)
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: V) -> usize {
        self.adj.degree(v)
    }

    /// The underlying CSR.
    #[inline]
    pub fn csr(&self) -> &Csr {
        &self.adj
    }

    /// Views this undirected graph as a digraph (each undirected edge is a
    /// pair of arcs; out and in adjacency coincide).
    pub fn as_digraph(&self) -> DiGraph {
        DiGraph { out: self.adj.clone(), inn: self.adj.clone() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Csr {
        // 0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3
        crate::builder::build_csr(4, &[(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn csr_basic_accessors() {
        let g = diamond();
        assert_eq!(g.n(), 4);
        assert_eq!(g.m(), 4);
        assert_eq!(g.neighbors(0), &[1, 2]);
        assert_eq!(g.neighbors(3), &[] as &[V]);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 0);
    }

    #[test]
    fn csr_empty_graph() {
        let g = Csr::empty(5);
        assert_eq!(g.n(), 5);
        assert_eq!(g.m(), 0);
        for v in 0..5 {
            assert!(g.neighbors(v).is_empty());
        }
    }

    #[test]
    fn csr_edges_iterator_roundtrip() {
        let g = diamond();
        let edges: Vec<(V, V)> = g.edges().collect();
        assert_eq!(edges, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn transpose_reverses_edges() {
        let g = diamond();
        let t = g.transpose();
        assert_eq!(t.neighbors(3), &[1, 2]);
        assert_eq!(t.neighbors(1), &[0]);
        assert_eq!(t.neighbors(0), &[] as &[V]);
        assert_eq!(t.m(), g.m());
    }

    #[test]
    fn transpose_twice_is_identity() {
        let g = crate::generators::random::gnm_digraph(200, 1000, 42);
        let tt = g.out_csr().transpose().transpose();
        assert_eq!(&tt, g.out_csr());
    }

    #[test]
    fn digraph_in_out_consistency() {
        let g = DiGraph::from_edges(4, &[(0, 1), (0, 2), (1, 3), (2, 3)]);
        assert_eq!(g.out_neighbors(0), &[1, 2]);
        assert_eq!(g.in_neighbors(3), &[1, 2]);
        assert_eq!(g.in_degree(0), 0);
        assert_eq!(g.out_degree(3), 0);
        // Each edge appears exactly once in each direction structure.
        assert_eq!(g.out_csr().m(), g.in_csr().m());
    }

    #[test]
    fn digraph_reversed_swaps() {
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let r = g.clone().reversed();
        assert_eq!(r.out_neighbors(2), &[1]);
        assert_eq!(r.out_neighbors(1), &[0]);
        assert_eq!(r.in_neighbors(0), &[1]);
    }

    #[test]
    fn digraph_dedups_edges() {
        let g = DiGraph::from_edges(3, &[(0, 1), (0, 1), (1, 2), (0, 1)]);
        assert_eq!(g.m(), 2);
    }

    #[test]
    fn digraph_keeps_self_loops_once() {
        let g = DiGraph::from_edges(2, &[(0, 0), (0, 0), (0, 1)]);
        assert_eq!(g.m(), 2);
        assert_eq!(g.out_neighbors(0), &[0, 1]);
        assert_eq!(g.in_neighbors(0), &[0]);
    }

    #[test]
    fn symmetrize_makes_both_directions() {
        let g = DiGraph::from_edges(3, &[(0, 1), (2, 1)]);
        let u = g.symmetrize();
        assert_eq!(u.neighbors(1), &[0, 2]);
        assert_eq!(u.neighbors(0), &[1]);
        assert_eq!(u.m(), 4);
    }

    #[test]
    fn symmetrize_drops_self_loops() {
        let g = DiGraph::from_edges(2, &[(0, 0), (0, 1)]);
        let u = g.symmetrize();
        assert_eq!(u.neighbors(0), &[1]);
    }

    #[test]
    fn ungraph_as_digraph_is_symmetric() {
        let u = UnGraph::from_undirected_edges(3, &[(0, 1), (1, 2)]);
        let d = u.as_digraph();
        assert_eq!(d.out_neighbors(1), d.in_neighbors(1));
        assert_eq!(d.m(), 4);
    }

    #[test]
    fn with_delta_matches_from_edges() {
        let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let upd = g.with_delta(&[(4, 0), (1, 3), (1, 2)], &[(2, 3), (0, 4)]);
        let want = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 0), (1, 3)]);
        assert_eq!(upd.out_csr(), want.out_csr());
        assert_eq!(upd.in_csr(), want.in_csr());
    }

    #[test]
    fn with_delta_transpose_stays_consistent() {
        let g = crate::generators::random::gnm_digraph(120, 400, 5);
        let ins: Vec<(V, V)> = (0..60).map(|i| (i as V, (i * 2 % 120) as V)).collect();
        let del: Vec<(V, V)> = g.out_csr().edges().step_by(5).collect();
        let upd = g.with_delta(&ins, &del);
        assert_eq!(&upd.out_csr().transpose(), upd.in_csr());
        assert_eq!(&upd.in_csr().transpose(), upd.out_csr());
    }

    #[test]
    fn with_delta_empty_is_identity() {
        let g = crate::generators::random::gnm_digraph(40, 100, 8);
        let upd = g.with_delta(&[], &[]);
        assert_eq!(upd.out_csr(), g.out_csr());
        assert_eq!(upd.in_csr(), g.in_csr());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn with_delta_rejects_out_of_range() {
        let g = DiGraph::from_edges(3, &[(0, 1)]);
        let _ = g.with_delta(&[], &[(0, 7)]);
    }

    #[test]
    #[should_panic]
    fn from_parts_rejects_bad_offsets() {
        let _ = Csr::from_parts(vec![0, 5], vec![1, 2]);
    }

    #[test]
    fn neighbors_dir_selects_direction() {
        let g = DiGraph::from_edges(2, &[(0, 1)]);
        assert_eq!(g.neighbors_dir(0, true), &[1]);
        assert_eq!(g.neighbors_dir(0, false), &[] as &[V]);
        assert_eq!(g.neighbors_dir(1, false), &[0]);
    }
}

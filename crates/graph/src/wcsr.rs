//! Weighted CSR graphs (for shortest-path algorithms).
//!
//! Same layout as [`crate::Csr`] with a parallel weights array; weights
//! are non-negative `u32`s (hop algorithms use weight 1 everywhere).

use crate::V;

/// A static weighted adjacency structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WCsr {
    offsets: Box<[u64]>,
    targets: Box<[V]>,
    weights: Box<[u32]>,
}

impl WCsr {
    /// Builds from a weighted edge list (duplicates keep the minimum
    /// weight; self loops dropped — they never improve a shortest path).
    pub fn from_edges(n: usize, edges: &[(V, V, u32)]) -> Self {
        let mut sorted: Vec<(V, V, u32)> =
            edges.iter().copied().filter(|&(u, v, _)| u != v).collect();
        sorted.sort_unstable();
        // Keep the lightest parallel edge.
        sorted.dedup_by(|a, b| {
            a.0 == b.0 && a.1 == b.1 && {
                b.2 = b.2.min(a.2);
                true
            }
        });
        let mut offsets = vec![0u64; n + 1];
        for &(u, _, _) in &sorted {
            assert!((u as usize) < n, "source out of range");
            offsets[u as usize + 1] += 1;
        }
        for i in 0..n {
            offsets[i + 1] += offsets[i];
        }
        let mut targets = Vec::with_capacity(sorted.len());
        let mut weights = Vec::with_capacity(sorted.len());
        for &(_, v, w) in &sorted {
            assert!((v as usize) < n, "target out of range");
            targets.push(v);
            weights.push(w);
        }
        Self {
            offsets: offsets.into_boxed_slice(),
            targets: targets.into_boxed_slice(),
            weights: weights.into_boxed_slice(),
        }
    }

    /// Undirected construction: every edge is added in both directions.
    pub fn from_undirected_edges(n: usize, edges: &[(V, V, u32)]) -> Self {
        let mut sym = Vec::with_capacity(edges.len() * 2);
        for &(u, v, w) in edges {
            sym.push((u, v, w));
            sym.push((v, u, w));
        }
        Self::from_edges(n, &sym)
    }

    /// Number of vertices.
    #[inline]
    pub fn n(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of arcs.
    #[inline]
    pub fn m(&self) -> usize {
        self.targets.len()
    }

    /// Out-degree of `v`.
    #[inline]
    pub fn degree(&self, v: V) -> usize {
        let v = v as usize;
        (self.offsets[v + 1] - self.offsets[v]) as usize
    }

    /// Weighted neighbours of `v` as parallel slices `(targets, weights)`.
    #[inline]
    pub fn neighbors(&self, v: V) -> (&[V], &[u32]) {
        let v = v as usize;
        let lo = self.offsets[v] as usize;
        let hi = self.offsets[v + 1] as usize;
        (&self.targets[lo..hi], &self.weights[lo..hi])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_construction() {
        let g = WCsr::from_edges(3, &[(0, 1, 5), (0, 2, 7), (1, 2, 1)]);
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 3);
        let (ts, ws) = g.neighbors(0);
        assert_eq!(ts, &[1, 2]);
        assert_eq!(ws, &[5, 7]);
    }

    #[test]
    fn parallel_edges_keep_min_weight() {
        let g = WCsr::from_edges(2, &[(0, 1, 9), (0, 1, 3), (0, 1, 6)]);
        assert_eq!(g.m(), 1);
        assert_eq!(g.neighbors(0).1, &[3]);
    }

    #[test]
    fn self_loops_dropped() {
        let g = WCsr::from_edges(2, &[(0, 0, 1), (0, 1, 2)]);
        assert_eq!(g.m(), 1);
    }

    #[test]
    fn undirected_symmetry() {
        let g = WCsr::from_undirected_edges(3, &[(0, 1, 4), (1, 2, 2)]);
        assert_eq!(g.neighbors(1).0, &[0, 2]);
        assert_eq!(g.neighbors(1).1, &[4, 2]);
        assert_eq!(g.m(), 4);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_target() {
        let _ = WCsr::from_edges(2, &[(0, 5, 1)]);
    }
}

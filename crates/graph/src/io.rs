//! Graph serialization: a human-readable edge-list text format and a
//! compact little-endian binary CSR format.
//!
//! Text format (one record per line):
//! ```text
//! # comments allowed
//! n m          <- header: vertex count, edge count
//! u v          <- one directed edge per line
//! ```

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::{Csr, DiGraph};
use crate::V;

/// Writes `g` as an edge-list text file.
pub fn write_edge_list<P: AsRef<Path>>(g: &DiGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# parallel-scc edge list")?;
    writeln!(w, "{} {}", g.n(), g.m())?;
    for (u, v) in g.out_csr().edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads an edge-list text file into a digraph.
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> io::Result<DiGraph> {
    let r = BufReader::new(File::open(path)?);
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(V, V)> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let a: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad record"))?;
        let b: u64 = it
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad record"))?;
        match header {
            None => {
                header = Some((a as usize, b as usize));
                edges.reserve(b as usize);
            }
            Some(_) => edges.push((a as V, b as V)),
        }
    }
    let (n, m) =
        header.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "missing header"))?;
    if edges.len() != m {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("header claims {m} edges, found {}", edges.len()),
        ));
    }
    Ok(DiGraph::from_edges(n, &edges))
}

const BIN_MAGIC: &[u8; 8] = b"PSCCCSR1";

/// Writes the out-CSR of `g` in the binary format.
pub fn write_binary<P: AsRef<Path>>(g: &DiGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    w.write_all(BIN_MAGIC)?;
    let csr = g.out_csr();
    w.write_all(&(csr.n() as u64).to_le_bytes())?;
    w.write_all(&(csr.m() as u64).to_le_bytes())?;
    for &o in csr.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in csr.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    w.flush()
}

/// Reads a binary CSR file into a digraph.
pub fn read_binary<P: AsRef<Path>>(path: P) -> io::Result<DiGraph> {
    let mut r = BufReader::new(File::open(path)?);
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return Err(io::Error::new(io::ErrorKind::InvalidData, "bad magic"));
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n = u64::from_le_bytes(buf8) as usize;
    r.read_exact(&mut buf8)?;
    let m = u64::from_le_bytes(buf8) as usize;
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut buf8)?;
        offsets.push(u64::from_le_bytes(buf8));
    }
    let mut targets = Vec::with_capacity(m);
    let mut buf4 = [0u8; 4];
    for _ in 0..m {
        r.read_exact(&mut buf4)?;
        targets.push(u32::from_le_bytes(buf4));
    }
    Ok(DiGraph::from_out_csr(Csr::from_parts(offsets, targets)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnm_digraph;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_io_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn text_roundtrip() {
        let g = gnm_digraph(50, 200, 1);
        let path = tmp("text");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let g = gnm_digraph(64, 500, 2);
        let path = tmp("bin");
        write_binary(&g, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_rejects_edge_count_mismatch() {
        let path = tmp("badcount");
        std::fs::write(&path, "2 3\n0 1\n").unwrap();
        assert!(read_edge_list(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "hello world\n").unwrap();
        assert!(read_edge_list(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let path = tmp("comments");
        std::fs::write(&path, "# hi\n\n3 2\n0 1\n# mid\n1 2\n").unwrap();
        let g = read_edge_list(&path).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTMAGIC rest").unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = DiGraph::from_edges(5, &[]);
        let path = tmp("empty");
        write_binary(&g, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(back.m(), 0);
        std::fs::remove_file(path).ok();
    }
}

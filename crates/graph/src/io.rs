//! Graph serialization: a human-readable edge-list text format and a
//! compact little-endian binary CSR format.
//!
//! Text format (one record per line):
//! ```text
//! # comments allowed
//! n m          <- header: vertex count, edge count
//! u v          <- one directed edge per line
//! ```

use std::fs::File;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::csr::{Csr, DiGraph};
use crate::V;

/// Writes `g` as an edge-list text file.
pub fn write_edge_list<P: AsRef<Path>>(g: &DiGraph, path: P) -> io::Result<()> {
    // Refuse to produce a file read_edge_list would reject as a hostile
    // header (see TEXT_VERTEX_FLOOR): every edge record occupies at least
    // 4 bytes, so 4 * m lower-bounds the file size the reader will see.
    let min_len = 4 * g.m() as u64;
    if g.n() as u64 > TEXT_VERTEX_FLOOR.max(min_len.saturating_mul(TEXT_VERTEX_BYTES_FACTOR)) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            format!(
                "graph with {} vertices and {} edges is too sparse for the \
                 text format's vertex cap; use write_binary",
                g.n(),
                g.m()
            ),
        ));
    }
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "# parallel-scc edge list")?;
    writeln!(w, "{} {}", g.n(), g.m())?;
    for (u, v) in g.out_csr().edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

fn invalid<T>(msg: impl Into<String>) -> io::Result<T> {
    Err(io::Error::new(io::ErrorKind::InvalidData, msg.into()))
}

/// Isolated vertices occupy no bytes in the text format, so the header's
/// vertex count cannot be bounded by record counting the way the edge
/// count is. Instead a hostile header is declared when `n` exceeds a
/// generous multiple of the file size (with a floor so small files
/// describing legitimately sparse graphs still roundtrip); graphs larger
/// or sparser than this belong in the binary format, whose header is
/// validated against the physical offset array. [`write_edge_list`]
/// enforces the same cap (conservatively, from the minimum possible
/// record size), so everything the writer produces the reader accepts.
pub const TEXT_VERTEX_FLOOR: u64 = 1 << 22;
/// See [`TEXT_VERTEX_FLOOR`].
pub const TEXT_VERTEX_BYTES_FACTOR: u64 = 16;

/// Reads an edge-list text file into a digraph.
///
/// Every record is validated against the header: endpoints must be
/// `< n`, the edge count must match `m`, and `n` must fit the `u32`
/// vertex-id space. Malformed input yields
/// [`io::ErrorKind::InvalidData`] — never a panic, and never an
/// allocation beyond a fixed multiple of the file size (edge storage is
/// bounded by the record count the file can hold, vertex storage by
/// [`TEXT_VERTEX_BYTES_FACTOR`] bytes-to-vertices with a
/// [`TEXT_VERTEX_FLOOR`] floor).
pub fn read_edge_list<P: AsRef<Path>>(path: P) -> io::Result<DiGraph> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let r = BufReader::new(file);
    let mut header: Option<(usize, usize)> = None;
    let mut edges: Vec<(V, V)> = Vec::new();
    for line in r.lines() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let mut field = || -> io::Result<u64> {
            it.next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad record"))
        };
        let (a, b) = (field()?, field()?);
        match header {
            None => {
                if a >= u32::MAX as u64 {
                    return invalid(format!("vertex count {a} exceeds the u32 id space"));
                }
                let vertex_cap =
                    TEXT_VERTEX_FLOOR.max(file_len.saturating_mul(TEXT_VERTEX_BYTES_FACTOR));
                if a > vertex_cap {
                    return invalid(format!(
                        "header claims {a} vertices, beyond what a {file_len}-byte \
                         edge list plausibly describes (cap {vertex_cap}); \
                         use the binary format for graphs this large"
                    ));
                }
                // Each edge record costs at least 4 bytes ("u v\n"), so a
                // header whose edge count outruns the file is corrupt;
                // rejecting it here also bounds the reserve below.
                if b > file_len / 4 + 1 {
                    return invalid(format!(
                        "header claims {b} edges but the file only holds {file_len} bytes"
                    ));
                }
                header = Some((a as usize, b as usize));
                edges.reserve(b as usize);
            }
            Some((n, _)) => {
                if a >= n as u64 || b >= n as u64 {
                    return invalid(format!("edge ({a}, {b}) out of range (n={n})"));
                }
                edges.push((a as V, b as V));
            }
        }
    }
    let (n, m) = match header {
        Some(h) => h,
        None => return invalid("missing header"),
    };
    if edges.len() != m {
        return invalid(format!("header claims {m} edges, found {}", edges.len()));
    }
    Ok(DiGraph::from_edges(n, &edges))
}

const BIN_MAGIC: &[u8; 8] = b"PSCCCSR1";

/// Streaming 64-bit FNV-1a checksum, used to frame binary graph payloads
/// (snapshots, write-ahead log records) so torn or corrupted writes are
/// detected on read. Not cryptographic: it guards against crashes and bit
/// rot, not adversaries.
///
/// ```
/// use pscc_graph::io::Checksum64;
///
/// let mut c = Checksum64::new();
/// c.update(b"hello ");
/// c.update(b"world");
/// let mut whole = Checksum64::new();
/// whole.update(b"hello world");
/// assert_eq!(c.finish(), whole.finish());
/// ```
#[derive(Clone, Debug)]
pub struct Checksum64(u64);

impl Default for Checksum64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Checksum64 {
    /// A fresh checksum (FNV-1a offset basis).
    pub fn new() -> Self {
        Checksum64(0xcbf2_9ce4_8422_2325)
    }

    /// Folds `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut h = self.0;
        for &b in bytes {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        self.0 = h;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u64 {
        self.0
    }

    /// One-shot checksum of a byte slice.
    pub fn of(bytes: &[u8]) -> u64 {
        let mut c = Checksum64::new();
        c.update(bytes);
        c.finish()
    }
}

/// Writes the out-CSR of `g` in the binary format to an arbitrary writer
/// (the embeddable form of [`write_binary`]; `pscc-store` frames it inside
/// checksummed snapshot files).
pub fn write_binary_to<W: Write>(g: &DiGraph, w: &mut W) -> io::Result<()> {
    w.write_all(BIN_MAGIC)?;
    let csr = g.out_csr();
    w.write_all(&(csr.n() as u64).to_le_bytes())?;
    w.write_all(&(csr.m() as u64).to_le_bytes())?;
    for &o in csr.offsets() {
        w.write_all(&o.to_le_bytes())?;
    }
    for &t in csr.targets() {
        w.write_all(&t.to_le_bytes())?;
    }
    Ok(())
}

/// Number of bytes [`write_binary_to`] emits for `g` (magic + header +
/// offsets + targets). Lets embedding formats reserve or validate space
/// without serializing twice.
pub fn binary_len(g: &DiGraph) -> u64 {
    24 + (g.n() as u64 + 1) * 8 + g.m() as u64 * 4
}

/// Writes the out-CSR of `g` in the binary format.
pub fn write_binary<P: AsRef<Path>>(g: &DiGraph, path: P) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    write_binary_to(g, &mut w)?;
    w.flush()
}

/// Reads a binary CSR file into a digraph.
///
/// The header is distrusted: the implied payload size is checked against
/// the actual file length *before* any allocation, offsets are checked
/// for `offsets[0] == 0`, monotonicity, and `offsets[n] == m`, and every
/// target must be `< n`. A corrupt or truncated file yields
/// [`io::ErrorKind::InvalidData`] (or the underlying read error) — never
/// a panic and never a speculative multi-GB allocation.
pub fn read_binary<P: AsRef<Path>>(path: P) -> io::Result<DiGraph> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut r = BufReader::new(file);
    read_binary_from(&mut r, file_len)
}

/// Reads one binary CSR graph from an arbitrary reader (the embeddable
/// form of [`read_binary`]; `pscc-store` uses it to parse snapshot files).
///
/// `limit` is the number of bytes the caller can vouch for (for a plain
/// file, its length): the distrusted header is validated against it before
/// any allocation, exactly like [`read_binary`]. Reads exactly the graph's
/// serialized bytes from `r`, leaving any trailing bytes unconsumed.
pub fn read_binary_from<R: Read>(r: &mut R, limit: u64) -> io::Result<DiGraph> {
    let file_len = limit;
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != BIN_MAGIC {
        return invalid("bad magic");
    }
    let mut buf8 = [0u8; 8];
    r.read_exact(&mut buf8)?;
    let n64 = u64::from_le_bytes(buf8);
    r.read_exact(&mut buf8)?;
    let m64 = u64::from_le_bytes(buf8);
    if n64 >= u32::MAX as u64 {
        return invalid(format!("vertex count {n64} exceeds the u32 id space"));
    }
    // Bound allocations by what the file can actually hold: the payload is
    // (n + 1) offsets of 8 bytes and m targets of 4 bytes after the
    // 24-byte preamble.
    let payload = (n64 + 1)
        .checked_mul(8)
        .and_then(|o| m64.checked_mul(4).and_then(|t| o.checked_add(t)))
        .and_then(|p| p.checked_add(24));
    match payload {
        Some(want) if want <= file_len => {}
        _ => {
            return invalid(format!(
                "header claims n={n64} m={m64} but the file only holds {file_len} bytes"
            ))
        }
    }
    let (n, m) = (n64 as usize, m64 as usize);
    let mut offsets = Vec::with_capacity(n + 1);
    for _ in 0..=n {
        r.read_exact(&mut buf8)?;
        offsets.push(u64::from_le_bytes(buf8));
    }
    if offsets[0] != 0 {
        return invalid("offsets[0] must be 0");
    }
    if let Some(w) = offsets.windows(2).position(|w| w[0] > w[1]) {
        return invalid(format!("offsets not monotone at vertex {w}"));
    }
    if offsets[n] != m64 {
        return invalid(format!("offsets[n] = {} disagrees with header m = {m}", offsets[n]));
    }
    let mut targets = Vec::with_capacity(m);
    let mut buf4 = [0u8; 4];
    for i in 0..m {
        r.read_exact(&mut buf4)?;
        let t = u32::from_le_bytes(buf4);
        if t as usize >= n {
            return invalid(format!("target {t} at position {i} out of range (n={n})"));
        }
        targets.push(t);
    }
    Ok(DiGraph::from_out_csr(Csr::from_parts(offsets, targets)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::random::gnm_digraph;

    fn tmp(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_io_test_{name}_{}", std::process::id()));
        p
    }

    #[test]
    fn text_roundtrip() {
        let g = gnm_digraph(50, 200, 1);
        let path = tmp("text");
        write_edge_list(&g, &path).unwrap();
        let back = read_edge_list(&path).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn binary_roundtrip() {
        let g = gnm_digraph(64, 500, 2);
        let path = tmp("bin");
        write_binary(&g, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_rejects_edge_count_mismatch() {
        let path = tmp("badcount");
        std::fs::write(&path, "2 3\n0 1\n").unwrap();
        assert!(read_edge_list(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_rejects_garbage() {
        let path = tmp("garbage");
        std::fs::write(&path, "hello world\n").unwrap();
        assert!(read_edge_list(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_skips_comments_and_blank_lines() {
        let path = tmp("comments");
        std::fs::write(&path, "# hi\n\n3 2\n0 1\n# mid\n1 2\n").unwrap();
        let g = read_edge_list(&path).unwrap();
        assert_eq!(g.n(), 3);
        assert_eq!(g.m(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_rejects_out_of_range_endpoints() {
        let path = tmp("oor");
        std::fs::write(&path, "3 2\n0 1\n1 7\n").unwrap();
        let err = read_edge_list(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::write(&path, "3 1\n9 0\n").unwrap();
        assert!(read_edge_list(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_rejects_absurd_edge_count_without_allocating() {
        let path = tmp("hugem");
        // Header promises 2^60 edges in a 30-byte file; must fail fast
        // instead of reserving a petabyte.
        std::fs::write(&path, format!("4 {}\n0 1\n", 1u64 << 60)).unwrap();
        let err = read_edge_list(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_rejects_oversized_vertex_count() {
        let path = tmp("hugen");
        std::fs::write(&path, format!("{} 0\n", u64::MAX)).unwrap();
        assert!(read_edge_list(&path).is_err());
        // A valid-u32 vertex count a tiny file can't plausibly describe is
        // rejected too — *before* the ~GB-scale CSR build it would imply.
        std::fs::write(&path, "1000000000 0\n").unwrap();
        let err = read_edge_list(&path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("binary format"), "{err}");
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_writer_refuses_graphs_the_reader_would_reject() {
        // 10M vertices, 2 edges: beyond the text vertex cap for any file
        // this graph can serialize to — the writer must say so up front.
        let g = DiGraph::from_edges(10_000_000, &[(0, 1), (5, 9_999_999)]);
        let path = tmp("toosparse");
        let err = write_edge_list(&g, &path).unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput);
        assert!(err.to_string().contains("write_binary"), "{err}");
        // The binary format handles it fine.
        write_binary(&g, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(back.n(), 10_000_000);
        assert_eq!(back.m(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn text_accepts_sparse_graphs_under_the_floor() {
        // Isolated vertices occupy no bytes: a small file may still declare
        // a vertex count far above its edge count and must roundtrip.
        let path = tmp("sparse");
        std::fs::write(&path, "1000000 1\n7 999999\n").unwrap();
        let g = read_edge_list(&path).unwrap();
        assert_eq!(g.n(), 1_000_000);
        assert_eq!(g.m(), 1);
        std::fs::remove_file(path).ok();
    }

    /// A valid binary file as raw bytes, for corruption tests.
    fn binary_bytes(g: &DiGraph, name: &str) -> Vec<u8> {
        let path = tmp(name);
        write_binary(g, &path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(path).ok();
        bytes
    }

    fn read_binary_bytes(bytes: &[u8], name: &str) -> io::Result<DiGraph> {
        let path = tmp(name);
        std::fs::write(&path, bytes).unwrap();
        let out = read_binary(&path);
        std::fs::remove_file(path).ok();
        out
    }

    #[test]
    fn binary_rejects_header_larger_than_file() {
        let g = gnm_digraph(20, 50, 3);
        let mut bytes = binary_bytes(&g, "hdrbig");
        // Claim 2^40 vertices: the reader must reject before allocating
        // the 8 TiB offsets array the header implies.
        bytes[8..16].copy_from_slice(&(1u64 << 40).to_le_bytes());
        let err = read_binary_bytes(&bytes, "hdrbig2").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        // Same for an absurd edge count.
        let mut bytes = binary_bytes(&g, "hdrbig3");
        bytes[16..24].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_binary_bytes(&bytes, "hdrbig4").is_err());
    }

    #[test]
    fn binary_rejects_truncation_at_every_length() {
        let g = gnm_digraph(12, 30, 4);
        let bytes = binary_bytes(&g, "trunc");
        for len in 0..bytes.len() {
            assert!(
                read_binary_bytes(&bytes[..len], "trunc_cut").is_err(),
                "truncation to {len} bytes must fail"
            );
        }
    }

    #[test]
    fn binary_rejects_non_monotone_offsets() {
        let g = gnm_digraph(10, 25, 5);
        let mut bytes = binary_bytes(&g, "mono");
        // offsets live at [24, 24 + (n+1)*8); swap two of them.
        let off = 24 + 2 * 8;
        bytes[off..off + 8].copy_from_slice(&u64::MAX.to_le_bytes());
        let err = read_binary_bytes(&bytes, "mono2").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("monotone"), "{err}");
    }

    #[test]
    fn binary_rejects_offset_sum_mismatch() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut bytes = binary_bytes(&g, "sum");
        // Zero the final offset so offsets[n] != m.
        let off = 24 + 4 * 8;
        bytes[off..off + 8].copy_from_slice(&0u64.to_le_bytes());
        assert!(read_binary_bytes(&bytes, "sum2").is_err());
    }

    #[test]
    fn binary_rejects_out_of_range_targets() {
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]);
        let mut bytes = binary_bytes(&g, "tgt");
        let targets_at = 24 + 5 * 8;
        bytes[targets_at..targets_at + 4].copy_from_slice(&99u32.to_le_bytes());
        let err = read_binary_bytes(&bytes, "tgt2").unwrap_err();
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("out of range"), "{err}");
    }

    #[test]
    fn binary_rejects_bad_magic() {
        let path = tmp("badmagic");
        std::fs::write(&path, b"NOTMAGIC rest").unwrap();
        assert!(read_binary(&path).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn streaming_binary_roundtrips_with_trailing_bytes() {
        // write_binary_to / read_binary_from embed a graph inside a larger
        // stream: trailing bytes must be left unconsumed.
        let g = gnm_digraph(40, 120, 9);
        let mut bytes = Vec::new();
        write_binary_to(&g, &mut bytes).unwrap();
        assert_eq!(bytes.len() as u64, binary_len(&g));
        bytes.extend_from_slice(b"TRAILER");
        let mut r = std::io::Cursor::new(&bytes[..]);
        let back = read_binary_from(&mut r, bytes.len() as u64).unwrap();
        assert_eq!(g.out_csr(), back.out_csr());
        let mut rest = Vec::new();
        r.read_to_end(&mut rest).unwrap();
        assert_eq!(rest, b"TRAILER");
    }

    #[test]
    fn checksum_is_streaming_and_order_sensitive() {
        assert_eq!(Checksum64::of(b"abc"), Checksum64::of(b"abc"));
        assert_ne!(Checksum64::of(b"abc"), Checksum64::of(b"acb"));
        assert_ne!(Checksum64::of(b""), 0);
        let mut c = Checksum64::new();
        c.update(b"ab");
        c.update(b"c");
        assert_eq!(c.finish(), Checksum64::of(b"abc"));
    }

    #[test]
    fn empty_graph_roundtrips() {
        let g = DiGraph::from_edges(5, &[]);
        let path = tmp("empty");
        write_binary(&g, &path).unwrap();
        let back = read_binary(&path).unwrap();
        assert_eq!(back.n(), 5);
        assert_eq!(back.m(), 0);
        std::fs::remove_file(path).ok();
    }
}

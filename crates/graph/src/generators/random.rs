//! Uniform random digraphs (G(n, m) and G(n, p) models) — used mainly by
//! tests and property-based checks.

use pscc_runtime::SplitMix64;

use crate::csr::DiGraph;
use crate::V;

/// Uniform digraph with `n` vertices and (up to) `m` distinct directed
/// edges chosen uniformly at random, self loops excluded.
pub fn gnm_digraph(n: usize, m: usize, seed: u64) -> DiGraph {
    assert!(n >= 1);
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::with_capacity(m);
    for _ in 0..m {
        let u = rng.next_below(n as u64) as V;
        let v = rng.next_below(n as u64) as V;
        if u != v {
            edges.push((u, v));
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// Erdős–Rényi digraph: each ordered pair `(u, v)`, `u != v`, gets an arc
/// independently with probability `p`. Quadratic — test-sized graphs only.
pub fn gnp_digraph(n: usize, p: f64, seed: u64) -> DiGraph {
    assert!(n >= 1 && (0.0..=1.0).contains(&p));
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::new();
    for u in 0..n as V {
        for v in 0..n as V {
            if u != v && rng.next_bool(p) {
                edges.push((u, v));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_size_bounds() {
        let g = gnm_digraph(100, 500, 1);
        assert_eq!(g.n(), 100);
        assert!(g.m() <= 500);
        assert!(g.m() > 400); // few duplicates/self-loops expected
    }

    #[test]
    fn gnm_no_self_loops() {
        let g = gnm_digraph(50, 1000, 2);
        for v in 0..g.n() as V {
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn gnp_density_tracks_p() {
        let n = 200;
        let p = 0.05;
        let g = gnp_digraph(n, p, 3);
        let expected = (n * (n - 1)) as f64 * p;
        let m = g.m() as f64;
        assert!(m > expected * 0.8 && m < expected * 1.2, "m={m} expected≈{expected}");
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp_digraph(20, 0.0, 1).m(), 0);
        assert_eq!(gnp_digraph(20, 1.0, 1).m(), 20 * 19);
    }

    #[test]
    fn deterministic_by_seed() {
        assert_eq!(gnm_digraph(60, 300, 9).out_csr(), gnm_digraph(60, 300, 9).out_csr());
    }
}

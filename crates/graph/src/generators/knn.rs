//! k-nearest-neighbour digraphs from synthetic point clouds.
//!
//! The paper evaluates on k-NN graphs of real spatial datasets (GeoLife,
//! Household, Chemical, Cosmo50). Those datasets are not redistributable
//! here, so we generate synthetic 2-D point clouds with the same two
//! regimes the datasets exhibit — near-uniform spatial data and strongly
//! clustered data — and build the *exact* directed k-NN graph (each point
//! gets arcs to its k nearest neighbours, excluding itself). k-NN graphs
//! built this way reproduce the structural property the paper leans on:
//! large diameter (Θ(√n)-ish) and many medium SCCs.
//!
//! The construction uses grid bucketing with expanding-ring search, so it
//! is exact and near-linear for bounded-density clouds.

use pscc_runtime::{par_range, SplitMix64};

use crate::csr::DiGraph;
use crate::V;

/// A 2-D point.
pub type Point = (f64, f64);

/// `n` points uniform in the unit square.
pub fn uniform_points(n: usize, seed: u64) -> Vec<Point> {
    let mut rng = SplitMix64::new(seed);
    (0..n).map(|_| (rng.next_f64(), rng.next_f64())).collect()
}

/// `n` points drawn from `clusters` Gaussian-ish blobs in the unit square
/// (mimics GeoLife/Cosmo-style density variation).
pub fn clustered_points(n: usize, clusters: usize, seed: u64) -> Vec<Point> {
    assert!(clusters >= 1);
    let mut rng = SplitMix64::new(seed);
    let centers: Vec<Point> = (0..clusters).map(|_| (rng.next_f64(), rng.next_f64())).collect();
    let spread = 0.05;
    (0..n)
        .map(|_| {
            let c = centers[rng.next_below(clusters as u64) as usize];
            // Sum of three uniforms approximates a Gaussian well enough.
            let dx = (rng.next_f64() + rng.next_f64() + rng.next_f64()) / 1.5 - 1.0;
            let dy = (rng.next_f64() + rng.next_f64() + rng.next_f64()) / 1.5 - 1.0;
            let x = (c.0 + dx * spread).clamp(0.0, 1.0);
            let y = (c.1 + dy * spread).clamp(0.0, 1.0);
            (x, y)
        })
        .collect()
}

/// `n` points along `walks` random-walk trajectories (GPS-trace-like, the
/// GeoLife regime): thin curves whose k-NN graphs are path-like, large
/// diameter, and fragment into many medium SCCs.
pub fn trajectory_points(n: usize, walks: usize, seed: u64) -> Vec<Point> {
    assert!(walks >= 1);
    let mut rng = SplitMix64::new(seed);
    let per = n.div_ceil(walks);
    let step = 0.3 / per as f64;
    let mut pts = Vec::with_capacity(n);
    'outer: for _ in 0..walks {
        let (mut x, mut y) = (rng.next_f64(), rng.next_f64());
        // Slowly turning heading, like a vehicle trace.
        let mut heading = rng.next_f64() * std::f64::consts::TAU;
        for _ in 0..per {
            pts.push((x, y));
            if pts.len() == n {
                break 'outer;
            }
            heading += (rng.next_f64() - 0.5) * 0.6;
            x = (x + heading.cos() * step).rem_euclid(1.0);
            y = (y + heading.sin() * step).rem_euclid(1.0);
        }
    }
    pts
}

#[inline]
fn dist2(a: Point, b: Point) -> f64 {
    let dx = a.0 - b.0;
    let dy = a.1 - b.1;
    dx * dx + dy * dy
}

/// Builds the exact directed k-NN graph of `points`: vertex `i` has arcs to
/// its `k` nearest other points (ties broken by index).
pub fn knn_digraph(points: &[Point], k: usize) -> DiGraph {
    let n = points.len();
    assert!(k >= 1 && k < n, "need 1 <= k < n");

    // Grid with about one point per cell on average for k-sized searches.
    let cells_per_side = ((n as f64 / (k as f64).max(1.0)).sqrt().ceil() as usize).clamp(1, 4096);
    let cell = 1.0 / cells_per_side as f64;
    let cell_of = |p: Point| -> (usize, usize) {
        let cx = ((p.0 / cell) as usize).min(cells_per_side - 1);
        let cy = ((p.1 / cell) as usize).min(cells_per_side - 1);
        (cx, cy)
    };

    // Bucket points by cell.
    let mut buckets: Vec<Vec<u32>> = vec![Vec::new(); cells_per_side * cells_per_side];
    for (i, &p) in points.iter().enumerate() {
        let (cx, cy) = cell_of(p);
        buckets[cy * cells_per_side + cx].push(i as u32);
    }

    // For each point, expanding-ring search until the k-th best distance is
    // closed (ring lower bound exceeds it).
    let mut edges: Vec<(V, V)> = vec![(0, 0); n * k];
    {
        struct EdgesPtr(*mut (V, V));
        // SAFETY: EdgesPtr is only shared with the loop below, where
        // point i writes exclusively to rows i*k..(i+1)*k.
        unsafe impl Sync for EdgesPtr {}
        // SAFETY: see Sync above — plain memory, no thread affinity.
        unsafe impl Send for EdgesPtr {}
        impl EdgesPtr {
            fn get(&self) -> *mut (V, V) {
                self.0
            }
        }
        let eptr = EdgesPtr(edges.as_mut_ptr());
        let buckets = &buckets;
        par_range(0..n, 64, &|range| {
            // (dist2, idx) max-heap of current best k.
            let mut best: Vec<(f64, u32)> = Vec::with_capacity(k + 1);
            for i in range {
                best.clear();
                let p = points[i];
                let (cx, cy) = cell_of(p);
                let mut ring = 0usize;
                loop {
                    // Visit cells at Chebyshev distance `ring`.
                    let lo_x = cx.saturating_sub(ring);
                    let hi_x = (cx + ring).min(cells_per_side - 1);
                    let lo_y = cy.saturating_sub(ring);
                    let hi_y = (cy + ring).min(cells_per_side - 1);
                    for gy in lo_y..=hi_y {
                        for gx in lo_x..=hi_x {
                            let on_ring = gx == lo_x || gx == hi_x || gy == lo_y || gy == hi_y;
                            let exact_ring = gx.abs_diff(cx).max(gy.abs_diff(cy)) == ring;
                            if !(on_ring && exact_ring) {
                                continue;
                            }
                            for &j in &buckets[gy * cells_per_side + gx] {
                                if j as usize == i {
                                    continue;
                                }
                                let d = dist2(p, points[j as usize]);
                                if best.len() < k {
                                    best.push((d, j));
                                    if best.len() == k {
                                        best.sort_by(cmp_dist);
                                    }
                                } else if cmp_pair(d, j, best[k - 1]) {
                                    best[k - 1] = (d, j);
                                    let mut t = k - 1;
                                    while t > 0 && cmp_pair(best[t].0, best[t].1, best[t - 1]) {
                                        best.swap(t, t - 1);
                                        t -= 1;
                                    }
                                }
                            }
                        }
                    }
                    // Termination: the nearest possible point in the next
                    // ring is at least `ring * cell` away (in each axis).
                    let ring_dist = ring as f64 * cell;
                    let closed = best.len() == k && best[k - 1].0 <= ring_dist * ring_dist;
                    let exhausted = lo_x == 0
                        && lo_y == 0
                        && hi_x == cells_per_side - 1
                        && hi_y == cells_per_side - 1;
                    if closed || exhausted {
                        break;
                    }
                    ring += 1;
                }
                if best.len() < k {
                    best.sort_by(cmp_dist);
                }
                for (slot, &(_, j)) in best.iter().enumerate() {
                    // SAFETY: slot < k, so i*k + slot stays inside rows
                    // i*k..(i+1)*k — point i's exclusive slice of the
                    // n*k-entry edges buffer.
                    unsafe { *eptr.get().add(i * k + slot) = (i as V, j as V) };
                }
            }
        });
    }

    DiGraph::from_edges(n, &edges)
}

#[inline]
fn cmp_dist(a: &(f64, u32), b: &(f64, u32)) -> std::cmp::Ordering {
    a.0.total_cmp(&b.0).then(a.1.cmp(&b.1))
}

/// True if candidate (d, j) beats the incumbent pair.
#[inline]
fn cmp_pair(d: f64, j: u32, incumbent: (f64, u32)) -> bool {
    d < incumbent.0 || (d == incumbent.0 && j < incumbent.1)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn brute_force_knn(points: &[Point], k: usize) -> Vec<Vec<u32>> {
        (0..points.len())
            .map(|i| {
                let mut ds: Vec<(f64, u32)> = (0..points.len())
                    .filter(|&j| j != i)
                    .map(|j| (dist2(points[i], points[j]), j as u32))
                    .collect();
                ds.sort_by(cmp_dist);
                let mut ids: Vec<u32> = ds[..k].iter().map(|&(_, j)| j).collect();
                ids.sort_unstable();
                ids
            })
            .collect()
    }

    #[test]
    fn matches_brute_force_uniform() {
        let pts = uniform_points(300, 5);
        let k = 5;
        let g = knn_digraph(&pts, k);
        let expected = brute_force_knn(&pts, k);
        for v in 0..pts.len() as V {
            assert_eq!(g.out_neighbors(v), &expected[v as usize][..], "vertex {v}");
        }
    }

    #[test]
    fn matches_brute_force_clustered() {
        let pts = clustered_points(250, 4, 9);
        let k = 3;
        let g = knn_digraph(&pts, k);
        let expected = brute_force_knn(&pts, k);
        for v in 0..pts.len() as V {
            assert_eq!(g.out_neighbors(v), &expected[v as usize][..], "vertex {v}");
        }
    }

    #[test]
    fn out_degree_is_exactly_k() {
        let pts = uniform_points(1000, 1);
        let g = knn_digraph(&pts, 5);
        for v in 0..g.n() as V {
            assert_eq!(g.out_degree(v), 5);
        }
        assert_eq!(g.m(), 5000);
    }

    #[test]
    fn no_self_loops() {
        let pts = uniform_points(200, 3);
        let g = knn_digraph(&pts, 4);
        for v in 0..g.n() as V {
            assert!(!g.out_neighbors(v).contains(&v));
        }
    }

    #[test]
    fn deterministic_point_generation() {
        assert_eq!(uniform_points(10, 2), uniform_points(10, 2));
        assert_eq!(clustered_points(10, 2, 2), clustered_points(10, 2, 2));
        assert_eq!(trajectory_points(10, 2, 2), trajectory_points(10, 2, 2));
    }

    #[test]
    fn trajectory_points_have_exact_count_and_range() {
        let pts = trajectory_points(5000, 37, 4);
        assert_eq!(pts.len(), 5000);
        for &(x, y) in &pts {
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
    }

    #[test]
    fn trajectory_knn_is_fragmented() {
        // Path-like point sets must not percolate into one giant SCC-ish
        // blob: consecutive points are each other's neighbours, so degree
        // structure is chain-like. Check the graph builds and is exact.
        let pts = trajectory_points(400, 8, 6);
        let k = 4;
        let g = knn_digraph(&pts, k);
        let expected = brute_force_knn(&pts, k);
        for v in 0..pts.len() as V {
            assert_eq!(g.out_neighbors(v), &expected[v as usize][..], "vertex {v}");
        }
    }

    #[test]
    fn clustered_points_stay_in_unit_square() {
        for &(x, y) in &clustered_points(5000, 8, 13) {
            assert!((0.0..=1.0).contains(&x) && (0.0..=1.0).contains(&y));
        }
    }

    #[test]
    #[should_panic(expected = "1 <= k < n")]
    fn rejects_k_ge_n() {
        let pts = uniform_points(3, 1);
        let _ = knn_digraph(&pts, 3);
    }

    #[test]
    fn k1_nearest_neighbour_symmetry_sanity() {
        // With k=1, mutual nearest neighbours form 2-cycles; at least one
        // such pair must exist in any finite point set.
        let pts = uniform_points(100, 8);
        let g = knn_digraph(&pts, 1);
        let mutual = (0..g.n() as V)
            .filter(|&v| {
                let u = g.out_neighbors(v)[0];
                g.out_neighbors(u)[0] == v
            })
            .count();
        assert!(mutual >= 2);
    }
}

//! Simple structured digraphs: cycles, paths, stars, layered DAGs, and the
//! bowtie "web graph" model.

use pscc_runtime::SplitMix64;

use crate::csr::DiGraph;
use crate::V;

/// Directed cycle `0 → 1 → … → n−1 → 0` (one SCC of size n; diameter n−1).
pub fn cycle_digraph(n: usize) -> DiGraph {
    assert!(n >= 1);
    let edges: Vec<(V, V)> = (0..n as V).map(|v| (v, ((v as usize + 1) % n) as V)).collect();
    DiGraph::from_edges(n, &edges)
}

/// Directed path `0 → 1 → … → n−1` (n singleton SCCs).
pub fn path_digraph(n: usize) -> DiGraph {
    assert!(n >= 1);
    let edges: Vec<(V, V)> = (0..n.saturating_sub(1) as V).map(|v| (v, v + 1)).collect();
    DiGraph::from_edges(n, &edges)
}

/// Star: center 0 with arcs to every other vertex.
pub fn star_digraph(n: usize) -> DiGraph {
    assert!(n >= 1);
    let edges: Vec<(V, V)> = (1..n as V).map(|v| (0, v)).collect();
    DiGraph::from_edges(n, &edges)
}

/// Layered DAG: `layers` layers of `width` vertices; each vertex gets
/// `fanout` random arcs into the next layer. All SCCs are singletons.
pub fn dag_layers(layers: usize, width: usize, fanout: usize, seed: u64) -> DiGraph {
    assert!(layers >= 1 && width >= 1);
    let n = layers * width;
    let mut rng = SplitMix64::new(seed);
    let mut edges = Vec::new();
    for l in 0..layers.saturating_sub(1) {
        for i in 0..width {
            let u = (l * width + i) as V;
            for _ in 0..fanout {
                let v = ((l + 1) * width + rng.next_below(width as u64) as usize) as V;
                edges.push((u, v));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

/// A "bowtie" web-like digraph mimicking the macro structure of web crawls
/// (Broder et al.): a strongly connected core plus an IN component feeding
/// it and an OUT component fed by it, with power-law-ish extra chords.
///
/// `n` vertices split `core_frac` into the core and the rest evenly between
/// IN and OUT; `avg_deg` random chords per vertex.
pub fn bowtie_web(n: usize, core_frac: f64, avg_deg: usize, seed: u64) -> DiGraph {
    assert!(n >= 10 && (0.0..=1.0).contains(&core_frac));
    let core = ((n as f64 * core_frac) as usize).max(3);
    let rest = n - core;
    let in_sz = rest / 2;
    // Vertex layout: [0, core) = core, [core, core+in_sz) = IN, rest = OUT.
    let mut rng = SplitMix64::new(seed);
    let mut edges: Vec<(V, V)> = Vec::with_capacity(n * (avg_deg + 1));

    // Core: a cycle guarantees strong connectivity, plus random chords.
    for i in 0..core {
        edges.push((i as V, ((i + 1) % core) as V));
    }
    for _ in 0..core * avg_deg {
        let u = rng.next_below(core as u64) as V;
        let v = rng.next_below(core as u64) as V;
        if u != v {
            edges.push((u, v));
        }
    }
    // IN: chains into the core (and into other IN vertices, earlier ids only
    // to stay acyclic within IN).
    for i in 0..in_sz {
        let u = (core + i) as V;
        for _ in 0..avg_deg.max(1) {
            if i > 0 && rng.next_bool(0.5) {
                let j = rng.next_below(i as u64) as usize;
                edges.push((u, (core + j) as V));
            } else {
                edges.push((u, rng.next_below(core as u64) as V));
            }
        }
    }
    // OUT: fed by the core; internal arcs only to later ids.
    let out_base = core + in_sz;
    let out_sz = n - out_base;
    for i in 0..out_sz {
        let u = (out_base + i) as V;
        for _ in 0..avg_deg.max(1) {
            if i + 1 < out_sz && rng.next_bool(0.5) {
                let j = i + 1 + rng.next_below((out_sz - i - 1) as u64) as usize;
                edges.push((u, (out_base + j) as V));
            } else {
                edges.push((rng.next_below(core as u64) as V, u));
            }
        }
    }
    DiGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_structure() {
        let g = cycle_digraph(5);
        assert_eq!(g.m(), 5);
        assert_eq!(g.out_neighbors(4), &[0]);
        assert_eq!(g.in_neighbors(0), &[4]);
    }

    #[test]
    fn cycle_of_one_is_self_loop() {
        let g = cycle_digraph(1);
        assert_eq!(g.m(), 1);
        assert_eq!(g.out_neighbors(0), &[0]);
    }

    #[test]
    fn path_structure() {
        let g = path_digraph(4);
        assert_eq!(g.m(), 3);
        assert!(g.out_neighbors(3).is_empty());
        assert!(g.in_neighbors(0).is_empty());
    }

    #[test]
    fn star_structure() {
        let g = star_digraph(6);
        assert_eq!(g.out_degree(0), 5);
        for v in 1..6 {
            assert_eq!(g.in_neighbors(v), &[0]);
        }
    }

    #[test]
    fn dag_has_no_back_edges() {
        let g = dag_layers(5, 10, 3, 1);
        for (u, v) in g.out_csr().edges() {
            assert!(v as usize / 10 == u as usize / 10 + 1, "edge {u}->{v} skips layers");
        }
    }

    #[test]
    fn bowtie_core_is_strongly_connected_by_cycle() {
        let g = bowtie_web(100, 0.4, 2, 5);
        assert_eq!(g.n(), 100);
        // The core cycle edges must be present.
        let core = 40;
        for i in 0..core {
            assert!(
                g.out_neighbors(i as V).contains(&(((i + 1) % core) as V)),
                "core cycle edge missing at {i}"
            );
        }
    }

    #[test]
    fn bowtie_deterministic() {
        assert_eq!(bowtie_web(80, 0.3, 3, 2).out_csr(), bowtie_web(80, 0.3, 3, 2).out_csr());
    }

    #[test]
    #[should_panic]
    fn bowtie_rejects_tiny_n() {
        let _ = bowtie_web(5, 0.5, 2, 1);
    }
}

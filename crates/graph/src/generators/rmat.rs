//! RMAT (recursive-matrix) power-law digraph generator.
//!
//! Stand-in for the paper's social-network graphs (LiveJournal, Twitter):
//! heavy-tailed degrees, low diameter, and one large SCC covering most of
//! the graph — the regime in which all parallel SCC codes do well (Fig. 1,
//! "Social" column). Standard Graph500 parameters (a,b,c,d) =
//! (0.57, 0.19, 0.19, 0.05) with noise to avoid degenerate staircases.

use pscc_runtime::{par_range, SplitMix64};

use crate::csr::DiGraph;
use crate::V;

/// Generates an RMAT digraph with `n = 2^log_n` vertices and about
/// `m` directed edges (duplicates removed, so slightly fewer).
pub fn rmat_digraph(log_n: u32, m: usize, seed: u64) -> DiGraph {
    assert!((1..31).contains(&log_n));
    let n = 1usize << log_n;
    let mut edges: Vec<(V, V)> = vec![(0, 0); m];
    {
        struct P(*mut (V, V));
        // SAFETY: P is only shared with the loop below, where iteration
        // i writes exclusively to edges[i].
        unsafe impl Sync for P {}
        // SAFETY: see Sync above — plain memory, no thread affinity.
        unsafe impl Send for P {}
        impl P {
            fn get(&self) -> *mut (V, V) {
                self.0
            }
        }
        let ptr = P(edges.as_mut_ptr());
        par_range(0..m, 1024, &|r| {
            for i in r {
                let mut rng = SplitMix64::new(seed ^ (i as u64).wrapping_mul(0x9e37_79b9));
                let (mut u, mut v) = (0u32, 0u32);
                for _ in 0..log_n {
                    u <<= 1;
                    v <<= 1;
                    // Per-level noisy quadrant probabilities.
                    let a = 0.57 + (rng.next_f64() - 0.5) * 0.1;
                    let b = 0.19;
                    let c = 0.19;
                    let r = rng.next_f64();
                    if r < a {
                        // top-left: no bits set
                    } else if r < a + b {
                        v |= 1;
                    } else if r < a + b + c {
                        u |= 1;
                    } else {
                        u |= 1;
                        v |= 1;
                    }
                }
                // Permute ids by a fixed hash so hubs are spread out.
                let u = (pscc_runtime::hash64(u as u64 ^ 0xabcd) % n as u64) as V;
                let v = (pscc_runtime::hash64(v as u64 ^ 0x1234) % n as u64) as V;
                // SAFETY: i < m indexes the m-entry edges buffer and is
                // visited by exactly one task.
                unsafe { *ptr.get().add(i) = (u, v) };
            }
        });
    }
    DiGraph::from_edges(n, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_are_plausible() {
        let g = rmat_digraph(12, 40_000, 1);
        assert_eq!(g.n(), 4096);
        assert!(g.m() > 20_000, "m={}", g.m());
        assert!(g.m() <= 40_000);
    }

    #[test]
    fn deterministic_by_seed() {
        let a = rmat_digraph(10, 5000, 3);
        let b = rmat_digraph(10, 5000, 3);
        assert_eq!(a.out_csr(), b.out_csr());
        let c = rmat_digraph(10, 5000, 4);
        assert_ne!(a.out_csr(), c.out_csr());
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = rmat_digraph(12, 60_000, 7);
        let max_deg = (0..g.n() as V).map(|v| g.out_degree(v)).max().unwrap();
        let avg = g.m() as f64 / g.n() as f64;
        assert!(max_deg as f64 > avg * 8.0, "max degree {max_deg} not heavy-tailed vs avg {avg}");
    }

    #[test]
    #[should_panic]
    fn rejects_zero_log_n() {
        let _ = rmat_digraph(0, 10, 1);
    }
}

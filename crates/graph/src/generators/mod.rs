//! Deterministic synthetic graph generators for the paper's evaluation
//! families (§6): lattices, k-NN graphs, RMAT "social" graphs, bowtie
//! "web" digraphs, and assorted simple structures for testing.
//!
//! Every generator takes an explicit seed; the same seed always produces
//! the same graph, which keeps benchmarks and property tests reproducible.

pub mod knn;
pub mod lattice;
pub mod random;
pub mod rmat;
pub mod simple;

pub use knn::{clustered_points, knn_digraph, trajectory_points, uniform_points};
pub use lattice::{lattice_sqr, lattice_sqr_prime, LatticeModel};
pub use random::{gnm_digraph, gnp_digraph};
pub use rmat::rmat_digraph;
pub use simple::{bowtie_web, cycle_digraph, dag_layers, path_digraph, star_digraph};

//! Circular 2-D lattice digraphs (the SQR / REC / SQR' / REC' models).
//!
//! The paper (§6) generates four lattice graphs following the isotropic
//! directed-percolation model of De Noronha et al.: a `w × h` grid where
//! each row and column wraps around (a torus). For each pair of adjacent
//! vertices `u, v`:
//!
//! * **SQR / REC model** ([`lattice_sqr`]): an edge `u → v` is created with
//!   probability 0.5, otherwise `v → u`. Every adjacency carries exactly one
//!   arc, so the graph percolates and typically has one giant SCC
//!   (|SCC1| ≈ 99 % in Tab. 2).
//! * **SQR' / REC' model** ([`lattice_sqr_prime`]): `u → v` with
//!   probability `p`, `v → u` with probability `p`, and no edge with
//!   probability `1 − 2p` (paper: p = 0.3). Below the percolation threshold
//!   this yields a shattered graph with tiny SCCs (|SCC1| ≈ 58 vertices on
//!   10⁸ in Tab. 2).

use pscc_runtime::{hash64, SplitMix64};

use crate::csr::DiGraph;
use crate::V;

/// Which of the two §6 lattice edge models to use.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LatticeModel {
    /// One arc per adjacency, orientation chosen uniformly (SQR/REC).
    Oriented,
    /// Tri-state per adjacency: `u→v` w.p. `p`, `v→u` w.p. `p`, none
    /// otherwise (SQR'/REC' with p = 0.3).
    TriState(f64),
}

#[inline]
fn vid(x: usize, y: usize, w: usize) -> V {
    (y * w + x) as V
}

fn lattice_edges(w: usize, h: usize, seed: u64, model: LatticeModel) -> Vec<(V, V)> {
    assert!(w >= 2 && h >= 2, "lattice needs at least a 2x2 grid");
    let mut edges = Vec::with_capacity(2 * w * h);
    // Each vertex owns its "right" and "down" adjacency (torus wrap), so
    // every undirected adjacency is considered exactly once.
    for y in 0..h {
        for x in 0..w {
            let u = vid(x, y, w);
            let right = vid((x + 1) % w, y, w);
            let down = vid(x, (y + 1) % h, w);
            for (idx, v) in [(0u64, right), (1u64, down)] {
                if u == v {
                    continue; // degenerate wrap on 1-wide lattices
                }
                let mut rng = SplitMix64::new(hash64(seed).wrapping_add((u as u64) * 2 + idx));
                match model {
                    LatticeModel::Oriented => {
                        if rng.next_bool(0.5) {
                            edges.push((u, v));
                        } else {
                            edges.push((v, u));
                        }
                    }
                    LatticeModel::TriState(p) => {
                        let r = rng.next_f64();
                        if r < p {
                            edges.push((u, v));
                        } else if r < 2.0 * p {
                            edges.push((v, u));
                        }
                    }
                }
            }
        }
    }
    edges
}

/// The SQR/REC model: a `w × h` circular lattice with one uniformly
/// oriented arc per adjacency.
pub fn lattice_sqr(w: usize, h: usize, seed: u64) -> DiGraph {
    let edges = lattice_edges(w, h, seed, LatticeModel::Oriented);
    DiGraph::from_edges(w * h, &edges)
}

/// The SQR'/REC' model: a `w × h` circular lattice where each adjacency is
/// `u→v` w.p. 0.3, `v→u` w.p. 0.3, absent otherwise.
pub fn lattice_sqr_prime(w: usize, h: usize, seed: u64) -> DiGraph {
    lattice_tristate(w, h, 0.3, seed)
}

/// The tri-state lattice with an explicit arc probability `p` (each
/// adjacency: `u→v` w.p. `p`, `v→u` w.p. `p`, absent otherwise). Sweeping
/// `p` reproduces the percolation study that motivates the lattice family.
pub fn lattice_tristate(w: usize, h: usize, p: f64, seed: u64) -> DiGraph {
    assert!((0.0..=0.5).contains(&p), "need p in [0, 0.5]");
    let edges = lattice_edges(w, h, seed, LatticeModel::TriState(p));
    DiGraph::from_edges(w * h, &edges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sqr_has_one_arc_per_adjacency() {
        let w = 20;
        let h = 20;
        let g = lattice_sqr(w, h, 1);
        assert_eq!(g.n(), w * h);
        // Torus: 2 adjacencies per vertex owned, so exactly 2wh arcs.
        assert_eq!(g.m(), 2 * w * h);
    }

    #[test]
    fn sqr_prime_is_sparser() {
        let w = 30;
        let h = 30;
        let g = lattice_sqr_prime(w, h, 2);
        let expect = (2 * w * h) as f64 * 0.6;
        let m = g.m() as f64;
        assert!(m > expect * 0.8 && m < expect * 1.2, "m={m}, expect≈{expect}");
    }

    #[test]
    fn deterministic_by_seed() {
        let a = lattice_sqr(10, 10, 7);
        let b = lattice_sqr(10, 10, 7);
        assert_eq!(a.out_csr(), b.out_csr());
        let c = lattice_sqr(10, 10, 8);
        assert_ne!(a.out_csr(), c.out_csr());
    }

    #[test]
    fn rectangle_supported() {
        let g = lattice_sqr(40, 10, 3);
        assert_eq!(g.n(), 400);
    }

    #[test]
    fn degrees_bounded_by_four() {
        let g = lattice_sqr(15, 15, 4);
        for v in 0..g.n() as V {
            assert!(g.out_degree(v) + g.in_degree(v) <= 8);
            assert!(g.out_degree(v) <= 4);
        }
    }

    #[test]
    #[should_panic(expected = "2x2")]
    fn rejects_degenerate_grid() {
        let _ = lattice_sqr(1, 10, 0);
    }

    #[test]
    fn oriented_lattice_percolates() {
        // The oriented model almost surely has a giant SCC; sanity-check
        // that most vertices have both in and out arcs.
        let g = lattice_sqr(30, 30, 9);
        let both = (0..g.n() as V).filter(|&v| g.out_degree(v) > 0 && g.in_degree(v) > 0).count();
        assert!(both > g.n() * 8 / 10, "both={both}");
    }
}

//! Concurrent union-find with CAS linking and path splitting
//! (randomized-linking-by-id in the style of Jayanti–Tarjan, the structure
//! LDD-UF-JTB's finishing step uses, ref. \[56\] in the paper).
//!
//! Lock-free: `unite` links the root with the larger id under the smaller
//! one via CAS; `find` halves paths as it walks. Linear work in practice
//! and safe for fully concurrent `unite`/`find`/`same_set` calls.

use std::sync::atomic::{AtomicU32, Ordering};

/// A concurrent disjoint-set forest over `0..n`.
pub struct ConcurrentUnionFind {
    parent: Vec<AtomicU32>,
}

impl ConcurrentUnionFind {
    /// Creates `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize);
        Self { parent: (0..n as u32).map(AtomicU32::new).collect() }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// True if the structure is empty.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Returns the current root of `x`'s set, with path splitting.
    pub fn find(&self, mut x: u32) -> u32 {
        loop {
            let p = self.parent[x as usize].load(Ordering::Relaxed);
            if p == x {
                return x;
            }
            let gp = self.parent[p as usize].load(Ordering::Relaxed);
            if p == gp {
                return p;
            }
            // Path splitting: hop over the parent. A racing CAS failure is
            // fine — someone else compressed for us.
            let _ = self.parent[x as usize].compare_exchange_weak(
                p,
                gp,
                Ordering::Relaxed,
                Ordering::Relaxed,
            );
            x = gp;
        }
    }

    /// Merges the sets of `a` and `b`. Returns `true` if they were
    /// previously different sets. Concurrent-safe.
    pub fn unite(&self, a: u32, b: u32) -> bool {
        let mut x = self.find(a);
        let mut y = self.find(b);
        loop {
            if x == y {
                return false;
            }
            // Deterministic tie-break: larger id links under smaller, so
            // the final root of each component is its minimum element.
            if x > y {
                std::mem::swap(&mut x, &mut y);
            }
            match self.parent[y as usize].compare_exchange(
                y,
                x,
                Ordering::AcqRel,
                Ordering::Relaxed,
            ) {
                Ok(_) => return true,
                Err(_) => {
                    // y is no longer a root; chase the new roots and retry.
                    x = self.find(x);
                    y = self.find(y);
                }
            }
        }
    }

    /// True if `a` and `b` are currently in the same set. Only stable when
    /// no concurrent `unite` is running.
    pub fn same_set(&self, a: u32, b: u32) -> bool {
        // Standard snapshot loop for concurrent correctness.
        loop {
            let ra = self.find(a);
            let rb = self.find(b);
            if ra == rb {
                return true;
            }
            if self.parent[ra as usize].load(Ordering::Acquire) == ra {
                return false;
            }
        }
    }

    /// Fully compresses and returns the root label of every element.
    pub fn labels(&self) -> Vec<u32> {
        (0..self.parent.len() as u32).map(|x| self.find(x)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_runtime::par_for;

    #[test]
    fn singletons_initially() {
        let uf = ConcurrentUnionFind::new(5);
        for i in 0..5 {
            assert_eq!(uf.find(i), i);
        }
        assert!(!uf.same_set(0, 1));
    }

    #[test]
    fn unite_then_same_set() {
        let uf = ConcurrentUnionFind::new(4);
        assert!(uf.unite(0, 1));
        assert!(!uf.unite(0, 1));
        assert!(uf.same_set(0, 1));
        assert!(!uf.same_set(0, 2));
    }

    #[test]
    fn root_is_minimum_element() {
        let uf = ConcurrentUnionFind::new(10);
        uf.unite(9, 4);
        uf.unite(4, 7);
        assert_eq!(uf.find(9), 4);
        uf.unite(2, 9);
        assert_eq!(uf.find(7), 2);
    }

    #[test]
    fn transitive_chains() {
        let uf = ConcurrentUnionFind::new(100);
        for i in 0..99 {
            uf.unite(i, i + 1);
        }
        for i in 0..100 {
            assert_eq!(uf.find(i), 0);
        }
    }

    #[test]
    fn parallel_chain_union_is_consistent() {
        let n = 100_000;
        let uf = ConcurrentUnionFind::new(n);
        par_for(n - 1, |i| {
            uf.unite(i as u32, i as u32 + 1);
        });
        let labels = uf.labels();
        assert!(labels.iter().all(|&l| l == 0));
    }

    #[test]
    fn parallel_random_unions_match_sequential_dsu() {
        use pscc_runtime::hash64;
        let n = 20_000usize;
        let edges: Vec<(u32, u32)> = (0..30_000u64)
            .map(|i| {
                let h = hash64(i ^ 0xcc);
                (((h >> 32) % n as u64) as u32, (h % n as u64) as u32)
            })
            .collect();
        let uf = ConcurrentUnionFind::new(n);
        par_for(edges.len(), |i| {
            uf.unite(edges[i].0, edges[i].1);
        });
        // Sequential DSU oracle.
        let mut par: Vec<u32> = (0..n as u32).collect();
        fn findp(par: &mut [u32], mut x: u32) -> u32 {
            while par[x as usize] != x {
                par[x as usize] = par[par[x as usize] as usize];
                x = par[x as usize];
            }
            x
        }
        for &(a, b) in &edges {
            let (ra, rb) = (findp(&mut par, a), findp(&mut par, b));
            if ra != rb {
                let (lo, hi) = (ra.min(rb), ra.max(rb));
                par[hi as usize] = lo;
            }
        }
        for v in 0..n as u32 {
            // Same partition (roots may differ in principle, but both use
            // min-id linking so they should agree exactly).
            assert_eq!(uf.find(v), findp(&mut par, v), "v={v}");
        }
    }

    #[test]
    fn labels_snapshot() {
        let uf = ConcurrentUnionFind::new(6);
        uf.unite(0, 3);
        uf.unite(1, 4);
        let labels = uf.labels();
        assert_eq!(labels[3], 0);
        assert_eq!(labels[4], 1);
        assert_eq!(labels[5], 5);
    }
}

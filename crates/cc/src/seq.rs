//! Sequential connected components (BFS) — the verification oracle.

use std::collections::VecDeque;

use pscc_graph::{UnGraph, V};

/// Labels each vertex with the smallest vertex id in its component.
pub fn sequential_cc(g: &UnGraph) -> Vec<u32> {
    let n = g.n();
    const NONE: u32 = u32::MAX;
    let mut labels = vec![NONE; n];
    let mut q = VecDeque::new();
    for root in 0..n as V {
        if labels[root as usize] != NONE {
            continue;
        }
        labels[root as usize] = root;
        q.push_back(root);
        while let Some(v) = q.pop_front() {
            for &u in g.neighbors(v) {
                if labels[u as usize] == NONE {
                    labels[u as usize] = root;
                    q.push_back(u);
                }
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_components() {
        let g = UnGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (3, 4)]);
        let labels = sequential_cc(&g);
        assert_eq!(labels, vec![0, 0, 0, 3, 3]);
    }

    #[test]
    fn isolated_vertices_are_own_components() {
        let g = UnGraph::from_undirected_edges(3, &[]);
        assert_eq!(sequential_cc(&g), vec![0, 1, 2]);
    }

    #[test]
    fn label_is_component_minimum() {
        let g = UnGraph::from_undirected_edges(6, &[(5, 2), (2, 4)]);
        let labels = sequential_cc(&g);
        assert_eq!(labels[5], 2);
        assert_eq!(labels[4], 2);
    }
}

//! Low-diameter decomposition (Alg. 4's `LDD` function).
//!
//! Batched BFS-like clustering: sources join the frontier in exponentially
//! growing waves (×1.2 per round, §5.1) of a random permutation; every
//! vertex adopts the cluster label of whoever visits it first. The result
//! partitions the graph into clusters of low diameter with few cut edges.
//!
//! Two frontier engines, selected by [`LddMode`]:
//! * [`LddMode::HashBagVgc`] — the paper's version: hash-bag frontiers and
//!   VGC local search (multi-hop cluster growth per round);
//! * [`LddMode::EdgeRevisit`] — the ConnectIt-like baseline: flat-array
//!   frontiers regenerated with the two-pass edge-revisit scheme.

use std::sync::atomic::{AtomicU32, Ordering};

use pscc_bag::{BagConfig, HashBag};
use pscc_graph::{UnGraph, V};
use pscc_runtime::{par_range, random_permutation, scan_exclusive, AtomicBits};

/// Frontier engine choice.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LddMode {
    /// Hash-bag frontier + VGC local search (ours, §5.1).
    HashBagVgc,
    /// Flat-array frontier with edge-revisit (ConnectIt-like baseline).
    EdgeRevisit,
}

/// LDD parameters.
#[derive(Clone, Copy, Debug)]
pub struct LddConfig {
    /// Batch growth factor per round (paper: 1.2).
    pub growth: f64,
    /// VGC threshold (HashBagVgc mode only).
    pub tau: usize,
    /// Permutation seed.
    pub seed: u64,
    /// Frontier engine.
    pub mode: LddMode,
    /// Hash-bag parameters.
    pub bag: BagConfig,
}

impl Default for LddConfig {
    fn default() -> Self {
        Self {
            growth: 1.2,
            tau: 512,
            seed: 0x1dd,
            mode: LddMode::HashBagVgc,
            bag: BagConfig::default(),
        }
    }
}

/// Result of an LDD run.
#[derive(Clone, Debug)]
pub struct LddResult {
    /// Per-vertex cluster label (a vertex id — the cluster's source).
    pub labels: Vec<u32>,
    /// Number of frontier rounds executed.
    pub rounds: usize,
}

const NONE: u32 = u32::MAX;

/// Computes a low-diameter decomposition of `g`.
pub fn ldd(g: &UnGraph, cfg: &LddConfig) -> LddResult {
    let n = g.n();
    if n == 0 {
        return LddResult { labels: Vec::new(), rounds: 0 };
    }
    let perm = random_permutation(n, cfg.seed);
    let visited = AtomicBits::new(n);
    let labels: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NONE)).collect();
    let parent: Vec<AtomicU32> = match cfg.mode {
        LddMode::EdgeRevisit => (0..n).map(|_| AtomicU32::new(NONE)).collect(),
        LddMode::HashBagVgc => Vec::new(),
    };
    let bag: HashBag<u32> = HashBag::with_config(n, cfg.bag);

    let mut frontier: Vec<V> = Vec::new();
    let mut cursor = 0usize;
    let mut batch = 1usize;
    let mut rounds = 0usize;

    while cursor < n || !frontier.is_empty() {
        // Admit the next wave of sources (Alg. 4 lines 17–18).
        if cursor < n {
            let end = (cursor + batch).min(n);
            for &v in &perm[cursor..end] {
                if visited.test_and_set(v as usize) {
                    labels[v as usize].store(v, Ordering::Relaxed);
                    frontier.push(v);
                }
            }
            cursor = end;
            batch = ((batch as f64 * cfg.growth).ceil() as usize).max(batch + 1);
        }
        if frontier.is_empty() {
            continue;
        }
        rounds += 1;

        frontier = match cfg.mode {
            LddMode::HashBagVgc => {
                expand_vgc(g, &frontier, &labels, &visited, &bag, cfg.tau);
                bag.extract_all()
            }
            LddMode::EdgeRevisit => expand_revisit(g, &frontier, &labels, &visited, &parent),
        };
    }

    LddResult { labels: labels.into_iter().map(|l| l.into_inner()).collect(), rounds }
}

/// One frontier expansion with hash bag + VGC local search.
fn expand_vgc(
    g: &UnGraph,
    frontier: &[V],
    labels: &[AtomicU32],
    visited: &AtomicBits,
    bag: &HashBag<u32>,
    tau: usize,
) {
    par_range(0..frontier.len(), 1, &|r| {
        let mut queue: Vec<V> = Vec::with_capacity(tau.min(1 << 14));
        for i in r {
            let v = frontier[i];
            let cluster = labels[v as usize].load(Ordering::Relaxed);
            let deg = g.degree(v);
            if deg < tau {
                queue.clear();
                queue.push(v);
                let mut head = 0usize;
                let mut t = 0usize;
                while head < queue.len() {
                    let x = queue[head];
                    head += 1;
                    for &u in g.neighbors(x) {
                        t += 1;
                        if visited.test_and_set(u as usize) {
                            labels[u as usize].store(cluster, Ordering::Relaxed);
                            if queue.len() < tau {
                                queue.push(u);
                            } else {
                                bag.insert(u);
                            }
                        }
                    }
                    if t >= tau {
                        break;
                    }
                }
                for &u in &queue[head..] {
                    bag.insert(u);
                }
            } else {
                let ns = g.neighbors(v);
                par_range(0..ns.len(), 2048, &|rr| {
                    for &u in &ns[rr] {
                        if visited.test_and_set(u as usize) {
                            labels[u as usize].store(cluster, Ordering::Relaxed);
                            bag.insert(u);
                        }
                    }
                });
            }
        }
    });
}

/// One frontier expansion with the two-pass edge-revisit scheme.
fn expand_revisit(
    g: &UnGraph,
    frontier: &[V],
    labels: &[AtomicU32],
    visited: &AtomicBits,
    parent: &[AtomicU32],
) -> Vec<V> {
    let k = frontier.len();
    let mut counts = vec![0u64; k + 1];
    struct P<T>(*mut T);
    // SAFETY: P is only shared with the two passes below, where each
    // frontier slot i (and each disjoint output segment) has exactly one
    // writer.
    unsafe impl<T> Sync for P<T> {}
    impl<T> P<T> {
        fn get(&self) -> *mut T {
            self.0
        }
    }
    {
        let cptr = P(counts.as_mut_ptr());
        par_range(0..k, 1, &|r| {
            for i in r {
                let v = frontier[i];
                let cluster = labels[v as usize].load(Ordering::Relaxed);
                let mut won = 0u64;
                for &u in g.neighbors(v) {
                    if visited.test_and_set(u as usize) {
                        labels[u as usize].store(cluster, Ordering::Relaxed);
                        parent[u as usize].store(v, Ordering::Relaxed);
                        won += 1;
                    }
                }
                // SAFETY: i < k indexes the k+1-entry counts buffer and
                // is visited by exactly one task.
                unsafe { *cptr.get().add(i) = won };
            }
        });
    }
    let total = scan_exclusive(&mut counts) as usize;
    let mut next: Vec<V> = vec![0; total];
    {
        let nptr = P(next.as_mut_ptr());
        let counts = &counts;
        par_range(0..k, 1, &|r| {
            for i in r {
                let v = frontier[i];
                let mut pos = counts[i] as usize;
                for &u in g.neighbors(v) {
                    if parent[u as usize].load(Ordering::Relaxed) == v {
                        // SAFETY: pos walks [counts[i], counts[i+1]), the
                        // segment of `next` the exclusive scan reserved
                        // for frontier slot i's wins; segments tile the
                        // buffer without overlap.
                        unsafe { *nptr.get().add(pos) = u };
                        pos += 1;
                    }
                }
            }
        });
    }
    next
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;

    fn grid_graph(w: usize, h: usize) -> UnGraph {
        let mut edges = Vec::new();
        for y in 0..h {
            for x in 0..w {
                let v = (y * w + x) as V;
                if x + 1 < w {
                    edges.push((v, v + 1));
                }
                if y + 1 < h {
                    edges.push((v, v + w as V));
                }
            }
        }
        UnGraph::from_undirected_edges(w * h, &edges)
    }

    fn check_is_partition_into_connected_clusters(g: &UnGraph, labels: &[u32]) {
        let n = g.n();
        // Every vertex has a label, and the label is a vertex of the same
        // cluster (the source).
        for v in 0..n {
            let l = labels[v];
            assert!((l as usize) < n, "unlabelled vertex {v}");
            assert_eq!(labels[l as usize], l, "cluster source mislabelled");
        }
        // Clusters are connected: every non-source vertex has a same-label
        // neighbour on a shortest path to the source; weaker but sufficient
        // check — some neighbour shares the label.
        for v in 0..n as V {
            if labels[v as usize] != v && g.degree(v) > 0 {
                assert!(
                    g.neighbors(v).iter().any(|&u| labels[u as usize] == labels[v as usize]),
                    "vertex {v} isolated inside its cluster"
                );
            }
        }
    }

    #[test]
    fn covers_all_vertices_both_modes() {
        let g = grid_graph(30, 30);
        for mode in [LddMode::HashBagVgc, LddMode::EdgeRevisit] {
            let res = ldd(&g, &LddConfig { mode, ..LddConfig::default() });
            check_is_partition_into_connected_clusters(&g, &res.labels);
        }
    }

    #[test]
    fn random_graph_with_isolated_vertices() {
        let g = gnm_digraph(500, 400, 3).symmetrize();
        let res = ldd(&g, &LddConfig::default());
        check_is_partition_into_connected_clusters(&g, &res.labels);
        // Isolated vertices label themselves.
        for v in 0..g.n() as V {
            if g.degree(v) == 0 {
                assert_eq!(res.labels[v as usize], v);
            }
        }
    }

    #[test]
    fn cluster_labels_never_cross_components() {
        // Two disjoint grids: labels must stay within each.
        let g1 = grid_graph(10, 10);
        let mut edges: Vec<(V, V)> = g1.csr().edges().collect();
        let off = 100 as V;
        let shifted: Vec<(V, V)> = edges.iter().map(|&(a, b)| (a + off, b + off)).collect();
        edges.extend(shifted);
        let g = UnGraph::from_undirected_edges(200, &edges);
        let res = ldd(&g, &LddConfig::default());
        for v in 0..100u32 {
            assert!(res.labels[v as usize] < 100);
            assert!(res.labels[v as usize + 100] >= 100);
        }
    }

    #[test]
    fn vgc_mode_uses_fewer_rounds_on_a_path() {
        let n = 4000;
        let edges: Vec<(V, V)> = (0..n as V - 1).map(|v| (v, v + 1)).collect();
        let g = UnGraph::from_undirected_edges(n, &edges);
        let ours = ldd(&g, &LddConfig::default());
        let base = ldd(&g, &LddConfig { mode: LddMode::EdgeRevisit, ..LddConfig::default() });
        check_is_partition_into_connected_clusters(&g, &ours.labels);
        check_is_partition_into_connected_clusters(&g, &base.labels);
        assert!(
            ours.rounds * 3 <= base.rounds,
            "vgc rounds {} vs revisit {}",
            ours.rounds,
            base.rounds
        );
    }

    #[test]
    fn deterministic_given_seed_single_thread() {
        // Cluster assignment races under parallelism, but the partition
        // validity must hold for any seed.
        for seed in [1u64, 2, 3] {
            let g = grid_graph(15, 15);
            let res = ldd(&g, &LddConfig { seed, ..LddConfig::default() });
            check_is_partition_into_connected_clusters(&g, &res.labels);
        }
    }

    #[test]
    fn empty_graph() {
        let g = UnGraph::from_undirected_edges(0, &[]);
        assert!(ldd(&g, &LddConfig::default()).labels.is_empty());
    }
}

//! # pscc-cc — parallel connected components (§5.1 of the paper)
//!
//! The LDD-UF-JTB algorithm from ConnectIt, accelerated with the paper's
//! two techniques as a proof of generality:
//!
//! 1. **LDD** (low-diameter decomposition, Alg. 4): batched BFS from
//!    sources added in exponentially growing waves (×1.2 per round). Our
//!    version maintains frontiers with the parallel hash bag and explores
//!    with VGC local search; the baseline uses flat-array frontiers and
//!    single-hop expansion (ConnectIt-like).
//! 2. **Union-find finish** ([`unionfind::ConcurrentUnionFind`], the
//!    Jayanti–Tarjan-style CAS structure): one parallel pass over all edges
//!    unions the LDD labels of the endpoints.
//!
//! [`seq::sequential_cc`] is the verification oracle.

pub mod ldd;
pub mod lddufjtb;
pub mod seq;
pub mod unionfind;

pub use ldd::{ldd, LddConfig, LddMode};
pub use lddufjtb::{connected_components, CcConfig};
pub use seq::sequential_cc;
pub use unionfind::ConcurrentUnionFind;

//! LDD-UF-JTB (Alg. 4): low-diameter decomposition followed by a
//! union-find pass over the edges whose endpoints landed in different
//! clusters.

use pscc_graph::{UnGraph, V};
use pscc_runtime::{par_for, Timer};

use crate::ldd::{ldd, LddConfig, LddResult};
use crate::unionfind::ConcurrentUnionFind;

/// Connectivity configuration (wraps the LDD settings).
#[derive(Clone, Copy, Debug, Default)]
pub struct CcConfig {
    /// Parameters of the LDD step (mode selects ours vs baseline).
    pub ldd: LddConfig,
}

/// Connectivity result.
#[derive(Clone, Debug)]
pub struct CcResult {
    /// Per-vertex component label (the minimum LDD-cluster source id in the
    /// component).
    pub labels: Vec<u32>,
    /// Number of connected components.
    pub num_components: usize,
    /// LDD frontier rounds (for the rounds comparison).
    pub ldd_rounds: usize,
    /// Seconds in the LDD step.
    pub ldd_seconds: f64,
    /// Seconds in the union-find finish.
    pub finish_seconds: f64,
}

/// Computes connected components with LDD-UF-JTB.
pub fn connected_components(g: &UnGraph, cfg: &CcConfig) -> CcResult {
    let n = g.n();
    let t = Timer::start();
    let LddResult { labels: cluster, rounds } = ldd(g, &cfg.ldd);
    let ldd_seconds = t.seconds();

    let t = Timer::start();
    let uf = ConcurrentUnionFind::new(n);
    // One parallel pass over all edges: union clusters across cut edges
    // (Alg. 4 lines 2–3).
    par_for(n, |v| {
        let lv = cluster[v];
        for &u in g.neighbors(v as V) {
            let lu = cluster[u as usize];
            if lv != lu {
                uf.unite(lv, lu);
            }
        }
    });
    let mut labels = vec![0u32; n];
    {
        struct P(*mut u32);
        // SAFETY: P is only shared with the loop below, where each index
        // v < n is written by exactly one task.
        unsafe impl Sync for P {}
        impl P {
            fn get(&self) -> *mut u32 {
                self.0
            }
        }
        let p = P(labels.as_mut_ptr());
        let cluster = &cluster;
        let uf = &uf;
        par_for(n, |v| {
            // SAFETY: v < n indexes the n-entry labels buffer; par_for
            // visits each index exactly once, so writes never alias.
            unsafe { *p.get().add(v) = uf.find(cluster[v]) };
        });
    }
    let finish_seconds = t.seconds();

    let num_components = {
        use std::collections::HashSet;
        labels.iter().copied().collect::<HashSet<u32>>().len()
    };
    CcResult { labels, num_components, ldd_rounds: rounds, ldd_seconds, finish_seconds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ldd::LddMode;
    use crate::seq::sequential_cc;
    use pscc_core::verify::same_partition;
    use pscc_graph::generators::lattice::lattice_sqr;
    use pscc_graph::generators::random::gnm_digraph;

    fn check(g: &UnGraph) {
        let want = sequential_cc(g);
        for mode in [LddMode::HashBagVgc, LddMode::EdgeRevisit] {
            let cfg = CcConfig { ldd: LddConfig { mode, ..LddConfig::default() } };
            let got = connected_components(g, &cfg);
            assert!(same_partition(&got.labels, &want), "mode {mode:?}");
        }
    }

    #[test]
    fn random_graphs() {
        for seed in 0..5u64 {
            check(&gnm_digraph(400, 600, seed).symmetrize());
        }
    }

    #[test]
    fn sparse_graph_many_components() {
        let g = gnm_digraph(1000, 300, 7).symmetrize();
        check(&g);
        let got = connected_components(&g, &CcConfig::default());
        let want = sequential_cc(&g);
        use std::collections::HashSet;
        assert_eq!(got.num_components, want.iter().collect::<HashSet<_>>().len());
    }

    #[test]
    fn lattice_is_connected() {
        let g = lattice_sqr(20, 20, 1).symmetrize();
        let got = connected_components(&g, &CcConfig::default());
        assert_eq!(got.num_components, 1);
    }

    #[test]
    fn edgeless_graph() {
        let g = UnGraph::from_undirected_edges(10, &[]);
        let got = connected_components(&g, &CcConfig::default());
        assert_eq!(got.num_components, 10);
    }

    #[test]
    fn empty_graph() {
        let g = UnGraph::from_undirected_edges(0, &[]);
        let got = connected_components(&g, &CcConfig::default());
        assert_eq!(got.num_components, 0);
    }

    #[test]
    fn stats_are_recorded() {
        let g = gnm_digraph(500, 1500, 2).symmetrize();
        let got = connected_components(&g, &CcConfig::default());
        assert!(got.ldd_rounds > 0);
        assert!(got.ldd_seconds >= 0.0 && got.finish_seconds >= 0.0);
    }
}

//! Partition utilities: SCC label vectors are only meaningful up to
//! renaming, so comparisons and statistics go through a canonical form.

use std::collections::HashMap;

/// Canonicalizes a label vector: components are renumbered `0..k` in order
/// of first appearance, so two label vectors describe the same partition
/// iff their canonical forms are equal.
pub fn normalize_labels<T: Copy + Eq + std::hash::Hash>(labels: &[T]) -> Vec<u32> {
    let mut map: HashMap<T, u32> = HashMap::with_capacity(labels.len() / 4 + 16);
    let mut out = Vec::with_capacity(labels.len());
    for &l in labels {
        let next = map.len() as u32;
        out.push(*map.entry(l).or_insert(next));
    }
    out
}

/// True if two label vectors induce the same partition of `0..n`.
pub fn same_partition<A, B>(a: &[A], b: &[B]) -> bool
where
    A: Copy + Eq + std::hash::Hash,
    B: Copy + Eq + std::hash::Hash,
{
    a.len() == b.len() && normalize_labels(a) == normalize_labels(b)
}

/// Number of components and the size of the largest one.
pub fn component_stats<T: Copy + Eq + std::hash::Hash>(labels: &[T]) -> (usize, usize) {
    let mut counts: HashMap<T, usize> = HashMap::new();
    for &l in labels {
        *counts.entry(l).or_insert(0) += 1;
    }
    let largest = counts.values().copied().max().unwrap_or(0);
    (counts.len(), largest)
}

/// Groups vertex ids by label, each group sorted, groups sorted by their
/// smallest member — a stable representation for test assertions.
pub fn partition_groups<T: Copy + Eq + std::hash::Hash>(labels: &[T]) -> Vec<Vec<u32>> {
    let mut map: HashMap<T, Vec<u32>> = HashMap::new();
    for (v, &l) in labels.iter().enumerate() {
        map.entry(l).or_default().push(v as u32);
    }
    let mut groups: Vec<Vec<u32>> = map.into_values().collect();
    for g in &mut groups {
        g.sort_unstable();
    }
    groups.sort_by_key(|g| g[0]);
    groups
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalize_is_first_appearance_order() {
        assert_eq!(normalize_labels(&[7u64, 7, 3, 7, 3]), vec![0, 0, 1, 0, 1]);
    }

    #[test]
    fn same_partition_ignores_names() {
        assert!(same_partition(&[10u64, 10, 20], &[1u32, 1, 5]));
        assert!(!same_partition(&[10u64, 10, 20], &[1u32, 2, 5]));
    }

    #[test]
    fn same_partition_rejects_length_mismatch() {
        assert!(!same_partition(&[1u32, 1], &[1u32, 1, 1]));
    }

    #[test]
    fn component_stats_counts() {
        let (k, largest) = component_stats(&[5u32, 5, 5, 9, 9, 1]);
        assert_eq!(k, 3);
        assert_eq!(largest, 3);
    }

    #[test]
    fn component_stats_empty() {
        let labels: [u32; 0] = [];
        assert_eq!(component_stats(&labels), (0, 0));
    }

    #[test]
    fn groups_are_sorted() {
        let groups = partition_groups(&[2u32, 1, 2, 3, 1]);
        assert_eq!(groups, vec![vec![0, 2], vec![1, 4], vec![3]]);
    }
}

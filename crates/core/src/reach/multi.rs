//! Multi-source reachability producing `(vertex, source)` pairs (§4.3).
//!
//! The frontier is a set of *pairs*: `(v, s)` means "the search from source
//! `s` reached `v` this round". Pairs are deduplicated globally by the
//! phase-concurrent [`PairTable`]; newly added pairs form the next frontier
//! via the hash bag (or a VGC local queue first). Dense mode is not
//! applicable here (§4.2): finding one in-neighbor in the frontier says
//! nothing about the *other* sources that may reach a vertex.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use pscc_bag::HashBag;
use pscc_graph::{DiGraph, V};
use pscc_runtime::{par_range, Timer};
use pscc_table::{pack_pair, pair_source, pair_vertex, Insert, PairTable};

use crate::config::ReachParams;

/// Statistics of one multi-reachability search.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct MultiReachOutcome {
    /// Number of frontier rounds.
    pub rounds: usize,
    /// Pairs added to the table by this search (including the seeds).
    pub pairs_added: usize,
    /// Seconds spent growing/rehashing the pair table (the Fig. 9
    /// "hash table resizing" category).
    pub resize_seconds: f64,
    /// Edge inspections performed.
    pub edges_scanned: u64,
}

/// Runs a multi-reachability search from `sources` following out-edges if
/// `forward` (in-edges otherwise), restricted to same-label subgraphs.
/// Reachable pairs accumulate in `table` (which must be empty on entry and
/// may be grown by this call).
pub fn multi_reach(
    g: &DiGraph,
    sources: &[V],
    forward: bool,
    labels: &[AtomicU64],
    params: &ReachParams,
    table: &mut PairTable,
) -> MultiReachOutcome {
    let mut out = MultiReachOutcome::default();
    if sources.is_empty() {
        return out;
    }
    let csr = g.csr_dir(forward);
    let edges = AtomicU64::new(0);

    // Seed (s, s) for every source.
    let mut frontier: Vec<u64> = Vec::with_capacity(sources.len());
    for &s in sources {
        let key = pack_pair(s, s);
        loop {
            match table.insert(key) {
                Insert::Added => {
                    frontier.push(key);
                    break;
                }
                Insert::Present => break,
                Insert::Full => {
                    let t = Timer::start();
                    table.grow();
                    out.resize_seconds += t.seconds();
                }
            }
        }
    }

    let mut bag: HashBag<u64> = HashBag::with_config(table.slot_count(), params.bag);
    let overflow: Mutex<Vec<u64>> = Mutex::new(Vec::new());

    while !frontier.is_empty() {
        out.rounds += 1;

        // Proactive growth keeps the load factor reasonable so Full events
        // (which force a mid-search rebuild) stay rare.
        if table.len() * 2 >= table.slot_count() {
            let t = Timer::start();
            table.grow();
            out.resize_seconds += t.seconds();
            bag = HashBag::with_config(table.slot_count(), params.bag);
        }

        {
            // Sharing &PairTable across tasks is safe: insert/contains are
            // phase-concurrent.
            let table = &*table;
            let bag_ref = &bag;
            let overflow = &overflow;
            let tau = params.effective_tau(frontier.len());
            par_range(0..frontier.len(), 1, &|r| {
                let mut queue: Vec<u64> = Vec::with_capacity(tau.min(1 << 14));
                let mut spill: Vec<u64> = Vec::new();
                let mut scanned = 0u64;
                for i in r {
                    let pair = frontier[i];
                    let (x0, s) = (pair_vertex(pair), pair_source(pair));
                    let lx = labels[x0 as usize].load(Ordering::Relaxed);
                    let deg = csr.degree(x0);
                    if params.vgc && deg < tau {
                        // VGC local search over pairs from (x0, s).
                        queue.clear();
                        queue.push(pair);
                        let mut head = 0usize;
                        let mut t = 0usize;
                        while head < queue.len() {
                            let x = pair_vertex(queue[head]);
                            head += 1;
                            for &u in csr.neighbors(x) {
                                t += 1;
                                scanned += 1;
                                if labels[u as usize].load(Ordering::Relaxed) == lx {
                                    let key = pack_pair(u, s);
                                    match table.insert(key) {
                                        Insert::Added => {
                                            if queue.len() < tau {
                                                queue.push(key);
                                            } else {
                                                bag_ref.insert(key);
                                            }
                                        }
                                        Insert::Present => {}
                                        Insert::Full => spill.push(key),
                                    }
                                }
                            }
                            if t >= tau {
                                break;
                            }
                        }
                        for &key in &queue[head..] {
                            bag_ref.insert(key);
                        }
                    } else {
                        // Standard scan, nested-parallel for heavy vertices.
                        scanned += deg as u64;
                        let ns = csr.neighbors(x0);
                        par_range(0..ns.len(), 2048, &|rr| {
                            for &u in &ns[rr] {
                                if labels[u as usize].load(Ordering::Relaxed) == lx {
                                    let key = pack_pair(u, s);
                                    match table.insert(key) {
                                        Insert::Added => bag_ref.insert(key),
                                        Insert::Present => {}
                                        Insert::Full => {
                                            overflow.lock().expect("overflow lock").push(key)
                                        }
                                    }
                                }
                            }
                        });
                    }
                }
                if !spill.is_empty() {
                    overflow.lock().expect("overflow lock").append(&mut spill);
                }
                edges.fetch_add(scanned, Ordering::Relaxed);
            });
        }

        let mut next = bag.extract_all();
        // Resolve overflowed inserts: grow, retry, and splice the winners
        // into the next frontier. Loops until the table absorbs everything.
        loop {
            let pending = std::mem::take(&mut *overflow.lock().expect("overflow lock"));
            if pending.is_empty() {
                break;
            }
            let t = Timer::start();
            table.grow();
            out.resize_seconds += t.seconds();
            bag = HashBag::with_config(table.slot_count(), params.bag);
            for key in pending {
                match table.insert(key) {
                    Insert::Added => next.push(key),
                    Insert::Present => {}
                    Insert::Full => overflow.lock().expect("overflow lock").push(key),
                }
            }
        }
        frontier = next;
    }

    out.pairs_added = table.len();
    out.edges_scanned = edges.load(Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};
    use std::collections::HashSet;

    fn fresh_labels(n: usize) -> Vec<AtomicU64> {
        (0..n).map(|_| AtomicU64::new(0)).collect()
    }

    /// Sequential oracle: the set of (v, s) pairs with s ⇝ v.
    fn seq_pairs(g: &DiGraph, sources: &[V], forward: bool) -> HashSet<(V, V)> {
        let mut pairs = HashSet::new();
        for &s in sources {
            let mut vis = vec![false; g.n()];
            let mut stack = vec![s];
            vis[s as usize] = true;
            while let Some(v) = stack.pop() {
                pairs.insert((v, s));
                for &u in g.neighbors_dir(v, forward) {
                    if !vis[u as usize] {
                        vis[u as usize] = true;
                        stack.push(u);
                    }
                }
            }
        }
        pairs
    }

    fn run(
        g: &DiGraph,
        sources: &[V],
        forward: bool,
        params: &ReachParams,
    ) -> (HashSet<(V, V)>, MultiReachOutcome) {
        let labels = fresh_labels(g.n());
        let mut table = PairTable::with_capacity(1024);
        let outcome = multi_reach(g, sources, forward, &labels, params, &mut table);
        let got: HashSet<(V, V)> =
            table.keys().into_iter().map(|k| (pair_vertex(k), pair_source(k))).collect();
        (got, outcome)
    }

    #[test]
    fn single_source_path() {
        let g = path_digraph(6);
        let (got, outcome) = run(&g, &[2], true, &ReachParams::default());
        let want = seq_pairs(&g, &[2], true);
        assert_eq!(got, want);
        assert_eq!(outcome.pairs_added, 4); // vertices 2..=5
    }

    #[test]
    fn two_sources_on_cycle_cover_everything_twice() {
        let g = cycle_digraph(50);
        let (got, _) = run(&g, &[0, 25], true, &ReachParams::default());
        assert_eq!(got.len(), 100);
        let want = seq_pairs(&g, &[0, 25], true);
        assert_eq!(got, want);
    }

    #[test]
    fn matches_oracle_on_random_graphs_all_modes() {
        for seed in 0..4u64 {
            let g = gnm_digraph(200, 700, seed);
            let sources: Vec<V> = vec![0, 7, 42, 99];
            let want_f = seq_pairs(&g, &sources, true);
            let want_b = seq_pairs(&g, &sources, false);
            for &vgc in &[false, true] {
                let params = ReachParams { vgc, ..ReachParams::default() };
                let (got_f, _) = run(&g, &sources, true, &params);
                assert_eq!(got_f, want_f, "fwd seed={seed} vgc={vgc}");
                let (got_b, _) = run(&g, &sources, false, &params);
                assert_eq!(got_b, want_b, "bwd seed={seed} vgc={vgc}");
            }
        }
    }

    #[test]
    fn empty_sources_is_noop() {
        let g = path_digraph(5);
        let (got, outcome) = run(&g, &[], true, &ReachParams::default());
        assert!(got.is_empty());
        assert_eq!(outcome.rounds, 0);
    }

    #[test]
    fn vgc_reduces_rounds_on_long_paths() {
        let g = path_digraph(3000);
        let (_, plain) = run(&g, &[0], true, &ReachParams::plain());
        let (_, vgc) = run(&g, &[0], true, &ReachParams::default());
        assert!(vgc.rounds * 10 <= plain.rounds, "vgc {} vs plain {}", vgc.rounds, plain.rounds);
    }

    #[test]
    fn tiny_table_forces_growth_but_stays_correct() {
        let g = gnm_digraph(300, 1500, 7);
        let sources: Vec<V> = (0..20).collect();
        let labels = fresh_labels(g.n());
        let mut table = PairTable::with_capacity(1); // pathological start
        let outcome = multi_reach(&g, &sources, true, &labels, &ReachParams::default(), &mut table);
        let got: HashSet<(V, V)> =
            table.keys().into_iter().map(|k| (pair_vertex(k), pair_source(k))).collect();
        assert_eq!(got, seq_pairs(&g, &sources, true));
        assert!(outcome.resize_seconds >= 0.0);
        assert_eq!(outcome.pairs_added, got.len());
    }

    #[test]
    fn label_boundaries_cut_searches() {
        // path 0->1->2->3 with label change at 2: sources {0} reach {0,1}.
        let g = path_digraph(4);
        let labels = fresh_labels(4);
        labels[2].store(5, Ordering::Relaxed);
        labels[3].store(5, Ordering::Relaxed);
        let mut table = PairTable::with_capacity(64);
        multi_reach(&g, &[0], true, &labels, &ReachParams::default(), &mut table);
        let got: HashSet<(V, V)> =
            table.keys().into_iter().map(|k| (pair_vertex(k), pair_source(k))).collect();
        let want: HashSet<(V, V)> = [(0, 0), (1, 0)].into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn sources_in_same_label_region_share_pairs() {
        // Complete bipartite-ish overlap: both sources reach the whole
        // strongly connected cycle, giving 2n pairs.
        let g = cycle_digraph(40);
        let (got, outcome) = run(&g, &[3, 17], true, &ReachParams::default());
        assert_eq!(got.len(), 80);
        assert_eq!(outcome.pairs_added, 80);
    }
}

//! Reachability searches: the heart of the paper.
//!
//! * [`single::single_reach`] — one-source search with sparse (hash-bag +
//!   VGC local search) and dense (bottom-up) rounds;
//! * [`multi::multi_reach`] — multi-source search producing `(v, s)`
//!   reachability pairs in a phase-concurrent table, with VGC local search
//!   over pairs;
//! * [`bfs::parallel_bfs`] — distance-preserving BFS (hash-bag frontier,
//!   no VGC: levels must stay synchronized, §8).

pub mod bfs;
pub mod multi;
pub mod single;

pub use bfs::{parallel_bfs, BfsParams, BfsResult};
pub use multi::{multi_reach, MultiReachOutcome};
pub use single::{single_reach, SingleReachOutcome};

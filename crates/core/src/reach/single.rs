//! Single-source reachability with VGC local search and the dense-mode
//! direction optimization (§3.1, §4.2).
//!
//! The search explores the subgraph induced by vertices whose label equals
//! the source's label (cross edges are skipped, Alg. 1 comment on line 5).
//! Finished vertices carry `FINAL_TAG`-tagged labels, so the label check
//! also excludes them.

use std::sync::atomic::{AtomicU64, Ordering};

use pscc_bag::HashBag;
use pscc_graph::{DiGraph, V};
use pscc_runtime::{pack_index, par_range, AtomicBits};

use crate::config::ReachParams;

/// Statistics of one single-reachability search.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct SingleReachOutcome {
    /// Number of frontier rounds (synchronization barriers).
    pub rounds: usize,
    /// How many of those ran in dense (bottom-up) mode.
    pub dense_rounds: usize,
    /// Vertices visited (including the source).
    pub visited: usize,
    /// Edge inspections performed (both successful and unsuccessful).
    pub edges_scanned: u64,
}

/// Frontiers at most this large are processed sequentially without the
/// hash bag (the bag's per-round extract cost dominates tiny rounds).
const SEQ_FRONTIER: usize = 64;

/// One sequential sparse round: expands `frontier` into the next frontier,
/// honouring the same label restriction and VGC local search as the
/// parallel path.
fn sparse_round_seq(
    csr: &pscc_graph::Csr,
    labels: &[AtomicU64],
    params: &ReachParams,
    visited: &AtomicBits,
    frontier: &[V],
    scanned: &mut u64,
) -> Vec<V> {
    let tau = params.effective_tau(frontier.len());
    let mut next: Vec<V> = Vec::new();
    let mut queue: Vec<V> = Vec::new();
    for &v in frontier {
        let lv = labels[v as usize].load(Ordering::Relaxed);
        if params.vgc && csr.degree(v) < tau {
            // Local search: sequential multi-hop exploration bounded by τ
            // visited neighbours (mirrors the parallel branch).
            queue.clear();
            queue.push(v);
            let mut head = 0usize;
            let mut t = 0usize;
            while head < queue.len() {
                let x = queue[head];
                head += 1;
                for &u in csr.neighbors(x) {
                    t += 1;
                    *scanned += 1;
                    if labels[u as usize].load(Ordering::Relaxed) == lv
                        && visited.test_and_set(u as usize)
                    {
                        if queue.len() < tau {
                            queue.push(u);
                        } else {
                            next.push(u);
                        }
                    }
                }
                if t >= tau {
                    break;
                }
            }
            next.extend_from_slice(&queue[head..]);
        } else {
            for &u in csr.neighbors(v) {
                *scanned += 1;
                if labels[u as usize].load(Ordering::Relaxed) == lv
                    && visited.test_and_set(u as usize)
                {
                    next.push(u);
                }
            }
        }
    }
    next
}

/// Runs a reachability search from `src` following out-edges if `forward`
/// (in-edges otherwise), restricted to vertices labelled like `src`.
///
/// `visited` must be all-clear on entry and has `visited[v]` set for every
/// reached vertex (including `src`) on exit.
pub fn single_reach(
    g: &DiGraph,
    src: V,
    forward: bool,
    labels: &[AtomicU64],
    params: &ReachParams,
    visited: &AtomicBits,
) -> SingleReachOutcome {
    let n = g.n();
    let m = g.m().max(1);
    debug_assert_eq!(visited.count_ones(), 0, "visited must start clear");
    visited.set(src as usize);

    let mut out = SingleReachOutcome::default();
    let mut frontier: Vec<V> = vec![src];
    let bag: HashBag<u32> = HashBag::with_config(n, params.bag);
    let csr = g.csr_dir(forward);
    let rev = g.csr_dir(!forward);
    let edges = std::sync::atomic::AtomicU64::new(0);
    // Frontier bitset reused across dense rounds.
    let cur_bits = AtomicBits::new(n);

    while !frontier.is_empty() {
        out.rounds += 1;
        let frontier_edges: u64 =
            pscc_runtime::par_sum_u64(frontier.len(), |i| csr.degree(frontier[i]) as u64);
        let go_dense = params.use_dense
            && frontier.len() as u64 + frontier_edges > m.div_ceil(params.dense_threshold) as u64;

        if !go_dense && frontier.len() <= SEQ_FRONTIER {
            // Tiny frontier: a sequential round into a plain Vec. Skipping
            // the hash bag here is what keeps high-diameter searches (one
            // vertex per round for thousands of rounds) from paying the
            // per-round bag extract cost — FW-BW on a path was cubic
            // without it.
            let mut scanned = 0u64;
            frontier = sparse_round_seq(csr, labels, params, visited, &frontier, &mut scanned);
            edges.fetch_add(scanned, Ordering::Relaxed);
        } else if go_dense {
            out.dense_rounds += 1;
            // Mark the current frontier in a bitset.
            cur_bits.clear_all();
            par_range(0..frontier.len(), 2048, &|r| {
                for i in r {
                    cur_bits.set(frontier[i] as usize);
                }
            });
            // Bottom-up: every unvisited, same-label vertex u checks its
            // *reverse*-direction neighbours; one hit suffices (early exit —
            // the work saving that makes dense mode pay off).
            let next_bits = AtomicBits::new(n);
            par_range(0..n, 1024, &|r| {
                let mut scanned = 0u64;
                for u in r {
                    if visited.get(u) {
                        continue;
                    }
                    let lu = labels[u].load(Ordering::Relaxed);
                    for &w in rev.neighbors(u as V) {
                        scanned += 1;
                        if cur_bits.get(w as usize)
                            && labels[w as usize].load(Ordering::Relaxed) == lu
                        {
                            visited.set(u);
                            next_bits.set(u);
                            break;
                        }
                    }
                }
                edges.fetch_add(scanned, Ordering::Relaxed);
            });
            frontier = pack_index(n, |u| next_bits.get(u)).into_iter().map(|u| u as V).collect();
        } else {
            // Sparse round: hash-bag frontier, optional VGC local search.
            let tau = params.effective_tau(frontier.len());
            par_range(0..frontier.len(), 1, &|r| {
                let mut queue: Vec<V> = Vec::with_capacity(tau.min(1 << 14));
                let mut scanned = 0u64;
                for i in r {
                    let v = frontier[i];
                    let lv = labels[v as usize].load(Ordering::Relaxed);
                    let deg = csr.degree(v);
                    if params.vgc && deg < tau {
                        // Local search: sequential multi-hop exploration
                        // bounded by τ visited neighbours.
                        queue.clear();
                        queue.push(v);
                        let mut head = 0usize;
                        let mut t = 0usize;
                        while head < queue.len() {
                            let x = queue[head];
                            head += 1;
                            for &u in csr.neighbors(x) {
                                t += 1;
                                scanned += 1;
                                if labels[u as usize].load(Ordering::Relaxed) == lv
                                    && visited.test_and_set(u as usize)
                                {
                                    if queue.len() < tau {
                                        queue.push(u);
                                    } else {
                                        bag.insert(u);
                                    }
                                }
                            }
                            if t >= tau {
                                break;
                            }
                        }
                        // Flush unprocessed queue entries to the frontier.
                        for &u in &queue[head..] {
                            bag.insert(u);
                        }
                    } else {
                        // Standard neighbour scan. The inner par_range runs
                        // sequentially when this round is already parallel
                        // (the runtime keeps nested regions on one worker);
                        // huge-frontier rounds are dense-mode's job instead.
                        scanned += deg as u64;
                        let ns = csr.neighbors(v);
                        par_range(0..ns.len(), 2048, &|rr| {
                            for &u in &ns[rr] {
                                if labels[u as usize].load(Ordering::Relaxed) == lv
                                    && visited.test_and_set(u as usize)
                                {
                                    bag.insert(u);
                                }
                            }
                        });
                    }
                }
                edges.fetch_add(scanned, Ordering::Relaxed);
            });
            frontier = bag.extract_all();
        }
    }
    out.visited = visited.count_ones();
    out.edges_scanned = edges.load(Ordering::Relaxed);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};

    fn fresh_labels(n: usize) -> Vec<AtomicU64> {
        (0..n).map(|_| AtomicU64::new(0)).collect()
    }

    fn reach_set(g: &DiGraph, src: V, forward: bool, params: &ReachParams) -> Vec<bool> {
        let labels = fresh_labels(g.n());
        let visited = AtomicBits::new(g.n());
        single_reach(g, src, forward, &labels, params, &visited);
        (0..g.n()).map(|v| visited.get(v)).collect()
    }

    fn seq_reach(g: &DiGraph, src: V, forward: bool) -> Vec<bool> {
        let mut vis = vec![false; g.n()];
        let mut stack = vec![src];
        vis[src as usize] = true;
        while let Some(v) = stack.pop() {
            for &u in g.neighbors_dir(v, forward) {
                if !vis[u as usize] {
                    vis[u as usize] = true;
                    stack.push(u);
                }
            }
        }
        vis
    }

    #[test]
    fn path_forward_reaches_suffix() {
        let g = path_digraph(10);
        let got = reach_set(&g, 4, true, &ReachParams::default());
        for (v, &reached) in got.iter().enumerate() {
            assert_eq!(reached, v >= 4, "v={v}");
        }
    }

    #[test]
    fn path_backward_reaches_prefix() {
        let g = path_digraph(10);
        let got = reach_set(&g, 4, false, &ReachParams::default());
        for (v, &reached) in got.iter().enumerate() {
            assert_eq!(reached, v <= 4, "v={v}");
        }
    }

    #[test]
    fn cycle_reaches_everything() {
        let g = cycle_digraph(100);
        let got = reach_set(&g, 13, true, &ReachParams::default());
        assert!(got.iter().all(|&b| b));
    }

    #[test]
    fn vgc_reduces_rounds_on_long_path() {
        let g = path_digraph(2000);
        let labels = fresh_labels(g.n());

        let vis_plain = AtomicBits::new(g.n());
        let plain = single_reach(&g, 0, true, &labels, &ReachParams::plain(), &vis_plain);

        let vis_vgc = AtomicBits::new(g.n());
        let p = ReachParams { use_dense: false, ..ReachParams::default() };
        let vgc = single_reach(&g, 0, true, &labels, &p, &vis_vgc);

        assert_eq!(plain.visited, 2000);
        assert_eq!(vgc.visited, 2000);
        assert!(
            vgc.rounds * 10 <= plain.rounds,
            "VGC rounds {} vs plain {}",
            vgc.rounds,
            plain.rounds
        );
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..5u64 {
            let g = gnm_digraph(300, 900, seed);
            for &vgc in &[false, true] {
                for &dense in &[false, true] {
                    let params = ReachParams { vgc, use_dense: dense, ..ReachParams::default() };
                    let got = reach_set(&g, 0, true, &params);
                    let want = seq_reach(&g, 0, true);
                    assert_eq!(got, want, "seed={seed} vgc={vgc} dense={dense}");
                }
            }
        }
    }

    #[test]
    fn backward_matches_sequential() {
        let g = gnm_digraph(200, 800, 9);
        let got = reach_set(&g, 5, false, &ReachParams::default());
        let want = seq_reach(&g, 5, false);
        assert_eq!(got, want);
    }

    #[test]
    fn respects_label_boundaries() {
        // 0 -> 1 -> 2, but vertex 2 has a different label: unreachable.
        let g = path_digraph(3);
        let labels = fresh_labels(3);
        labels[2].store(99, Ordering::Relaxed);
        let visited = AtomicBits::new(3);
        single_reach(&g, 0, true, &labels, &ReachParams::default(), &visited);
        assert!(visited.get(0) && visited.get(1));
        assert!(!visited.get(2));
    }

    #[test]
    fn tau_one_equals_plain_visits() {
        let g = gnm_digraph(150, 600, 3);
        let p = ReachParams { tau: 1, ..ReachParams::default() };
        let got = reach_set(&g, 0, true, &p);
        let want = seq_reach(&g, 0, true);
        assert_eq!(got, want);
    }

    #[test]
    fn isolated_source_visits_only_itself() {
        let g = DiGraph::from_edges(5, &[(1, 2)]);
        let got = reach_set(&g, 0, true, &ReachParams::default());
        assert_eq!(got, vec![true, false, false, false, false]);
    }

    #[test]
    fn dense_mode_triggers_on_bushy_graph() {
        // A star from the source forces a huge frontier immediately.
        let n = 5000;
        let mut edges: Vec<(V, V)> = (1..n as V).map(|v| (0, v)).collect();
        // Add a second layer so dense mode has something to do.
        edges.extend((1..n as V).map(|v| (v, (v % 7) + 1)));
        let g = DiGraph::from_edges(n, &edges);
        let labels = fresh_labels(n);
        let visited = AtomicBits::new(n);
        let outcome = single_reach(&g, 0, true, &labels, &ReachParams::default(), &visited);
        assert_eq!(outcome.visited, n);
        assert!(outcome.dense_rounds >= 1, "expected a dense round");
        // Dense result must still match sequential reachability.
        let want = seq_reach(&g, 0, true);
        for (v, &w) in want.iter().enumerate() {
            assert_eq!(visited.get(v), w);
        }
    }

    #[test]
    fn self_loops_are_harmless() {
        let g = DiGraph::from_edges(3, &[(0, 0), (0, 1), (1, 1), (1, 2)]);
        let got = reach_set(&g, 0, true, &ReachParams::default());
        assert_eq!(got, vec![true, true, true]);
    }
}

//! Distance-preserving parallel BFS with hash-bag frontiers.
//!
//! §8 of the paper distinguishes traversals where visiting order is free
//! (reachability — VGC applies directly) from those that must respect BFS
//! levels (shortest distances, LE-lists — hash bags apply, VGC does not).
//! This module is the latter: a level-synchronous parallel BFS whose
//! frontier is a hash bag, with the same dense/sparse direction
//! optimization as single-reachability. It returns exact hop distances.

use std::sync::atomic::{AtomicU32, Ordering};

use pscc_bag::{BagConfig, HashBag};
use pscc_graph::{DiGraph, V};
use pscc_runtime::{pack_index, par_range, par_sum_u64, AtomicBits};

/// Unreached distance sentinel.
pub const UNREACHED: u32 = u32::MAX;

/// Options for [`parallel_bfs`].
#[derive(Clone, Copy, Debug)]
pub struct BfsParams {
    /// Enable the dense (bottom-up) mode.
    pub use_dense: bool,
    /// Dense-mode switch denominator (same semantics as reachability).
    pub dense_threshold: usize,
    /// Hash-bag parameters.
    pub bag: BagConfig,
}

impl Default for BfsParams {
    fn default() -> Self {
        Self { use_dense: true, dense_threshold: 20, bag: BagConfig::default() }
    }
}

/// Result of a parallel BFS.
#[derive(Clone, Debug)]
pub struct BfsResult {
    /// Hop distance per vertex (`UNREACHED` if not reachable).
    pub dist: Vec<u32>,
    /// Number of rounds (= eccentricity of the source within its
    /// reachable set, plus one).
    pub rounds: usize,
    /// Rounds run in dense mode.
    pub dense_rounds: usize,
}

/// Parallel BFS from `src` following out-edges if `forward` (in-edges
/// otherwise). Returns exact hop distances.
pub fn parallel_bfs(g: &DiGraph, src: V, forward: bool, params: &BfsParams) -> BfsResult {
    let n = g.n();
    let m = g.m().max(1);
    let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(UNREACHED)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    let bag: HashBag<u32> = HashBag::with_config(n, params.bag);
    let csr = g.csr_dir(forward);
    let rev = g.csr_dir(!forward);

    let mut frontier: Vec<V> = vec![src];
    let mut rounds = 0usize;
    let mut dense_rounds = 0usize;
    let mut level = 0u32;
    let cur_bits = AtomicBits::new(n);

    while !frontier.is_empty() {
        rounds += 1;
        level += 1;
        let frontier_edges = par_sum_u64(frontier.len(), |i| csr.degree(frontier[i]) as u64);
        let go_dense = params.use_dense
            && frontier.len() as u64 + frontier_edges > m.div_ceil(params.dense_threshold) as u64;

        if go_dense {
            dense_rounds += 1;
            cur_bits.clear_all();
            par_range(0..frontier.len(), 2048, &|r| {
                for i in r {
                    cur_bits.set(frontier[i] as usize);
                }
            });
            let next_bits = AtomicBits::new(n);
            par_range(0..n, 1024, &|r| {
                for u in r {
                    if dist[u].load(Ordering::Relaxed) != UNREACHED {
                        continue;
                    }
                    for &w in rev.neighbors(u as V) {
                        if cur_bits.get(w as usize) {
                            dist[u].store(level, Ordering::Relaxed);
                            next_bits.set(u);
                            break;
                        }
                    }
                }
            });
            frontier = pack_index(n, |u| next_bits.get(u)).into_iter().map(|u| u as V).collect();
        } else {
            par_range(0..frontier.len(), 1, &|r| {
                for i in r {
                    let v = frontier[i];
                    for &u in csr.neighbors(v) {
                        if dist[u as usize]
                            .compare_exchange(
                                UNREACHED,
                                level,
                                Ordering::Relaxed,
                                Ordering::Relaxed,
                            )
                            .is_ok()
                        {
                            bag.insert(u);
                        }
                    }
                }
            });
            frontier = bag.extract_all();
        }
    }

    BfsResult { dist: dist.into_iter().map(|d| d.into_inner()).collect(), rounds, dense_rounds }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph, star_digraph};
    use pscc_graph::stats::bfs_ecc;

    fn check_against_sequential(g: &DiGraph, src: V, forward: bool) {
        let got = parallel_bfs(g, src, forward, &BfsParams::default());
        let (want, _, _) = if forward {
            bfs_ecc(g, src, false)
        } else {
            // Sequential helper follows out-edges; reverse the graph.
            bfs_ecc(&g.clone().reversed(), src, false)
        };
        assert_eq!(got.dist, want);
    }

    #[test]
    fn path_distances() {
        let g = path_digraph(100);
        let got = parallel_bfs(&g, 0, true, &BfsParams::default());
        for v in 0..100 {
            assert_eq!(got.dist[v], v as u32);
        }
        assert_eq!(got.rounds, 100);
    }

    #[test]
    fn cycle_distances_wrap() {
        let g = cycle_digraph(10);
        let got = parallel_bfs(&g, 3, true, &BfsParams::default());
        assert_eq!(got.dist[3], 0);
        assert_eq!(got.dist[4], 1);
        assert_eq!(got.dist[2], 9);
    }

    #[test]
    fn unreachable_vertices_stay_unreached() {
        let g = path_digraph(5);
        let got = parallel_bfs(&g, 3, true, &BfsParams::default());
        assert_eq!(got.dist[0], UNREACHED);
        assert_eq!(got.dist[4], 1);
    }

    #[test]
    fn matches_sequential_on_random_graphs_both_directions() {
        for seed in 0..5u64 {
            let g = gnm_digraph(300, 1200, seed);
            check_against_sequential(&g, 0, true);
            check_against_sequential(&g, 7, false);
        }
    }

    #[test]
    fn dense_mode_triggers_and_stays_exact() {
        let g = star_digraph(5000);
        let got = parallel_bfs(&g, 0, true, &BfsParams::default());
        assert!(got.dense_rounds >= 1);
        assert!(got.dist[1..].iter().all(|&d| d == 1));
    }

    #[test]
    fn dense_disabled_matches_dense_enabled() {
        let g = gnm_digraph(400, 4000, 9);
        let a = parallel_bfs(&g, 0, true, &BfsParams::default());
        let b = parallel_bfs(&g, 0, true, &BfsParams { use_dense: false, ..Default::default() });
        assert_eq!(a.dist, b.dist);
    }
}

//! The BGSS SCC driver (Alg. 1) assembled from trimming, single- and
//! multi-reachability searches, and labeling.
//!
//! Structure (§4): trim → first SCC via two single-reachability searches
//! (with the dense-mode optimization) → `O(log_β n)` prefix-doubling
//! batches of forward+backward multi-reachability searches, each followed
//! by a labeling step that finishes strongly connected vertices and
//! refreshes cross-edge-pruning signatures. Pair tables are sized with the
//! §4.5 heuristic.

pub mod label;
pub mod trim;

use std::time::Duration;

use pscc_graph::{DiGraph, V};
use pscc_runtime::{random_permutation, AtomicBits, Timer};
use pscc_table::{next_table_capacity, PairTable};

use crate::config::SccConfig;
use crate::reach::{multi_reach, single_reach};
use crate::state::SccState;
use crate::stats::{SccStats, SearchRecord};
use crate::verify::component_stats;

pub use label::{label_from_multi, label_from_single, LabelScratch};
pub use trim::trim;

/// The result of an SCC computation.
#[derive(Clone, Debug)]
pub struct SccResult {
    /// Per-vertex component label. Labels are arbitrary but consistent:
    /// `labels[u] == labels[v]` iff `u` and `v` are strongly connected.
    pub labels: Vec<u64>,
    /// Number of strongly connected components.
    pub num_sccs: usize,
    /// Size of the largest SCC.
    pub largest_scc: usize,
}

/// Computes the strongly connected components of `g`.
pub fn parallel_scc(g: &DiGraph, cfg: &SccConfig) -> SccResult {
    parallel_scc_with_stats(g, cfg).0
}

/// Computes SCCs and returns detailed instrumentation ([`SccStats`]).
pub fn parallel_scc_with_stats(g: &DiGraph, cfg: &SccConfig) -> (SccResult, SccStats) {
    let n = g.n();
    let mut stats = SccStats::default();
    let total = Timer::start();
    if n == 0 {
        return (SccResult { labels: Vec::new(), num_sccs: 0, largest_scc: 0 }, stats);
    }

    let state = SccState::new(n);

    // Phase 1: trimming (§4.1).
    stats.trimmed = stats.breakdown.run("trim", || trim(g, &state, cfg.iterative_trim));
    let mut unfinished = n - stats.trimmed;

    // Random permutation and prefix-doubling batches (Alg. 1 line 2).
    let perm = stats.breakdown.run("other", || random_permutation(n, cfg.seed));
    let scratch = stats.breakdown.run("other", || LabelScratch::new(n));

    let mut cursor = 0usize;
    let mut batch_size = 1usize;
    let mut prev_pairs = 0usize;

    while cursor < n && unfinished > 0 {
        let end = (cursor + batch_size).min(n);
        let sources: Vec<V> =
            perm[cursor..end].iter().copied().filter(|&v| !state.is_done(v)).collect();
        cursor = end;
        batch_size = next_batch_size(batch_size, cfg.beta);
        if sources.is_empty() {
            continue;
        }
        stats.num_batches += 1;
        let batch = stats.num_batches;

        if batch == 1 && sources.len() == 1 {
            // Phase 2: first SCC via single-reachability with dense mode
            // (§4.2).
            let s0 = sources[0];
            let params = cfg.single_params();
            let fvis = AtomicBits::new(n);
            let bvis = AtomicBits::new(n);
            let (fo, bo) = {
                let t = Timer::start();
                let fo = single_reach(g, s0, true, &state.labels, &params, &fvis);
                let bo = single_reach(g, s0, false, &state.labels, &params, &bvis);
                stats.breakdown.add("first_scc", t.elapsed());
                (fo, bo)
            };
            stats.searches.push(SearchRecord {
                batch,
                sources: 1,
                forward: true,
                multi: false,
                rounds: fo.rounds,
                dense_rounds: fo.dense_rounds,
                reached: fo.visited,
            });
            stats.searches.push(SearchRecord {
                batch,
                sources: 1,
                forward: false,
                multi: false,
                rounds: bo.rounds,
                dense_rounds: bo.dense_rounds,
                reached: bo.visited,
            });
            let newly =
                stats.breakdown.run("labeling", || label_from_single(&state, s0, &fvis, &bvis));
            unfinished -= newly;
            prev_pairs = fo.visited + bo.visited;
        } else {
            // Phase 3: multi-reachability batches (§4.3).
            let cap = if cfg.naive_table_sizing {
                1024 // ablation: pay the copy-growth the heuristic avoids
            } else {
                next_table_capacity(prev_pairs, unfinished)
            };
            let mut t_out = PairTable::with_capacity(cap);
            let mut t_in = PairTable::with_capacity(cap);
            let params = cfg.multi_params();
            let t = Timer::start();
            let fo = multi_reach(g, &sources, true, &state.labels, &params, &mut t_out);
            let bo = multi_reach(g, &sources, false, &state.labels, &params, &mut t_in);
            let elapsed = t.seconds();
            let resize = fo.resize_seconds + bo.resize_seconds;
            stats
                .breakdown
                .add("multi_search", Duration::from_secs_f64((elapsed - resize).max(0.0)));
            stats.breakdown.add("table_resize", Duration::from_secs_f64(resize));
            stats.searches.push(SearchRecord {
                batch,
                sources: sources.len(),
                forward: true,
                multi: true,
                rounds: fo.rounds,
                dense_rounds: 0,
                reached: fo.pairs_added,
            });
            stats.searches.push(SearchRecord {
                batch,
                sources: sources.len(),
                forward: false,
                multi: true,
                rounds: bo.rounds,
                dense_rounds: 0,
                reached: bo.pairs_added,
            });
            let newly = stats
                .breakdown
                .run("labeling", || label_from_multi(&state, &t_out, &t_in, &scratch));
            unfinished -= newly;
            prev_pairs = t_out.len() + t_in.len();
        }
    }

    assert_eq!(unfinished, 0, "BGSS must finish every vertex");
    state.debug_assert_all_done();

    let labels = state.labels_snapshot();
    let (num_sccs, largest_scc) = component_stats(&labels);
    stats.total_seconds = total.seconds();
    (SccResult { labels, num_sccs, largest_scc }, stats)
}

/// Computes SCCs of the subgraph of `g` induced by `vertices`, overlaid
/// with `extra_arcs` (global endpoints, both inside `vertices`).
///
/// Returns one label per view vertex, aligned with `vertices`: positions
/// `i` and `j` share a label iff `vertices[i]` and `vertices[j]` are
/// strongly connected **within** the overlaid induced subgraph (paths
/// through vertices outside the view do not count).
///
/// This is the subgraph entry point the incremental condensation repair
/// in `pscc-engine` drives: when a delta merges components, the full BGSS
/// machinery runs on just the affected region of the condensation DAG
/// plus the freshly inserted arcs, not on the whole graph.
pub fn parallel_scc_induced(
    g: &DiGraph,
    vertices: &[V],
    extra_arcs: &[(V, V)],
    cfg: &SccConfig,
) -> Vec<u64> {
    let view = pscc_graph::SubgraphView::new(g, vertices);
    let sub = view.extract_with_arcs(extra_arcs);
    parallel_scc(&sub, cfg).labels
}

/// Next prefix-doubling batch size: `max(s + 1, ceil(s·β))`.
fn next_batch_size(s: usize, beta: f64) -> usize {
    ((s as f64 * beta).ceil() as usize).max(s + 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{partition_groups, same_partition};
    use pscc_graph::fixtures::{fig2_graph, fig2_sccs, two_triangles_and_isolated};
    use pscc_graph::generators::random::{gnm_digraph, gnp_digraph};
    use pscc_graph::generators::simple::{bowtie_web, cycle_digraph, dag_layers, path_digraph};

    /// Sequential Tarjan oracle (iterative) for verification.
    fn tarjan_labels(g: &DiGraph) -> Vec<u32> {
        let n = g.n();
        let mut index = vec![u32::MAX; n];
        let mut low = vec![0u32; n];
        let mut on_stack = vec![false; n];
        let mut stack: Vec<u32> = Vec::new();
        let mut labels = vec![0u32; n];
        let mut next_index = 0u32;
        let mut next_label = 0u32;
        // Explicit DFS state machine: (vertex, neighbor cursor).
        let mut call: Vec<(u32, usize)> = Vec::new();
        for root in 0..n as u32 {
            if index[root as usize] != u32::MAX {
                continue;
            }
            call.push((root, 0));
            index[root as usize] = next_index;
            low[root as usize] = next_index;
            next_index += 1;
            stack.push(root);
            on_stack[root as usize] = true;
            while let Some(&mut (v, ref mut cursor)) = call.last_mut() {
                let ns = g.out_neighbors(v);
                if *cursor < ns.len() {
                    let u = ns[*cursor];
                    *cursor += 1;
                    if index[u as usize] == u32::MAX {
                        index[u as usize] = next_index;
                        low[u as usize] = next_index;
                        next_index += 1;
                        stack.push(u);
                        on_stack[u as usize] = true;
                        call.push((u, 0));
                    } else if on_stack[u as usize] {
                        low[v as usize] = low[v as usize].min(index[u as usize]);
                    }
                } else {
                    call.pop();
                    if let Some(&mut (p, _)) = call.last_mut() {
                        low[p as usize] = low[p as usize].min(low[v as usize]);
                    }
                    if low[v as usize] == index[v as usize] {
                        loop {
                            let w = stack.pop().unwrap();
                            on_stack[w as usize] = false;
                            labels[w as usize] = next_label;
                            if w == v {
                                break;
                            }
                        }
                        next_label += 1;
                    }
                }
            }
        }
        labels
    }

    fn check(g: &DiGraph, cfg: &SccConfig) {
        let got = parallel_scc(g, cfg);
        let want = tarjan_labels(g);
        assert!(
            same_partition(&got.labels, &want),
            "partition mismatch (n={}, m={})",
            g.n(),
            g.m()
        );
    }

    #[test]
    fn fig2_example_partition() {
        let g = fig2_graph();
        let got = parallel_scc(&g, &SccConfig::default());
        assert_eq!(partition_groups(&got.labels), fig2_sccs());
        assert_eq!(got.num_sccs, 6);
        assert_eq!(got.largest_scc, 4);
    }

    #[test]
    fn cycle_is_one_scc() {
        let got = parallel_scc(&cycle_digraph(500), &SccConfig::default());
        assert_eq!(got.num_sccs, 1);
        assert_eq!(got.largest_scc, 500);
    }

    #[test]
    fn path_is_all_singletons() {
        let got = parallel_scc(&path_digraph(200), &SccConfig::default());
        assert_eq!(got.num_sccs, 200);
        assert_eq!(got.largest_scc, 1);
    }

    #[test]
    fn dag_is_all_singletons() {
        let g = dag_layers(8, 20, 3, 1);
        let got = parallel_scc(&g, &SccConfig::default());
        assert_eq!(got.num_sccs, g.n());
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let got = parallel_scc(&g, &SccConfig::default());
        assert_eq!(got.num_sccs, 0);
    }

    #[test]
    fn edgeless_graph_is_singletons() {
        let g = DiGraph::from_edges(7, &[]);
        let got = parallel_scc(&g, &SccConfig::default());
        assert_eq!(got.num_sccs, 7);
    }

    #[test]
    fn disjoint_triangles() {
        let g = two_triangles_and_isolated();
        let got = parallel_scc(&g, &SccConfig::default());
        assert_eq!(got.num_sccs, 3);
        assert_eq!(got.largest_scc, 3);
    }

    #[test]
    fn matches_tarjan_on_random_graphs_all_variants() {
        for seed in 0..6u64 {
            let g = gnm_digraph(250, 1000, seed);
            for cfg in [
                SccConfig::default(),
                SccConfig::plain(),
                SccConfig::vgc1(),
                SccConfig { iterative_trim: true, ..SccConfig::default() },
                SccConfig::default().with_tau(4),
            ] {
                check(&g, &cfg);
            }
        }
    }

    #[test]
    fn matches_tarjan_on_sparse_random() {
        // Sub-critical density: many medium SCCs.
        for seed in 0..4u64 {
            check(&gnm_digraph(400, 480, seed), &SccConfig::default());
        }
    }

    #[test]
    fn matches_tarjan_on_dense_random() {
        check(&gnp_digraph(120, 0.08, 3), &SccConfig::default());
    }

    #[test]
    fn matches_tarjan_on_bowtie() {
        let g = bowtie_web(300, 0.4, 2, 9);
        check(&g, &SccConfig::default());
        let got = parallel_scc(&g, &SccConfig::default());
        assert_eq!(got.largest_scc, 120, "core is the giant SCC");
    }

    #[test]
    fn deterministic_labels_for_fixed_seed() {
        let g = gnm_digraph(300, 1200, 11);
        let a = parallel_scc(&g, &SccConfig::default());
        let b = parallel_scc(&g, &SccConfig::default());
        assert_eq!(a.labels, b.labels, "XOR/max labeling must be deterministic");
    }

    #[test]
    fn different_seeds_same_partition() {
        let g = gnm_digraph(300, 1200, 13);
        let a = parallel_scc(&g, &SccConfig { seed: 1, ..SccConfig::default() });
        let b = parallel_scc(&g, &SccConfig { seed: 2, ..SccConfig::default() });
        assert!(same_partition(&a.labels, &b.labels));
    }

    #[test]
    fn stats_are_populated() {
        let g = gnm_digraph(400, 900, 5);
        let (res, stats) = parallel_scc_with_stats(&g, &SccConfig::default());
        assert!(res.num_sccs > 0);
        assert!(stats.num_batches >= 1);
        assert!(!stats.searches.is_empty());
        assert!(stats.total_seconds > 0.0);
        // Breakdown phases should cover most of the total.
        assert!(stats.breakdown.total_seconds() <= stats.total_seconds + 0.1);
    }

    #[test]
    fn vgc_uses_fewer_rounds_than_plain() {
        // Large-diameter lattice: the Fig. 10 effect.
        let g = pscc_graph::generators::lattice::lattice_sqr(40, 40, 3);
        let (_, vgc) = parallel_scc_with_stats(&g, &SccConfig::default());
        let (_, plain) = parallel_scc_with_stats(&g, &SccConfig::plain());
        assert!(
            vgc.total_rounds() * 2 <= plain.total_rounds(),
            "vgc {} rounds vs plain {}",
            vgc.total_rounds(),
            plain.total_rounds()
        );
    }

    #[test]
    fn lattice_partition_matches_tarjan() {
        let g = pscc_graph::generators::lattice::lattice_sqr_prime(25, 25, 7);
        check(&g, &SccConfig::default());
        check(&g, &SccConfig::plain());
    }

    #[test]
    fn knn_partition_matches_tarjan() {
        let pts = pscc_graph::generators::knn::uniform_points(400, 21);
        let g = pscc_graph::generators::knn::knn_digraph(&pts, 3);
        check(&g, &SccConfig::default());
    }

    #[test]
    fn batch_sizes_grow_geometrically() {
        let mut s = 1usize;
        let sizes: Vec<usize> = (0..8)
            .map(|_| {
                let cur = s;
                s = next_batch_size(s, 1.5);
                cur
            })
            .collect();
        assert_eq!(sizes, vec![1, 2, 3, 5, 8, 12, 18, 27]);
    }

    #[test]
    fn naive_table_sizing_is_correct_but_resizes_more() {
        let g = gnm_digraph(2000, 8000, 17);
        let want = tarjan_labels(&g);
        let naive_cfg = SccConfig { naive_table_sizing: true, ..SccConfig::default() };
        let (res, naive) = parallel_scc_with_stats(&g, &naive_cfg);
        assert!(same_partition(&res.labels, &want));
        let (_, smart) = parallel_scc_with_stats(&g, &SccConfig::default());
        assert!(
            naive.phase_seconds("table_resize") >= smart.phase_seconds("table_resize"),
            "naive sizing should spend at least as much time resizing              (naive {:.6}s vs heuristic {:.6}s)",
            naive.phase_seconds("table_resize"),
            smart.phase_seconds("table_resize")
        );
    }

    #[test]
    fn adaptive_tau_is_correct() {
        let g = gnm_digraph(800, 2400, 23);
        let want = tarjan_labels(&g);
        let cfg = SccConfig { adaptive_tau: true, ..SccConfig::default() };
        let res = parallel_scc(&g, &cfg);
        assert!(same_partition(&res.labels, &want));
    }

    #[test]
    fn induced_scc_matches_tarjan_on_the_extracted_subgraph() {
        let g = gnm_digraph(200, 700, 31);
        // An arbitrary subset: every third vertex.
        let vertices: Vec<V> = (0..200).step_by(3).map(|v| v as V).collect();
        let labels = parallel_scc_induced(&g, &vertices, &[], &SccConfig::default());
        let view = pscc_graph::SubgraphView::new(&g, &vertices);
        let want = tarjan_labels(&view.extract());
        assert_eq!(labels.len(), vertices.len());
        assert!(same_partition(&labels, &want));
    }

    #[test]
    fn induced_scc_sees_extra_arcs() {
        // A path 0 -> 1 -> 2 -> 3: no cycles anywhere.
        let g = path_digraph(4);
        let vertices = vec![1, 2, 3];
        let plain = parallel_scc_induced(&g, &vertices, &[], &SccConfig::default());
        assert_eq!(component_stats(&plain).0, 3);
        // Overlaying the back arc 3 -> 1 collapses the view to one SCC.
        let closed = parallel_scc_induced(&g, &vertices, &[(3, 1)], &SccConfig::default());
        assert_eq!(component_stats(&closed).0, 1);
    }

    #[test]
    fn induced_scc_ignores_paths_through_outside_vertices() {
        // 0 <-> 1 via 2: 1 -> 2 -> 0 and 0 -> 1. With 2 outside the view,
        // 0 and 1 are *not* strongly connected in the induced subgraph.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0)]);
        let labels = parallel_scc_induced(&g, &[0, 1], &[], &SccConfig::default());
        assert_ne!(labels[0], labels[1]);
    }

    #[test]
    fn self_loops_everywhere() {
        let edges: Vec<(V, V)> = (0..50).map(|v| (v, v)).collect();
        let g = DiGraph::from_edges(50, &edges);
        let got = parallel_scc(&g, &SccConfig::default());
        assert_eq!(got.num_sccs, 50);
    }
}

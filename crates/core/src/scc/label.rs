//! Labeling (§4.4): after each batch of reachability searches, finish the
//! vertices strongly connected to a source and refresh the signature labels
//! of everyone else.
//!
//! A vertex `v` is finished when some source `s` both reaches and is
//! reached by it — i.e. the pair `(v, s)` appears in both direction tables.
//! Its final label is the **maximum** such source (Alg. 1 line 11), which
//! is identical for every member of the SCC because the set of strongly
//! connected sources is an SCC invariant.
//!
//! Unfinished vertices get `L[v] ← hash(L[v], R1, R2)` (line 12), realized
//! as a commutative XOR accumulation of per-source hashes (so the parallel
//! accumulation order does not matter) folded into the previous label.

use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};

use pscc_runtime::rng::{hash64, hash_combine};
use pscc_runtime::{atomic_max_u32, par_for, AtomicBits};
use pscc_table::{pair_source, pair_vertex, PairTable};

use crate::state::{SccState, FINAL_TAG};

/// Scratch arrays reused across batches by [`label_from_multi`].
pub struct LabelScratch {
    fwd_sig: Vec<AtomicU64>,
    bwd_sig: Vec<AtomicU64>,
    /// `winner[v] = s + 1` for the max source `s` strongly connected to `v`
    /// this batch (0 = none).
    winner: Vec<AtomicU32>,
}

impl LabelScratch {
    /// Allocates scratch for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        Self {
            fwd_sig: (0..n).map(|_| AtomicU64::new(0)).collect(),
            bwd_sig: (0..n).map(|_| AtomicU64::new(0)).collect(),
            winner: (0..n).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    fn clear(&self) {
        par_for(self.fwd_sig.len(), |i| {
            self.fwd_sig[i].store(0, Ordering::Relaxed);
            self.bwd_sig[i].store(0, Ordering::Relaxed);
            self.winner[i].store(0, Ordering::Relaxed);
        });
    }
}

/// Labeling after the first-SCC single-reachability searches: `fvis`/`bvis`
/// are the forward/backward visited sets from source `s0`. Returns the
/// number of newly finished vertices.
pub fn label_from_single(state: &SccState, s0: u32, fvis: &AtomicBits, bvis: &AtomicBits) -> usize {
    let n = state.n();
    let newly = AtomicUsize::new(0);
    par_for(n, |v| {
        if state.is_done(v as u32) {
            return;
        }
        let in_f = fvis.get(v);
        let in_b = bvis.get(v);
        if in_f && in_b {
            state.finish(v as u32, s0);
            newly.fetch_add(1, Ordering::Relaxed);
        } else {
            let sig = in_f as u64 | (in_b as u64) << 1;
            let old = state.labels[v].load(Ordering::Relaxed);
            state.labels[v].store(hash_combine(old, sig) & !FINAL_TAG, Ordering::Relaxed);
        }
    });
    newly.load(Ordering::Relaxed)
}

/// Labeling after a batch of multi-reachability searches with forward pair
/// table `t_out` and backward table `t_in`. Returns the number of newly
/// finished vertices.
pub fn label_from_multi(
    state: &SccState,
    t_out: &PairTable,
    t_in: &PairTable,
    scratch: &LabelScratch,
) -> usize {
    scratch.clear();

    // Forward pairs: accumulate signatures and detect strong connections.
    t_out.for_each(|key| {
        let v = pair_vertex(key) as usize;
        let s = pair_source(key);
        scratch.fwd_sig[v].fetch_xor(hash64((s as u64) << 1 | 1), Ordering::Relaxed);
        if t_in.contains(key) {
            atomic_max_u32(&scratch.winner[v], s + 1);
        }
    });
    // Backward pairs: signature only.
    t_in.for_each(|key| {
        let v = pair_vertex(key) as usize;
        let s = pair_source(key);
        scratch.bwd_sig[v].fetch_xor(hash64((s as u64) << 1), Ordering::Relaxed);
    });

    let newly = AtomicUsize::new(0);
    par_for(state.n(), |v| {
        if state.is_done(v as u32) {
            return;
        }
        let w = scratch.winner[v].load(Ordering::Relaxed);
        if w > 0 {
            state.finish(v as u32, w - 1);
            newly.fetch_add(1, Ordering::Relaxed);
        } else {
            let f = scratch.fwd_sig[v].load(Ordering::Relaxed);
            let b = scratch.bwd_sig[v].load(Ordering::Relaxed);
            let old = state.labels[v].load(Ordering::Relaxed);
            let new = hash_combine(hash_combine(old, f), b) & !FINAL_TAG;
            state.labels[v].store(new, Ordering::Relaxed);
        }
    });
    newly.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_table::pack_pair;

    #[test]
    fn single_labeling_finishes_intersection() {
        let state = SccState::new(4);
        let f = AtomicBits::new(4);
        let b = AtomicBits::new(4);
        // 0 reaches {0,1,2}; {0,3} reach 0.
        f.set(0);
        f.set(1);
        f.set(2);
        b.set(0);
        b.set(3);
        let newly = label_from_single(&state, 0, &f, &b);
        assert_eq!(newly, 1);
        assert!(state.is_done(0));
        assert_eq!(state.label(0), FINAL_TAG);
        // 1 and 2 share a signature (forward only) => same label;
        // 3 (backward only) differs.
        assert_eq!(state.label(1), state.label(2));
        assert_ne!(state.label(1), state.label(3));
    }

    #[test]
    fn multi_labeling_uses_max_strongly_connected_source() {
        let state = SccState::new(3);
        let scratch = LabelScratch::new(3);
        let t_out = PairTable::with_capacity(64);
        let t_in = PairTable::with_capacity(64);
        // Vertex 0 strongly connected to sources 1 and 2 (and others only
        // one-directionally).
        for s in [1u32, 2] {
            t_out.insert(pack_pair(0, s));
            t_in.insert(pack_pair(0, s));
        }
        t_out.insert(pack_pair(1, 1));
        t_in.insert(pack_pair(1, 1));
        let newly = label_from_multi(&state, &t_out, &t_in, &scratch);
        assert_eq!(newly, 2);
        assert_eq!(state.label(0), FINAL_TAG | 2, "max source wins");
        assert_eq!(state.label(1), FINAL_TAG | 1);
    }

    #[test]
    fn multi_labeling_signatures_distinguish_reach_sets() {
        let state = SccState::new(4);
        let scratch = LabelScratch::new(4);
        let t_out = PairTable::with_capacity(64);
        let t_in = PairTable::with_capacity(64);
        // v1 and v2 reached by source 5 forward; v3 backward only.
        t_out.insert(pack_pair(1, 5));
        t_out.insert(pack_pair(2, 5));
        t_in.insert(pack_pair(3, 5));
        let newly = label_from_multi(&state, &t_out, &t_in, &scratch);
        assert_eq!(newly, 0);
        assert_eq!(state.label(1), state.label(2));
        assert_ne!(state.label(1), state.label(3));
        // Untouched vertex 0 differs from all touched ones.
        assert_ne!(state.label(0), state.label(1));
        assert_ne!(state.label(0), state.label(3));
    }

    #[test]
    fn labeling_skips_done_vertices() {
        let state = SccState::new(2);
        state.finish(0, 0);
        let scratch = LabelScratch::new(2);
        let t_out = PairTable::with_capacity(8);
        let t_in = PairTable::with_capacity(8);
        t_out.insert(pack_pair(0, 1));
        t_in.insert(pack_pair(0, 1));
        let newly = label_from_multi(&state, &t_out, &t_in, &scratch);
        assert_eq!(newly, 0);
        assert_eq!(state.label(0), FINAL_TAG, "done label untouched");
    }

    #[test]
    fn signature_accumulation_is_order_independent() {
        // Two scratch runs inserting pairs in different orders must agree.
        let mk = |order: &[(u32, u32)]| {
            let state = SccState::new(2);
            let scratch = LabelScratch::new(2);
            let t_out = PairTable::with_capacity(64);
            let t_in = PairTable::with_capacity(64);
            for &(v, s) in order {
                t_out.insert(pack_pair(v, s));
            }
            label_from_multi(&state, &t_out, &t_in, &scratch);
            state.label(0)
        };
        let a = mk(&[(0, 1), (0, 2), (0, 3)]);
        let b = mk(&[(0, 3), (0, 1), (0, 2)]);
        assert_eq!(a, b);
    }
}

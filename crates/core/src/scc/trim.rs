//! Trimming (§4.1): vertices with zero in- or out-degree are singleton
//! SCCs and are finished immediately. The paper trims once up front; the
//! iterative variant (used by Multi-step-style algorithms and available as
//! an extension) repeats against the *alive* subgraph to a fixed point.

use pscc_graph::{DiGraph, V};
use pscc_runtime::{pack_index, par_for};

use crate::state::SccState;

/// Trims `g`, finishing every trimmed vertex as its own SCC. Returns the
/// number of vertices trimmed.
pub fn trim(g: &DiGraph, state: &SccState, iterative: bool) -> usize {
    let n = g.n();
    let mut total = 0usize;

    // First pass uses static graph degrees.
    let first: Vec<usize> = pack_index(n, |v| {
        !state.is_done(v as V) && (g.out_degree(v as V) == 0 || g.in_degree(v as V) == 0)
    });
    par_for(first.len(), |i| {
        let v = first[i] as V;
        state.finish(v, v);
    });
    total += first.len();

    if !iterative {
        return total;
    }

    // Iterative passes: a vertex dies when all of its in- or all of its
    // out-neighbours (excluding itself) are dead.
    loop {
        let next: Vec<usize> = pack_index(n, |v| {
            if state.is_done(v as V) {
                return false;
            }
            let vv = v as V;
            let no_in = g.in_neighbors(vv).iter().all(|&u| u == vv || state.is_done(u));
            let no_out = g.out_neighbors(vv).iter().all(|&u| u == vv || state.is_done(u));
            no_in || no_out
        });
        if next.is_empty() {
            break;
        }
        par_for(next.len(), |i| {
            let v = next[i] as V;
            state.finish(v, v);
        });
        total += next.len();
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph, star_digraph};

    #[test]
    fn cycle_trims_nothing() {
        let g = cycle_digraph(10);
        let state = SccState::new(10);
        assert_eq!(trim(&g, &state, false), 0);
        assert_eq!(state.unfinished(), 10);
    }

    #[test]
    fn path_single_pass_trims_endpoints() {
        let g = path_digraph(5);
        let state = SccState::new(5);
        assert_eq!(trim(&g, &state, false), 2);
        assert!(state.is_done(0) && state.is_done(4));
        assert!(!state.is_done(2));
    }

    #[test]
    fn path_iterative_trims_everything() {
        let g = path_digraph(6);
        let state = SccState::new(6);
        assert_eq!(trim(&g, &state, true), 6);
        assert_eq!(state.unfinished(), 0);
    }

    #[test]
    fn star_trims_all() {
        let g = star_digraph(8);
        let state = SccState::new(8);
        // Leaves have no out-degree, center then loses all out-neighbours —
        // but single-pass already kills everyone (center has in-degree 0).
        assert_eq!(trim(&g, &state, false), 8);
    }

    #[test]
    fn trimmed_vertices_get_singleton_labels() {
        let g = path_digraph(3);
        let state = SccState::new(3);
        trim(&g, &state, true);
        let labels = state.labels_snapshot();
        // All distinct: each vertex its own SCC.
        assert_ne!(labels[0], labels[1]);
        assert_ne!(labels[1], labels[2]);
    }

    #[test]
    fn self_loop_vertex_survives_iterative_trim() {
        // v=1 has a self loop; trimming must not kill it even though it has
        // no other neighbours... actually in/out neighbours are only itself,
        // so the "excluding itself" rule trims it as a singleton — which is
        // correct: a self-looping vertex IS a singleton SCC.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 1), (1, 2)]);
        let state = SccState::new(3);
        let t = trim(&g, &state, true);
        assert_eq!(t, 3);
    }

    #[test]
    fn trim_respects_already_done() {
        let g = path_digraph(4);
        let state = SccState::new(4);
        state.finish(0, 0);
        // Vertex 0 already done; only 3 is freshly trimmable in one pass.
        assert_eq!(trim(&g, &state, false), 1);
    }
}

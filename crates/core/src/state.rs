//! Shared per-vertex SCC state: labels and done flags.
//!
//! Labels play two roles (Alg. 1):
//!
//! 1. For a *finished* vertex, the label is the final SCC id — a vertex id
//!    tagged with [`FINAL_TAG`] so it can never collide with a signature.
//! 2. For an *unfinished* vertex, the label is a running hash of its
//!    reachability **signature** (which sources reach it / it reaches).
//!    Two vertices in the same SCC always share the signature, hence the
//!    label; an edge whose endpoints have different labels is a *cross
//!    edge* and is skipped in later searches (§4.4).

use std::sync::atomic::{AtomicU64, Ordering};

use pscc_runtime::{par_for, AtomicBits};

/// High bit tagging a final SCC label. Signature labels always have it
/// clear, final labels always have it set.
pub const FINAL_TAG: u64 = 1 << 63;

/// The initial signature label shared by every vertex.
pub const INIT_LABEL: u64 = 0;

/// Mutable per-vertex state of an SCC computation.
pub struct SccState {
    /// Per-vertex label (signature hash or tagged final SCC id).
    pub labels: Vec<AtomicU64>,
    /// Finished flags.
    pub done: AtomicBits,
}

impl SccState {
    /// Fresh state for an `n`-vertex graph.
    pub fn new(n: usize) -> Self {
        Self {
            labels: (0..n).map(|_| AtomicU64::new(INIT_LABEL)).collect(),
            done: AtomicBits::new(n),
        }
    }

    /// Number of vertices.
    pub fn n(&self) -> usize {
        self.labels.len()
    }

    /// Loads vertex `v`'s label.
    #[inline]
    pub fn label(&self, v: u32) -> u64 {
        self.labels[v as usize].load(Ordering::Relaxed)
    }

    /// Marks `v` finished with final SCC representative `rep`.
    #[inline]
    pub fn finish(&self, v: u32, rep: u32) {
        self.labels[v as usize].store(FINAL_TAG | rep as u64, Ordering::Relaxed);
        self.done.set(v as usize);
    }

    /// True if `v` has its final SCC label.
    #[inline]
    pub fn is_done(&self, v: u32) -> bool {
        self.done.get(v as usize)
    }

    /// Number of unfinished vertices (parallel).
    pub fn unfinished(&self) -> usize {
        self.n() - self.done.count_ones()
    }

    /// Snapshot of all labels.
    pub fn labels_snapshot(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.n()];
        struct P(*mut u64);
        // SAFETY: P is only shared with the loop below, where each index
        // i < n is written by exactly one task.
        unsafe impl Sync for P {}
        impl P {
            fn get(&self) -> *mut u64 {
                self.0
            }
        }
        let p = P(out.as_mut_ptr());
        par_for(self.n(), |i| {
            // SAFETY: i < n indexes the n-entry out buffer; par_for
            // visits each index exactly once, so writes never alias.
            unsafe { *p.get().add(i) = self.labels[i].load(Ordering::Relaxed) };
        });
        out
    }

    /// Asserts every vertex is finished (debug builds only).
    pub fn debug_assert_all_done(&self) {
        debug_assert_eq!(self.done.count_ones(), self.n(), "unfinished vertices remain");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_state_is_unfinished() {
        let s = SccState::new(10);
        assert_eq!(s.unfinished(), 10);
        assert!(!s.is_done(3));
        assert_eq!(s.label(3), INIT_LABEL);
    }

    #[test]
    fn finish_tags_label() {
        let s = SccState::new(4);
        s.finish(2, 7);
        assert!(s.is_done(2));
        assert_eq!(s.label(2), FINAL_TAG | 7);
        assert_eq!(s.unfinished(), 3);
    }

    #[test]
    fn final_labels_never_collide_with_signatures() {
        // Signature updates mask out FINAL_TAG; check the invariant holds.
        let sig = pscc_runtime::rng::hash_combine(123, 456) & !FINAL_TAG;
        assert_eq!(sig & FINAL_TAG, 0);
        assert_ne!(sig, FINAL_TAG);
    }

    #[test]
    fn snapshot_matches_state() {
        let s = SccState::new(5);
        s.finish(0, 0);
        s.labels[3].store(42, Ordering::Relaxed);
        let snap = s.labels_snapshot();
        assert_eq!(snap[0], FINAL_TAG);
        assert_eq!(snap[3], 42);
        assert_eq!(snap[1], INIT_LABEL);
    }
}

//! Instrumentation collected by the SCC driver: the Fig. 9 phase breakdown
//! and the Fig. 10 per-search round counts.

use pscc_runtime::PhaseTimer;

/// The Fig. 9 phase names, in display order.
pub const PHASES: [&str; 6] =
    ["trim", "first_scc", "multi_search", "table_resize", "labeling", "other"];

/// One reachability search's vital signs (one data point of Fig. 10).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SearchRecord {
    /// 1-based batch index.
    pub batch: usize,
    /// Number of sources.
    pub sources: usize,
    /// Forward (out-edge) search?
    pub forward: bool,
    /// Multi-reachability (vs single)?
    pub multi: bool,
    /// Frontier rounds executed.
    pub rounds: usize,
    /// Rounds run in dense mode (single-reach only).
    pub dense_rounds: usize,
    /// Reachability pairs produced (multi) or vertices visited (single).
    pub reached: usize,
}

/// Statistics of a full SCC computation.
#[derive(Debug, Default)]
pub struct SccStats {
    /// Wall-clock per phase (Fig. 9 categories).
    pub breakdown: PhaseTimer,
    /// Every reachability search, in execution order (Fig. 10 raw data).
    pub searches: Vec<SearchRecord>,
    /// Number of non-empty source batches processed.
    pub num_batches: usize,
    /// Vertices finished by trimming.
    pub trimmed: usize,
    /// End-to-end seconds.
    pub total_seconds: f64,
}

impl SccStats {
    /// Total rounds across all searches.
    pub fn total_rounds(&self) -> usize {
        self.searches.iter().map(|s| s.rounds).sum()
    }

    /// Seconds in a named phase (zero if absent).
    pub fn phase_seconds(&self, phase: &str) -> f64 {
        self.breakdown.seconds(phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_rounds_sums_searches() {
        let mut s = SccStats::default();
        for rounds in [3usize, 4, 5] {
            s.searches.push(SearchRecord {
                batch: 1,
                sources: 1,
                forward: true,
                multi: false,
                rounds,
                dense_rounds: 0,
                reached: 0,
            });
        }
        assert_eq!(s.total_rounds(), 12);
    }

    #[test]
    fn missing_phase_is_zero() {
        let s = SccStats::default();
        assert_eq!(s.phase_seconds("trim"), 0.0);
    }

    #[test]
    fn phase_names_cover_fig9() {
        assert!(PHASES.contains(&"table_resize"));
        assert_eq!(PHASES.len(), 6);
    }
}

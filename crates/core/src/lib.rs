//! # pscc-core — parallel SCC via faster reachability
//!
//! The primary contribution of *"Parallel Strong Connectivity Based on
//! Faster Reachability"* (SIGMOD 2023): the BGSS strongly-connected-
//! components algorithm (Blelloch–Gu–Shun–Sun, J. ACM 2020) driven by
//! reachability searches that use
//!
//! * **vertical granularity control (VGC, §3.1–3.2)** — each frontier
//!   vertex runs a sequential multi-hop *local search* of up to `τ` visited
//!   neighbours in a stack-local queue, collapsing many BFS rounds into one
//!   and hiding scheduling overhead on sparse, large-diameter graphs;
//! * the **parallel hash bag** (`pscc-bag`) for frontier maintenance
//!   without the edge-revisit scheme;
//! * the **phase-concurrent pair table** (`pscc-table`) with the §4.5
//!   sizing heuristic for reachability pairs.
//!
//! Entry point: [`scc::parallel_scc`] / [`scc::parallel_scc_with_stats`]
//! configured by [`config::SccConfig`] (the `plain` / `vgc1` / `final`
//! variants of Fig. 9 are `SccConfig::plain()`, `SccConfig::vgc1()`, and
//! `SccConfig::default()`).

pub mod config;
pub mod frontier;
pub mod reach;
pub mod scc;
pub mod state;
pub mod stats;
pub mod verify;

pub use config::{ReachParams, SccConfig};
pub use frontier::{edge_map, EdgeMapOptions, VertexSubset};
pub use scc::{parallel_scc, parallel_scc_induced, parallel_scc_with_stats, SccResult};
pub use state::{SccState, FINAL_TAG};
pub use stats::{SccStats, SearchRecord};
pub use verify::{component_stats, normalize_labels, same_partition};

//! Configuration for the SCC algorithm and its reachability searches.
//!
//! Defaults follow Tab. 1 of the paper: `τ = 512`, `β = 1.5`,
//! hash-bag `λ = 2¹⁰`, `σ = 50`.

use pscc_bag::BagConfig;

/// Parameters of a single- or multi-reachability search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ReachParams {
    /// Enable VGC local search.
    pub vgc: bool,
    /// VGC threshold τ: the number of (successful or unsuccessful) neighbor
    /// visits a local search performs before flushing to the next frontier.
    pub tau: usize,
    /// Enable the dense (bottom-up) mode for single-reachability (§4.2).
    pub use_dense: bool,
    /// Dense-mode switch denominator: go dense when
    /// `|F| + edges(F) > m / dense_threshold`.
    pub dense_threshold: usize,
    /// Choose τ per round from the frontier size instead of using the
    /// fixed value (the §8 "dynamic τ" future-work extension): small
    /// frontiers get deeper local searches, large frontiers shallower ones.
    pub adaptive_tau: bool,
    /// Hash-bag parameters for the frontier.
    pub bag: BagConfig,
}

impl ReachParams {
    /// The τ used for a round with `frontier_len` tasks. In adaptive mode
    /// the target is enough total work to hide scheduling overhead across
    /// all workers (`P · 2048` visits), clamped to `[64, 2^16]`; otherwise
    /// the fixed τ.
    pub fn effective_tau(&self, frontier_len: usize) -> usize {
        if self.adaptive_tau {
            let target = pscc_runtime::num_workers() * 2048;
            (target / frontier_len.max(1)).clamp(64, 1 << 16)
        } else {
            self.tau
        }
    }
}

impl Default for ReachParams {
    fn default() -> Self {
        Self {
            vgc: true,
            tau: 512,
            use_dense: true,
            dense_threshold: 20,
            adaptive_tau: false,
            bag: BagConfig::default(),
        }
    }
}

impl ReachParams {
    /// Plain BFS-style search: hash-bag frontier but no local search.
    pub fn plain() -> Self {
        Self { vgc: false, ..Self::default() }
    }

    /// VGC with per-round adaptive τ (§8 future work).
    pub fn adaptive() -> Self {
        Self { adaptive_tau: true, ..Self::default() }
    }
}

/// Configuration of the full BGSS SCC computation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SccConfig {
    /// VGC threshold τ (Tab. 1 default 512 = 2⁹).
    pub tau: usize,
    /// Prefix-doubling multiplier β for batch sizes (Tab. 1 default 1.5).
    pub beta: f64,
    /// Use VGC in the first-SCC single-reachability searches
    /// ("VGC1" of Fig. 9).
    pub vgc_single: bool,
    /// Use VGC in the multi-reachability searches ("Final" of Fig. 9).
    pub vgc_multi: bool,
    /// Enable the dense/bottom-up direction-optimization for the first SCC.
    pub use_dense: bool,
    /// Run trimming to a fixed point instead of a single pass (extension;
    /// the paper trims once).
    pub iterative_trim: bool,
    /// Per-round adaptive τ (extension, §8 future work).
    pub adaptive_tau: bool,
    /// Ablation switch: size pair tables naively (fixed small capacity,
    /// growing by rehash) instead of the §4.5 `max(0.3b, 1.5a)` heuristic.
    pub naive_table_sizing: bool,
    /// Seed for the random vertex permutation.
    pub seed: u64,
    /// Hash-bag parameters.
    pub bag: BagConfig,
}

impl Default for SccConfig {
    fn default() -> Self {
        Self {
            tau: 512,
            beta: 1.5,
            vgc_single: true,
            vgc_multi: true,
            use_dense: true,
            iterative_trim: false,
            adaptive_tau: false,
            naive_table_sizing: false,
            seed: 0x5cc,
            bag: BagConfig::default(),
        }
    }
}

impl SccConfig {
    /// The "Plain" variant of Fig. 9: hash bags, no VGC anywhere.
    pub fn plain() -> Self {
        Self { vgc_single: false, vgc_multi: false, ..Self::default() }
    }

    /// The "VGC1" variant of Fig. 9: VGC only in single-reachability.
    pub fn vgc1() -> Self {
        Self { vgc_single: true, vgc_multi: false, ..Self::default() }
    }

    /// The "Final" variant of Fig. 9 (same as `default`).
    pub fn final_version() -> Self {
        Self::default()
    }

    /// Same configuration with a different τ (for the Fig. 11 sweep).
    pub fn with_tau(self, tau: usize) -> Self {
        Self { tau, ..self }
    }

    /// Reach parameters for the single-reachability (first SCC) searches.
    pub fn single_params(&self) -> ReachParams {
        ReachParams {
            vgc: self.vgc_single && self.tau > 1,
            tau: self.tau,
            use_dense: self.use_dense,
            dense_threshold: 20,
            adaptive_tau: self.adaptive_tau,
            bag: self.bag,
        }
    }

    /// Reach parameters for the multi-reachability searches.
    pub fn multi_params(&self) -> ReachParams {
        ReachParams {
            vgc: self.vgc_multi && self.tau > 1,
            tau: self.tau,
            use_dense: false, // dense mode is unsound for multi-reach (§4.2)
            dense_threshold: 20,
            adaptive_tau: self.adaptive_tau,
            bag: self.bag,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_tab1() {
        let c = SccConfig::default();
        assert_eq!(c.tau, 512, "τ = 2^9");
        assert!((c.beta - 1.5).abs() < 1e-12, "β = 1.5");
        assert_eq!(c.bag.lambda, 1 << 10, "λ = 2^10");
        assert_eq!(c.bag.sigma, 50, "σ = 50");
    }

    #[test]
    fn fig9_variants() {
        let plain = SccConfig::plain();
        assert!(!plain.vgc_single && !plain.vgc_multi);
        let vgc1 = SccConfig::vgc1();
        assert!(vgc1.vgc_single && !vgc1.vgc_multi);
        let fin = SccConfig::final_version();
        assert!(fin.vgc_single && fin.vgc_multi);
    }

    #[test]
    fn multi_params_never_dense() {
        let c = SccConfig::default();
        assert!(!c.multi_params().use_dense);
        assert!(c.single_params().use_dense);
    }

    #[test]
    fn effective_tau_fixed_mode_is_constant() {
        let p = ReachParams::default();
        assert_eq!(p.effective_tau(1), 512);
        assert_eq!(p.effective_tau(1_000_000), 512);
    }

    #[test]
    fn effective_tau_adaptive_shrinks_with_frontier() {
        let p = ReachParams::adaptive();
        let small = p.effective_tau(1);
        let large = p.effective_tau(1_000_000);
        assert!(small >= large, "small frontier should get larger tau");
        assert!(large >= 64 && small <= 1 << 16, "clamping");
    }

    #[test]
    fn tau_of_one_disables_vgc() {
        let c = SccConfig::default().with_tau(1);
        assert!(!c.single_params().vgc);
        assert!(!c.multi_params().vgc);
    }
}

//! The `VertexSubset` abstract data type, hash-bag backed.
//!
//! §8 of the paper: "Many state-of-the-art graph libraries (e.g., GBBS and
//! Ligra) use the abstract data type called VertexSubset to maintain
//! frontiers … Hash bags can be used to implement this ADT by replacing
//! the current data structure (fixed-size array)." This module does
//! exactly that: a frontier that is either a **sparse** vertex list or a
//! **dense** bitset, plus a direction-optimizing [`edge_map`] in the Ligra
//! style whose sparse path writes the next frontier through a parallel
//! hash bag — one edge visit per round instead of edge-revisit's two.

use pscc_bag::{BagConfig, HashBag};
use pscc_graph::{DiGraph, V};
use pscc_runtime::{pack_index, par_range, par_sum_u64, AtomicBits};

/// A subset of vertices in sparse (list) or dense (bitset) representation.
pub enum VertexSubset {
    /// Explicit vertex list (unordered, duplicate-free).
    Sparse(Vec<V>),
    /// Bitset over all `n` vertices.
    Dense(AtomicBits),
}

impl VertexSubset {
    /// The empty subset.
    pub fn empty() -> Self {
        VertexSubset::Sparse(Vec::new())
    }

    /// A singleton subset.
    pub fn single(v: V) -> Self {
        VertexSubset::Sparse(vec![v])
    }

    /// Builds from a vertex list.
    pub fn from_vec(vs: Vec<V>) -> Self {
        VertexSubset::Sparse(vs)
    }

    /// Number of members (O(1) sparse, parallel popcount dense).
    pub fn len(&self) -> usize {
        match self {
            VertexSubset::Sparse(vs) => vs.len(),
            VertexSubset::Dense(bits) => bits.count_ones(),
        }
    }

    /// True if no members.
    pub fn is_empty(&self) -> bool {
        match self {
            VertexSubset::Sparse(vs) => vs.is_empty(),
            VertexSubset::Dense(bits) => bits.count_ones() == 0,
        }
    }

    /// Membership test (O(len) sparse, O(1) dense).
    pub fn contains(&self, v: V) -> bool {
        match self {
            VertexSubset::Sparse(vs) => vs.contains(&v),
            VertexSubset::Dense(bits) => bits.get(v as usize),
        }
    }

    /// Converts to a sorted sparse list (parallel pack when dense).
    pub fn into_sparse(self) -> Vec<V> {
        match self {
            VertexSubset::Sparse(mut vs) => {
                vs.sort_unstable();
                vs
            }
            VertexSubset::Dense(bits) => {
                pack_index(bits.len(), |i| bits.get(i)).into_iter().map(|i| i as V).collect()
            }
        }
    }

    /// Converts to a dense bitset over `n` vertices.
    pub fn into_dense(self, n: usize) -> AtomicBits {
        match self {
            VertexSubset::Sparse(vs) => {
                let bits = AtomicBits::new(n);
                par_range(0..vs.len(), 2048, &|r| {
                    for i in r {
                        bits.set(vs[i] as usize);
                    }
                });
                bits
            }
            VertexSubset::Dense(bits) => {
                assert_eq!(bits.len(), n, "dense subset over wrong universe");
                bits
            }
        }
    }
}

/// Options for [`edge_map`].
#[derive(Clone, Copy, Debug)]
pub struct EdgeMapOptions {
    /// Go dense when `|F| + outEdges(F) > m / dense_threshold`.
    pub dense_threshold: usize,
    /// Force a representation (None = auto).
    pub force_dense: Option<bool>,
    /// Hash-bag parameters for sparse output.
    pub bag: BagConfig,
}

impl Default for EdgeMapOptions {
    fn default() -> Self {
        Self { dense_threshold: 20, force_dense: None, bag: BagConfig::default() }
    }
}

/// Ligra-style direction-optimizing edge map.
///
/// For every edge `(v, u)` with `v` in `frontier` and `cond(u)` true,
/// calls `update(v, u)`; the vertices `u` for which `update` returned
/// `true` (at most once each — `update` must be a CAS-style claim) form
/// the returned subset.
///
/// * sparse mode: top-down over the frontier's out-edges, winners inserted
///   into a hash bag (single edge visit — the §8 replacement for the
///   fixed-size-array VertexSubset);
/// * dense mode: bottom-up over all `u` with `cond(u)`, scanning reverse
///   neighbours with early exit.
pub fn edge_map<C, F>(
    g: &DiGraph,
    forward: bool,
    frontier: &VertexSubset,
    cond: C,
    update: F,
    opts: &EdgeMapOptions,
) -> VertexSubset
where
    C: Fn(V) -> bool + Sync,
    F: Fn(V, V) -> bool + Sync,
{
    let n = g.n();
    let m = g.m().max(1);
    let csr = g.csr_dir(forward);
    let rev = g.csr_dir(!forward);

    // Decide representation.
    let go_dense = match opts.force_dense {
        Some(d) => d,
        None => match frontier {
            VertexSubset::Dense(_) => true,
            VertexSubset::Sparse(vs) => {
                let edges = par_sum_u64(vs.len(), |i| csr.degree(vs[i]) as u64);
                vs.len() as u64 + edges > m.div_ceil(opts.dense_threshold) as u64
            }
        },
    };

    if go_dense {
        // Bottom-up: need the frontier as a bitset.
        let tmp_bits;
        let in_front: &AtomicBits = match frontier {
            VertexSubset::Dense(bits) => bits,
            VertexSubset::Sparse(vs) => {
                let bits = AtomicBits::new(n);
                par_range(0..vs.len(), 2048, &|r| {
                    for i in r {
                        bits.set(vs[i] as usize);
                    }
                });
                tmp_bits = bits;
                &tmp_bits
            }
        };
        let out = AtomicBits::new(n);
        par_range(0..n, 1024, &|r| {
            for u in r {
                let uv = u as V;
                if !cond(uv) {
                    continue;
                }
                for &w in rev.neighbors(uv) {
                    if in_front.get(w as usize) && update(w, uv) {
                        out.set(u);
                        break;
                    }
                }
            }
        });
        VertexSubset::Dense(out)
    } else {
        let vs = match frontier {
            VertexSubset::Sparse(vs) => vs,
            VertexSubset::Dense(_) => unreachable!("dense frontier forced dense mode"),
        };
        let bag: HashBag<u32> = HashBag::with_config(n, opts.bag);
        par_range(0..vs.len(), 1, &|r| {
            for i in r {
                let v = vs[i];
                for &u in csr.neighbors(v) {
                    if cond(u) && update(v, u) {
                        bag.insert(u);
                    }
                }
            }
        });
        VertexSubset::Sparse(bag.extract_all())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering as AtomicOrdering};

    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{path_digraph, star_digraph};
    use pscc_graph::stats::bfs_ecc;

    /// BFS built purely from edge_map — the ADT's acceptance test.
    fn bfs_via_edge_map(g: &DiGraph, src: V) -> Vec<u32> {
        let n = g.n();
        let dist: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(u32::MAX)).collect();
        dist[src as usize].store(0, AtomicOrdering::Relaxed);
        let mut frontier = VertexSubset::single(src);
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let lv = level;
            frontier = edge_map(
                g,
                true,
                &frontier,
                |u| dist[u as usize].load(AtomicOrdering::Relaxed) == u32::MAX,
                |_, u| {
                    dist[u as usize]
                        .compare_exchange(
                            u32::MAX,
                            lv,
                            AtomicOrdering::Relaxed,
                            AtomicOrdering::Relaxed,
                        )
                        .is_ok()
                },
                &EdgeMapOptions::default(),
            );
        }
        dist.into_iter().map(|d| d.into_inner()).collect()
    }

    #[test]
    fn subset_basics() {
        let s = VertexSubset::from_vec(vec![3, 1, 4]);
        assert_eq!(s.len(), 3);
        assert!(s.contains(4));
        assert!(!s.contains(2));
        assert_eq!(s.into_sparse(), vec![1, 3, 4]);
    }

    #[test]
    fn empty_subset() {
        let s = VertexSubset::empty();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn sparse_dense_roundtrip() {
        let s = VertexSubset::from_vec(vec![0, 64, 65, 127]);
        let dense = s.into_dense(128);
        assert_eq!(dense.count_ones(), 4);
        let back = VertexSubset::Dense(dense).into_sparse();
        assert_eq!(back, vec![0, 64, 65, 127]);
    }

    #[test]
    fn bfs_via_edge_map_matches_sequential_sparse_graphs() {
        for seed in 0..4u64 {
            let g = gnm_digraph(300, 900, seed);
            let got = bfs_via_edge_map(&g, 0);
            let (want, _, _) = bfs_ecc(&g, 0, false);
            assert_eq!(got, want, "seed {seed}");
        }
    }

    #[test]
    fn bfs_via_edge_map_dense_path_on_star() {
        // Star forces the dense path in round 1.
        let g = star_digraph(4000);
        let got = bfs_via_edge_map(&g, 0);
        assert!(got[1..].iter().all(|&d| d == 1));
    }

    #[test]
    fn bfs_via_edge_map_long_path() {
        let g = path_digraph(2000);
        let got = bfs_via_edge_map(&g, 0);
        for (v, &d) in got.iter().enumerate() {
            assert_eq!(d, v as u32);
        }
    }

    #[test]
    fn forced_modes_agree() {
        let g = gnm_digraph(200, 2000, 7);
        let run = |force: Option<bool>| {
            let opts = EdgeMapOptions { force_dense: force, ..Default::default() };
            let claimed = AtomicBits::new(g.n());
            claimed.set(0);
            let out = edge_map(
                &g,
                true,
                &VertexSubset::single(0),
                |u| !claimed.get(u as usize),
                |_, u| claimed.test_and_set(u as usize),
                &opts,
            );
            out.into_sparse()
        };
        let sparse = run(Some(false));
        let dense = run(Some(true));
        assert_eq!(sparse, dense);
        // Both equal the out-neighbourhood of vertex 0 (minus 0 itself).
        let mut want: Vec<V> = g.out_neighbors(0).iter().copied().filter(|&u| u != 0).collect();
        want.sort_unstable();
        want.dedup();
        assert_eq!(sparse, want);
    }

    #[test]
    fn backward_edge_map_follows_in_edges() {
        let g = path_digraph(5);
        let seen = AtomicBits::new(5);
        let out = edge_map(
            &g,
            false,
            &VertexSubset::single(3),
            |_| true,
            |_, u| seen.test_and_set(u as usize),
            &EdgeMapOptions::default(),
        );
        assert_eq!(out.into_sparse(), vec![2]);
    }
}

//! The `pscc-server` daemon: serve reachability over TCP.
//!
//! ```text
//! pscc-server [--listen ADDR] [--name NAME]
//!             [--data-dir DIR | --graph FILE | --rmat-scale S --rmat-edges M]
//!             [--no-coalesce] [--batch-target N] [--deadline-us N] [--queue-cap N]
//!             [--flight-dir DIR]
//! ```
//!
//! Graph source, first match wins: `--data-dir` recovers a persisted
//! catalog (serving every graph it holds); `--graph` loads a
//! whitespace `u v` edge list registered under `--name`; otherwise an
//! RMAT graph is generated (defaults: scale 15, 200 000 edges). The
//! process serves until killed; state changes arrive via
//! `POST /delta/<graph>` and are WAL-logged when the catalog is durable.

use pscc_engine::Catalog;
use pscc_server::args::Args;
use pscc_server::{start, CoalesceConfig, DispatchMode, ServerConfig};
use std::sync::Arc;
use std::time::Duration;

fn main() {
    match run() {
        Ok(()) => {}
        Err(err) => {
            eprintln!("pscc-server: {err}");
            std::process::exit(2);
        }
    }
}

fn run() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = Args::from_env();
    let listen = args.value("--listen")?.unwrap_or_else(|| "127.0.0.1:7411".to_string());
    let name = args.value("--name")?.unwrap_or_else(|| "serve".to_string());
    let data_dir = args.path("--data-dir")?;
    let graph_file = args.value("--graph")?;
    let rmat_scale = args.parsed::<u32>("--rmat-scale", "a log2 vertex count")?.unwrap_or(15);
    let rmat_edges = args.parsed::<usize>("--rmat-edges", "an edge count")?.unwrap_or(200_000);
    let no_coalesce = args.flag("--no-coalesce");
    let batch_target = args.parsed::<usize>("--batch-target", "a query count")?;
    let deadline_us = args.parsed::<u64>("--deadline-us", "microseconds")?;
    let queue_cap = args.parsed::<usize>("--queue-cap", "a query count")?;
    let flight_dir = args.path("--flight-dir")?;
    let rest = args.finish();
    if !rest.is_empty() {
        return Err(format!("unexpected arguments: {rest:?}").into());
    }

    if let Some(dir) = &flight_dir {
        std::fs::create_dir_all(dir)?;
        Catalog::enable_flight_recorder(dir)?;
        println!("flight recorder on: journaling to {}", dir.display());
    }

    let catalog = match (&data_dir, &graph_file) {
        (Some(dir), _) => {
            let catalog = Catalog::open(dir)?;
            println!("recovered catalog {:?} from {}", catalog.names(), dir.display());
            catalog
        }
        (None, Some(path)) => {
            let g = pscc_graph::io::read_edge_list(path)?;
            println!("loaded {path}: n={} m={} as {name:?}", g.n(), g.m());
            let catalog = Catalog::new();
            catalog.insert(&name, g);
            catalog
        }
        (None, None) => {
            let g = pscc_graph::generators::rmat::rmat_digraph(rmat_scale, rmat_edges, 0xa11ce);
            println!("generated RMAT: n={} m={} as {name:?}", g.n(), g.m());
            let catalog = Catalog::new();
            catalog.insert(&name, g);
            catalog
        }
    };

    let mut coalesce = CoalesceConfig::default();
    if let Some(target) = batch_target {
        coalesce.batch_target = target;
    }
    if let Some(us) = deadline_us {
        coalesce.deadline = Duration::from_micros(us);
    }
    if let Some(cap) = queue_cap {
        coalesce.queue_cap = cap;
    }
    let mode = if no_coalesce { DispatchMode::Direct } else { DispatchMode::Coalesced(coalesce) };
    let config = ServerConfig { listen, mode, ..ServerConfig::default() };
    let handle = start(Arc::new(catalog), config)?;
    println!(
        "listening on {} ({})",
        handle.local_addr(),
        match mode {
            DispatchMode::Coalesced(c) => format!(
                "coalescing: batch_target {}, deadline {:?}, queue_cap {}",
                c.batch_target, c.deadline, c.queue_cap
            ),
            DispatchMode::Direct => "direct dispatch".to_string(),
        }
    );

    // Serve until killed; the OS reclaims everything on exit.
    loop {
        std::thread::park();
    }
}

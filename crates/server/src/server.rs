//! The TCP front end: accepts connections, parses HTTP/1.1-lite
//! requests, and routes point queries through the per-graph admission
//! queue ([`Lane`]) so concurrent connections coalesce into engine
//! batches. Writes go through [`Catalog::apply_delta`] — the serving
//! path and the update path share the catalog's locking model, so
//! queries keep answering from the installed index while a delta
//! repairs off-lock.
//!
//! ## Protocol
//!
//! | Request | Response |
//! |---|---|
//! | `GET /reach/<graph>?u=U&v=V` | `1` / `0` — is V reachable from U |
//! | `POST /reach/<graph>` (body: `u v` per line) | one `1`/`0` per query |
//! | `POST /delta/<graph>` (body: `+ u v` / `- u v` per line) | repair outcome |
//! | `GET /metrics` | telemetry registry, Prometheus-style text |
//! | `GET /stats` | per-graph coalescing stats, JSON |
//! | `GET /healthz` | `ok` |
//!
//! Unknown graphs answer 404, malformed queries 400, and an admission
//! queue at capacity answers **503** — backpressure is an explicit
//! signal, never an unbounded buffer or a hang.
//!
//! ## Pipelining and run collection
//!
//! Connections are persistent and pipelined: a client may write many
//! requests before reading any response. The handler peels every
//! complete request off its read buffer and groups **contiguous runs of
//! single-query GETs to the same graph** into one lane submission, so a
//! pipelined client contributes a whole run to the shared batch at the
//! cost of one dispatcher handoff. Responses are emitted strictly in
//! request order.

use crate::coalesce::{CoalesceConfig, Lane, SubmitError};
use crate::http::{
    parse_point_get_fast, parse_request, query_param, write_response, Request, RESP_FALSE,
    RESP_TRUE,
};
use pscc_engine::{Catalog, Delta, DeltaError};
use pscc_graph::V;
use pscc_telemetry::recorder::{self, FlightEvent};
use std::collections::HashMap;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Duration;

/// How queries reach the engine.
#[derive(Debug, Clone, Copy)]
pub enum DispatchMode {
    /// Through the admission queue: concurrent queries coalesce into
    /// engine batches (the point of this crate).
    Coalesced(CoalesceConfig),
    /// One engine dispatch per request ([`Catalog::answer_batch`] with
    /// a single query) — the baseline the bench compares against.
    Direct,
}

/// Server construction knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:0` (port 0 = ephemeral).
    pub listen: String,
    pub mode: DispatchMode,
    /// Upper bound a handler waits on a lane before answering 503 —
    /// the guarantee that overload degrades loudly instead of hanging.
    pub submit_timeout: Duration,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            listen: "127.0.0.1:0".to_string(),
            mode: DispatchMode::Coalesced(CoalesceConfig::default()),
            submit_timeout: Duration::from_secs(5),
        }
    }
}

/// Point-in-time coalescing stats of one graph's port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortStats {
    pub batches_formed: u64,
    pub queries_coalesced: u64,
    pub overloads: u64,
}

/// One served graph: its validated vertex count plus (in coalesced
/// mode) its lane.
struct GraphPort {
    name: String,
    vertex_count: usize,
    lane: Option<Lane>,
}

struct Shared {
    catalog: Arc<Catalog>,
    config: ServerConfig,
    ports: RwLock<HashMap<String, Arc<GraphPort>>>,
    stop: AtomicBool,
}

impl Shared {
    /// The graph's port, created on first use. `None` = unknown graph.
    fn port(&self, graph: &str) -> Option<Arc<GraphPort>> {
        if let Some(port) = self.ports.read().expect("ports lock").get(graph) {
            return Some(port.clone());
        }
        let mut ports = self.ports.write().expect("ports lock");
        if let Some(port) = ports.get(graph) {
            return Some(port.clone()); // lost the creation race
        }
        let submitter = self.catalog.submitter(graph)?;
        let vertex_count = submitter.vertex_count();
        let lane = match self.config.mode {
            DispatchMode::Coalesced(config) => Some(Lane::start(submitter, config).ok()?),
            DispatchMode::Direct => None,
        };
        let port = Arc::new(GraphPort { name: graph.to_string(), vertex_count, lane });
        ports.insert(graph.to_string(), port.clone());
        Some(port)
    }
}

/// A running server. Dropping (or [`shutdown`](ServerHandle::shutdown))
/// stops the acceptor, joins every connection thread, and drains the
/// lanes.
pub struct ServerHandle {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    acceptor: Option<std::thread::JoinHandle<()>>,
    conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>>,
}

/// Bind and start serving `catalog` per `config`.
pub fn start(catalog: Arc<Catalog>, config: ServerConfig) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.listen)?;
    let local_addr = listener.local_addr()?;
    let shared = Arc::new(Shared {
        catalog,
        config,
        ports: RwLock::new(HashMap::new()),
        stop: AtomicBool::new(false),
    });
    if recorder::is_active() {
        recorder::record(FlightEvent::new("server_start").field("addr", local_addr.to_string()));
    }
    pscc_telemetry::log!(Info, "pscc-server listening on {local_addr}");
    let conns: Arc<Mutex<Vec<std::thread::JoinHandle<()>>>> = Arc::new(Mutex::new(Vec::new()));
    let acceptor = {
        let shared = shared.clone();
        let conns = conns.clone();
        let conn_seq = AtomicU64::new(0);
        std::thread::Builder::new().name("pscc-acceptor".to_string()).spawn(move || {
            for stream in listener.incoming() {
                if shared.stop.load(Ordering::Relaxed) {
                    return;
                }
                let Ok(stream) = stream else { continue };
                let shared = shared.clone();
                let id = conn_seq.fetch_add(1, Ordering::Relaxed);
                let handle = std::thread::Builder::new()
                    .name(format!("pscc-conn-{id}"))
                    .spawn(move || handle_connection(stream, &shared));
                if let Ok(handle) = handle {
                    conns.lock().expect("conns lock").push(handle);
                }
            }
        })?
    };
    Ok(ServerHandle { shared, local_addr, acceptor: Some(acceptor), conns })
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Coalescing stats for `graph`'s port, if it has served anything.
    pub fn port_stats(&self, graph: &str) -> Option<PortStats> {
        let ports = self.shared.ports.read().expect("ports lock");
        let lane = ports.get(graph)?.lane.as_ref()?;
        Some(PortStats {
            batches_formed: lane.batches_formed(),
            queries_coalesced: lane.queries_coalesced(),
            overloads: lane.overloads(),
        })
    }

    /// Stop accepting, join every connection, drain the lanes.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        if self.shared.stop.swap(true, Ordering::Relaxed) {
            return;
        }
        // Unblock the acceptor's blocking accept with a throwaway
        // connection; it re-checks the stop flag first thing.
        let _ = TcpStream::connect(self.local_addr);
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        let handles = std::mem::take(&mut *self.conns.lock().expect("conns lock"));
        for handle in handles {
            let _ = handle.join();
        }
        let ports = std::mem::take(&mut *self.shared.ports.write().expect("ports lock"));
        for port in ports.values() {
            if let Some(lane) = &port.lane {
                lane.shutdown();
            }
        }
        drop(ports); // joins lane dispatchers
        if recorder::is_active() {
            recorder::record(
                FlightEvent::new("server_stop").field("addr", self.local_addr.to_string()),
            );
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop_and_join();
    }
}

/// A contiguous run of single-query GETs to one graph, dispatched as
/// one lane submission (or, in direct mode, one engine call per query).
struct Run {
    port: Arc<GraphPort>,
    queries: Vec<(V, V)>,
}

/// How often a parked connection re-checks the server stop flag.
const READ_TIMEOUT: Duration = Duration::from_millis(100);

fn handle_connection(stream: TcpStream, shared: &Shared) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(READ_TIMEOUT));
    let mut stream = stream;
    let mut inbuf: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut consumed = 0usize;
    let mut out: Vec<u8> = Vec::with_capacity(64 * 1024);
    let mut chunk = vec![0u8; 64 * 1024];
    'conn: loop {
        // Peel every complete request off the buffer, grouping runs.
        let mut run: Option<Run> = None;
        let mut close_after = false;
        loop {
            // Hot shape first: a bare single-query GET parses in one
            // byte scan and joins the open run with no header work.
            if let Some((graph, u, v, used)) = parse_point_get_fast(&inbuf[consumed..]) {
                let to_vertex = |x: u64| if x <= V::MAX as u64 { Ok(x as V) } else { Err(()) };
                let (u, v) = (to_vertex(u), to_vertex(v));
                route_point_query(graph, u, v, &mut run, shared, &mut out);
                consumed += used;
                continue;
            }
            let (request, used) = match parse_request(&inbuf[consumed..]) {
                Ok(Some(hit)) => hit,
                Ok(None) => break,
                Err(bad) => {
                    flush_run(&mut run, shared, &mut out);
                    write_response(&mut out, 400, "Bad Request", bad.0.as_bytes());
                    let _ = stream.write_all(&out);
                    return;
                }
            };
            if !request.keep_alive {
                close_after = true;
            }
            match classify(&request) {
                Routed::PointQuery { graph, u, v } => {
                    route_point_query(graph, u, v, &mut run, shared, &mut out)
                }
                other => {
                    flush_run(&mut run, shared, &mut out);
                    respond_slow_path(other, &request, shared, &mut out);
                }
            }
            consumed += used;
            if close_after {
                break;
            }
        }
        // No more complete requests buffered: dispatch the trailing run
        // and flush everything before blocking on the socket again.
        flush_run(&mut run, shared, &mut out);
        if !out.is_empty() {
            if stream.write_all(&out).is_err() {
                return;
            }
            out.clear();
        }
        if close_after {
            return;
        }
        if consumed > 0 {
            inbuf.drain(..consumed);
            consumed = 0;
        }
        loop {
            match stream.read(&mut chunk) {
                Ok(0) => return,
                Ok(n) => {
                    inbuf.extend_from_slice(&chunk[..n]);
                    continue 'conn;
                }
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    if shared.stop.load(Ordering::Relaxed) {
                        return;
                    }
                }
                Err(_) => return,
            }
        }
    }
}

/// Routes one point query: extends the open run when it targets the
/// same graph, otherwise flushes the run and opens a new one (or
/// answers 404 for an unknown graph).
fn route_point_query(
    graph: &str,
    u: Result<V, ()>,
    v: Result<V, ()>,
    run: &mut Option<Run>,
    shared: &Shared,
    out: &mut Vec<u8>,
) {
    if run.as_ref().is_none_or(|r| r.port.name != graph) {
        flush_run(run, shared, out);
        match shared.port(graph) {
            Some(port) => *run = Some(Run { port, queries: Vec::new() }),
            None => return write_response(out, 404, "Not Found", b"unknown graph\n"),
        }
    }
    push_point_query(run.as_mut(), u, v, shared, out);
}

/// Validates and appends one point query to the open run, or answers
/// its error inline (order is preserved: the run so far was flushed or
/// is still pending ahead of this response only if the query joins it).
fn push_point_query(
    run: Option<&mut Run>,
    u: Result<V, ()>,
    v: Result<V, ()>,
    shared: &Shared,
    out: &mut Vec<u8>,
) {
    let Some(run) = run else { return };
    let n = run.port.vertex_count;
    match (u, v) {
        (Ok(u), Ok(v)) if (u as usize) < n && (v as usize) < n => {
            run.queries.push((u, v));
        }
        _ => {
            // The error answer must slot into request order, so the
            // queries already in the run dispatch first.
            let mut pending =
                Some(Run { port: run.port.clone(), queries: std::mem::take(&mut run.queries) });
            flush_run(&mut pending, shared, out);
            write_response(out, 400, "Bad Request", b"u and v must be vertex ids\n");
        }
    }
}

/// Dispatches an open run: one lane submission in coalesced mode, one
/// engine call per query in direct mode. Appends one response per query
/// in order.
fn flush_run(run: &mut Option<Run>, shared: &Shared, out: &mut Vec<u8>) {
    let Some(run) = run.take() else { return };
    if run.queries.is_empty() {
        return;
    }
    match &run.port.lane {
        Some(lane) => match lane.submit_wait(&run.queries, shared.config.submit_timeout) {
            Ok(answers) => {
                for answer in answers {
                    out.extend_from_slice(if answer { RESP_TRUE } else { RESP_FALSE });
                }
            }
            Err(err) => {
                let (status, reason, body): (u16, &str, &[u8]) = match err {
                    SubmitError::Overloaded => (503, "Service Unavailable", b"overloaded\n"),
                    SubmitError::Timeout => (503, "Service Unavailable", b"timed out\n"),
                    SubmitError::ShuttingDown => (503, "Service Unavailable", b"shutting down\n"),
                };
                for _ in &run.queries {
                    write_response(out, status, reason, body);
                }
            }
        },
        None => {
            // Direct mode: the honest one-dispatch-per-request baseline.
            for &query in &run.queries {
                match shared.catalog.answer_batch(&run.port.name, &[query]) {
                    Some(answers) => {
                        out.extend_from_slice(if answers[0] { RESP_TRUE } else { RESP_FALSE })
                    }
                    None => write_response(out, 404, "Not Found", b"unknown graph\n"),
                }
            }
        }
    }
}

/// Routing decision for one request.
enum Routed<'a> {
    PointQuery { graph: &'a str, u: Result<V, ()>, v: Result<V, ()> },
    BatchQuery { graph: &'a str },
    DeltaWrite { graph: &'a str },
    Metrics,
    Stats,
    Health,
    NotFound,
}

fn classify<'a>(request: &Request<'a>) -> Routed<'a> {
    let parse = |key: &str| -> Result<V, ()> {
        query_param(request.query, key).and_then(|raw| raw.parse().ok()).ok_or(())
    };
    match (request.method, request.path) {
        ("GET", "/healthz") => Routed::Health,
        ("GET", "/metrics") => Routed::Metrics,
        ("GET", "/stats") => Routed::Stats,
        ("GET", path) => match path.strip_prefix("/reach/") {
            Some(graph) if !graph.is_empty() => {
                Routed::PointQuery { graph, u: parse("u"), v: parse("v") }
            }
            _ => Routed::NotFound,
        },
        ("POST", path) => {
            if let Some(graph) = path.strip_prefix("/reach/") {
                Routed::BatchQuery { graph }
            } else if let Some(graph) = path.strip_prefix("/delta/") {
                Routed::DeltaWrite { graph }
            } else {
                Routed::NotFound
            }
        }
        _ => Routed::NotFound,
    }
}

/// Everything that is not a coalescable point query.
fn respond_slow_path(
    routed: Routed<'_>,
    request: &Request<'_>,
    shared: &Shared,
    out: &mut Vec<u8>,
) {
    match routed {
        Routed::Health => write_response(out, 200, "OK", b"ok\n"),
        Routed::Metrics => write_response(out, 200, "OK", pscc_telemetry::render_text().as_bytes()),
        Routed::Stats => write_response(out, 200, "OK", stats_json(shared).as_bytes()),
        Routed::BatchQuery { graph } => respond_batch_query(graph, request, shared, out),
        Routed::DeltaWrite { graph } => respond_delta(graph, request, shared, out),
        Routed::NotFound => write_response(out, 404, "Not Found", b"no such endpoint\n"),
        Routed::PointQuery { .. } => {
            // Unreachable by construction (point queries join runs);
            // answer harmlessly rather than assert in the serving path.
            write_response(out, 404, "Not Found", b"no such endpoint\n")
        }
    }
}

/// `POST /reach/<graph>`: body is one `u v` pair per line; the whole
/// request is one group (it is already a batch — it skips run
/// collection but still coalesces with concurrent traffic).
fn respond_batch_query(graph: &str, request: &Request<'_>, shared: &Shared, out: &mut Vec<u8>) {
    let Some(port) = shared.port(graph) else {
        return write_response(out, 404, "Not Found", b"unknown graph\n");
    };
    let Ok(body) = std::str::from_utf8(request.body) else {
        return write_response(out, 400, "Bad Request", b"body must be UTF-8\n");
    };
    let mut queries: Vec<(V, V)> = Vec::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let pair = (
            it.next().and_then(|t| t.parse::<V>().ok()),
            it.next().and_then(|t| t.parse::<V>().ok()),
        );
        match pair {
            (Some(u), Some(v))
                if (u as usize) < port.vertex_count && (v as usize) < port.vertex_count =>
            {
                queries.push((u, v))
            }
            _ => {
                return write_response(
                    out,
                    400,
                    "Bad Request",
                    b"each line must be `u v` with valid vertex ids\n",
                )
            }
        }
    }
    let answers = match &port.lane {
        Some(lane) => match lane.submit_wait(&queries, shared.config.submit_timeout) {
            Ok(answers) => answers,
            Err(SubmitError::Overloaded) => {
                return write_response(out, 503, "Service Unavailable", b"overloaded\n")
            }
            Err(_) => return write_response(out, 503, "Service Unavailable", b"unavailable\n"),
        },
        None => match shared.catalog.answer_batch(&port.name, &queries) {
            Some(answers) => answers,
            None => return write_response(out, 404, "Not Found", b"unknown graph\n"),
        },
    };
    let mut body: Vec<u8> = answers.iter().map(|&b| if b { b'1' } else { b'0' }).collect();
    body.push(b'\n');
    write_response(out, 200, "OK", &body);
}

/// `POST /delta/<graph>`: body is `+ u v` / `- u v` per line, applied
/// as one delta through the catalog (WAL-logged first when the graph is
/// durable). Responds with the repair outcome.
fn respond_delta(graph: &str, request: &Request<'_>, shared: &Shared, out: &mut Vec<u8>) {
    let Ok(body) = std::str::from_utf8(request.body) else {
        return write_response(out, 400, "Bad Request", b"body must be UTF-8\n");
    };
    let mut delta = Delta::new();
    for line in body.lines() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parts = (
            it.next(),
            it.next().and_then(|t| t.parse::<V>().ok()),
            it.next().and_then(|t| t.parse::<V>().ok()),
        );
        match parts {
            (Some("+"), Some(u), Some(v)) => delta.insert(u, v),
            (Some("-"), Some(u), Some(v)) => delta.delete(u, v),
            _ => {
                return write_response(
                    out,
                    400,
                    "Bad Request",
                    b"each line must be `+ u v` or `- u v`\n",
                )
            }
        };
    }
    match shared.catalog.apply_delta(graph, &delta) {
        Ok(report) => {
            let body = format!(
                "outcome {:?}: {} inserted, {} deleted\n",
                report.outcome, report.inserted, report.deleted
            );
            write_response(out, 200, "OK", body.as_bytes());
        }
        Err(DeltaError::UnknownGraph(_)) => {
            write_response(out, 404, "Not Found", b"unknown graph\n")
        }
        Err(err) => write_response(out, 400, "Bad Request", format!("{err}\n").as_bytes()),
    }
}

/// `GET /stats`: the coalescing counters per served graph, as JSON.
fn stats_json(shared: &Shared) -> String {
    let ports = shared.ports.read().expect("ports lock");
    let mut graphs: Vec<String> = Vec::new();
    for (name, port) in ports.iter() {
        let (batches, queries, overloads) = match &port.lane {
            Some(lane) => (lane.batches_formed(), lane.queries_coalesced(), lane.overloads()),
            None => (0, 0, 0),
        };
        graphs.push(format!(
            "\"{}\":{{\"vertex_count\":{},\"batches_formed\":{},\
             \"queries_coalesced\":{},\"overloads\":{}}}",
            pscc_telemetry::escape_label_value(name),
            port.vertex_count,
            batches,
            queries,
            overloads,
        ));
    }
    graphs.sort();
    let mode = match shared.config.mode {
        DispatchMode::Coalesced(_) => "coalesced",
        DispatchMode::Direct => "direct",
    };
    format!("{{\"mode\":\"{mode}\",\"graphs\":{{{}}}}}\n", graphs.join(","))
}

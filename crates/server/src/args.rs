//! Tiny shared command-line flag parser for the workspace's front-end
//! binaries (`pscc-server`, `bench_server`, and the
//! `reachability_server` example), so their hand-rolled `--flag VALUE`
//! handling cannot drift: every flag-missing-value error renders
//! identically, flags may appear anywhere relative to positionals, and
//! whatever is left after the known flags are consumed is returned as
//! the positional arguments.
//!
//! ```
//! use pscc_server::args::Args;
//! let mut args = Args::from_vec(vec![
//!     "--data-dir".into(), "/tmp/d".into(), "graph.txt".into(), "--metrics".into(),
//! ]);
//! assert_eq!(args.path("--data-dir").unwrap(), Some("/tmp/d".into()));
//! assert!(args.flag("--metrics"));
//! assert_eq!(args.finish(), vec!["graph.txt".to_string()]);
//! ```

use std::fmt;
use std::path::PathBuf;
use std::str::FromStr;

/// A flag-parse failure. Binaries print it and exit nonzero; the
/// [`fmt::Display`] form is the single source of truth for wording.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgsError {
    /// `--flag` appeared as the last argument, with no value after it.
    MissingValue(String),
    /// `--flag VALUE` appeared but `VALUE` failed to parse.
    InvalidValue { flag: String, value: String, expected: &'static str },
}

impl fmt::Display for ArgsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgsError::MissingValue(flag) => write!(f, "{flag} needs a value"),
            ArgsError::InvalidValue { flag, value, expected } => {
                write!(f, "{flag} {value:?}: expected {expected}")
            }
        }
    }
}

impl std::error::Error for ArgsError {}

/// The remaining, not-yet-consumed argument vector. Each accessor
/// removes what it matched, so the order of accessor calls never
/// changes what a flag means and [`finish`](Args::finish) returns pure
/// positionals.
pub struct Args {
    argv: Vec<String>,
}

impl Args {
    /// The process's arguments, minus the program name.
    pub fn from_env() -> Args {
        Args { argv: std::env::args().skip(1).collect() }
    }

    /// An explicit argument vector (tests, or pre-filtered argv).
    pub fn from_vec(argv: Vec<String>) -> Args {
        Args { argv }
    }

    /// Consume a boolean `--flag`: true if present (all occurrences are
    /// removed), false otherwise.
    pub fn flag(&mut self, name: &str) -> bool {
        let before = self.argv.len();
        self.argv.retain(|a| a != name);
        self.argv.len() != before
    }

    /// Consume `--flag VALUE`, returning the raw value string. `None`
    /// when the flag is absent; [`ArgsError::MissingValue`] when the
    /// flag is present with nothing after it.
    pub fn value(&mut self, name: &str) -> Result<Option<String>, ArgsError> {
        let Some(i) = self.argv.iter().position(|a| a == name) else {
            return Ok(None);
        };
        self.argv.remove(i);
        if i >= self.argv.len() {
            return Err(ArgsError::MissingValue(name.to_string()));
        }
        Ok(Some(self.argv.remove(i)))
    }

    /// Consume `--flag DIR` as a [`PathBuf`].
    pub fn path(&mut self, name: &str) -> Result<Option<PathBuf>, ArgsError> {
        Ok(self.value(name)?.map(PathBuf::from))
    }

    /// Consume `--flag VALUE` and parse it (`usize`, `u64`, socket
    /// addresses — anything [`FromStr`]), with a uniform error naming
    /// `expected` on failure.
    pub fn parsed<T: FromStr>(
        &mut self,
        name: &str,
        expected: &'static str,
    ) -> Result<Option<T>, ArgsError> {
        match self.value(name)? {
            None => Ok(None),
            Some(raw) => match raw.parse() {
                Ok(v) => Ok(Some(v)),
                Err(_) => {
                    Err(ArgsError::InvalidValue { flag: name.to_string(), value: raw, expected })
                }
            },
        }
    }

    /// Everything not consumed by the flag accessors, in original order
    /// — the positional arguments.
    pub fn finish(self) -> Vec<String> {
        self.argv
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_values_and_positionals() {
        let mut a = Args::from_vec(
            ["g.txt", "--data-dir", "/d", "--metrics", "u.txt", "--n", "42"]
                .iter()
                .map(|s| s.to_string())
                .collect(),
        );
        assert_eq!(a.path("--data-dir").unwrap(), Some(PathBuf::from("/d")));
        assert!(a.flag("--metrics"));
        assert!(!a.flag("--metrics"));
        assert_eq!(a.parsed::<usize>("--n", "a count").unwrap(), Some(42));
        assert_eq!(a.value("--absent").unwrap(), None);
        assert_eq!(a.finish(), vec!["g.txt".to_string(), "u.txt".to_string()]);
    }

    #[test]
    fn missing_value_is_uniform() {
        let mut a = Args::from_vec(vec!["--data-dir".to_string()]);
        let err = a.path("--data-dir").unwrap_err();
        assert_eq!(err.to_string(), "--data-dir needs a value");
    }

    #[test]
    fn invalid_value_names_expectation() {
        let mut a = Args::from_vec(vec!["--n".to_string(), "many".to_string()]);
        let err = a.parsed::<usize>("--n", "a count").unwrap_err();
        assert_eq!(err.to_string(), "--n \"many\": expected a count");
    }
}

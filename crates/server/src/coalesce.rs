//! The admission queue: coalesces concurrent in-flight point queries
//! into engine-sized query batches.
//!
//! The paper's central observation — and the engine's measured behavior
//! — is that batched multi-source reachability is dramatically cheaper
//! per query than one-at-a-time dispatch (the memo cache, the grain
//! scheduling, and the per-batch fixed costs all amortize). A network
//! front end naturally receives queries one connection at a time, so a
//! [`Lane`] sits between the sockets and the engine: connection
//! handlers enqueue their queries and block; a dedicated dispatcher
//! thread drains the queue into one [`BatchSubmitter::submit`] call per
//! batch and distributes the answers back.
//!
//! Dispatch is **adaptive**: a batch goes to the engine as soon as it
//! reaches [`CoalesceConfig::batch_target`] queries *or* the oldest
//! enqueued query has waited [`CoalesceConfig::deadline`], whichever
//! comes first — so a saturated server forms full batches with no added
//! latency, and an idle server bounds the latency of a lone query by
//! the deadline.
//!
//! Backpressure is explicit: the queue is bounded by
//! [`CoalesceConfig::queue_cap`] pending queries, and a submit that
//! would exceed it fails immediately with
//! [`SubmitError::Overloaded`] — the server turns that into an HTTP 503
//! instead of buffering without bound or hanging the client.
//!
//! Telemetry (all labeled `{graph="<name>"}`):
//! `pscc_server_queue_depth` gauge, `pscc_server_batches_total` and
//! `pscc_server_coalesced_queries_total` counters (their ratio is the
//! achieved mean batch size), `pscc_server_overload_total`, the
//! `pscc_server_batch_size` raw-count histogram, and
//! `pscc_server_service_nanos` — enqueue-to-answer latency per group,
//! the server-side component of what a client observes.

use pscc_engine::BatchSubmitter;
use pscc_graph::V;
use pscc_telemetry::recorder::{self, FlightEvent};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Knobs of the adaptive coalescer. Defaults suit a point-query-heavy
/// load: a 512-query target amortizes the per-batch fixed cost to noise
/// while a 150 µs deadline keeps an idle server's added latency well
/// under typical network round-trip times.
#[derive(Debug, Clone, Copy)]
pub struct CoalesceConfig {
    /// Dispatch as soon as this many queries are pending.
    pub batch_target: usize,
    /// Dispatch when the oldest pending query has waited this long.
    pub deadline: Duration,
    /// Maximum pending queries; beyond it submits fail with
    /// [`SubmitError::Overloaded`].
    pub queue_cap: usize,
}

impl Default for CoalesceConfig {
    fn default() -> CoalesceConfig {
        CoalesceConfig { batch_target: 512, deadline: Duration::from_micros(150), queue_cap: 8192 }
    }
}

/// Why a submit did not produce answers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SubmitError {
    /// The queue is at capacity — retry later (HTTP 503).
    Overloaded,
    /// The lane is shutting down.
    ShuttingDown,
    /// The caller's wait timeout elapsed before the batch completed.
    Timeout,
}

impl std::fmt::Display for SubmitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SubmitError::Overloaded => write!(f, "admission queue at capacity"),
            SubmitError::ShuttingDown => write!(f, "lane shutting down"),
            SubmitError::Timeout => write!(f, "timed out waiting for batch completion"),
        }
    }
}

impl std::error::Error for SubmitError {}

/// One submitter's completion slot: filled by the dispatcher with that
/// group's slice of the batch answers.
struct Slot {
    answers: Mutex<Option<Vec<bool>>>,
    done: Condvar,
}

/// One submit call's reservation in the pending batch.
struct PendingGroup {
    slot: Arc<Slot>,
    len: usize,
    enqueued: Instant,
}

struct LaneState {
    /// Queries of every pending group, in group order.
    queries: Vec<(V, V)>,
    groups: Vec<PendingGroup>,
    /// When the oldest pending query arrived (deadline anchor).
    first_arrival: Option<Instant>,
    shutdown: bool,
}

/// Cached per-graph metric handles (label-in-name convention).
struct LaneMetrics {
    queue_depth: Arc<pscc_telemetry::Gauge>,
    batches: Arc<pscc_telemetry::Counter>,
    queries: Arc<pscc_telemetry::Counter>,
    overloads: Arc<pscc_telemetry::Counter>,
    batch_size: Arc<pscc_telemetry::Histogram>,
    service_nanos: Arc<pscc_telemetry::Histogram>,
}

fn graph_metric(base: &str, graph: &str) -> String {
    format!("{base}{{graph=\"{}\"}}", pscc_telemetry::escape_label_value(graph))
}

impl LaneMetrics {
    fn for_graph(graph: &str) -> LaneMetrics {
        LaneMetrics {
            queue_depth: pscc_telemetry::gauge(&graph_metric("pscc_server_queue_depth", graph)),
            batches: pscc_telemetry::counter(&graph_metric("pscc_server_batches_total", graph)),
            queries: pscc_telemetry::counter(&graph_metric(
                "pscc_server_coalesced_queries_total",
                graph,
            )),
            overloads: pscc_telemetry::counter(&graph_metric("pscc_server_overload_total", graph)),
            batch_size: pscc_telemetry::histogram(&graph_metric("pscc_server_batch_size", graph)),
            service_nanos: pscc_telemetry::histogram(&graph_metric(
                "pscc_server_service_nanos",
                graph,
            )),
        }
    }
}

struct LaneInner {
    state: Mutex<LaneState>,
    arrived: Condvar,
    submitter: BatchSubmitter,
    config: CoalesceConfig,
    metrics: LaneMetrics,
}

/// A per-graph admission queue plus its dispatcher thread. Shared
/// behind an `Arc` by every connection handler of the graph; dropping
/// the last handle drains pending groups and joins the dispatcher.
pub struct Lane {
    inner: Arc<LaneInner>,
    dispatcher: Option<JoinHandle<()>>,
}

impl Lane {
    /// Start a lane over `submitter` with its dispatcher thread (named
    /// `pscc-lane-<graph>`).
    pub fn start(submitter: BatchSubmitter, config: CoalesceConfig) -> std::io::Result<Lane> {
        let graph = submitter.graph_name().to_string();
        let inner = Arc::new(LaneInner {
            state: Mutex::new(LaneState {
                queries: Vec::new(),
                groups: Vec::new(),
                first_arrival: None,
                shutdown: false,
            }),
            arrived: Condvar::new(),
            submitter,
            config,
            metrics: LaneMetrics::for_graph(&graph),
        });
        if recorder::is_active() {
            recorder::record(
                FlightEvent::new("server_lane_open")
                    .field("graph", &graph)
                    .field("batch_target", config.batch_target as u64)
                    .field("queue_cap", config.queue_cap as u64),
            );
        }
        let worker = inner.clone();
        let dispatcher = std::thread::Builder::new()
            .name(format!("pscc-lane-{graph}"))
            .spawn(move || worker.run_dispatcher())?;
        Ok(Lane { inner: inner.clone(), dispatcher: Some(dispatcher) })
    }

    /// Enqueue `queries` as one group and block until the batch they
    /// ride in completes (or `timeout` elapses). Answers come back in
    /// query order. Fails fast with [`SubmitError::Overloaded`] when
    /// the queue is at capacity — that is the backpressure signal.
    pub fn submit_wait(
        &self,
        queries: &[(V, V)],
        timeout: Duration,
    ) -> Result<Vec<bool>, SubmitError> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        let inner = &*self.inner;
        let slot = {
            let mut st = inner.state.lock().expect("lane lock");
            if st.shutdown {
                return Err(SubmitError::ShuttingDown);
            }
            if st.queries.len() + queries.len() > inner.config.queue_cap {
                inner.metrics.overloads.inc();
                if recorder::is_active() {
                    recorder::record(
                        FlightEvent::new("server_overload")
                            .field("graph", inner.submitter.graph_name())
                            .field("pending", st.queries.len() as u64)
                            .field("rejected", queries.len() as u64),
                    );
                }
                return Err(SubmitError::Overloaded);
            }
            let now = Instant::now();
            st.queries.extend_from_slice(queries);
            st.first_arrival.get_or_insert(now);
            let slot = Arc::new(Slot { answers: Mutex::new(None), done: Condvar::new() });
            st.groups.push(PendingGroup { slot: slot.clone(), len: queries.len(), enqueued: now });
            inner.metrics.queue_depth.set(st.queries.len() as i64);
            slot
        };
        inner.arrived.notify_one();

        let deadline = Instant::now() + timeout;
        let mut answers = slot.answers.lock().expect("slot lock");
        loop {
            if let Some(ans) = answers.take() {
                return Ok(ans);
            }
            let Some(remaining) = deadline.checked_duration_since(Instant::now()) else {
                return Err(SubmitError::Timeout);
            };
            let (guard, wait) = slot.done.wait_timeout(answers, remaining).expect("slot lock");
            answers = guard;
            if wait.timed_out() && answers.is_none() {
                return Err(SubmitError::Timeout);
            }
        }
    }

    /// Batches dispatched to the engine so far.
    pub fn batches_formed(&self) -> u64 {
        self.inner.metrics.batches.get()
    }

    /// Queries answered through those batches. The ratio of this to
    /// [`batches_formed`](Lane::batches_formed) is the achieved mean
    /// batch size — the coalescing win.
    pub fn queries_coalesced(&self) -> u64 {
        self.inner.metrics.queries.get()
    }

    /// Submits rejected at capacity.
    pub fn overloads(&self) -> u64 {
        self.inner.metrics.overloads.get()
    }

    /// Vertex count of the lane's graph (for endpoint validation).
    pub fn vertex_count(&self) -> usize {
        self.inner.submitter.vertex_count()
    }

    /// Ask the dispatcher to drain and stop; does not block. Subsequent
    /// submits fail with [`SubmitError::ShuttingDown`]; pending groups
    /// still get their answers. The thread is joined on drop.
    pub fn shutdown(&self) {
        self.inner.state.lock().expect("lane lock").shutdown = true;
        self.inner.arrived.notify_all();
    }
}

impl Drop for Lane {
    fn drop(&mut self) {
        self.shutdown();
        if let Some(handle) = self.dispatcher.take() {
            let _ = handle.join();
        }
    }
}

impl LaneInner {
    /// The dispatcher loop: sleep until queries arrive, then dispatch
    /// at the size target or the deadline (whichever first), repeat.
    /// On shutdown, drains whatever is pending before exiting.
    fn run_dispatcher(self: Arc<LaneInner>) {
        let mut st = self.state.lock().expect("lane lock");
        loop {
            if st.queries.is_empty() {
                if st.shutdown {
                    return;
                }
                st = self.arrived.wait(st).expect("lane lock");
                continue;
            }
            if st.queries.len() < self.config.batch_target && !st.shutdown {
                let age = st.first_arrival.map(|t| t.elapsed()).unwrap_or(Duration::ZERO);
                if let Some(remaining) = self.config.deadline.checked_sub(age) {
                    let (guard, _) = self.arrived.wait_timeout(st, remaining).expect("lane lock");
                    st = guard;
                    continue;
                }
            }
            let queries = std::mem::take(&mut st.queries);
            let groups = std::mem::take(&mut st.groups);
            st.first_arrival = None;
            self.metrics.queue_depth.set(0);
            drop(st);

            let answers = self.submitter.submit(&queries);
            self.metrics.batches.inc();
            self.metrics.queries.add(queries.len() as u64);
            self.metrics.batch_size.record_nanos(queries.len() as u64);
            let mut offset = 0;
            for group in groups {
                let slice = answers[offset..offset + group.len].to_vec();
                offset += group.len;
                self.metrics.service_nanos.record(group.enqueued.elapsed());
                *group.slot.answers.lock().expect("slot lock") = Some(slice);
                group.slot.done.notify_all();
            }

            st = self.state.lock().expect("lane lock");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_engine::Catalog;
    use pscc_graph::generators::simple::path_digraph;

    // Metric handles are global and keyed by graph name, so every test
    // uses its own name to keep counter assertions independent.
    fn lane_over_path(name: &str, n: usize, config: CoalesceConfig) -> (Catalog, Lane) {
        let cat = Catalog::new();
        cat.insert(name, path_digraph(n));
        let lane = Lane::start(cat.submitter(name).unwrap(), config).unwrap();
        (cat, lane)
    }

    const WAIT: Duration = Duration::from_secs(10);

    #[test]
    fn single_group_round_trips() {
        let (_cat, lane) = lane_over_path("lane_single", 10, CoalesceConfig::default());
        let ans = lane.submit_wait(&[(0, 9), (9, 0), (3, 3)], WAIT).unwrap();
        assert_eq!(ans, vec![true, false, true]);
        assert_eq!(lane.batches_formed(), 1);
        assert_eq!(lane.queries_coalesced(), 3);
        assert!(lane.submit_wait(&[], WAIT).unwrap().is_empty());
    }

    #[test]
    fn concurrent_groups_coalesce_into_one_batch() {
        // Size target 4 with a long deadline: the dispatcher must wait
        // for all four single-query groups and send them as one batch.
        let config =
            CoalesceConfig { batch_target: 4, deadline: Duration::from_secs(5), queue_cap: 64 };
        let (_cat, lane) = lane_over_path("lane_coalesce", 10, config);
        std::thread::scope(|scope| {
            let lane = &lane;
            let handles: Vec<_> = (0..4)
                .map(|i| scope.spawn(move || lane.submit_wait(&[(0, i as V)], WAIT).unwrap()))
                .collect();
            for h in handles {
                assert_eq!(h.join().unwrap(), vec![true]);
            }
        });
        assert_eq!(lane.queries_coalesced(), 4);
        assert_eq!(lane.batches_formed(), 1, "four groups must form one batch");
    }

    #[test]
    fn deadline_dispatches_partial_batches() {
        let config = CoalesceConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(5),
            queue_cap: 64,
        };
        let (_cat, lane) = lane_over_path("lane_deadline", 10, config);
        let t = Instant::now();
        assert_eq!(lane.submit_wait(&[(0, 5)], WAIT).unwrap(), vec![true]);
        assert!(t.elapsed() < Duration::from_secs(5), "deadline must beat the size target");
        assert_eq!(lane.batches_formed(), 1);
    }

    #[test]
    fn overload_fails_fast_instead_of_buffering() {
        let config = CoalesceConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_millis(100),
            queue_cap: 2,
        };
        let (_cat, lane) = lane_over_path("lane_overload", 10, config);
        std::thread::scope(|scope| {
            let lane = &lane;
            let filler = scope.spawn(move || lane.submit_wait(&[(0, 1), (0, 2)], WAIT));
            // Wait until the filler's two queries occupy the queue.
            while lane.inner.state.lock().unwrap().queries.len() < 2 {
                std::thread::yield_now();
            }
            assert_eq!(lane.submit_wait(&[(0, 3)], WAIT), Err(SubmitError::Overloaded));
            assert_eq!(filler.join().unwrap().unwrap(), vec![true, true]);
        });
        assert_eq!(lane.overloads(), 1);
    }

    #[test]
    fn shutdown_drains_pending_groups() {
        let config = CoalesceConfig {
            batch_target: 1_000_000,
            deadline: Duration::from_secs(60),
            queue_cap: 64,
        };
        let (_cat, lane) = lane_over_path("lane_shutdown", 10, config);
        std::thread::scope(|scope| {
            let lane = &lane;
            let pending = scope.spawn(move || lane.submit_wait(&[(0, 9)], WAIT));
            while lane.inner.state.lock().unwrap().queries.is_empty() {
                std::thread::yield_now();
            }
            lane.shutdown();
            // Drained, not dropped: the pending group still answers.
            assert_eq!(pending.join().unwrap().unwrap(), vec![true]);
        });
        assert_eq!(lane.submit_wait(&[(0, 1)], WAIT), Err(SubmitError::ShuttingDown));
    }
}

//! Saturating in-process load generator for the serving stack: sweeps
//! client-concurrency levels against **two** live servers over the same
//! warm catalog — one coalescing (the admission queue) and one direct
//! (one engine dispatch per request) — and emits qps-vs-latency curves
//! into `BENCH_server.json`. The headline number is
//! `coalescing_speedup_at_64`: how much throughput the admission queue
//! buys at 64 concurrent connections, CI-gated at ≥ 5×.
//!
//! Clients are pipelined (a window of single-query GETs per write, all
//! responses read back before the next window), which is both how a
//! throughput-serious client behaves and what lets the server's run
//! collection feed the coalescer whole groups. Latency is reported as
//! client-observed window round-trip time (p50/p99 per level) — the
//! real time-to-last-answer for a pipelined group of `WINDOW` queries.
//!
//! Run: `cargo run --release -p pscc-server --bin bench_server [OUT.json] [--measure-ms N]`

use pscc_server::args::Args;
use pscc_server::{start, CoalesceConfig, DispatchMode, ServerConfig, ServerHandle};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

const GRAPH: &str = "bench";
const SCALE: u32 = 16;
const EDGES: usize = 400_000;
const SEED: u64 = 0xbe7c4;
/// Pipelined single-query GETs per client write.
const WINDOW: usize = 1024;
/// Distinct queries cycled through (matches the memo capacity, so the
/// sweep measures warm dispatch, not memo misses).
const POOL: usize = 1 << 13;
const LEVELS: [usize; 7] = [1, 2, 4, 8, 16, 32, 64];

fn main() {
    let mut args = Args::from_env();
    let measure_ms =
        args.parsed::<u64>("--measure-ms", "milliseconds per level").unwrap_or_else(|e| {
            eprintln!("bench_server: {e}");
            std::process::exit(2);
        });
    let measure = Duration::from_millis(measure_ms.unwrap_or(700));
    let rest = args.finish();
    let out_path = rest.first().map(String::as_str).unwrap_or("BENCH_server.json");

    // ---- Shared warm catalog ----
    let t = Instant::now();
    let g = pscc_graph::generators::rmat::rmat_digraph(SCALE, EDGES, SEED);
    let (n, m) = (g.n(), g.m());
    println!("graph: rmat n={n} m={m} in {:.1}ms", t.elapsed().as_secs_f64() * 1e3);
    let catalog = Arc::new(pscc_engine::Catalog::new());
    catalog.insert(GRAPH, g);
    let t = Instant::now();
    catalog.index(GRAPH).unwrap();
    println!("index built in {:.1}ms", t.elapsed().as_secs_f64() * 1e3);
    let pool = query_pool(n);
    // Warm the shared memo once; both servers serve from this index.
    let submitter = catalog.submitter(GRAPH).unwrap();
    submitter.submit(&pool);
    println!("memo warmed over {POOL} pooled queries\n");

    // ---- Two servers, one catalog ----
    let coalesce = CoalesceConfig { queue_cap: 128 * 1024, ..CoalesceConfig::default() };
    let coalesced = start(
        catalog.clone(),
        ServerConfig { mode: DispatchMode::Coalesced(coalesce), ..ServerConfig::default() },
    )
    .expect("bind coalesced server");
    let direct = start(
        catalog.clone(),
        ServerConfig { mode: DispatchMode::Direct, ..ServerConfig::default() },
    )
    .expect("bind direct server");

    let mut levels_json = Vec::new();
    let mut speedup_at_64 = 0.0;
    let mut mean_batch_at_64 = 0.0;
    let mut overloads_total = 0u64;
    for &conns in &LEVELS {
        // Direct first, then coalesced, at every level: both run on the
        // same warmed index, and alternating per level keeps any slow
        // drift (cache state, clock) from systematically favoring one.
        let d = drive(&direct, conns, measure, &pool);
        let before = coalesced.port_stats(GRAPH);
        let c = drive(&coalesced, conns, measure, &pool);
        let stats = coalesced.port_stats(GRAPH).expect("lane exists after traffic");
        let (batches, queries) = match before {
            Some(b) => (
                stats.batches_formed - b.batches_formed,
                stats.queries_coalesced - b.queries_coalesced,
            ),
            None => (stats.batches_formed, stats.queries_coalesced),
        };
        let mean_batch = queries as f64 / (batches.max(1)) as f64;
        overloads_total = stats.overloads;
        println!(
            "conns {conns:>3}: direct {:>9.0} qps   coalesced {:>10.0} qps ({:.1}x, \
             mean batch {mean_batch:.0}, window p50 {:.2}ms)",
            d.qps,
            c.qps,
            c.qps / d.qps,
            c.p50_window_seconds * 1e3,
        );
        if conns == 64 {
            speedup_at_64 = c.qps / d.qps;
            mean_batch_at_64 = mean_batch;
        }
        levels_json.push(format!(
            "    {{\"connections\": {conns},\n     \"coalesced\": {{\"qps\": {:.0}, \
             \"p50_window_seconds\": {:.9}, \"p99_window_seconds\": {:.9}, \
             \"batches_formed\": {batches}, \"queries\": {queries}, \
             \"mean_batch\": {mean_batch:.1}}},\n     \"direct\": {{\"qps\": {:.0}, \
             \"p50_window_seconds\": {:.9}, \"p99_window_seconds\": {:.9}}}}}",
            c.qps,
            c.p50_window_seconds,
            c.p99_window_seconds,
            d.qps,
            d.p50_window_seconds,
            d.p99_window_seconds,
        ));
    }
    coalesced.shutdown();
    direct.shutdown();

    let json = format!(
        "{{\n  \"graph\": {{\"family\": \"rmat\", \"n\": {n}, \"m\": {m}}},\n  \
         \"config\": {{\"batch_target\": {}, \"deadline_us\": {}, \"queue_cap\": {}, \
         \"window\": {WINDOW}, \"measure_seconds\": {:.3}}},\n  \
         \"levels\": [\n{}\n  ],\n  \
         \"coalescing_speedup_at_64\": {speedup_at_64:.2},\n  \
         \"mean_batch_at_64\": {mean_batch_at_64:.1},\n  \
         \"overloads_total\": {overloads_total}\n}}\n",
        coalesce.batch_target,
        coalesce.deadline.as_micros(),
        coalesce.queue_cap,
        measure.as_secs_f64(),
        levels_json.join(",\n"),
    );
    std::fs::write(out_path, &json).expect("write BENCH_server.json");
    println!("\nwrote {out_path}");

    // ---- Gates: a regression here fails the bench run itself ----
    assert!(
        speedup_at_64 >= 5.0,
        "coalesced dispatch must be >= 5x direct at 64 connections (got {speedup_at_64:.2}x)"
    );
    assert!(
        mean_batch_at_64 >= 8.0,
        "mean batch at 64 connections must show real coalescing (got {mean_batch_at_64:.1})"
    );
    assert_eq!(overloads_total, 0, "the sweep must not trip backpressure");
    println!(
        "gates passed: {speedup_at_64:.2}x speedup at 64 conns, mean batch {mean_batch_at_64:.0}"
    );
}

/// Append `n`'s decimal digits without allocating (the request
/// formatter runs on the same single CPU as the server under test, so
/// client-side cost dilutes both modes' numbers equally — keep it low).
fn push_digits(out: &mut Vec<u8>, mut n: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

/// The deterministic pooled queries both modes serve.
fn query_pool(n: usize) -> Vec<(pscc_graph::V, pscc_graph::V)> {
    let mut rng = pscc_runtime::SplitMix64::new(0x5e12e);
    (0..POOL)
        .map(|_| {
            (rng.next_below(n as u64) as pscc_graph::V, rng.next_below(n as u64) as pscc_graph::V)
        })
        .collect()
}

struct LevelResult {
    qps: f64,
    p50_window_seconds: f64,
    p99_window_seconds: f64,
}

/// Run `conns` pipelined clients against `server` for `measure`,
/// returning aggregate throughput and window-RTT quantiles.
fn drive(
    server: &ServerHandle,
    conns: usize,
    measure: Duration,
    pool: &[(pscc_graph::V, pscc_graph::V)],
) -> LevelResult {
    let addr = server.local_addr();
    let stop = AtomicBool::new(false);
    let started = Instant::now();
    let (total, mut rtts) = std::thread::scope(|scope| {
        let stop = &stop;
        let handles: Vec<_> = (0..conns)
            .map(|c| {
                scope.spawn(move || {
                    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
                    stream.set_nodelay(true).expect("nodelay");
                    let mut request = Vec::with_capacity(WINDOW * 48);
                    let mut response = vec![0u8; WINDOW * 64];
                    let mut rtts: Vec<u64> = Vec::with_capacity(4096);
                    let mut completed = 0u64;
                    let mut window_index = 0usize;
                    while !stop.load(Ordering::Relaxed) {
                        request.clear();
                        let base = (c * 9973 + window_index * WINDOW) % (pool.len() - WINDOW);
                        for &(u, v) in &pool[base..base + WINDOW] {
                            request.extend_from_slice(b"GET /reach/bench?u=");
                            push_digits(&mut request, u as u64);
                            request.extend_from_slice(b"&v=");
                            push_digits(&mut request, v as u64);
                            request.extend_from_slice(b" HTTP/1.1\r\n\r\n");
                        }
                        let t = Instant::now();
                        stream.write_all(&request).expect("write window");
                        read_window_responses(&mut stream, &mut response);
                        rtts.push(t.elapsed().as_nanos() as u64);
                        completed += WINDOW as u64;
                        window_index += 1;
                    }
                    (completed, rtts)
                })
            })
            .collect();
        std::thread::sleep(measure);
        stop.store(true, Ordering::Relaxed);
        let mut total = 0u64;
        let mut rtts = Vec::new();
        for h in handles {
            let (completed, client_rtts) = h.join().expect("client thread");
            total += completed;
            rtts.extend(client_rtts);
        }
        (total, rtts)
    });
    let elapsed = started.elapsed().as_secs_f64();
    rtts.sort_unstable();
    let quantile = |q: f64| -> f64 {
        if rtts.is_empty() {
            return 0.0;
        }
        let idx = ((rtts.len() - 1) as f64 * q).round() as usize;
        rtts[idx] as f64 / 1e9
    };
    LevelResult {
        qps: total as f64 / elapsed,
        p50_window_seconds: quantile(0.50),
        p99_window_seconds: quantile(0.99),
    }
}

/// Read exactly `WINDOW` responses off the pipelined connection,
/// panicking on any non-200 (the sweep must stay on the happy path —
/// an overload or error here means the gate numbers would be fiction).
fn read_window_responses(stream: &mut TcpStream, scratch: &mut [u8]) {
    let mut buf: Vec<u8> = Vec::with_capacity(WINDOW * 48);
    let mut seen = 0usize;
    let mut parsed_from = 0usize;
    while seen < WINDOW {
        let got = match stream.read(scratch) {
            Ok(0) => panic!("server closed mid-window"),
            Ok(got) => got,
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                continue
            }
            Err(e) => panic!("read window: {e}"),
        };
        buf.extend_from_slice(&scratch[..got]);
        // Scan complete responses: status line, Content-Length, body.
        loop {
            let tail = &buf[parsed_from..];
            // Happy path: both point-query answers share a 38-byte
            // prefix and are exactly 39 bytes — one memcmp each.
            const OK_PREFIX: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\n";
            if tail.len() >= 39 && tail[..38] == *OK_PREFIX {
                parsed_from += 39;
                seen += 1;
                if seen == WINDOW {
                    break;
                }
                continue;
            }
            let Some(head_end) = tail.windows(4).position(|w| w == b"\r\n\r\n") else {
                break;
            };
            let head = std::str::from_utf8(&tail[..head_end]).expect("UTF-8 head");
            let status =
                head.split(' ').nth(1).and_then(|s| s.parse::<u16>().ok()).expect("status code");
            let length: usize = head
                .lines()
                .find_map(|l| l.strip_prefix("Content-Length: "))
                .and_then(|v| v.parse().ok())
                .expect("Content-Length");
            let total = head_end + 4 + length;
            if tail.len() < total {
                break;
            }
            assert_eq!(
                status,
                200,
                "non-200 during sweep: {:?}",
                String::from_utf8_lossy(&tail[..total])
            );
            parsed_from += total;
            seen += 1;
            if seen == WINDOW {
                break;
            }
        }
        if parsed_from == buf.len() {
            buf.clear();
            parsed_from = 0;
        }
    }
    assert_eq!(parsed_from, buf.len(), "trailing bytes after a full window");
}

//! A hand-rolled HTTP/1.1-lite wire layer: just enough of the protocol
//! for the reachability front end — request-line + headers + optional
//! `Content-Length` body, persistent connections by default, and
//! pipelining (the parser consumes one complete request from a byte
//! buffer and reports how many bytes it used, so a connection handler
//! can peel requests off a read buffer in a loop). No chunked encoding,
//! no multi-line headers, no TLS — this container has std networking
//! only, and the engine's value is in the dispatch behind the socket,
//! not the socket itself.

/// One parsed request, borrowing from the connection's read buffer.
#[derive(Debug, PartialEq, Eq)]
pub struct Request<'a> {
    pub method: &'a str,
    /// Request target up to `?` (e.g. `/reach/serve`).
    pub path: &'a str,
    /// Raw query string after `?`, empty if none.
    pub query: &'a str,
    /// Body bytes (exactly `Content-Length` of them).
    pub body: &'a [u8],
    /// False only for `Connection: close`.
    pub keep_alive: bool,
}

/// A malformed request — the connection should answer 400 and close.
#[derive(Debug, PartialEq, Eq)]
pub struct BadRequest(pub &'static str);

/// Maximum bytes of headers and of body we will buffer for one request;
/// beyond this the peer is abusive or confused and gets a 400.
pub const MAX_HEAD_BYTES: usize = 8 * 1024;
pub const MAX_BODY_BYTES: usize = 8 * 1024 * 1024;

/// Try to parse one request from the front of `buf`.
///
/// - `Ok(Some((request, consumed)))` — a complete request; the caller
///   owns `buf[..consumed]` and should process then discard it.
/// - `Ok(None)` — incomplete; read more bytes and retry.
/// - `Err(BadRequest)` — irrecoverably malformed.
pub fn parse_request(buf: &[u8]) -> Result<Option<(Request<'_>, usize)>, BadRequest> {
    let Some(head_len) = find_double_crlf(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(BadRequest("request head too large"));
        }
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..head_len]).map_err(|_| BadRequest("non-UTF-8 head"))?;
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(BadRequest("malformed request line"));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(BadRequest("unsupported protocol version"));
    }
    let mut content_length = 0usize;
    let mut keep_alive = true;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else { continue };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().map_err(|_| BadRequest("unparsable Content-Length"))?;
            if content_length > MAX_BODY_BYTES {
                return Err(BadRequest("body too large"));
            }
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        }
    }
    let body_start = head_len + 4;
    let consumed = body_start + content_length;
    if buf.len() < consumed {
        return Ok(None);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Some((
        Request { method, path, query, body: &buf[body_start..consumed], keep_alive },
        consumed,
    )))
}

/// Byte offset of the first `\r\n\r\n` (start of the blank line), if any.
fn find_double_crlf(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Bytes-only fast path for the dominant request shape on a hot serving
/// socket — a bare pipelined point query:
///
/// ```text
/// GET /reach/<graph>?u=<digits>&v=<digits> HTTP/1.1\r\n\r\n
/// ```
///
/// One forward scan, no UTF-8 validation of the whole head, no header
/// parsing (the shape has no headers). Returns `(graph, u, v,
/// consumed)`. `None` means "not this shape or not complete yet" — the
/// caller falls back to [`parse_request`], which handles both, so the
/// fast path can never change observable behavior, only skip work.
pub fn parse_point_get_fast(buf: &[u8]) -> Option<(&str, u64, u64, usize)> {
    const PREFIX: &[u8] = b"GET /reach/";
    const SUFFIX: &[u8] = b" HTTP/1.1\r\n\r\n";
    if !buf.starts_with(PREFIX) {
        return None;
    }
    let mut i = PREFIX.len();
    let graph_start = i;
    while i < buf.len() && buf[i] != b'?' && buf[i] != b' ' && buf[i] != b'\r' {
        i += 1;
    }
    if i >= buf.len() || buf[i] != b'?' || i == graph_start {
        return None;
    }
    let graph = std::str::from_utf8(&buf[graph_start..i]).ok()?;
    i += 1;
    if !buf[i..].starts_with(b"u=") {
        return None;
    }
    let (u, used) = parse_digits(&buf[i + 2..])?;
    i += 2 + used;
    if !buf[i..].starts_with(b"&v=") {
        return None;
    }
    let (v, used) = parse_digits(&buf[i + 3..])?;
    i += 3 + used;
    if !buf[i..].starts_with(SUFFIX) {
        return None;
    }
    Some((graph, u, v, i + SUFFIX.len()))
}

/// Leading decimal digits of `buf` as a number, with how many bytes
/// they span. `None` on zero digits or more than 19 (overflow guard).
fn parse_digits(buf: &[u8]) -> Option<(u64, usize)> {
    let mut value = 0u64;
    let mut used = 0usize;
    while used < buf.len() && buf[used].is_ascii_digit() {
        if used >= 19 {
            return None;
        }
        value = value * 10 + (buf[used] - b'0') as u64;
        used += 1;
    }
    if used == 0 {
        return None;
    }
    Some((value, used))
}

/// Value of `key` in a raw query string (`u=3&v=9`), percent-decoding
/// not supported (targets here are numeric).
pub fn query_param<'a>(query: &'a str, key: &str) -> Option<&'a str> {
    query
        .split('&')
        .filter_map(|pair| pair.split_once('='))
        .find(|(k, _)| *k == key)
        .map(|(_, v)| v)
}

/// Append a full response (status line, `Content-Length`, body) to the
/// connection's write buffer.
pub fn write_response(out: &mut Vec<u8>, status: u16, reason: &str, body: &[u8]) {
    out.extend_from_slice(b"HTTP/1.1 ");
    push_number(out, status as u64);
    out.push(b' ');
    out.extend_from_slice(reason.as_bytes());
    out.extend_from_slice(b"\r\nContent-Length: ");
    push_number(out, body.len() as u64);
    out.extend_from_slice(b"\r\n\r\n");
    out.extend_from_slice(body);
}

/// Preformatted single-byte-body 200s for the hot point-query path —
/// the handler appends one of these per answer, no formatting at all.
pub const RESP_TRUE: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\n1";
pub const RESP_FALSE: &[u8] = b"HTTP/1.1 200 OK\r\nContent-Length: 1\r\n\r\n0";

fn push_number(out: &mut Vec<u8>, mut n: u64) {
    let mut digits = [0u8; 20];
    let mut i = digits.len();
    loop {
        i -= 1;
        digits[i] = b'0' + (n % 10) as u8;
        n /= 10;
        if n == 0 {
            break;
        }
    }
    out.extend_from_slice(&digits[i..]);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_minimal_get() {
        let raw = b"GET /reach/g?u=1&v=2 HTTP/1.1\r\n\r\n";
        let (req, used) = parse_request(raw).unwrap().unwrap();
        assert_eq!(used, raw.len());
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/reach/g");
        assert_eq!(req.query, "u=1&v=2");
        assert_eq!(req.body, b"");
        assert!(req.keep_alive);
        assert_eq!(query_param(req.query, "u"), Some("1"));
        assert_eq!(query_param(req.query, "v"), Some("2"));
        assert_eq!(query_param(req.query, "w"), None);
    }

    #[test]
    fn parses_post_with_body_and_pipelined_tail() {
        let raw =
            b"POST /delta/g HTTP/1.1\r\nContent-Length: 6\r\n\r\n+ 1 2\nGET / HTTP/1.1\r\n\r\n";
        let (req, used) = parse_request(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.body, b"+ 1 2\n");
        let (next, _) = parse_request(&raw[used..]).unwrap().unwrap();
        assert_eq!(next.method, "GET");
        assert_eq!(next.path, "/");
    }

    #[test]
    fn incomplete_requests_ask_for_more() {
        assert_eq!(parse_request(b"GET / HTT").unwrap(), None);
        // Head complete, body still in flight.
        assert_eq!(
            parse_request(b"POST /d HTTP/1.1\r\nContent-Length: 5\r\n\r\nab").unwrap(),
            None
        );
    }

    #[test]
    fn connection_close_is_honored() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        let (req, _) = parse_request(raw).unwrap().unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        assert!(parse_request(b"NONSENSE\r\n\r\n").is_err());
        assert!(parse_request(b"GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse_request(b"POST / HTTP/1.1\r\nContent-Length: many\r\n\r\n").is_err());
    }

    #[test]
    fn response_writer_and_static_responses_agree() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", b"1");
        assert_eq!(out, RESP_TRUE);
        out.clear();
        write_response(&mut out, 200, "OK", b"0");
        assert_eq!(out, RESP_FALSE);
        out.clear();
        write_response(&mut out, 503, "Service Unavailable", b"overloaded\n");
        assert!(out.starts_with(b"HTTP/1.1 503 Service Unavailable\r\nContent-Length: 11\r\n"));
    }
}

//! # pscc-server — a batch-coalescing reachability front end
//!
//! The engine answers reachability queries hundreds of times faster in
//! batches than one at a time — the paper's batched multi-source
//! reachability is the unit of work everything in this workspace is
//! built around. This crate puts a network in front of that fact
//! without giving the win back: a hand-rolled TCP HTTP/1.1-lite server
//! (std networking only) whose core is the [`coalesce::Lane`] admission
//! queue — concurrent in-flight point queries from independent
//! connections are coalesced into engine
//! [`QueryBatch`](pscc_engine::QueryBatch)es via the catalog's lean
//! [`BatchSubmitter`](pscc_engine::BatchSubmitter) path, with adaptive
//! dispatch (size target or deadline, whichever first) and explicit
//! per-graph backpressure (bounded queue, HTTP 503 on overload).
//!
//! Layers, bottom up:
//!
//! | module | role |
//! |---|---|
//! | [`args`] | shared `--flag VALUE` parser for the workspace's front-end binaries |
//! | [`http`] | HTTP/1.1-lite request parsing and response formatting, pipelining-aware |
//! | [`coalesce`] | the admission queue: adaptive batching, backpressure, telemetry |
//! | [`server`] | TCP accept loop, run collection, routing, the delta write path |
//!
//! Two binaries ride along: `pscc-server` (the standalone daemon) and
//! `bench_server` (an in-process load generator that sweeps concurrency
//! levels against a coalescing and a direct-dispatch server and emits
//! `BENCH_server.json` — the number that justifies this crate).
//!
//! ```no_run
//! use std::sync::Arc;
//! use pscc_engine::Catalog;
//! use pscc_server::{start, ServerConfig};
//!
//! let catalog = Arc::new(Catalog::new());
//! catalog.insert("g", pscc_graph::generators::simple::cycle_digraph(8));
//! let handle = start(catalog, ServerConfig::default()).unwrap();
//! println!("serving on {}", handle.local_addr());
//! // GET /reach/g?u=0&v=5  ->  "1"
//! handle.shutdown();
//! ```

pub mod args;
pub mod coalesce;
pub mod http;
pub mod server;

pub use coalesce::{CoalesceConfig, Lane, SubmitError};
pub use server::{start, DispatchMode, PortStats, ServerConfig, ServerHandle};

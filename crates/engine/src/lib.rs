//! # pscc-engine — a batched reachability query engine on the condensation DAG
//!
//! The paper computes SCCs because strong connectivity underlies
//! reachability answering at scale: two vertices reach each other iff they
//! share an SCC, and general `u ⇝ v` reachability factors through the
//! (acyclic) condensation. This crate turns the workspace's SCC pipeline
//! (`parallel_scc` → `condense`) into a serving layer:
//!
//! * [`Index`] — an immutable per-graph reachability index. Construction
//!   runs the paper's BGSS SCC, contracts to the condensation DAG, assigns
//!   longest-path topological levels, and precomputes a descendant summary
//!   whose representation adapts to the DAG size ([`SummaryTier`]):
//!   full per-component **bitsets** when they fit a memory budget,
//!   **pruned 2-hop labels** (sorted hub arrays; a point query is one
//!   merge-intersection, no DFS fallback) when the DAG is large but the
//!   labeling fits its own byte budget, and GRAIL-style randomized
//!   **DFS interval labels with exception lists** (exact small
//!   descendant sets) plus a pruned-DFS fallback otherwise. Queries
//!   short-circuit in order: same SCC → level prune → summary.
//! * [`QueryBatch`] — answers query batches in parallel via the runtime's
//!   blocked `par_for`, with a concurrent fixed-capacity memo for hot
//!   component-pair verdicts.
//! * [`Catalog`] — named graphs with lazily built, invalidatable indexes.
//!   Merges and index builds run **off-lock** with a generation counter
//!   (queries keep answering from the current index during a multi-second
//!   rebuild; a racing delta is detected, never lost — see
//!   [`catalog`]), and any entry can be made durable: [`Catalog::persist_to`]
//!   attaches a `pscc-store` snapshot + write-ahead log, after which
//!   deltas are fsynced before they return and [`Catalog::open`] recovers
//!   the whole catalog after a restart (torn log tails truncated), with
//!   background compaction under a [`CompactionPolicy`].
//! * [`Delta`] — batched edge updates applied through
//!   [`Catalog::apply_delta`]: the delta is normalized
//!   ([`Delta::normalized`]), the graph merged in parallel
//!   (`DiGraph::with_delta`), and the index repaired *incrementally* by
//!   the tiered planner ([`planner`]). Insertions: absorb (answers
//!   provably unchanged, index kept) → condensation arc splice (SCC
//!   labels kept, levels/summary patched for affected ancestors) →
//!   region SCC recompute (the SCC algorithm re-runs on just the
//!   affected DAG region). Deletions, against a per-arc edge-support
//!   table: support decrement (a parallel edge or the DAG still
//!   witnesses the arc — metadata only, index kept) → DAG-arc unsplice
//!   (the last support died: drop the arc, relax levels, narrow
//!   summaries for affected ancestors) → SCC split check (an intra-SCC
//!   deletion: SCC re-runs on just that component's members and the
//!   sub-components are spliced back). The cost-bounded full rebuild
//!   remains only for mixed structural deltas and repairs past the
//!   [`RepairBudget`]. Each tier's use is tallied per entry
//!   ([`Catalog::repair_counts`]).
//!
//! ```
//! use pscc_engine::{Catalog, Index, QueryBatch};
//! use pscc_graph::DiGraph;
//!
//! // {0,1,2} is a cycle feeding a tail 3 -> 4.
//! let g = DiGraph::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
//! let index = Index::build(&g);
//! assert!(index.reaches(0, 4));     // through the cycle, down the tail
//! assert!(index.reaches(2, 1));     // same SCC
//! assert!(!index.reaches(4, 0));    // tails don't flow back
//!
//! let batch = QueryBatch::new(&index);
//! assert_eq!(batch.answer(&[(0, 4), (4, 0)]), vec![true, false]);
//!
//! let catalog = Catalog::new();
//! catalog.insert("demo", g);
//! assert_eq!(catalog.reaches("demo", 1, 3), Some(true));
//! ```

pub mod batch;
pub mod catalog;
pub mod delta;
pub mod explain;
pub mod index;
mod layers;
pub mod planner;

pub use batch::{BatchOptions, BatchStats, QueryBatch};
pub use catalog::{BatchSubmitter, Catalog, CompactionPolicy, RepairCounts};
pub use delta::{Delta, DeltaError, DeltaOutcome, DeltaReport};
pub use explain::{PlanExplain, QueryExplain, QueryTier};
pub use index::{BuildCause, Index, IndexConfig, IndexStats, SummaryTier};
pub use planner::{plan_repair_explained, RebuildReason, RepairBudget, RepairPlan};
pub use pscc_telemetry as telemetry;

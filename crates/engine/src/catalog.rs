//! A catalog of named graphs with lazily built, invalidatable indexes —
//! the multi-tenant face of the engine: register graphs up front, pay for
//! an index only when a query actually arrives, drop it when the graph
//! changes, and mutate graphs in place with batched [`Delta`]s that keep
//! the index alive whenever the math allows.

use crate::batch::{BatchOptions, MemoCache, QueryBatch};
use crate::delta::{absorbs_all, Delta, DeltaError, DeltaOutcome, DeltaReport};
use crate::index::{BuildCause, Index, IndexConfig};
use pscc_graph::{DiGraph, V};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

/// Mutable per-graph state: the graph itself plus its (lazily built)
/// index. One mutex guards both so delta application swaps them together.
struct EntryState {
    graph: Arc<DiGraph>,
    /// Built on first use; `None` after invalidation. The memo cache lives
    /// (and is invalidated) with the index so verdicts stay warm across
    /// batches — and across absorbed deltas.
    index: Option<(Arc<Index>, Arc<MemoCache>)>,
}

struct Entry {
    config: IndexConfig,
    batch: BatchOptions,
    /// The per-entry mutex serializes concurrent builders and updaters of
    /// the *same* graph while leaving other entries untouched.
    state: Mutex<EntryState>,
}

/// Holds multiple named graphs, each with a lazily built reachability
/// index.
#[derive(Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, Arc<Entry>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a graph under `name` with the default index
    /// and batch configuration. Replacing drops any cached index.
    pub fn insert(&self, name: &str, graph: DiGraph) {
        self.insert_with_config(name, graph, IndexConfig::default(), BatchOptions::default());
    }

    /// Registers (or replaces) a graph with explicit index and batch
    /// configurations. The [`BatchOptions`] are stored with the entry and
    /// honored by every subsequent [`Catalog::answer_batch`] (grain) and
    /// memo construction (capacity).
    pub fn insert_with_config(
        &self,
        name: &str,
        graph: DiGraph,
        config: IndexConfig,
        batch: BatchOptions,
    ) {
        let entry = Arc::new(Entry {
            config,
            batch,
            state: Mutex::new(EntryState { graph: Arc::new(graph), index: None }),
        });
        self.entries.write().expect("catalog lock").insert(name.to_string(), entry);
    }

    /// Removes a graph (and its index). Returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.entries.write().expect("catalog lock").remove(name).is_some()
    }

    /// Drops the cached index of `name`, forcing a rebuild on next use;
    /// returns whether the graph exists.
    pub fn invalidate(&self, name: &str) -> bool {
        match self.entry(name) {
            Some(e) => {
                e.state.lock().expect("entry lock").index.take();
                true
            }
            None => false,
        }
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.entries.read().expect("catalog lock").keys().cloned().collect();
        names.sort();
        names
    }

    /// The graph registered under `name`.
    pub fn graph(&self, name: &str) -> Option<Arc<DiGraph>> {
        self.entry(name).map(|e| e.state.lock().expect("entry lock").graph.clone())
    }

    /// True if `name` currently holds a built index.
    pub fn is_indexed(&self, name: &str) -> bool {
        self.entry(name)
            .map(|e| e.state.lock().expect("entry lock").index.is_some())
            .unwrap_or(false)
    }

    /// The index for `name`, building it on first use.
    pub fn index(&self, name: &str) -> Option<Arc<Index>> {
        self.index_and_memo(name).map(|(index, _)| index)
    }

    /// Answers one reachability query against `name`'s graph.
    pub fn reaches(&self, name: &str, u: V, v: V) -> Option<bool> {
        Some(self.index(name)?.reaches(u, v))
    }

    /// Answers a batch of queries against `name`'s graph in parallel,
    /// using the entry's stored [`BatchOptions`]. The memo is shared
    /// across calls, so repeated hot pairs are answered from cache even in
    /// later batches.
    pub fn answer_batch(&self, name: &str, queries: &[(V, V)]) -> Option<Vec<bool>> {
        let entry = self.entry(name)?;
        let (index, memo) = Self::entry_index_and_memo(&entry);
        let batch = QueryBatch::with_shared_memo(&index, memo, entry.batch.grain);
        Some(batch.answer(queries))
    }

    /// Applies a batched edge update to `name`'s graph, atomically
    /// swapping in the merged graph ([`DiGraph::with_delta`]) and
    /// repairing the index incrementally:
    ///
    /// * deltas whose every effective change provably keeps the
    ///   reachability relation (insertions inside one SCC or between
    ///   already-reachable component pairs) keep the existing index *and*
    ///   its warm memo ([`DeltaOutcome::Absorbed`]);
    /// * deltas that can merge components or add DAG reachability — and
    ///   any effective deletion — rebuild the index eagerly
    ///   ([`DeltaOutcome::Rebuilt`], stamped
    ///   [`BuildCause::DeltaRebuild`][crate::index::BuildCause]);
    /// * if no index was built yet the graph is swapped and indexing stays
    ///   lazy ([`DeltaOutcome::Deferred`]).
    ///
    /// Returns the path taken plus effective edge counts, or a
    /// [`DeltaError`] (nothing modified) for an unknown graph or an
    /// out-of-range endpoint.
    ///
    /// Like the lazy first-query build, the merge and any rebuild run
    /// under the entry's mutex: concurrent queries against the *same*
    /// graph wait for the swap (other entries are unaffected), which is
    /// what makes the update atomic — callers never observe the new graph
    /// with the old index or vice versa.
    pub fn apply_delta(&self, name: &str, delta: &Delta) -> Result<DeltaReport, DeltaError> {
        let entry = self.entry(name).ok_or_else(|| DeltaError::UnknownGraph(name.to_string()))?;
        let mut st = entry.state.lock().expect("entry lock");
        let n = st.graph.n();
        for &edge in delta.insertions().iter().chain(delta.deletions()) {
            if edge.0 as usize >= n || edge.1 as usize >= n {
                return Err(DeltaError::EndpointOutOfRange { edge, n });
            }
        }

        // Reduce to the *effective* delta: insertions of absent edges, and
        // deletions of present edges not re-inserted by this same delta
        // (insertions win).
        let graph = &st.graph;
        let has_edge = |&(u, v): &(V, V)| graph.out_neighbors(u).binary_search(&v).is_ok();
        let mut ins: Vec<(V, V)> =
            delta.insertions().iter().filter(|e| !has_edge(e)).copied().collect();
        pscc_graph::dedup_edges(&mut ins);
        let mut del: Vec<(V, V)> = if delta.deletions().is_empty() {
            Vec::new()
        } else {
            // Sorted copy of *all* queued insertions (present ones
            // included) so the reinsertion check is a binary search, not
            // a linear scan.
            let mut queued_ins = delta.insertions().to_vec();
            pscc_graph::dedup_edges(&mut queued_ins);
            delta
                .deletions()
                .iter()
                .filter(|e| has_edge(e) && queued_ins.binary_search(e).is_err())
                .copied()
                .collect()
        };
        pscc_graph::dedup_edges(&mut del);
        if ins.is_empty() && del.is_empty() {
            return Ok(DeltaReport { outcome: DeltaOutcome::NoOp, inserted: 0, deleted: 0 });
        }

        let merged = Arc::new(st.graph.with_delta(&ins, &del));
        let report = |outcome| DeltaReport { outcome, inserted: ins.len(), deleted: del.len() };
        let outcome = match st.index.take() {
            None => DeltaOutcome::Deferred,
            Some((index, memo)) if del.is_empty() && absorbs_all(&index, &ins) => {
                index.note_absorbed();
                st.index = Some((index, memo));
                DeltaOutcome::Absorbed
            }
            Some(_) => {
                let mut index = Index::build_with_config(&merged, &entry.config);
                index.set_built_by(BuildCause::DeltaRebuild);
                let memo = MemoCache::new(entry.batch.memo_bits, index.num_components());
                st.index = Some((Arc::new(index), Arc::new(memo)));
                DeltaOutcome::Rebuilt
            }
        };
        st.graph = merged;
        Ok(report(outcome))
    }

    fn index_and_memo(&self, name: &str) -> Option<(Arc<Index>, Arc<MemoCache>)> {
        let entry = self.entry(name)?;
        Some(Self::entry_index_and_memo(&entry))
    }

    /// The entry's index + memo, built under the entry lock on first use
    /// with the entry's stored configurations.
    fn entry_index_and_memo(entry: &Entry) -> (Arc<Index>, Arc<MemoCache>) {
        let mut st = entry.state.lock().expect("entry lock");
        if st.index.is_none() {
            let index = Arc::new(Index::build_with_config(&st.graph, &entry.config));
            let memo = Arc::new(MemoCache::new(entry.batch.memo_bits, index.num_components()));
            st.index = Some((index, memo));
        }
        st.index.clone().expect("just built")
    }

    fn entry(&self, name: &str) -> Option<Arc<Entry>> {
        self.entries.read().expect("catalog lock").get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};

    #[test]
    fn insert_query_remove_roundtrip() {
        let cat = Catalog::new();
        cat.insert("p", path_digraph(10));
        cat.insert("c", cycle_digraph(10));
        assert_eq!(cat.names(), vec!["c".to_string(), "p".to_string()]);
        assert_eq!(cat.reaches("p", 0, 9), Some(true));
        assert_eq!(cat.reaches("p", 9, 0), Some(false));
        assert_eq!(cat.reaches("c", 7, 3), Some(true));
        assert_eq!(cat.reaches("missing", 0, 1), None);
        assert!(cat.remove("p"));
        assert!(!cat.remove("p"));
        assert_eq!(cat.reaches("p", 0, 9), None);
    }

    #[test]
    fn index_is_lazy_and_invalidatable() {
        let cat = Catalog::new();
        cat.insert("g", gnm_digraph(50, 120, 1));
        assert!(!cat.is_indexed("g"));
        let _ = cat.index("g").unwrap();
        assert!(cat.is_indexed("g"));
        assert!(cat.invalidate("g"));
        assert!(!cat.is_indexed("g"));
        // Still answers after invalidation (rebuilds).
        assert_eq!(cat.reaches("g", 0, 0), Some(true));
        assert!(!cat.invalidate("missing"));
    }

    #[test]
    fn replacing_a_graph_drops_the_stale_index() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(5));
        assert_eq!(cat.reaches("g", 0, 4), Some(true));
        // Replace with the reverse orientation: old answer must flip.
        let rev = DiGraph::from_edges(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        cat.insert("g", rev);
        assert!(!cat.is_indexed("g"));
        assert_eq!(cat.reaches("g", 0, 4), Some(false));
        assert_eq!(cat.reaches("g", 4, 0), Some(true));
    }

    #[test]
    fn batch_through_catalog() {
        let cat = Catalog::new();
        cat.insert("p", path_digraph(20));
        let queries: Vec<(V, V)> = (0..19).map(|i| (i as V, (i + 1) as V)).collect();
        let ans = cat.answer_batch("p", &queries).unwrap();
        assert!(ans.iter().all(|&b| b));
        assert!(cat.answer_batch("missing", &queries).is_none());
    }

    #[test]
    fn same_index_instance_is_shared() {
        let cat = Catalog::new();
        cat.insert("g", gnm_digraph(30, 60, 2));
        let a = cat.index("g").unwrap();
        let b = cat.index("g").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn per_entry_batch_options_are_honored() {
        let cat = Catalog::new();
        // memo_bits = 0 disables the memo for this entry only.
        let opts = BatchOptions { memo_bits: 0, grain: 3 };
        cat.insert_with_config("g", path_digraph(30), IndexConfig::default(), opts);
        let queries: Vec<(V, V)> = (0..29).map(|i| (i as V, (i + 1) as V)).collect();
        let ans = cat.answer_batch("g", &queries).unwrap();
        assert!(ans.iter().all(|&b| b));
    }

    #[test]
    fn delta_unknown_graph_and_out_of_range() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(4));
        let mut d = Delta::new();
        d.insert(0, 2);
        assert_eq!(
            cat.apply_delta("missing", &d),
            Err(DeltaError::UnknownGraph("missing".to_string()))
        );
        let mut bad = Delta::new();
        bad.delete(0, 9);
        assert_eq!(
            cat.apply_delta("g", &bad),
            Err(DeltaError::EndpointOutOfRange { edge: (0, 9), n: 4 })
        );
        // Nothing was modified by the failed applications.
        assert_eq!(cat.graph("g").unwrap().m(), 3);
    }

    #[test]
    fn redundant_delta_is_a_noop() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(4));
        let before = cat.index("g").unwrap();
        let mut d = Delta::new();
        d.insert(0, 1).delete(3, 0); // edge present / edge absent
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report, DeltaReport { outcome: DeltaOutcome::NoOp, inserted: 0, deleted: 0 });
        assert!(Arc::ptr_eq(&before, &cat.index("g").unwrap()));
    }

    #[test]
    fn absorbable_insertion_keeps_the_index_instance() {
        // 0 <-> 1 (one SCC) -> 2 -> 3.
        let cat = Catalog::new();
        cat.insert("g", DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]));
        let before = cat.index("g").unwrap();
        assert_eq!(before.stats().absorbed_deltas, 0);
        // In-SCC edge + already-reachable pair: both absorbable.
        let mut d = Delta::new();
        d.insert(0, 0).insert(0, 3);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Absorbed);
        assert_eq!(report.inserted, 2);
        let after = cat.index("g").unwrap();
        assert!(Arc::ptr_eq(&before, &after), "absorbed delta must keep the index");
        assert_eq!(after.stats().absorbed_deltas, 1);
        // The graph itself did change.
        assert_eq!(cat.graph("g").unwrap().m(), 6);
        assert_eq!(cat.reaches("g", 0, 3), Some(true));
    }

    #[test]
    fn merging_delta_rebuilds_the_index() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(5));
        let before = cat.index("g").unwrap();
        assert_eq!(before.stats().built_by, BuildCause::Fresh);
        assert_eq!(before.num_components(), 5);
        // 4 -> 0 closes the path into one big cycle: components merge.
        let mut d = Delta::new();
        d.insert(4, 0);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Rebuilt);
        let after = cat.index("g").unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "merging delta must rebuild");
        assert_eq!(after.stats().built_by, BuildCause::DeltaRebuild);
        assert_eq!(after.num_components(), 1);
        assert_eq!(cat.reaches("g", 3, 1), Some(true));
    }

    #[test]
    fn effective_deletion_rebuilds_and_flips_answers() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(5));
        assert_eq!(cat.reaches("g", 0, 4), Some(true));
        let mut d = Delta::new();
        d.delete(2, 3);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Rebuilt);
        assert_eq!(report.deleted, 1);
        assert_eq!(cat.reaches("g", 0, 4), Some(false));
        assert_eq!(cat.reaches("g", 0, 2), Some(true));
    }

    #[test]
    fn delta_before_first_query_defers_indexing() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(4));
        let mut d = Delta::new();
        d.insert(3, 0);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Deferred);
        assert!(!cat.is_indexed("g"));
        assert_eq!(cat.reaches("g", 2, 1), Some(true)); // lazy build sees the cycle
    }

    #[test]
    fn insertion_wins_when_delta_names_an_edge_twice() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(3));
        let mut d = Delta::new();
        d.insert(0, 1).delete(0, 1);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::NoOp);
        assert_eq!(cat.reaches("g", 0, 1), Some(true));
    }
}

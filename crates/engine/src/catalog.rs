//! A catalog of named graphs with lazily built, invalidatable indexes —
//! the multi-tenant face of the engine: register graphs up front, pay for
//! an index only when a query actually arrives, drop it when the graph
//! changes.

use crate::batch::{BatchOptions, MemoCache, QueryBatch};
use crate::index::{Index, IndexConfig};
use pscc_graph::{DiGraph, V};
use std::collections::HashMap;
use std::sync::{Arc, Mutex, RwLock};

struct Entry {
    graph: Arc<DiGraph>,
    config: IndexConfig,
    /// Built on first use; `None` after invalidation. The per-entry mutex
    /// serializes concurrent builders of the *same* graph while leaving
    /// other entries untouched. The memo cache lives (and is invalidated)
    /// with the index so verdicts stay warm across batches.
    index: Mutex<Option<(Arc<Index>, Arc<MemoCache>)>>,
}

/// Holds multiple named graphs, each with a lazily built reachability
/// index.
#[derive(Default)]
pub struct Catalog {
    entries: RwLock<HashMap<String, Arc<Entry>>>,
}

impl Catalog {
    /// An empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a graph under `name` with the default index
    /// configuration. Replacing drops any cached index.
    pub fn insert(&self, name: &str, graph: DiGraph) {
        self.insert_with_config(name, graph, IndexConfig::default());
    }

    /// Registers (or replaces) a graph with an explicit configuration.
    pub fn insert_with_config(&self, name: &str, graph: DiGraph, config: IndexConfig) {
        let entry = Arc::new(Entry { graph: Arc::new(graph), config, index: Mutex::new(None) });
        self.entries.write().expect("catalog lock").insert(name.to_string(), entry);
    }

    /// Removes a graph (and its index). Returns whether it existed.
    pub fn remove(&self, name: &str) -> bool {
        self.entries.write().expect("catalog lock").remove(name).is_some()
    }

    /// Drops the cached index of `name`, forcing a rebuild on next use;
    /// returns whether the graph exists.
    pub fn invalidate(&self, name: &str) -> bool {
        match self.entry(name) {
            Some(e) => {
                e.index.lock().expect("entry lock").take();
                true
            }
            None => false,
        }
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.entries.read().expect("catalog lock").keys().cloned().collect();
        names.sort();
        names
    }

    /// The graph registered under `name`.
    pub fn graph(&self, name: &str) -> Option<Arc<DiGraph>> {
        self.entry(name).map(|e| e.graph.clone())
    }

    /// True if `name` currently holds a built index.
    pub fn is_indexed(&self, name: &str) -> bool {
        self.entry(name).map(|e| e.index.lock().expect("entry lock").is_some()).unwrap_or(false)
    }

    /// The index for `name`, building it on first use.
    pub fn index(&self, name: &str) -> Option<Arc<Index>> {
        self.index_and_memo(name).map(|(index, _)| index)
    }

    /// Answers one reachability query against `name`'s graph.
    pub fn reaches(&self, name: &str, u: V, v: V) -> Option<bool> {
        Some(self.index(name)?.reaches(u, v))
    }

    /// Answers a batch of queries against `name`'s graph in parallel.
    /// The memo is shared across calls, so repeated hot pairs are answered
    /// from cache even in later batches.
    pub fn answer_batch(&self, name: &str, queries: &[(V, V)]) -> Option<Vec<bool>> {
        let (index, memo) = self.index_and_memo(name)?;
        let batch = QueryBatch::with_shared_memo(&index, memo, BatchOptions::default().grain);
        Some(batch.answer(queries))
    }

    fn index_and_memo(&self, name: &str) -> Option<(Arc<Index>, Arc<MemoCache>)> {
        let entry = self.entry(name)?;
        let mut slot = entry.index.lock().expect("entry lock");
        if slot.is_none() {
            let index = Arc::new(Index::build_with_config(&entry.graph, &entry.config));
            let memo =
                Arc::new(MemoCache::new(BatchOptions::default().memo_bits, index.num_components()));
            *slot = Some((index, memo));
        }
        slot.clone()
    }

    fn entry(&self, name: &str) -> Option<Arc<Entry>> {
        self.entries.read().expect("catalog lock").get(name).cloned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};

    #[test]
    fn insert_query_remove_roundtrip() {
        let cat = Catalog::new();
        cat.insert("p", path_digraph(10));
        cat.insert("c", cycle_digraph(10));
        assert_eq!(cat.names(), vec!["c".to_string(), "p".to_string()]);
        assert_eq!(cat.reaches("p", 0, 9), Some(true));
        assert_eq!(cat.reaches("p", 9, 0), Some(false));
        assert_eq!(cat.reaches("c", 7, 3), Some(true));
        assert_eq!(cat.reaches("missing", 0, 1), None);
        assert!(cat.remove("p"));
        assert!(!cat.remove("p"));
        assert_eq!(cat.reaches("p", 0, 9), None);
    }

    #[test]
    fn index_is_lazy_and_invalidatable() {
        let cat = Catalog::new();
        cat.insert("g", gnm_digraph(50, 120, 1));
        assert!(!cat.is_indexed("g"));
        let _ = cat.index("g").unwrap();
        assert!(cat.is_indexed("g"));
        assert!(cat.invalidate("g"));
        assert!(!cat.is_indexed("g"));
        // Still answers after invalidation (rebuilds).
        assert_eq!(cat.reaches("g", 0, 0), Some(true));
        assert!(!cat.invalidate("missing"));
    }

    #[test]
    fn replacing_a_graph_drops_the_stale_index() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(5));
        assert_eq!(cat.reaches("g", 0, 4), Some(true));
        // Replace with the reverse orientation: old answer must flip.
        let rev = DiGraph::from_edges(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        cat.insert("g", rev);
        assert!(!cat.is_indexed("g"));
        assert_eq!(cat.reaches("g", 0, 4), Some(false));
        assert_eq!(cat.reaches("g", 4, 0), Some(true));
    }

    #[test]
    fn batch_through_catalog() {
        let cat = Catalog::new();
        cat.insert("p", path_digraph(20));
        let queries: Vec<(V, V)> = (0..19).map(|i| (i as V, (i + 1) as V)).collect();
        let ans = cat.answer_batch("p", &queries).unwrap();
        assert!(ans.iter().all(|&b| b));
        assert!(cat.answer_batch("missing", &queries).is_none());
    }

    #[test]
    fn same_index_instance_is_shared() {
        let cat = Catalog::new();
        cat.insert("g", gnm_digraph(30, 60, 2));
        let a = cat.index("g").unwrap();
        let b = cat.index("g").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }
}

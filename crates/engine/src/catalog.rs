//! A catalog of named graphs with lazily built, invalidatable indexes —
//! the multi-tenant face of the engine: register graphs up front, pay for
//! an index only when a query actually arrives, drop it when the graph
//! changes, mutate graphs in place with batched [`Delta`]s, and (since the
//! `pscc-store` integration) make any graph durable so the whole catalog
//! survives a restart.
//!
//! ## Locking: queries never wait on a rebuild
//!
//! Every entry carries **two** locks and a **generation counter**:
//!
//! * `state` — a short-hold mutex over the `(graph, index, generation)`
//!   triple. Queries take it only to clone `Arc`s; updates take it only to
//!   swap them. Nothing expensive ever runs under it.
//! * `update` — a long-hold mutex serializing *writers* of the same entry
//!   (delta application, store attachment, compaction). Queries never
//!   touch it.
//!
//! Expensive work — the CSR merge, a multi-second index rebuild, the lazy
//! first-query build — runs **off-lock** against `Arc` clones. A finished
//! build re-locks `state` and installs its result only if the generation
//! it started from is still current; otherwise the result is discarded
//! (counted in [`Catalog::discarded_builds`]) and the build retries
//! against the new graph. Concretely: a query-triggered lazy build that
//! races a delta can never clobber the delta — the generation check
//! detects the swap and the build starts over.
//!
//! ## Durability
//!
//! [`Catalog::persist_to`] attaches a [`pscc_store::Store`] to an entry:
//! from then on [`Catalog::apply_delta`] is **write-ahead** — the
//! effective delta is appended to the store's log and fsynced *before*
//! the in-memory swap, so once `apply_delta` returns the update survives
//! a crash. [`Catalog::open`] recovers a whole catalog from such a
//! directory: newest valid snapshot per graph + log-suffix replay, torn
//! tails truncated. A background worker compacts stores whose log
//! outgrows their snapshot (see [`CompactionPolicy`]); queries never
//! wait on a compaction (it holds only the update lock), while writers
//! to that one entry wait for its snapshot write.

use crate::batch::{BatchOptions, MemoCache, QueryBatch};
use crate::delta::{Delta, DeltaError, DeltaOutcome, DeltaReport};
use crate::explain::{PlanExplain, QueryExplain};
use crate::index::{BuildCause, Index, IndexConfig};
use crate::planner::{plan_repair_explained, RepairPlan};
use pscc_graph::{DiGraph, V};
use pscc_runtime::Background;
use pscc_store::{DeltaRecord, Store, StoreMeta};
use pscc_telemetry::recorder::{self, FlightEvent};
use std::collections::HashMap;
use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};

/// When the background worker rewrites a store: once its write-ahead log
/// exceeds `max(min_wal_bytes, wal_factor × snapshot_bytes)`, a fresh
/// snapshot is written and the log truncated.
#[derive(Clone, Copy, Debug)]
pub struct CompactionPolicy {
    /// Log-to-snapshot size ratio that triggers compaction.
    pub wal_factor: u64,
    /// Floor below which the log is never compacted (small graphs would
    /// otherwise snapshot on every delta).
    pub min_wal_bytes: u64,
}

impl Default for CompactionPolicy {
    fn default() -> Self {
        CompactionPolicy { wal_factor: 4, min_wal_bytes: 64 << 10 }
    }
}

/// Per-tier tallies of how [`Catalog::apply_delta`] repaired one entry's
/// index across its lifetime (see [`crate::planner`] for the tiers).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairCounts {
    /// Deltas absorbed: index and memo kept untouched (includes
    /// metadata-only deletions — support decrements and SCC-split checks
    /// where the component held together).
    pub absorbed: u64,
    /// Deltas repaired by the condensation arc-splice tier.
    pub dag_spliced: u64,
    /// Deltas repaired by an SCC recompute on the affected DAG region.
    pub region_recomputed: u64,
    /// Deletion deltas repaired by removing dead condensation arcs.
    pub arc_unspliced: u64,
    /// Deletion deltas repaired by splitting components in place.
    pub scc_split: u64,
    /// Deltas that fell back to a full index rebuild.
    pub full_rebuilds: u64,
}

/// Interior-mutable accumulator behind [`RepairCounts`].
#[derive(Default)]
struct TierTallies {
    absorbed: AtomicU64,
    dag_spliced: AtomicU64,
    region_recomputed: AtomicU64,
    arc_unspliced: AtomicU64,
    scc_split: AtomicU64,
    full_rebuilds: AtomicU64,
}

impl TierTallies {
    fn snapshot(&self) -> RepairCounts {
        RepairCounts {
            absorbed: self.absorbed.load(Ordering::Relaxed),
            dag_spliced: self.dag_spliced.load(Ordering::Relaxed),
            region_recomputed: self.region_recomputed.load(Ordering::Relaxed),
            arc_unspliced: self.arc_unspliced.load(Ordering::Relaxed),
            scc_split: self.scc_split.load(Ordering::Relaxed),
            full_rebuilds: self.full_rebuilds.load(Ordering::Relaxed),
        }
    }
}

/// Per-entry metric handles, resolved once at entry construction: the
/// registry lookup takes a lock, so serving paths must never resolve a
/// metric name per call. Names follow the workspace's label-in-name
/// convention, e.g. `pscc_catalog_deltas_total{graph="g"}`.
struct EntryMetrics {
    /// Applied deltas (every non-noop outcome, including deferred).
    deltas: Arc<pscc_telemetry::Counter>,
    /// Queries submitted through [`Catalog::answer_batch`].
    queries: Arc<pscc_telemetry::Counter>,
    /// Full index builds: lazy first-query builds and delta rebuilds.
    rebuilds: Arc<pscc_telemetry::Counter>,
    /// Off-lock builds discarded because a delta swapped the graph
    /// mid-build (mirrors [`Catalog::discarded_builds`]).
    stale_builds_discarded: Arc<pscc_telemetry::Counter>,
    /// 1 while an off-lock index build for this entry is running — the
    /// observable witness that queries keep serving from the old index.
    rebuild_in_flight: Arc<pscc_telemetry::Gauge>,
    /// Wall time of each non-noop `apply_delta` (lock to swap).
    delta_nanos: Arc<pscc_telemetry::Histogram>,
    /// Wall time of each full index build.
    rebuild_nanos: Arc<pscc_telemetry::Histogram>,
}

/// `base{graph="<name>"}` with quotes, backslashes, and newlines in
/// `name` escaped ([`pscc_telemetry::escape_label_value`]), so arbitrary
/// graph names stay well-formed exposition labels.
fn graph_metric(base: &str, name: &str) -> String {
    format!("{base}{{graph=\"{}\"}}", pscc_telemetry::escape_label_value(name))
}

/// Stable telemetry name of a delta outcome (the `outcome` attribute of
/// the `apply_delta` span).
fn outcome_name(outcome: DeltaOutcome) -> &'static str {
    match outcome {
        DeltaOutcome::NoOp => "noop",
        DeltaOutcome::Absorbed => "absorbed",
        DeltaOutcome::DagSpliced => "dag_spliced",
        DeltaOutcome::RegionRecomputed => "region_recomputed",
        DeltaOutcome::ArcUnspliced => "arc_unspliced",
        DeltaOutcome::SccSplit => "scc_split",
        DeltaOutcome::Rebuilt => "rebuilt",
        DeltaOutcome::Deferred => "deferred",
    }
}

impl EntryMetrics {
    fn for_graph(name: &str) -> EntryMetrics {
        EntryMetrics {
            deltas: pscc_telemetry::counter(&graph_metric("pscc_catalog_deltas_total", name)),
            queries: pscc_telemetry::counter(&graph_metric("pscc_catalog_queries_total", name)),
            rebuilds: pscc_telemetry::counter(&graph_metric("pscc_catalog_rebuilds_total", name)),
            stale_builds_discarded: pscc_telemetry::counter(&graph_metric(
                "pscc_catalog_stale_builds_discarded_total",
                name,
            )),
            rebuild_in_flight: pscc_telemetry::gauge(&graph_metric(
                "pscc_catalog_rebuild_in_flight",
                name,
            )),
            delta_nanos: pscc_telemetry::histogram(&graph_metric("pscc_catalog_delta_nanos", name)),
            rebuild_nanos: pscc_telemetry::histogram(&graph_metric(
                "pscc_catalog_rebuild_nanos",
                name,
            )),
        }
    }
}

/// Mutable per-graph state, guarded by the short-hold `state` mutex: the
/// graph, its (lazily built) index, and the generation counter that
/// stamps every graph swap.
struct EntryState {
    graph: Arc<DiGraph>,
    /// Built on first use; `None` after invalidation. The memo cache lives
    /// (and is invalidated) with the index so verdicts stay warm across
    /// batches — and across absorbed deltas.
    index: Option<(Arc<Index>, Arc<MemoCache>)>,
    /// Incremented on every graph swap. Off-lock builds capture it before
    /// starting and install only if it is unchanged, so a racing delta is
    /// detected rather than overwritten.
    generation: u64,
}

struct Entry {
    /// The graph's registered name (for span attributes).
    name: String,
    /// Cached metric handles for this entry's name.
    metrics: EntryMetrics,
    config: IndexConfig,
    batch: BatchOptions,
    /// Short-hold lock: clone/swap the state triple, nothing else.
    state: Mutex<EntryState>,
    /// Long-hold lock serializing writers of this entry (delta
    /// application, store attach/compaction). Queries never take it, so
    /// they keep answering from the current index while a writer merges
    /// and rebuilds off-lock.
    update: Mutex<()>,
    /// Durable backing, when attached ([`Catalog::persist_to`] /
    /// [`Catalog::open`]).
    store: Mutex<Option<Arc<Store>>>,
    /// Off-lock builds discarded because the generation moved mid-build.
    discarded_builds: AtomicU64,
    /// Per-tier tallies of the entry's delta repairs.
    repairs: TierTallies,
    /// True while a compaction job for this entry is queued or running.
    compaction_queued: AtomicBool,
    /// The planner explain of the most recent planned (non-noop,
    /// non-deferred) delta, surfaced by [`Catalog::last_plan_explain`].
    last_plan: Mutex<Option<PlanExplain>>,
}

impl Entry {
    fn new(
        name: &str,
        config: IndexConfig,
        batch: BatchOptions,
        graph: Arc<DiGraph>,
        generation: u64,
        store: Option<Arc<Store>>,
    ) -> Arc<Entry> {
        Arc::new(Entry {
            name: name.to_string(),
            metrics: EntryMetrics::for_graph(name),
            config,
            batch,
            state: Mutex::new(EntryState { graph, index: None, generation }),
            update: Mutex::new(()),
            store: Mutex::new(store),
            discarded_builds: AtomicU64::new(0),
            repairs: TierTallies::default(),
            compaction_queued: AtomicBool::new(false),
            last_plan: Mutex::new(None),
        })
    }

    fn store(&self) -> Option<Arc<Store>> {
        self.store.lock().expect("store lock").clone()
    }
}

/// Holds multiple named graphs, each with a lazily built reachability
/// index and optional durable backing. See the [module docs](self) for
/// the locking and durability model.
pub struct Catalog {
    entries: RwLock<HashMap<String, Arc<Entry>>>,
    policy: CompactionPolicy,
    /// Lazily spawned worker running store compactions; dropped (and
    /// joined, finishing queued jobs) with the catalog.
    maintenance: Mutex<Option<Background>>,
    /// True while a flight-recorder flush job is queued on the
    /// maintenance worker — per-delta flushes debounce on it, so a burst
    /// of deltas costs one background flush, not one per delta.
    flight_flush_queued: Arc<AtomicBool>,
}

impl Default for Catalog {
    fn default() -> Self {
        Self::with_compaction(CompactionPolicy::default())
    }
}

impl Catalog {
    /// An empty catalog with the default [`CompactionPolicy`].
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty catalog with an explicit compaction policy.
    pub fn with_compaction(policy: CompactionPolicy) -> Self {
        Catalog {
            entries: RwLock::new(HashMap::new()),
            policy,
            maintenance: Mutex::new(None),
            flight_flush_queued: Arc::new(AtomicBool::new(false)),
        }
    }

    /// Installs the process-global flight recorder under `dir` (see
    /// [`pscc_telemetry::recorder`]): from then on this process's deltas,
    /// rebuilds, compactions, spans, and histogram snapshots are journaled
    /// to bounded `flight-<seq>.fdr` segments for post-mortem analysis by
    /// `pscc-doctor`. An associated function so it can run *before*
    /// [`Catalog::open`] — recovery replay is then captured too.
    /// Idempotent for the same directory.
    pub fn enable_flight_recorder(dir: impl AsRef<Path>) -> io::Result<()> {
        recorder::install(dir.as_ref())
    }

    /// Registers (or replaces) a graph under `name` with the default index
    /// and batch configuration. Replacing drops any cached index — and any
    /// attached store (the files remain on disk; the new graph is not
    /// durable until [`Catalog::persist_to`] is called for it).
    pub fn insert(&self, name: &str, graph: DiGraph) {
        self.insert_with_config(name, graph, IndexConfig::default(), BatchOptions::default());
    }

    /// Registers (or replaces) a graph with explicit index and batch
    /// configurations. The [`BatchOptions`] are stored with the entry and
    /// honored by every subsequent [`Catalog::answer_batch`] (grain) and
    /// memo construction (capacity).
    pub fn insert_with_config(
        &self,
        name: &str,
        graph: DiGraph,
        config: IndexConfig,
        batch: BatchOptions,
    ) {
        let entry = Entry::new(name, config, batch, Arc::new(graph), 0, None);
        self.entries.write().expect("catalog lock").insert(name.to_string(), entry);
    }

    /// Removes a graph (and its index). Returns whether it existed. A
    /// durable entry's files are left on disk untouched.
    pub fn remove(&self, name: &str) -> bool {
        self.entries.write().expect("catalog lock").remove(name).is_some()
    }

    /// Drops the cached index of `name`, forcing a rebuild on next use;
    /// returns whether the graph exists.
    pub fn invalidate(&self, name: &str) -> bool {
        match self.entry(name) {
            Some(e) => {
                e.state.lock().expect("entry lock").index.take();
                true
            }
            None => false,
        }
    }

    /// Registered graph names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut names: Vec<String> =
            self.entries.read().expect("catalog lock").keys().cloned().collect();
        names.sort();
        names
    }

    /// The graph registered under `name`.
    pub fn graph(&self, name: &str) -> Option<Arc<DiGraph>> {
        self.entry(name).map(|e| e.state.lock().expect("entry lock").graph.clone())
    }

    /// True if `name` currently holds a built index.
    pub fn is_indexed(&self, name: &str) -> bool {
        self.entry(name)
            .map(|e| e.state.lock().expect("entry lock").index.is_some())
            .unwrap_or(false)
    }

    /// The generation counter of `name`: the number of graph swaps
    /// (applied deltas) since registration — or since the snapshot
    /// lineage began, for an entry recovered by [`Catalog::open`].
    pub fn generation(&self, name: &str) -> Option<u64> {
        self.entry(name).map(|e| e.state.lock().expect("entry lock").generation)
    }

    /// Off-lock index builds of `name` that were discarded because a
    /// delta swapped the graph mid-build (the build then retried against
    /// the new graph — the delta wins, never the stale index).
    pub fn discarded_builds(&self, name: &str) -> Option<u64> {
        self.entry(name).map(|e| e.discarded_builds.load(Ordering::Relaxed))
    }

    /// Per-tier tallies of how deltas applied to `name` repaired its
    /// index (absorbed / dag-spliced / region-recomputed / full-rebuild)
    /// since registration. No-ops and pre-index deferred deltas are not
    /// counted — they repair nothing.
    pub fn repair_counts(&self, name: &str) -> Option<RepairCounts> {
        self.entry(name).map(|e| e.repairs.snapshot())
    }

    /// The index for `name`, building it on first use.
    pub fn index(&self, name: &str) -> Option<Arc<Index>> {
        self.index_and_memo(name).map(|(index, _)| index)
    }

    /// Answers one reachability query against `name`'s graph.
    pub fn reaches(&self, name: &str, u: V, v: V) -> Option<bool> {
        Some(self.index(name)?.reaches(u, v))
    }

    /// Answers a batch of queries against `name`'s graph in parallel,
    /// using the entry's stored [`BatchOptions`]. The memo is shared
    /// across calls, so repeated hot pairs are answered from cache even in
    /// later batches.
    pub fn answer_batch(&self, name: &str, queries: &[(V, V)]) -> Option<Vec<bool>> {
        let entry = self.entry(name)?;
        let mut span = pscc_telemetry::span("answer_batch");
        span.set_attr("graph", &entry.name);
        span.set_attr("queries", queries.len());
        entry.metrics.queries.add(queries.len() as u64);
        let (index, memo) = Self::entry_index_and_memo(&entry);
        let batch = QueryBatch::with_shared_memo(&index, memo, entry.batch.grain);
        Some(batch.answer(queries))
    }

    /// Applies a batched edge update to `name`'s graph, swapping in the
    /// merged graph ([`DiGraph::with_delta`]) and repairing the index
    /// through the tiered planner ([`crate::planner`]):
    ///
    /// * deltas whose every effective change provably keeps the
    ///   reachability relation (insertions inside one SCC or between
    ///   already-reachable component pairs) keep the existing index *and*
    ///   its warm memo ([`DeltaOutcome::Absorbed`]);
    /// * insertions that only add condensation arcs (no component merge)
    ///   splice them in, repairing levels and summary for affected
    ///   ancestors only ([`DeltaOutcome::DagSpliced`]);
    /// * insertions that merge components re-run SCC on just the affected
    ///   DAG region and contract the old condensation through the merge
    ///   map ([`DeltaOutcome::RegionRecomputed`]);
    /// * deletions of one of several parallel edge supports of a
    ///   condensation arc (or of a latent absorbed pair) are metadata-only
    ///   decrements of the index's arc-support table — index and memo
    ///   kept ([`DeltaOutcome::Absorbed`]);
    /// * deletions that take arcs' last support away remove exactly those
    ///   arcs in place ([`DeltaOutcome::ArcUnspliced`]);
    /// * intra-SCC deletions re-run SCC on just the affected components'
    ///   members and splice the sub-components back
    ///   ([`DeltaOutcome::SccSplit`] — or [`DeltaOutcome::Absorbed`] when
    ///   every component holds together);
    /// * deltas mixing structural deletions with insertions, and repairs
    ///   past the planner's [`crate::planner::RepairBudget`], rebuild the
    ///   index from scratch ([`DeltaOutcome::Rebuilt`], stamped
    ///   [`BuildCause::DeltaRebuild`][crate::index::BuildCause]);
    /// * if no index was built yet the graph is swapped and indexing stays
    ///   lazy ([`DeltaOutcome::Deferred`]).
    ///
    /// Which tier ran is tallied per entry ([`Catalog::repair_counts`]).
    /// Returns the path taken plus effective edge counts, or a
    /// [`DeltaError`] (nothing modified) for an unknown graph, an
    /// out-of-range endpoint, or a failed write-ahead append.
    ///
    /// The merge and any rebuild run **off-lock**: concurrent queries
    /// against the same graph keep answering from the current index for
    /// the whole duration and only wait for the final pointer swap.
    /// Concurrent `apply_delta` calls to one entry serialize on its
    /// update lock (other entries are unaffected). If the entry is
    /// durable, the effective delta is appended to its write-ahead log
    /// and fsynced before the swap — when this returns, the update is on
    /// disk.
    pub fn apply_delta(&self, name: &str, delta: &Delta) -> Result<DeltaReport, DeltaError> {
        let entry = self.entry(name).ok_or_else(|| DeltaError::UnknownGraph(name.to_string()))?;
        let report = Self::apply_delta_entry(&entry, delta, true)?;
        if report.outcome != DeltaOutcome::NoOp {
            self.maybe_schedule_compaction(&entry);
            self.schedule_flight_flush();
        }
        Ok(report)
    }

    /// [`Catalog::answer_batch`] with per-query provenance: each verdict
    /// comes back with the [`crate::QueryTier`] that decided it and the
    /// work done ([`QueryExplain`]). Runs sequentially — EXPLAIN is a
    /// diagnostic path — but through the same shared memo and tier
    /// cascade, so verdicts always match [`Catalog::answer_batch`].
    pub fn answer_batch_explained(
        &self,
        name: &str,
        queries: &[(V, V)],
    ) -> Option<Vec<QueryExplain>> {
        let entry = self.entry(name)?;
        let mut span = pscc_telemetry::span("answer_batch_explained");
        span.set_attr("graph", &entry.name);
        span.set_attr("queries", queries.len());
        entry.metrics.queries.add(queries.len() as u64);
        let (index, memo) = Self::entry_index_and_memo(&entry);
        let batch = QueryBatch::with_shared_memo(&index, memo, entry.batch.grain);
        Some(batch.explain(queries))
    }

    /// The planner's [`PlanExplain`] for the most recent delta applied to
    /// `name` that actually reached the planner (noops and pre-index
    /// deferred deltas plan nothing). `None` for an unknown graph or
    /// before the first planned delta.
    pub fn last_plan_explain(&self, name: &str) -> Option<PlanExplain> {
        self.entry(name)?.last_plan.lock().expect("plan explain lock").clone()
    }

    /// A reusable submission handle for `name`, for front ends that
    /// assemble query batches *themselves* at high frequency (the
    /// `pscc-server` admission queue coalesces concurrent point queries
    /// into batches and pushes each one through this). See
    /// [`BatchSubmitter`] for what the handle does — and does not — pay
    /// for per call.
    pub fn submitter(&self, name: &str) -> Option<BatchSubmitter> {
        Some(BatchSubmitter { entry: self.entry(name)? })
    }

    /// The delta-application machinery, shared by the serving path
    /// (`log = true`: write-ahead through the entry's store) and recovery
    /// replay (`log = false`: the record is already durable).
    fn apply_delta_entry(
        entry: &Arc<Entry>,
        delta: &Delta,
        log: bool,
    ) -> Result<DeltaReport, DeltaError> {
        // Root span of the delta's causal trace: normalize → plan(tier) →
        // execute → fsync → swap, each a child span with its own duration.
        let mut root = pscc_telemetry::span("apply_delta");
        root.set_attr("graph", &entry.name);
        let delta_timer = pscc_telemetry::enabled().then(pscc_telemetry::Timer::start);
        // Serialize writers; queries proceed untouched.
        let _writer = entry.update.lock().expect("update lock");
        let (graph, generation, index_pair) = {
            let st = entry.state.lock().expect("entry lock");
            (st.graph.clone(), st.generation, st.index.clone())
        };
        let n = graph.n();
        for &edge in delta.insertions().iter().chain(delta.deletions()) {
            if edge.0 as usize >= n || edge.1 as usize >= n {
                return Err(DeltaError::EndpointOutOfRange { edge, n });
            }
        }

        // Normalize (dedupe within each list, drop deletions of edges the
        // same delta inserts), then reduce to the *effective* delta:
        // insertions of absent edges and deletions of present ones. The
        // graph cannot change under us — every swap happens under the
        // update lock we hold.
        let normalize_span = pscc_telemetry::span("normalize");
        let delta = delta.normalized();
        let has_edge = |&(u, v): &(V, V)| graph.out_neighbors(u).binary_search(&v).is_ok();
        let ins: Vec<(V, V)> =
            delta.insertions().iter().filter(|e| !has_edge(e)).copied().collect();
        let del: Vec<(V, V)> = delta.deletions().iter().filter(|e| has_edge(e)).copied().collect();
        drop(normalize_span);
        if ins.is_empty() && del.is_empty() {
            root.set_attr("outcome", "noop");
            return Ok(DeltaReport { outcome: DeltaOutcome::NoOp, inserted: 0, deleted: 0 });
        }

        // WRITE-AHEAD: the effective delta hits the fsynced log before any
        // in-memory mutation. A failed append changes nothing.
        if log {
            if let Some(store) = entry.store() {
                let _fsync_span = pscc_telemetry::span("fsync");
                let record = DeltaRecord { insertions: ins.clone(), deletions: del.clone() };
                store.append(&record).map_err(|e| DeltaError::Storage(e.to_string()))?;
            }
        }

        // Merge and (when needed) repair or rebuild off-lock: queries keep
        // answering from the current graph + index throughout. The planner
        // runs against the captured index — valid for the pre-merge graph,
        // which is exactly what the tier arguments are stated over.
        let execute_span = pscc_telemetry::span("execute");
        let merged = Arc::new(graph.with_delta(&ins, &del));
        enum Exec {
            Deferred,
            Keep,
            Install(Arc<Index>, Arc<MemoCache>, DeltaOutcome),
        }
        let install = |index: Index, outcome: DeltaOutcome| {
            let memo = MemoCache::new(entry.batch.memo_bits, index.num_components());
            Exec::Install(Arc::new(index), Arc::new(memo), outcome)
        };
        let mut plan_ex: Option<PlanExplain> = None;
        let exec = match &index_pair {
            None => Exec::Deferred,
            Some((index, _)) => {
                let (plan, ex) = plan_repair_explained(index, &ins, &del, &entry.config.repair);
                plan_ex = Some(ex);
                match plan {
                    RepairPlan::Absorb => Exec::Keep,
                    RepairPlan::DagSplice { arcs } => install(
                        index.splice_dag_arcs(&arcs, &ins, &del, &entry.config),
                        DeltaOutcome::DagSpliced,
                    ),
                    RepairPlan::RegionRecompute { region, arcs } => install(
                        index.recompute_region(&region, &arcs, &ins, &del, &entry.config),
                        DeltaOutcome::RegionRecomputed,
                    ),
                    RepairPlan::ArcUnsplice { arcs } => install(
                        index.unsplice_dag_arcs(&arcs, &del, &entry.config),
                        DeltaOutcome::ArcUnspliced,
                    ),
                    RepairPlan::SccSplit { comps, dead_arcs } => {
                        match index.split_sccs(&merged, &comps, &dead_arcs, &del, &entry.config) {
                            Some(patched) => install(patched, DeltaOutcome::SccSplit),
                            // Every checked component held together and no
                            // arc died: reachability is unchanged — keep the
                            // index like any other metadata-only delta.
                            None => Exec::Keep,
                        }
                    }
                    RepairPlan::FullRebuild { .. } => {
                        let _in_flight = entry.metrics.rebuild_in_flight.inc_scoped();
                        let timer = pscc_telemetry::enabled().then(pscc_telemetry::Timer::start);
                        let mut index = Index::build_with_config(&merged, &entry.config);
                        index.set_built_by(BuildCause::DeltaRebuild);
                        if let Some(t) = timer {
                            entry.metrics.rebuild_nanos.record(t.elapsed());
                        }
                        entry.metrics.rebuilds.inc();
                        install(index, DeltaOutcome::Rebuilt)
                    }
                }
            }
        };
        drop(execute_span);

        // Re-lock only to swap. The graph is still the one we read (swaps
        // are update-lock-serialized), but the *index* slot may have moved:
        // a lazy first-query build can have installed an index for the old
        // graph, or `invalidate` can have cleared it.
        let swap_span = pscc_telemetry::span("swap");
        let mut st = entry.state.lock().expect("entry lock");
        debug_assert!(Arc::ptr_eq(&st.graph, &graph), "graph swapped without the update lock");
        debug_assert_eq!(st.generation, generation, "generation moved without the update lock");
        let outcome = match exec {
            Exec::Install(index, memo, outcome) => {
                st.index = Some((index, memo));
                outcome
            }
            Exec::Keep => match &st.index {
                // Whichever index is installed describes the same (old)
                // graph, so the absorbability argument holds for it too —
                // and its support table takes this delta's increments
                // and decrements.
                Some((index, _)) => {
                    index.note_absorbed(&ins, &del);
                    DeltaOutcome::Absorbed
                }
                None => DeltaOutcome::Deferred, // invalidated mid-flight
            },
            Exec::Deferred => {
                // An index installed mid-flight describes the pre-delta
                // graph; keeping it past the swap would serve stale
                // answers. Drop it — the next query rebuilds lazily.
                if st.index.take().is_some() {
                    entry.discarded_builds.fetch_add(1, Ordering::Relaxed);
                    entry.metrics.stale_builds_discarded.inc();
                }
                DeltaOutcome::Deferred
            }
        };
        st.graph = merged;
        st.generation += 1;
        let generation_now = st.generation;
        drop(st);
        drop(swap_span);
        // Journal the delta — outside the state lock, so a slow flush can
        // never stall queries. The plan explain rides along in full: the
        // post-mortem trace shows not just which tier repaired the index
        // but which cheaper tiers were priced out and why.
        if recorder::is_active() {
            let mut ev = FlightEvent::new("apply_delta")
                .field("graph", &entry.name)
                .field("outcome", outcome_name(outcome))
                .field("generation", generation_now)
                .field("inserted", ins.len())
                .field("deleted", del.len())
                .field("replay", !log);
            if let Some(ex) = &plan_ex {
                for (key, value) in ex.journal_fields() {
                    ev = ev.field(key, value);
                }
            }
            recorder::record(ev);
        }
        if let Some(ex) = plan_ex {
            *entry.last_plan.lock().expect("plan explain lock") = Some(ex);
        }
        root.set_attr("outcome", outcome_name(outcome));
        entry.metrics.deltas.inc();
        if let Some(t) = delta_timer {
            entry.metrics.delta_nanos.record(t.elapsed());
        }
        match outcome {
            DeltaOutcome::Absorbed => entry.repairs.absorbed.fetch_add(1, Ordering::Relaxed),
            DeltaOutcome::DagSpliced => entry.repairs.dag_spliced.fetch_add(1, Ordering::Relaxed),
            DeltaOutcome::RegionRecomputed => {
                entry.repairs.region_recomputed.fetch_add(1, Ordering::Relaxed)
            }
            DeltaOutcome::ArcUnspliced => {
                entry.repairs.arc_unspliced.fetch_add(1, Ordering::Relaxed)
            }
            DeltaOutcome::SccSplit => entry.repairs.scc_split.fetch_add(1, Ordering::Relaxed),
            DeltaOutcome::Rebuilt => entry.repairs.full_rebuilds.fetch_add(1, Ordering::Relaxed),
            DeltaOutcome::NoOp | DeltaOutcome::Deferred => 0,
        };
        Ok(DeltaReport { outcome, inserted: ins.len(), deleted: del.len() })
    }

    // ---- Durability -----------------------------------------------------

    /// Attaches a durable store to `name` under `data_dir` (the catalog's
    /// data directory; each graph gets its own subdirectory). Writes the
    /// initial snapshot; every subsequent [`Catalog::apply_delta`] on this
    /// entry is then write-ahead logged and fsynced before it returns.
    ///
    /// Fails with [`io::ErrorKind::NotFound`] for an unknown graph,
    /// [`io::ErrorKind::AlreadyExists`] if the entry already has a store
    /// or the subdirectory already holds one, and
    /// [`io::ErrorKind::InvalidInput`] for the empty name (it has no
    /// subdirectory to live in, so [`Catalog::open`] could never recover
    /// it).
    pub fn persist_to(&self, name: &str, data_dir: impl AsRef<Path>) -> io::Result<()> {
        if name.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "the empty graph name cannot be persisted (no subdirectory to recover from)",
            ));
        }
        let entry = self.entry(name).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no graph registered as {name:?}"))
        })?;
        let _writer = entry.update.lock().expect("update lock");
        // The store slot is a short-hold mutex: check emptiness and drop
        // the guard before the slow snapshot write + fsync. The `update`
        // writer lock held above is what serializes this against
        // `apply_delta` and concurrent `persist_to` calls, so nobody can
        // fill the slot between the check and the reinstall below.
        {
            let slot = entry.store.lock().expect("store lock");
            if slot.is_some() {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    format!("graph {name:?} already has a store"),
                ));
            }
        }
        let (graph, generation) = {
            let st = entry.state.lock().expect("entry lock");
            (st.graph.clone(), st.generation)
        };
        let meta = StoreMeta {
            generation,
            memo_bits: entry.batch.memo_bits,
            grain: entry.batch.grain as u64,
        };
        let store = Store::create(data_dir.as_ref().join(encode_name(name)), &graph, meta)?;
        *entry.store.lock().expect("store lock") = Some(Arc::new(store));
        Ok(())
    }

    /// True if `name` has a durable store attached.
    pub fn is_durable(&self, name: &str) -> bool {
        self.entry(name).map(|e| e.store().is_some()).unwrap_or(false)
    }

    /// `(wal_bytes, snapshot_bytes)` of `name`'s store, if durable.
    pub fn store_bytes(&self, name: &str) -> Option<(u64, u64)> {
        let store = self.entry(name)?.store()?;
        Some((store.wal_bytes(), store.snapshot_bytes()))
    }

    /// Recovers a catalog from a data directory previously populated via
    /// [`Catalog::persist_to`]: every subdirectory that looks like a
    /// store (holds a `wal.log` or snapshot files) is opened — newest
    /// valid snapshot, write-ahead log suffix replayed through the
    /// regular merge path, torn tail truncated — and registered under its
    /// original name with its persisted [`BatchOptions`]. Indexes are not
    /// persisted; they rebuild lazily on first query.
    ///
    /// Unrelated directories (`lost+found`, operator backups — anything
    /// without store files) are skipped; a directory that *does* hold
    /// store files but cannot be recovered is an error, never silently
    /// dropped.
    ///
    /// Entries use the default [`IndexConfig`]; use
    /// [`Catalog::open_with_config`] to override it.
    pub fn open(data_dir: impl AsRef<Path>) -> io::Result<Catalog> {
        Self::open_with_config(data_dir, IndexConfig::default())
    }

    /// [`Catalog::open`] with an explicit per-entry [`IndexConfig`]
    /// (applied to every recovered graph).
    pub fn open_with_config(
        data_dir: impl AsRef<Path>,
        config: IndexConfig,
    ) -> io::Result<Catalog> {
        let catalog = Catalog::new();
        for dir_entry in std::fs::read_dir(data_dir.as_ref())? {
            let dir_entry = dir_entry?;
            if !dir_entry.file_type()?.is_dir() {
                continue;
            }
            if !looks_like_store(&dir_entry.path()) {
                continue; // lost+found, backups, ... — not ours
            }
            if Store::is_aborted_create(dir_entry.path())? {
                // A persist_to crashed before its initial snapshot:
                // nothing was ever acknowledged for this graph, so it is
                // absent, not corrupt.
                continue;
            }
            let file_name = dir_entry.file_name();
            // Canonical encodings only: decode + re-encode must roundtrip,
            // or two directories (e.g. "g" and "%67") could decode to the
            // same name and one would silently shadow the other.
            let name = file_name
                .to_str()
                .and_then(|fname| decode_name(fname).filter(|name| encode_name(name) == fname))
                .ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "directory {:?} holds store files but its name is not a \
                             canonically encoded graph name",
                            dir_entry.path()
                        ),
                    )
                })?;
            let (store, recovery) = Store::open(dir_entry.path())?;
            let batch = BatchOptions {
                memo_bits: recovery.meta.memo_bits,
                grain: recovery.meta.grain as usize,
            };
            let entry = Entry::new(
                &name,
                config.clone(),
                batch,
                Arc::new(recovery.graph),
                recovery.meta.generation,
                Some(Arc::new(store)),
            );
            let replayed = recovery.replayed.len();
            if recorder::is_active() {
                recorder::record(
                    FlightEvent::new("recovery_replay")
                        .field("graph", &name)
                        .field("snapshot_generation", recovery.meta.generation)
                        .field("replayed_records", replayed),
                );
            }
            for record in recovery.replayed {
                let delta = Delta::from_parts(record.insertions, record.deletions);
                // `log = false`: the record came *from* the log.
                Self::apply_delta_entry(&entry, &delta, false).map_err(|e| {
                    io::Error::new(io::ErrorKind::InvalidData, format!("replaying {name:?}: {e}"))
                })?;
            }
            catalog.entries.write().expect("catalog lock").insert(name, entry);
        }
        Ok(catalog)
    }

    /// Blocks until every queued maintenance job (store compaction) has
    /// finished. Tests and orderly shutdowns use this; serving paths never
    /// need it.
    pub fn flush_maintenance(&self) {
        let guard = self.maintenance.lock().expect("maintenance lock");
        if let Some(worker) = guard.as_ref() {
            worker.flush();
        }
    }

    /// Queues a compaction for `entry` if its log has outgrown the policy
    /// and none is already queued.
    fn maybe_schedule_compaction(&self, entry: &Arc<Entry>) {
        let Some(store) = entry.store() else { return };
        let threshold = self
            .policy
            .min_wal_bytes
            .max(self.policy.wal_factor.saturating_mul(store.snapshot_bytes()));
        if store.wal_bytes() <= threshold {
            return;
        }
        if entry.compaction_queued.swap(true, Ordering::AcqRel) {
            return; // already queued or running
        }
        /// Clears the entry's queued flag when dropped — including during
        /// a panic unwind inside the job, so one failed compaction never
        /// wedges the entry out of all future compactions.
        struct ClearQueued(Arc<Entry>);
        impl Drop for ClearQueued {
            fn drop(&mut self) {
                self.0.compaction_queued.store(false, Ordering::Release);
            }
        }
        let job = ClearQueued(entry.clone());
        let mut guard = self.maintenance.lock().expect("maintenance lock");
        let worker = guard.get_or_insert_with(|| Background::spawn("pscc-catalog-maintenance"));
        if !worker.submit(move || Self::compact_entry(&job.0)) {
            // Worker died (a job panicked fatally): the closure — and its
            // flag-clearing guard — was dropped unrun, so the flag is
            // already clear; just surface the condition.
            pscc_telemetry::counter("pscc_maintenance_failures_total").inc();
            pscc_telemetry::log!(Error, "maintenance worker is dead; compaction skipped");
        }
    }

    /// Runs one compaction: under the entry's update lock (so the log is
    /// quiescent and the captured graph matches its last record), snapshot
    /// the current graph and truncate the log. Queries are unaffected —
    /// they only ever take the state lock, which is held just long enough
    /// to clone two `Arc`s.
    fn compact_entry(entry: &Arc<Entry>) {
        let _writer = entry.update.lock().expect("update lock");
        let Some(store) = entry.store() else { return };
        let (graph, generation) = {
            let st = entry.state.lock().expect("entry lock");
            (st.graph.clone(), st.generation)
        };
        let meta = StoreMeta {
            generation,
            memo_bits: entry.batch.memo_bits,
            grain: entry.batch.grain as u64,
        };
        let result = store.compact(&graph, meta);
        if recorder::is_active() {
            recorder::record(
                FlightEvent::new("compaction")
                    .field("graph", &entry.name)
                    .field("generation", generation)
                    .field("ok", result.is_ok()),
            );
        }
        if let Err(e) = result {
            pscc_telemetry::counter("pscc_maintenance_failures_total").inc();
            pscc_telemetry::log!(Error, "compaction of {} failed: {e}", store.dir().display());
        }
    }

    /// Queues one background flush of the flight recorder, debounced: a
    /// burst of deltas lands in the ring immediately and reaches disk on
    /// the next maintenance-worker turn. Durability stays best-effort by
    /// design — the WAL is the source of truth; the journal is evidence.
    fn schedule_flight_flush(&self) {
        if !recorder::is_active() {
            return;
        }
        if self.flight_flush_queued.swap(true, Ordering::AcqRel) {
            return; // a queued flush will pick this delta's events up
        }
        let queued = self.flight_flush_queued.clone();
        let mut guard = self.maintenance.lock().expect("maintenance lock");
        let worker = guard.get_or_insert_with(|| Background::spawn("pscc-catalog-maintenance"));
        let submitted = worker.submit(move || {
            // Clear before flushing: events recorded mid-flush get the
            // *next* flush instead of being silently skipped.
            queued.store(false, Ordering::Release);
            if let Err(e) = recorder::flush_active() {
                pscc_telemetry::counter("pscc_flight_flush_failures_total").inc();
                pscc_telemetry::log!(Error, "flight recorder flush failed: {e}");
            }
        });
        if !submitted {
            // Worker died: the closure (and its flag reset) never ran.
            self.flight_flush_queued.store(false, Ordering::Release);
            pscc_telemetry::counter("pscc_flight_flush_failures_total").inc();
        }
    }

    // ---- Index plumbing -------------------------------------------------

    fn index_and_memo(&self, name: &str) -> Option<(Arc<Index>, Arc<MemoCache>)> {
        let entry = self.entry(name)?;
        Some(Self::entry_index_and_memo(&entry))
    }

    /// The entry's index + memo, built **off-lock** on first use: the
    /// state lock is taken only to read the graph (with its generation)
    /// and again to install the result. If a delta swapped the graph
    /// mid-build, the stale index is discarded and the build retries —
    /// the generation counter guarantees an installed index always
    /// describes the graph it is installed next to.
    fn entry_index_and_memo(entry: &Entry) -> (Arc<Index>, Arc<MemoCache>) {
        loop {
            let (graph, generation) = {
                let st = entry.state.lock().expect("entry lock");
                if let Some(pair) = st.index.clone() {
                    return pair;
                }
                (st.graph.clone(), st.generation)
            };
            if recorder::is_active() {
                recorder::record(
                    FlightEvent::new("rebuild_start")
                        .field("graph", &entry.name)
                        .field("generation", generation),
                );
            }
            let index = {
                // The gauge is the observable witness (used by the
                // concurrency stress suite) that queries keep serving
                // from the installed index while this build runs.
                let _in_flight = entry.metrics.rebuild_in_flight.inc_scoped();
                let _span = pscc_telemetry::span("index_build");
                let timer = pscc_telemetry::enabled().then(pscc_telemetry::Timer::start);
                let index = Arc::new(Index::build_with_config(&graph, &entry.config));
                if let Some(t) = timer {
                    entry.metrics.rebuild_nanos.record(t.elapsed());
                }
                entry.metrics.rebuilds.inc();
                index
            };
            let memo = Arc::new(MemoCache::new(entry.batch.memo_bits, index.num_components()));
            let mut st = entry.state.lock().expect("entry lock");
            if st.generation == generation {
                // A concurrent lazy builder may have won the install race;
                // share its instance instead of double-installing.
                let pair = st.index.get_or_insert((index, memo)).clone();
                drop(st);
                if recorder::is_active() {
                    recorder::record(
                        FlightEvent::new("rebuild_swap")
                            .field("graph", &entry.name)
                            .field("generation", generation)
                            .field("components", pair.0.num_components()),
                    );
                }
                return pair;
            }
            drop(st);
            entry.discarded_builds.fetch_add(1, Ordering::Relaxed);
            entry.metrics.stale_builds_discarded.inc();
            if recorder::is_active() {
                recorder::record(
                    FlightEvent::new("rebuild_discard")
                        .field("graph", &entry.name)
                        .field("generation", generation),
                );
            }
        }
    }

    fn entry(&self, name: &str) -> Option<Arc<Entry>> {
        self.entries.read().expect("catalog lock").get(name).cloned()
    }
}

impl Drop for Catalog {
    fn drop(&mut self) {
        // Orderly shutdown completes the journal: whatever the ring still
        // holds (the maintenance worker's debounced flush may not have
        // run) reaches disk before the process's evidence goes quiet.
        recorder::force_dump_active();
    }
}

/// A pinned, reusable submission handle for one catalog entry, made by
/// [`Catalog::submitter`]. This is the lean path for front ends that
/// assemble [`QueryBatch`]-sized batches themselves at high frequency —
/// the per-call name lookup (catalog read-lock + hash probe) and the
/// tracing span of [`Catalog::answer_batch`] are paid once at creation
/// instead of per batch.
///
/// What [`submit`](BatchSubmitter::submit) still does per call: resolve
/// the entry's current index + memo (so the handle **follows deltas** —
/// an [`apply_delta`](Catalog::apply_delta) that swaps or invalidates
/// the index is picked up by the next submit, including triggering the
/// off-lock rebuild) and bump the entry's query counter.
///
/// What it does **not** follow: re-registration. The handle pins the
/// `Arc` of the entry it was created from; if the name is replaced via
/// [`Catalog::insert`] or removed, the handle keeps answering against
/// the graph it pinned. Create a fresh submitter after re-registering.
pub struct BatchSubmitter {
    entry: Arc<Entry>,
}

impl BatchSubmitter {
    /// Answer `queries[i] = (u, v)` as "is `v` reachable from `u`?",
    /// against the entry's current index (building it off-lock on first
    /// use, exactly like [`Catalog::answer_batch`]).
    pub fn submit(&self, queries: &[(V, V)]) -> Vec<bool> {
        self.entry.metrics.queries.add(queries.len() as u64);
        let (index, memo) = Catalog::entry_index_and_memo(&self.entry);
        let batch = QueryBatch::with_shared_memo(&index, memo, self.entry.batch.grain);
        batch.answer(queries)
    }

    /// The registered name of the pinned graph.
    pub fn graph_name(&self) -> &str {
        &self.entry.name
    }

    /// Current vertex count of the pinned graph. Deltas never change a
    /// graph's vertex set, so front ends can validate query endpoints
    /// against this once and cache it.
    pub fn vertex_count(&self) -> usize {
        self.entry.state.lock().expect("entry lock").graph.n()
    }
}

/// True if `dir` holds store files (a write-ahead log or snapshots) —
/// the recovery scan's "is this ours?" test, so unrelated directories in
/// a data dir never block [`Catalog::open`].
fn looks_like_store(dir: &Path) -> bool {
    if dir.join("wal.log").exists() {
        return true;
    }
    std::fs::read_dir(dir)
        .map(|entries| {
            entries.flatten().any(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.starts_with("snapshot-") && n.ends_with(".pscc"))
            })
        })
        .unwrap_or(false)
}

/// Encodes a graph name as a filesystem-safe directory name: ASCII
/// alphanumerics, `-`, and `_` pass through; every other byte becomes
/// `%XX`. Reversible via [`decode_name`]. Public so `pscc-doctor` can
/// map a catalog data dir's subdirectories back to graph names.
pub fn encode_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for &b in name.as_bytes() {
        match b {
            b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_' => out.push(b as char),
            _ => out.push_str(&format!("%{b:02X}")),
        }
    }
    out
}

/// Inverts [`encode_name`]; `None` if `encoded` is not a valid encoding.
pub fn decode_name(encoded: &str) -> Option<String> {
    let bytes = encoded.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes.get(i + 1..i + 3)?;
                let hi = (*hex.first()? as char).to_digit(16)?;
                let lo = (*hex.get(1)? as char).to_digit(16)?;
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b @ (b'a'..=b'z' | b'A'..=b'Z' | b'0'..=b'9' | b'-' | b'_') => {
                out.push(b);
                i += 1;
            }
            _ => return None,
        }
    }
    String::from_utf8(out).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};

    fn tmpdir(name: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_catalog_test_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    #[test]
    fn insert_query_remove_roundtrip() {
        let cat = Catalog::new();
        cat.insert("p", path_digraph(10));
        cat.insert("c", cycle_digraph(10));
        assert_eq!(cat.names(), vec!["c".to_string(), "p".to_string()]);
        assert_eq!(cat.reaches("p", 0, 9), Some(true));
        assert_eq!(cat.reaches("p", 9, 0), Some(false));
        assert_eq!(cat.reaches("c", 7, 3), Some(true));
        assert_eq!(cat.reaches("missing", 0, 1), None);
        assert!(cat.remove("p"));
        assert!(!cat.remove("p"));
        assert_eq!(cat.reaches("p", 0, 9), None);
    }

    #[test]
    fn index_is_lazy_and_invalidatable() {
        let cat = Catalog::new();
        cat.insert("g", gnm_digraph(50, 120, 1));
        assert!(!cat.is_indexed("g"));
        let _ = cat.index("g").unwrap();
        assert!(cat.is_indexed("g"));
        assert!(cat.invalidate("g"));
        assert!(!cat.is_indexed("g"));
        // Still answers after invalidation (rebuilds).
        assert_eq!(cat.reaches("g", 0, 0), Some(true));
        assert!(!cat.invalidate("missing"));
    }

    #[test]
    fn replacing_a_graph_drops_the_stale_index() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(5));
        assert_eq!(cat.reaches("g", 0, 4), Some(true));
        // Replace with the reverse orientation: old answer must flip.
        let rev = DiGraph::from_edges(5, &[(1, 0), (2, 1), (3, 2), (4, 3)]);
        cat.insert("g", rev);
        assert!(!cat.is_indexed("g"));
        assert_eq!(cat.reaches("g", 0, 4), Some(false));
        assert_eq!(cat.reaches("g", 4, 0), Some(true));
    }

    #[test]
    fn batch_through_catalog() {
        let cat = Catalog::new();
        cat.insert("p", path_digraph(20));
        let queries: Vec<(V, V)> = (0..19).map(|i| (i as V, (i + 1) as V)).collect();
        let ans = cat.answer_batch("p", &queries).unwrap();
        assert!(ans.iter().all(|&b| b));
        assert!(cat.answer_batch("missing", &queries).is_none());
    }

    #[test]
    fn same_index_instance_is_shared() {
        let cat = Catalog::new();
        cat.insert("g", gnm_digraph(30, 60, 2));
        let a = cat.index("g").unwrap();
        let b = cat.index("g").unwrap();
        assert!(Arc::ptr_eq(&a, &b));
    }

    #[test]
    fn submitter_matches_answer_batch_and_follows_deltas() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(10));
        assert!(cat.submitter("missing").is_none());
        let sub = cat.submitter("g").unwrap();
        assert_eq!(sub.graph_name(), "g");
        assert_eq!(sub.vertex_count(), 10);
        let queries: Vec<(V, V)> = (0..10).map(|i| (0, i as V)).collect();
        assert_eq!(sub.submit(&queries), cat.answer_batch("g", &queries).unwrap());
        // Both paths share the same index instance.
        let before = cat.index("g").unwrap();
        sub.submit(&queries);
        assert!(Arc::ptr_eq(&before, &cat.index("g").unwrap()));
        // A delta through the catalog is visible to the pinned handle.
        let mut d = Delta::new();
        d.insert(9, 0); // close the path into a cycle
        cat.apply_delta("g", &d).unwrap();
        assert!(sub.submit(&[(9, 0)])[0]);
    }

    #[test]
    fn per_entry_batch_options_are_honored() {
        let cat = Catalog::new();
        // memo_bits = 0 disables the memo for this entry only.
        let opts = BatchOptions { memo_bits: 0, grain: 3 };
        cat.insert_with_config("g", path_digraph(30), IndexConfig::default(), opts);
        let queries: Vec<(V, V)> = (0..29).map(|i| (i as V, (i + 1) as V)).collect();
        let ans = cat.answer_batch("g", &queries).unwrap();
        assert!(ans.iter().all(|&b| b));
    }

    #[test]
    fn delta_unknown_graph_and_out_of_range() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(4));
        let mut d = Delta::new();
        d.insert(0, 2);
        assert_eq!(
            cat.apply_delta("missing", &d),
            Err(DeltaError::UnknownGraph("missing".to_string()))
        );
        let mut bad = Delta::new();
        bad.delete(0, 9);
        assert_eq!(
            cat.apply_delta("g", &bad),
            Err(DeltaError::EndpointOutOfRange { edge: (0, 9), n: 4 })
        );
        // Nothing was modified by the failed applications.
        assert_eq!(cat.graph("g").unwrap().m(), 3);
    }

    #[test]
    fn redundant_delta_is_a_noop() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(4));
        let before = cat.index("g").unwrap();
        let mut d = Delta::new();
        d.insert(0, 1).delete(3, 0); // edge present / edge absent
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report, DeltaReport { outcome: DeltaOutcome::NoOp, inserted: 0, deleted: 0 });
        assert!(Arc::ptr_eq(&before, &cat.index("g").unwrap()));
        assert_eq!(cat.generation("g"), Some(0), "noop must not bump the generation");
    }

    #[test]
    fn absorbable_insertion_keeps_the_index_instance() {
        // 0 <-> 1 (one SCC) -> 2 -> 3.
        let cat = Catalog::new();
        cat.insert("g", DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]));
        let before = cat.index("g").unwrap();
        assert_eq!(before.stats().absorbed_deltas, 0);
        // In-SCC edge + already-reachable pair: both absorbable.
        let mut d = Delta::new();
        d.insert(0, 0).insert(0, 3);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Absorbed);
        assert_eq!(report.inserted, 2);
        let after = cat.index("g").unwrap();
        assert!(Arc::ptr_eq(&before, &after), "absorbed delta must keep the index");
        assert_eq!(after.stats().absorbed_deltas, 1);
        // The graph itself did change.
        assert_eq!(cat.graph("g").unwrap().m(), 6);
        assert_eq!(cat.reaches("g", 0, 3), Some(true));
    }

    #[test]
    fn merging_delta_recomputes_the_region() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(5));
        let before = cat.index("g").unwrap();
        assert_eq!(before.stats().built_by, BuildCause::Fresh);
        assert_eq!(before.num_components(), 5);
        // 4 -> 0 closes the path into one big cycle: components merge —
        // repaired by the region tier, not a rebuild.
        let mut d = Delta::new();
        d.insert(4, 0);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::RegionRecomputed);
        let after = cat.index("g").unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "merging delta must patch a new index");
        assert_eq!(after.stats().built_by, BuildCause::RegionRecompute);
        assert_eq!(after.stats().region_recomputes, 1);
        assert_eq!(after.num_components(), 1);
        assert_eq!(cat.reaches("g", 3, 1), Some(true));
        assert_eq!(cat.generation("g"), Some(1));
        assert_eq!(
            cat.repair_counts("g"),
            Some(RepairCounts { region_recomputed: 1, ..RepairCounts::default() })
        );
    }

    #[test]
    fn merging_delta_past_the_region_budget_rebuilds() {
        let cfg = IndexConfig {
            repair: crate::planner::RepairBudget {
                region_frac: 0.1,
                min_region: 2,
                ..crate::planner::RepairBudget::default()
            },
            ..IndexConfig::default()
        };
        let cat = Catalog::new();
        cat.insert_with_config("g", path_digraph(50), cfg, BatchOptions::default());
        let _ = cat.index("g").unwrap();
        // Closing the whole 50-component path is past the 10% budget.
        let mut d = Delta::new();
        d.insert(49, 0);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Rebuilt);
        let after = cat.index("g").unwrap();
        assert_eq!(after.stats().built_by, BuildCause::DeltaRebuild);
        assert_eq!(after.num_components(), 1);
        assert_eq!(
            cat.repair_counts("g"),
            Some(RepairCounts { full_rebuilds: 1, ..RepairCounts::default() })
        );
    }

    #[test]
    fn cross_component_insertion_splices_the_dag() {
        // Two disjoint paths; an edge joining them adds a condensation
        // arc but merges nothing.
        let cat = Catalog::new();
        cat.insert("g", DiGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]));
        let before = cat.index("g").unwrap();
        assert_eq!(cat.reaches("g", 0, 5), Some(false));
        let mut d = Delta::new();
        d.insert(2, 3);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::DagSpliced);
        let after = cat.index("g").unwrap();
        assert!(!Arc::ptr_eq(&before, &after), "splice patches a new index");
        assert_eq!(after.stats().built_by, BuildCause::DagSplice);
        assert_eq!(after.stats().dag_splices, 1);
        assert_eq!(after.num_components(), 6, "no components may merge in a splice");
        assert_eq!(cat.reaches("g", 0, 5), Some(true));
        assert_eq!(
            cat.repair_counts("g"),
            Some(RepairCounts { dag_spliced: 1, ..RepairCounts::default() })
        );
    }

    #[test]
    fn repair_counts_accumulate_across_tiers() {
        let cat = Catalog::new();
        // {0,1} cycle -> 2 -> 3, plus isolated 4.
        cat.insert("g", DiGraph::from_edges(5, &[(0, 1), (1, 0), (1, 2), (2, 3)]));
        let _ = cat.index("g").unwrap();
        let mut absorb = Delta::new();
        absorb.insert(0, 3); // already reachable (a latent pair from now on)
        assert_eq!(cat.apply_delta("g", &absorb).unwrap().outcome, DeltaOutcome::Absorbed);
        let mut splice = Delta::new();
        splice.insert(3, 4); // new condensation arc, no merge
        assert_eq!(cat.apply_delta("g", &splice).unwrap().outcome, DeltaOutcome::DagSpliced);
        let mut merge = Delta::new();
        merge.insert(3, 2); // closes 2 <-> 3
        assert_eq!(cat.apply_delta("g", &merge).unwrap().outcome, DeltaOutcome::RegionRecomputed);
        let mut unsplice = Delta::new();
        unsplice.delete(3, 4); // the arc's only support: unspliced in place
        assert_eq!(cat.apply_delta("g", &unsplice).unwrap().outcome, DeltaOutcome::ArcUnspliced);
        let mut split = Delta::new();
        split.delete(3, 2); // intra-SCC: {2, 3} falls apart
        assert_eq!(cat.apply_delta("g", &split).unwrap().outcome, DeltaOutcome::SccSplit);
        let mut mixed = Delta::new();
        mixed.delete(1, 2).insert(4, 0); // structural deletion + insertion
        assert_eq!(cat.apply_delta("g", &mixed).unwrap().outcome, DeltaOutcome::Rebuilt);
        assert_eq!(
            cat.repair_counts("g"),
            Some(RepairCounts {
                absorbed: 1,
                dag_spliced: 1,
                region_recomputed: 1,
                arc_unspliced: 1,
                scc_split: 1,
                full_rebuilds: 1
            })
        );
        // Final edge set: (0,1), (1,0), (2,3), (0,3), (4,0).
        assert_eq!(cat.reaches("g", 4, 3), Some(true));
        assert_eq!(cat.reaches("g", 1, 3), Some(true), "via the absorbed (0, 3)");
        assert_eq!(cat.reaches("g", 0, 4), Some(false));
        assert_eq!(cat.reaches("g", 1, 2), Some(false));
        assert_eq!(cat.repair_counts("missing"), None);
    }

    #[test]
    fn effective_deletion_unsplices_and_flips_answers() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(5));
        assert_eq!(cat.reaches("g", 0, 4), Some(true));
        let mut d = Delta::new();
        d.delete(2, 3); // singleton comps: the arc's only support
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::ArcUnspliced);
        assert_eq!(report.deleted, 1);
        assert_eq!(cat.reaches("g", 0, 4), Some(false));
        assert_eq!(cat.reaches("g", 0, 2), Some(true));
        assert_eq!(cat.reaches("g", 3, 4), Some(true));
    }

    #[test]
    fn parallel_support_deletion_keeps_the_index_instance() {
        // Two 2-cycles {0,1} and {2,3} joined by two parallel supports of
        // the same condensation arc: (1, 2) and (0, 3).
        let cat = Catalog::new();
        cat.insert("g", DiGraph::from_edges(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (0, 3)]));
        let before = cat.index("g").unwrap();
        assert_eq!(before.stats().supported_pairs, 1);
        let mut d = Delta::new();
        d.delete(1, 2); // (0, 3) still witnesses the arc
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Absorbed);
        assert_eq!(report.deleted, 1);
        let after = cat.index("g").unwrap();
        assert!(Arc::ptr_eq(&before, &after), "support decrement must keep the index");
        assert_eq!(cat.reaches("g", 0, 3), Some(true));
        // Deleting the second support kills the arc: unsplice, answers flip.
        let mut d2 = Delta::new();
        d2.delete(0, 3);
        assert_eq!(cat.apply_delta("g", &d2).unwrap().outcome, DeltaOutcome::ArcUnspliced);
        assert_eq!(cat.reaches("g", 0, 3), Some(false));
        assert_eq!(
            cat.repair_counts("g"),
            Some(RepairCounts { absorbed: 1, arc_unspliced: 1, ..RepairCounts::default() })
        );
    }

    #[test]
    fn intra_scc_deletion_that_keeps_the_component_whole_is_absorbed() {
        // A 3-cycle with a chord: deleting the chord cannot split it.
        let cat = Catalog::new();
        cat.insert("g", DiGraph::from_edges(3, &[(0, 1), (1, 2), (2, 0), (0, 2)]));
        let before = cat.index("g").unwrap();
        assert_eq!(before.num_components(), 1);
        let mut d = Delta::new();
        d.delete(0, 2);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Absorbed, "split check found no split");
        assert!(Arc::ptr_eq(&before, &cat.index("g").unwrap()));
        // Deleting a cycle edge does split it: 3 singleton components.
        let mut d2 = Delta::new();
        d2.delete(1, 2);
        assert_eq!(cat.apply_delta("g", &d2).unwrap().outcome, DeltaOutcome::SccSplit);
        let after = cat.index("g").unwrap();
        assert_eq!(after.num_components(), 3);
        assert_eq!(cat.reaches("g", 0, 1), Some(true));
        assert_eq!(cat.reaches("g", 1, 0), Some(false));
    }

    #[test]
    fn split_delta_that_also_kills_a_latent_pair_stays_correct() {
        // A 3-cycle {0,1,2} plus a path 3 -> 4 -> 5. The shortcut (3, 5)
        // is absorbed (latent). One delta then deletes a cycle edge (an
        // SCC split) *and* the latent shortcut (metadata-only): the
        // split executor must drop the dying latent pair cleanly.
        let cat = Catalog::new();
        cat.insert("g", DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (3, 4), (4, 5)]));
        let _ = cat.index("g").unwrap();
        let mut shortcut = Delta::new();
        shortcut.insert(3, 5);
        assert_eq!(cat.apply_delta("g", &shortcut).unwrap().outcome, DeltaOutcome::Absorbed);
        assert_eq!(cat.index("g").unwrap().stats().latent_arcs, 1);
        let mut d = Delta::new();
        d.delete(1, 2).delete(3, 5);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::SccSplit);
        assert_eq!(report.deleted, 2);
        let after = cat.index("g").unwrap();
        assert_eq!(after.num_components(), 6, "the cycle split into singletons");
        assert_eq!(after.stats().latent_arcs, 0);
        assert_eq!(cat.reaches("g", 0, 2), Some(false));
        assert_eq!(cat.reaches("g", 2, 1), Some(true));
        assert_eq!(cat.reaches("g", 3, 5), Some(true), "still via 4");
    }

    #[test]
    fn oversized_split_component_falls_back_to_rebuild() {
        // One big cycle; a tiny region budget prices the split check out.
        let cfg = IndexConfig {
            repair: crate::planner::RepairBudget {
                region_frac: 0.05,
                min_region: 2,
                ..crate::planner::RepairBudget::default()
            },
            ..IndexConfig::default()
        };
        let cat = Catalog::new();
        cat.insert_with_config("g", cycle_digraph(100), cfg, BatchOptions::default());
        let _ = cat.index("g").unwrap();
        let mut d = Delta::new();
        d.delete(40, 41);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Rebuilt);
        assert_eq!(cat.index("g").unwrap().stats().built_by, BuildCause::DeltaRebuild);
        assert_eq!(cat.reaches("g", 39, 42), Some(false));
        assert_eq!(cat.reaches("g", 41, 40), Some(true), "the long way around survives");
    }

    #[test]
    fn delta_before_first_query_defers_indexing() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(4));
        let mut d = Delta::new();
        d.insert(3, 0);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::Deferred);
        assert!(!cat.is_indexed("g"));
        assert_eq!(cat.reaches("g", 2, 1), Some(true)); // lazy build sees the cycle
    }

    #[test]
    fn insertion_wins_when_delta_names_an_edge_twice() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(3));
        let mut d = Delta::new();
        d.insert(0, 1).delete(0, 1);
        let report = cat.apply_delta("g", &d).unwrap();
        assert_eq!(report.outcome, DeltaOutcome::NoOp);
        assert_eq!(cat.reaches("g", 0, 1), Some(true));
    }

    #[test]
    fn explained_batch_and_last_plan_are_exposed() {
        let cat = Catalog::new();
        cat.insert("g", path_digraph(5));
        let ex = cat.answer_batch_explained("g", &[(0, 4), (4, 0), (2, 2)]).unwrap();
        assert_eq!(ex.len(), 3);
        assert!(ex[0].reaches && !ex[1].reaches && ex[2].reaches);
        assert_eq!(ex[2].tier, crate::QueryTier::SameComponent);
        // Verdicts must match the plain batch path exactly.
        let plain = cat.answer_batch("g", &[(0, 4), (4, 0), (2, 2)]).unwrap();
        assert_eq!(ex.iter().map(|e| e.reaches).collect::<Vec<_>>(), plain);
        assert!(cat.last_plan_explain("g").is_none(), "no delta planned yet");
        let mut d = Delta::new();
        d.insert(4, 0); // closes the path into one cycle
        cat.apply_delta("g", &d).unwrap();
        let plan = cat.last_plan_explain("g").unwrap();
        assert_eq!(plan.chosen, "region_recompute");
        assert!(plan.rejected.iter().any(|&(t, _)| t == "dag_splice"));
        assert!(cat.answer_batch_explained("missing", &[]).is_none());
        assert!(cat.last_plan_explain("missing").is_none());
    }

    #[test]
    fn name_encoding_roundtrips() {
        for name in ["plain", "with space", "sl/ash", "döt", "%", "a%20b", ""] {
            let enc = encode_name(name);
            assert!(enc
                .bytes()
                .all(|b| b.is_ascii_alphanumeric() || b == b'-' || b == b'_' || b == b'%'));
            assert_eq!(decode_name(&enc).as_deref(), Some(name), "{name:?} via {enc:?}");
        }
        assert_eq!(decode_name("bad|char"), None);
        assert_eq!(decode_name("trailing%2"), None);
        assert_eq!(decode_name("%zz"), None);
    }

    #[test]
    fn persist_apply_reopen_roundtrip() {
        let dir = tmpdir("roundtrip");
        let cat = Catalog::new();
        cat.insert("g", path_digraph(6));
        cat.persist_to("g", &dir).unwrap();
        assert!(cat.is_durable("g"));
        let mut d = Delta::new();
        d.insert(5, 0); // close the cycle (durable, write-ahead)
        cat.apply_delta("g", &d).unwrap();
        let mut d2 = Delta::new();
        d2.delete(2, 3);
        cat.apply_delta("g", &d2).unwrap();
        drop(cat);

        let back = Catalog::open(&dir).unwrap();
        assert_eq!(back.names(), vec!["g".to_string()]);
        assert!(back.is_durable("g"));
        assert_eq!(back.generation("g"), Some(2));
        // 5 -> 0 present, 2 -> 3 gone: 3 wraps around to 0, but 1 dead-ends at 2.
        assert_eq!(back.reaches("g", 3, 0), Some(true));
        assert_eq!(back.reaches("g", 1, 3), Some(false));
        let expected = path_digraph(6).with_delta(&[(5, 0)], &[(2, 3)]);
        assert_eq!(back.graph("g").unwrap().out_csr(), expected.out_csr());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn persist_to_rejects_unknown_and_double_attach() {
        let dir = tmpdir("reject");
        let cat = Catalog::new();
        cat.insert("g", path_digraph(3));
        assert_eq!(cat.persist_to("missing", &dir).unwrap_err().kind(), io::ErrorKind::NotFound);
        // The empty name encodes to the data dir itself and could never
        // be recovered: refused up front.
        cat.insert("", path_digraph(3));
        assert_eq!(cat.persist_to("", &dir).unwrap_err().kind(), io::ErrorKind::InvalidInput);
        cat.persist_to("g", &dir).unwrap();
        assert_eq!(cat.persist_to("g", &dir).unwrap_err().kind(), io::ErrorKind::AlreadyExists);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn noop_deltas_skip_the_log_and_real_ones_hit_it() {
        let dir = tmpdir("walhits");
        let cat = Catalog::new();
        cat.insert("g", path_digraph(4));
        cat.persist_to("g", &dir).unwrap();
        let wal = dir.join(encode_name("g")).join("wal.log");
        let before = std::fs::metadata(&wal).unwrap().len();
        let mut noop = Delta::new();
        noop.insert(0, 1); // already present
        assert_eq!(cat.apply_delta("g", &noop).unwrap().outcome, DeltaOutcome::NoOp);
        assert_eq!(
            std::fs::metadata(&wal).unwrap().len(),
            before,
            "noop deltas must not hit the log"
        );
        let mut real = Delta::new();
        real.insert(3, 0);
        cat.apply_delta("g", &real).unwrap();
        assert!(std::fs::metadata(&wal).unwrap().len() > before);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compaction_truncates_an_outgrown_log() {
        let dir = tmpdir("compact");
        // Tiny thresholds: every delta overflows the policy.
        let cat = Catalog::with_compaction(CompactionPolicy { wal_factor: 0, min_wal_bytes: 0 });
        cat.insert("g", path_digraph(50));
        cat.persist_to("g", &dir).unwrap();
        for i in 0..10u32 {
            let mut d = Delta::new();
            d.insert(i + 10, i); // back edges, each effective
            cat.apply_delta("g", &d).unwrap();
        }
        cat.flush_maintenance();
        let (wal_bytes, _) = cat.store_bytes("g").unwrap();
        assert_eq!(wal_bytes, 8, "compacted log holds only its header");
        drop(cat);
        // The compacted store still recovers the full state.
        let back = Catalog::open(&dir).unwrap();
        assert_eq!(back.graph("g").unwrap().m(), 49 + 10);
        assert_eq!(back.generation("g"), Some(10));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn reopened_catalog_keeps_batch_options() {
        let dir = tmpdir("batchopts");
        let cat = Catalog::new();
        let opts = BatchOptions { memo_bits: 3, grain: 7 };
        cat.insert_with_config("g", path_digraph(10), IndexConfig::default(), opts);
        cat.persist_to("g", &dir).unwrap();
        drop(cat);
        let back = Catalog::open(&dir).unwrap();
        let entry = back.entry("g").unwrap();
        assert_eq!(entry.batch.memo_bits, 3);
        assert_eq!(entry.batch.grain, 7);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_on_an_empty_directory_is_an_empty_catalog() {
        let dir = tmpdir("empty");
        let cat = Catalog::open(&dir).unwrap();
        assert!(cat.names().is_empty());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn open_skips_unrelated_directories() {
        // Stray directories in a data dir (lost+found, backups) must not
        // block recovery of the real stores next to them.
        let dir = tmpdir("stray");
        let cat = Catalog::new();
        cat.insert("g", path_digraph(4));
        cat.persist_to("g", &dir).unwrap();
        std::fs::create_dir(dir.join("lost+found")).unwrap();
        std::fs::create_dir(dir.join("backups")).unwrap();
        std::fs::write(dir.join("backups").join("notes.txt"), "not a store").unwrap();
        drop(cat);
        let back = Catalog::open(&dir).unwrap();
        assert_eq!(back.names(), vec!["g".to_string()]);
        // But a directory that *does* hold store data (a log with
        // records, not just an aborted creation's header) under an
        // undecodable name is an error, not a silent skip.
        std::fs::create_dir(dir.join("bad|name")).unwrap();
        std::fs::write(dir.join("bad|name").join("wal.log"), b"PSCCWAL1 plus record bytes")
            .unwrap();
        assert!(Catalog::open(&dir).is_err());
        std::fs::remove_dir_all(dir).ok();
    }
}

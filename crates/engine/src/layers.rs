//! The composable layers of a reachability [`Index`](crate::index::Index):
//! SCC labeling, topological levels, and the descendant summary — each
//! buildable from scratch *and* partially invalidatable, so the repair
//! planner ([`crate::planner`]) can patch exactly the layers a delta
//! touches instead of rebuilding the whole index.
//!
//! | layer | full build | partial invalidation |
//! |---|---|---|
//! | [`SccLayer`] | BGSS SCC over the graph | [`SccLayer::remapped`] — merge components through an old→new id map |
//! | condensation DAG | `condense` over all edges | `DiGraph::with_delta` arc splice/unsplice, or contraction of the *old DAG* (never the graph) |
//! | [`LevelLayer`] | sweep in topological order | [`LevelLayer::splice`] — worklist relaxation from new arcs; [`LevelLayer::unsplice`] — exact recompute from changed-arc targets |
//! | [`SummaryLayer`] | bitsets, 2-hop hub labels, or interval labels | [`SummaryLayer::splice_arcs`] — recompute/widen only the affected ancestors (hub labels: extend coverage over each new arc's `anc × desc` region); [`SummaryLayer::unsplice_arcs`] — same for bitsets/intervals (sound for arc removal), hub labels relabel from scratch (exact certificates are not over-approximations) |
//! | [`SupportLayer`] | `contracted_support` over the graph | per-edge increments/decrements, id remap after merges |
//!
//! The DAG itself has no wrapper type: `DiGraph` already supports the two
//! partial updates the repair tiers need (arc splicing via `with_delta`,
//! and contraction by edge remapping, which is plain iterator code).

use crate::explain::QueryTier;
use pscc_graph::{DiGraph, V};
use pscc_runtime::SplitMix64;
use std::collections::{BTreeSet, HashMap};

/// Which descendant-summary representation an
/// [`Index`](crate::index::Index) holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SummaryTier {
    /// Full per-component descendant bitsets (small DAGs).
    Bitset,
    /// Pruned landmark (2-hop) hub labels: a point query is one sorted-set
    /// merge-intersection, no DFS fallback (large DAGs whose total label
    /// size fits the label budget).
    Labels,
    /// Interval labels + exception lists + pruned DFS (large DAGs where
    /// the label budget overflowed or the tier is disabled).
    Intervals,
}

// ---- SCC labeling ---------------------------------------------------------

/// The SCC labeling layer: which component each vertex belongs to and how
/// many vertices each component holds.
#[derive(Clone)]
pub(crate) struct SccLayer {
    /// Component id of each original vertex (`0..sizes.len()`).
    pub comp_of: Vec<u32>,
    /// Vertex count per component.
    pub sizes: Vec<usize>,
}

impl SccLayer {
    /// Partial invalidation after a region merge: pushes every vertex and
    /// size through `map` (old component id → new component id over
    /// `k_new` components). Only the labeling is touched — no SCC run,
    /// no graph traversal.
    pub fn remapped(&self, map: &[u32], k_new: usize) -> SccLayer {
        let comp_of: Vec<u32> = self.comp_of.iter().map(|&c| map[c as usize]).collect();
        let mut sizes = vec![0usize; k_new];
        for (c, &s) in self.sizes.iter().enumerate() {
            sizes[map[c] as usize] += s;
        }
        SccLayer { comp_of, sizes }
    }
}

// ---- Arc support ----------------------------------------------------------

/// The arc-support layer: how many graph edges contract to each
/// cross-component pair, plus which supported pairs are **latent** —
/// absorbed by the repair planner without ever becoming a DAG arc.
///
/// This is the certificate that makes deletions plannable:
///
/// * a cross-component edge whose pair keeps support `> 0` can be deleted
///   as a pure metadata decrement (another parallel edge witnesses the
///   same arc, so the reachability relation is provably unchanged);
/// * a pair whose support hits `0` kills its DAG arc — the arc-unsplice
///   tier removes it and, crucially, **drains every latent pair into the
///   DAG first**: a latent pair's reachability was witnessed by DAG paths
///   when it was absorbed, and arcs have only been *added* since (any
///   structural removal drains the latent set), but the arcs being
///   removed right now may be exactly that witness;
/// * a latent pair whose support hits `0` is metadata-only too — by the
///   same invariant, the current DAG still witnesses its endpoints'
///   reachability without it.
///
/// Intra-component edges and self loops are not tracked: deleting them
/// can never remove a condensation arc (the SCC-split check is
/// graph-driven instead).
#[derive(Clone, Default)]
pub(crate) struct SupportLayer {
    /// `cross[(a, b)]` = number of graph edges `u → v` with
    /// `comp(u) = a ≠ b = comp(v)`. Pairs with zero support are absent.
    cross: HashMap<(u32, u32), u64>,
    /// Supported pairs absent from the index DAG (see above). Invariant:
    /// `latent ⊆ cross.keys()`, and every latent pair's reachability is
    /// witnessed by the current DAG without it.
    latent: BTreeSet<(u32, u32)>,
}

impl SupportLayer {
    /// Full build from the indexed graph and its component labeling. A
    /// fresh condensation carries every supported pair as a real arc, so
    /// the latent set starts empty.
    pub fn build(graph: &DiGraph, comp_of: &[u32]) -> SupportLayer {
        SupportLayer {
            cross: pscc_graph::contracted_support(graph.out_csr(), comp_of),
            latent: BTreeSet::new(),
        }
    }

    /// Direct-edge multiplicity of the pair (0 when untracked).
    pub fn support(&self, pair: (u32, u32)) -> u64 {
        self.cross.get(&pair).copied().unwrap_or(0)
    }

    /// True if the pair is supported but absent from the DAG.
    pub fn is_latent(&self, pair: (u32, u32)) -> bool {
        self.latent.contains(&pair)
    }

    /// Records one inserted cross-component edge. `is_dag_arc` says
    /// whether the pair is an arc of the index DAG *after* this delta's
    /// repair — a newly supported pair that is not becomes latent.
    pub fn record_insert(&mut self, pair: (u32, u32), is_dag_arc: bool) {
        let count = self.cross.entry(pair).or_insert(0);
        *count += 1;
        if *count == 1 && !is_dag_arc {
            self.latent.insert(pair);
        }
    }

    /// Records one deleted cross-component edge; a pair decremented to
    /// zero support leaves the table (and the latent set). Returns the
    /// remaining support.
    pub fn record_delete(&mut self, pair: (u32, u32)) -> u64 {
        match self.cross.get_mut(&pair) {
            Some(count) if *count > 1 => {
                *count -= 1;
                *count
            }
            Some(_) => {
                self.cross.remove(&pair);
                self.latent.remove(&pair);
                0
            }
            None => {
                debug_assert!(false, "deleting an unsupported cross pair {pair:?}");
                0
            }
        }
    }

    /// Sets the multiplicity of a pair known to be a real DAG arc (bulk
    /// table reconstruction after an SCC split; never touches the latent
    /// set).
    pub fn set_arc_support(&mut self, pair: (u32, u32), count: u64) {
        debug_assert!(count > 0, "supported pairs have positive multiplicity");
        self.cross.insert(pair, count);
    }

    /// Removes and returns every latent pair — the arc-unsplice and
    /// SCC-split tiers splice them all into the DAG, restoring the
    /// "every supported pair is an arc" state of a fresh build.
    pub fn drain_latent(&mut self) -> Vec<(u32, u32)> {
        std::mem::take(&mut self.latent).into_iter().collect()
    }

    /// Partial invalidation after a region merge: pushes every pair
    /// through `map` (old → new component ids), summing multiplicities
    /// and dropping pairs whose endpoints merged (their edges became
    /// intra-component). Latent pairs are re-checked against `dag` (the
    /// *new* condensation): a contraction can have turned a formerly
    /// latent pair into a real arc.
    pub fn remapped(&self, map: &[u32], dag: &DiGraph) -> SupportLayer {
        let mut cross: HashMap<(u32, u32), u64> = HashMap::with_capacity(self.cross.len());
        for (&(a, b), &count) in &self.cross {
            let (na, nb) = (map[a as usize], map[b as usize]);
            if na != nb {
                *cross.entry((na, nb)).or_insert(0) += count;
            }
        }
        let latent = self
            .latent
            .iter()
            .map(|&(a, b)| (map[a as usize], map[b as usize]))
            .filter(|&(na, nb)| na != nb && dag.out_neighbors(na).binary_search(&nb).is_err())
            .collect();
        SupportLayer { cross, latent }
    }

    /// Number of distinct supported cross-component pairs.
    pub fn supported_pairs(&self) -> usize {
        self.cross.len()
    }

    /// Number of latent pairs.
    pub fn latent_arcs(&self) -> usize {
        self.latent.len()
    }

    /// Iterates `(pair, multiplicity)` entries (unordered).
    pub fn entries(&self) -> impl Iterator<Item = ((u32, u32), u64)> + '_ {
        self.cross.iter().map(|(&p, &c)| (p, c))
    }
}

// ---- Topological levels ---------------------------------------------------

/// Longest-path topological levels of the condensation DAG: every arc
/// strictly increases the level, so `level(cu) >= level(cv)` refutes
/// `cu ⇝ cv` in O(1).
#[derive(Clone)]
pub(crate) struct LevelLayer {
    pub levels: Vec<u32>,
}

impl LevelLayer {
    /// Full build: one sweep over the DAG in topological order (the same
    /// sweep `Condensation::topo_levels` uses).
    pub fn build(dag: &DiGraph, order: &[V]) -> LevelLayer {
        LevelLayer { levels: pscc_apps::topo_levels_of(dag, order) }
    }

    /// Partial invalidation after an arc splice: worklist relaxation from
    /// the new arcs re-establishes the strict-increase invariant, touching
    /// only components whose longest incoming path actually grew (on a
    /// typical splice: none, because the new arc already points downhill).
    ///
    /// Levels only ever grow, so the old values stay valid lower bounds
    /// and the relaxation converges to the new longest-path levels.
    pub fn splice(&mut self, dag: &DiGraph, new_arcs: &[(V, V)]) {
        let mut work: Vec<V> = Vec::new();
        for &(a, b) in new_arcs {
            if self.levels[b as usize] <= self.levels[a as usize] {
                self.levels[b as usize] = self.levels[a as usize] + 1;
                work.push(b);
            }
        }
        while let Some(c) = work.pop() {
            for &d in dag.out_neighbors(c) {
                if self.levels[d as usize] <= self.levels[c as usize] {
                    self.levels[d as usize] = self.levels[c as usize] + 1;
                    work.push(d);
                }
            }
        }
    }

    /// Partial invalidation after arcs were **removed** (and possibly
    /// others added in the same repair): exact per-component recompute
    /// from the in-neighbors of the *new* DAG, seeded at every changed
    /// arc's target and propagated to successors while values move.
    ///
    /// Unlike [`LevelLayer::splice`] this handles levels that shrink: a
    /// removed arc can have been the unique longest incoming path of its
    /// target. Levels depend only on predecessors, so the worklist
    /// converges to the unique longest-path fixpoint of the new DAG (a
    /// component recomputed against a predecessor that later moves is
    /// simply re-pushed by that predecessor's change).
    pub fn unsplice(&mut self, dag: &DiGraph, seeds: &[V]) {
        let mut work: Vec<V> = seeds.to_vec();
        while let Some(c) = work.pop() {
            let want =
                dag.in_neighbors(c).iter().map(|&p| self.levels[p as usize] + 1).max().unwrap_or(0);
            if self.levels[c as usize] != want {
                self.levels[c as usize] = want;
                work.extend_from_slice(dag.out_neighbors(c));
            }
        }
    }
}

// ---- Descendant summary ---------------------------------------------------

/// One GRAIL-style labeling: a post-order rank and the subtree-minimum
/// rank per component, giving the containment invariant
/// `u ⇝ v ⇒ low[u] ≤ low[v] ∧ rank[v] ≤ rank[u]`.
#[derive(Clone)]
pub(crate) struct IntervalLabeling {
    low: Vec<u32>,
    rank: Vec<u32>,
}

impl IntervalLabeling {
    /// True if `v`'s interval nests inside `u`'s (necessary for `u ⇝ v`).
    #[inline]
    fn may_reach(&self, u: usize, v: usize) -> bool {
        self.low[u] <= self.low[v] && self.rank[v] <= self.rank[u]
    }
}

/// Pruned landmark (2-hop) hub labels over the condensation DAG.
///
/// Components are processed as hubs in degree-descending order; hub `h`'s
/// forward traversal adds `h` to `label_in(v)` for every component it can
/// reach (backward symmetric into `label_out`), *pruning* any visit whose
/// pair is already answered by earlier hubs' labels — the classic pruned
/// landmark labeling, which yields exactly the same query results as the
/// unpruned 2-hop cover. A point query `cu ⇝ cv` is then one
/// merge-intersection of two sorted hub arrays: non-empty iff some hub
/// `h` has `cu ⇝ h` and `h ⇝ cv`. Entries are stored as hub *ranks*
/// (position in the processing order), so every array is sorted and the
/// highest-coverage hubs sit first — intersections hit early.
#[derive(Clone)]
pub(crate) struct LabelLayer {
    /// Hub rank of each component (inverse of the degree-descending
    /// processing order); needed when a splice introduces a new hub entry.
    rank_of: Vec<u32>,
    /// CSR offsets into `out_hubs`: `label_out(c)` = hubs `h` with `c ⇝ h`.
    out_offsets: Vec<u32>,
    out_hubs: Vec<u32>,
    /// CSR offsets into `in_hubs`: `label_in(c)` = hubs `h` with `h ⇝ c`.
    in_offsets: Vec<u32>,
    in_hubs: Vec<u32>,
}

impl LabelLayer {
    /// Full pruned-landmark build. Returns `None` when the total label
    /// footprint would exceed `budget_bytes` — the caller falls back to
    /// the interval tier.
    pub fn build(dag: &DiGraph, budget_bytes: usize) -> Option<LabelLayer> {
        let k = dag.n();
        // Fixed overhead: rank_of + both offset arrays, 4 bytes each.
        let fixed = (k + 2 * (k + 1)) * 4;
        if fixed > budget_bytes {
            return None;
        }
        let max_entries = (budget_bytes - fixed) / 4;
        // Hubs in degree-descending order (stable sort: ties by id).
        let mut order: Vec<V> = (0..k as V).collect();
        order.sort_by_key(|&c| {
            std::cmp::Reverse(dag.out_neighbors(c).len() + dag.in_neighbors(c).len())
        });
        let mut rank_of = vec![0u32; k];
        for (rank, &c) in order.iter().enumerate() {
            rank_of[c as usize] = rank as u32;
        }
        // Build-time labels: per-component hub-rank vectors, appended in
        // processing order, so they stay sorted ascending throughout and
        // the pruning intersections below work on sorted input.
        let mut label_out: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut label_in: Vec<Vec<u32>> = vec![Vec::new(); k];
        let mut entries = 0usize;
        let mut seen = vec![u64::MAX; k];
        let mut work: Vec<V> = Vec::new();
        for (rank, &h) in order.iter().enumerate() {
            let rank = rank as u32;
            let hc = h as usize;
            // Forward sweep: h into label_in of everything h still covers.
            let epoch = 2 * rank as u64;
            seen[hc] = epoch;
            work.push(h);
            while let Some(t) = work.pop() {
                let t = t as usize;
                if t != hc && sorted_intersect(&label_out[hc], &label_in[t]).0 {
                    continue; // pair already covered by an earlier hub
                }
                label_in[t].push(rank);
                entries += 1;
                for &d in dag.out_neighbors(t as V) {
                    if seen[d as usize] != epoch {
                        seen[d as usize] = epoch;
                        work.push(d);
                    }
                }
            }
            // Backward sweep: h into label_out of everything still reaching h.
            let epoch = epoch + 1;
            seen[hc] = epoch;
            work.push(h);
            while let Some(s) = work.pop() {
                let s = s as usize;
                if s != hc && sorted_intersect(&label_out[s], &label_in[hc]).0 {
                    continue;
                }
                label_out[s].push(rank);
                entries += 1;
                for &p in dag.in_neighbors(s as V) {
                    if seen[p as usize] != epoch {
                        seen[p as usize] = epoch;
                        work.push(p);
                    }
                }
            }
            if entries > max_entries {
                return None;
            }
        }
        let (out_offsets, out_hubs) = flatten_labels(&label_out);
        let (in_offsets, in_hubs) = flatten_labels(&label_in);
        Some(LabelLayer { rank_of, out_offsets, out_hubs, in_offsets, in_hubs })
    }

    /// The merge-intersection point query: true iff `label_out(cu)` and
    /// `label_in(cv)` share a hub. Also returns the number of merge steps
    /// taken — the "work done" figure EXPLAIN and the intersection-length
    /// histogram report.
    #[inline]
    pub fn intersects(&self, cu: usize, cv: usize) -> (bool, usize) {
        let a = &self.out_hubs[self.out_offsets[cu] as usize..self.out_offsets[cu + 1] as usize];
        let b = &self.in_hubs[self.in_offsets[cv] as usize..self.in_offsets[cv + 1] as usize];
        sorted_intersect(a, b)
    }

    /// Total hub entries across both label sides.
    pub fn entries(&self) -> usize {
        self.out_hubs.len() + self.in_hubs.len()
    }

    /// Byte footprint (hub entries, CSR offsets, and the rank map).
    pub fn bytes(&self) -> usize {
        (self.entries() + self.out_offsets.len() + self.in_offsets.len() + self.rank_of.len()) * 4
    }

    /// Exact patch after an arc **splice** (insertions only). For each new
    /// arc `a → b`, every ancestor of `a` now reaches every descendant of
    /// `b`, and `b` itself witnesses all of those pairs: adding hub `b` to
    /// `label_out` across `anc(a)` and to `label_in` across `desc(b)`
    /// covers exactly the `anc × desc` region the arc opened. Every added
    /// entry is a true reachability fact in the post-splice DAG, and any
    /// newly reachable pair routes through some new arc, so soundness and
    /// completeness both hold; pre-existing entries remain true because
    /// insertion only grows reachability. `dag` must be the post-splice
    /// DAG.
    pub fn splice(&mut self, dag: &DiGraph, new_arcs: &[(V, V)]) {
        let mut add_out: Vec<(V, u32)> = Vec::new();
        let mut add_in: Vec<(V, u32)> = Vec::new();
        for &(a, b) in new_arcs {
            let hub = self.rank_of[b as usize];
            for u in ancestors_of(dag, &[a]) {
                add_out.push((u, hub));
            }
            for v in descendants_of(dag, &[b]) {
                add_in.push((v, hub));
            }
        }
        merge_into_csr(&mut self.out_offsets, &mut self.out_hubs, add_out);
        merge_into_csr(&mut self.in_offsets, &mut self.in_hubs, add_in);
    }
}

/// Merge-intersection of two sorted rank arrays: whether they share an
/// element, plus the number of merge steps taken. This is the label tier's
/// entire query path, so it stays branch-light and allocation-free.
#[inline]
fn sorted_intersect(a: &[u32], b: &[u32]) -> (bool, usize) {
    let (mut i, mut j, mut steps) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        steps += 1;
        let (x, y) = (a[i], b[j]);
        if x == y {
            return (true, steps);
        }
        if x < y {
            i += 1;
        } else {
            j += 1;
        }
    }
    (false, steps)
}

/// Flattens per-component hub vectors into a CSR (offsets, values) pair.
fn flatten_labels(labels: &[Vec<u32>]) -> (Vec<u32>, Vec<u32>) {
    let mut offsets = Vec::with_capacity(labels.len() + 1);
    let total = labels.iter().map(Vec::len).sum();
    let mut hubs = Vec::with_capacity(total);
    offsets.push(0u32);
    for l in labels {
        hubs.extend_from_slice(l);
        offsets.push(hubs.len() as u32);
    }
    (offsets, hubs)
}

/// Rebuilds a label CSR with `adds` = `(component, hub rank)` entries
/// merged in (duplicates of existing entries are dropped, so the arrays
/// stay sorted and strictly deduplicated).
fn merge_into_csr(offsets: &mut Vec<u32>, hubs: &mut Vec<u32>, mut adds: Vec<(V, u32)>) {
    if adds.is_empty() {
        return;
    }
    adds.sort_unstable();
    adds.dedup();
    let k = offsets.len() - 1;
    let mut new_offsets = Vec::with_capacity(offsets.len());
    let mut new_hubs = Vec::with_capacity(hubs.len() + adds.len());
    new_offsets.push(0u32);
    let mut a = 0usize;
    for c in 0..k {
        let old = &hubs[offsets[c] as usize..offsets[c + 1] as usize];
        let mut i = 0usize;
        while a < adds.len() && adds[a].0 as usize == c {
            let hub = adds[a].1;
            while i < old.len() && old[i] < hub {
                new_hubs.push(old[i]);
                i += 1;
            }
            if i < old.len() && old[i] == hub {
                i += 1; // already present
            }
            new_hubs.push(hub);
            a += 1;
        }
        new_hubs.extend_from_slice(&old[i..]);
        new_offsets.push(new_hubs.len() as u32);
    }
    *offsets = new_offsets;
    *hubs = new_hubs;
}

/// The descendant-summary layer: answers `cu ⇝ cv` for component pairs
/// that survive the same-component and level prunes.
#[derive(Clone)]
pub(crate) enum SummaryLayer {
    /// Flat row-major bitset: row `c` holds one bit per component.
    Bitset { words_per_row: usize, rows: Vec<u64> },
    /// Pruned landmark (2-hop) hub labels — see [`LabelLayer`].
    Labels(LabelLayer),
    Intervals {
        labelings: Vec<IntervalLabeling>,
        /// Strict descendants, sorted, for components under the cap.
        exceptions: Vec<Option<Box<[V]>>>,
    },
}

/// Build-time knobs of the summary layer (a slice of
/// [`crate::index::IndexConfig`], so the layer does not depend on the
/// index module).
pub(crate) struct SummaryConfig {
    pub bitset_budget_bytes: usize,
    /// Byte ceiling for the 2-hop label tier; `0` disables it.
    pub label_budget_bytes: usize,
    /// Minimum DAG size (components) before the label tier is considered —
    /// small DAGs keep the bitset/interval behavior unchanged.
    pub label_min_components: usize,
    pub labelings: usize,
    pub exception_cap: usize,
    pub seed: u64,
}

impl SummaryLayer {
    /// Full build over a condensation DAG. Returns the layer plus its
    /// byte footprint and exception-list count (for stats).
    ///
    /// Tier selection: bitsets whenever they fit the bitset budget (small
    /// DAGs are unchanged); otherwise 2-hop hub labels when the DAG has at
    /// least `label_min_components` components and the pruned labeling
    /// fits the label budget; interval labels as the final fallback.
    pub fn build(dag: &DiGraph, order: &[V], cfg: &SummaryConfig) -> (SummaryLayer, usize, usize) {
        let k = dag.n();
        let words_per_row = k.div_ceil(64);
        let bitset_bytes = k.saturating_mul(words_per_row).saturating_mul(8);
        if bitset_bytes <= cfg.bitset_budget_bytes {
            let rows = build_bitsets(dag, order, words_per_row);
            return (SummaryLayer::Bitset { words_per_row, rows }, bitset_bytes, 0);
        }
        if k >= cfg.label_min_components && cfg.label_budget_bytes > 0 {
            if let Some(labels) = LabelLayer::build(dag, cfg.label_budget_bytes) {
                let bytes = labels.bytes();
                return (SummaryLayer::Labels(labels), bytes, 0);
            }
        }
        let labelings = build_labelings(dag, order, cfg.labelings.max(1), cfg.seed);
        let exceptions = build_exceptions(dag, order, cfg.exception_cap);
        let layer = SummaryLayer::Intervals { labelings, exceptions };
        let bytes = layer.bytes(k);
        let exc = layer.exception_count();
        (layer, bytes, exc)
    }

    /// Which representation this layer holds.
    pub fn tier(&self) -> SummaryTier {
        match self {
            SummaryLayer::Bitset { .. } => SummaryTier::Bitset,
            SummaryLayer::Labels(_) => SummaryTier::Labels,
            SummaryLayer::Intervals { .. } => SummaryTier::Intervals,
        }
    }

    /// Byte footprint of the layer (`k` = number of components).
    pub fn bytes(&self, k: usize) -> usize {
        match self {
            SummaryLayer::Bitset { words_per_row, .. } => k * words_per_row * 8,
            SummaryLayer::Labels(labels) => labels.bytes(),
            SummaryLayer::Intervals { labelings, exceptions } => {
                labelings.len() * k * 8
                    + exceptions
                        .iter()
                        .map(|e| e.as_ref().map_or(0, |s| s.len() * 4 + 16))
                        .sum::<usize>()
            }
        }
    }

    /// The label tier's hub-entry count (0 for the other tiers).
    pub fn label_entries(&self) -> usize {
        match self {
            SummaryLayer::Labels(labels) => labels.entries(),
            _ => 0,
        }
    }

    /// Number of components carrying an exact exception list.
    pub fn exception_count(&self) -> usize {
        match self {
            SummaryLayer::Bitset { .. } | SummaryLayer::Labels(_) => 0,
            SummaryLayer::Intervals { exceptions, .. } => {
                exceptions.iter().filter(|e| e.is_some()).count()
            }
        }
    }

    /// Summary verdict for `cu ⇝ cv` (`cu != cv`, level prune already
    /// passed). `dag` and `levels` back the interval tier's pruned DFS.
    pub fn comp_reaches(&self, cu: usize, cv: usize, dag: &DiGraph, levels: &[u32]) -> bool {
        self.comp_reaches_explained(cu, cv, dag, levels).0
    }

    /// [`Self::comp_reaches`] with provenance: the verdict, which tier of
    /// the summary decided it, and how many components the pruned DFS
    /// visited (0 on every short-circuit path). Backs the EXPLAIN API;
    /// the boolean query path calls through it, so the two can never
    /// disagree.
    pub fn comp_reaches_explained(
        &self,
        cu: usize,
        cv: usize,
        dag: &DiGraph,
        levels: &[u32],
    ) -> (bool, QueryTier, usize) {
        match self {
            SummaryLayer::Bitset { words_per_row, rows } => {
                let hit = rows[cu * words_per_row + cv / 64] >> (cv % 64) & 1 == 1;
                (hit, QueryTier::BitsetRow, 0)
            }
            SummaryLayer::Labels(labels) => {
                let (hit, steps) = labels.intersects(cu, cv);
                (hit, QueryTier::LabelIntersect, steps)
            }
            SummaryLayer::Intervals { labelings, exceptions } => {
                if let Some(desc) = &exceptions[cu] {
                    let hit = desc.binary_search(&(cv as V)).is_ok();
                    return (hit, QueryTier::ExceptionList, 0);
                }
                if !labelings.iter().all(|l| l.may_reach(cu, cv)) {
                    return (false, QueryTier::IntervalRefute, 0);
                }
                let (hit, visited) = pruned_dfs(cu, cv, dag, levels, labelings, exceptions);
                (hit, QueryTier::PrunedDfs, visited)
            }
        }
    }

    /// Partial invalidation after an arc **splice** (insertions only).
    /// `new_arcs` are the spliced arcs and `dag` the post-splice DAG;
    /// `affected` must hold every component whose descendant set changed
    /// — the ancestors (sources included) of the new arcs' sources —
    /// ordered children-first (descending new level), so every component
    /// is repaired after all of its affected out-neighbors.
    ///
    /// * Bitset tier: the affected rows are recomputed from their
    ///   (final) child rows; unaffected rows are untouched.
    /// * Label tier: exact hub-coverage extension over each new arc's
    ///   `anc × desc` region — see [`LabelLayer::splice`] (`affected` is
    ///   not needed; the arcs themselves drive the patch).
    /// * Interval tier: the affected intervals are *widened* over their
    ///   children (`low` down, `rank` up), which keeps nesting a
    ///   necessary condition for reachability while never touching
    ///   unaffected labels; affected exception lists are recomputed from
    ///   the child lists and dropped to `None` when they overflow the cap
    ///   (the pruned DFS then simply descends — exactness is preserved
    ///   because a present list is always recomputed, never stale).
    pub fn splice_arcs(
        &mut self,
        dag: &DiGraph,
        new_arcs: &[(V, V)],
        affected: &[V],
        exception_cap: usize,
    ) {
        if let SummaryLayer::Labels(labels) = self {
            labels.splice(dag, new_arcs);
            return;
        }
        self.recompute_affected(dag, affected, exception_cap);
    }

    /// Partial invalidation after arcs were **removed** (and possibly
    /// others added in the same repair). For bitsets the affected rows are
    /// recomputed from final children, which is exact under removal too;
    /// for intervals the widen-only pass stays *sound* because shrinking
    /// reachability makes an over-approximation strictly looser, never
    /// wrong. The 2-hop label tier has no such slack — its entries are
    /// exact reachability certificates, and a removed arc can falsify
    /// them — so it invalidates and relabels from scratch against the new
    /// DAG (still far cheaper than a full index rebuild: SCCs, the DAG,
    /// and levels are all kept). If the relabel overflows the label
    /// budget, the layer downgrades to the interval tier.
    pub fn unsplice_arcs(&mut self, dag: &DiGraph, affected: &[V], cfg: &SummaryConfig) {
        if matches!(self, SummaryLayer::Labels(_)) {
            if let Some(labels) = LabelLayer::build(dag, cfg.label_budget_bytes) {
                *self = SummaryLayer::Labels(labels);
                return;
            }
            // Relabel overflowed the budget (possible when the repair also
            // spliced latent arcs in): downgrade to the interval tier. An
            // index DAG is acyclic by construction, so the order exists;
            // the unbounded relabel is the (unreachable) sound fallback.
            *self = match pscc_apps::topological_order(dag) {
                Some(order) => SummaryLayer::Intervals {
                    labelings: build_labelings(dag, &order, cfg.labelings.max(1), cfg.seed),
                    exceptions: build_exceptions(dag, &order, cfg.exception_cap),
                },
                None => {
                    debug_assert!(false, "index DAG must stay acyclic");
                    match LabelLayer::build(dag, usize::MAX) {
                        Some(labels) => SummaryLayer::Labels(labels),
                        None => return,
                    }
                }
            };
            return;
        }
        self.recompute_affected(dag, affected, cfg.exception_cap);
    }

    /// The shared bitset/interval repair pass over `affected` (see
    /// [`Self::splice_arcs`]); the label tier never reaches it.
    fn recompute_affected(&mut self, dag: &DiGraph, affected: &[V], exception_cap: usize) {
        match self {
            SummaryLayer::Labels(_) => {
                debug_assert!(false, "label tier uses splice/relabel, not affected recompute");
            }
            SummaryLayer::Bitset { words_per_row, rows } => {
                let words = *words_per_row;
                for &c in affected {
                    let c = c as usize;
                    rows[c * words..(c + 1) * words].fill(0);
                    for &d in dag.out_neighbors(c as V) {
                        let d = d as usize;
                        or_row(rows, words, c, d);
                        rows[c * words + d / 64] |= 1u64 << (d % 64);
                    }
                }
            }
            SummaryLayer::Intervals { labelings, exceptions } => {
                for &c in affected {
                    let c = c as usize;
                    for l in labelings.iter_mut() {
                        for &d in dag.out_neighbors(c as V) {
                            let d = d as usize;
                            l.low[c] = l.low[c].min(l.low[d]);
                            l.rank[c] = l.rank[c].max(l.rank[d]);
                        }
                    }
                    if exceptions[c].is_some() {
                        exceptions[c] =
                            merge_child_exceptions(dag, exceptions, c as V, exception_cap);
                    }
                }
            }
        }
    }
}

/// Interval- and level-pruned DFS over the condensation DAG; the slow
/// path of the interval tier for queries every prune lets through.
/// Returns the verdict and the number of components visited — the "work
/// done" figure EXPLAIN reports for fallback-path queries.
fn pruned_dfs(
    cu: usize,
    cv: usize,
    dag: &DiGraph,
    levels: &[u32],
    labelings: &[IntervalLabeling],
    exceptions: &[Option<Box<[V]>>],
) -> (bool, usize) {
    let mut visited = std::collections::HashSet::new();
    let mut stack = vec![cu];
    visited.insert(cu);
    while let Some(c) = stack.pop() {
        for &d in dag.out_neighbors(c as V) {
            let d = d as usize;
            if d == cv {
                return (true, visited.len());
            }
            if levels[d] >= levels[cv] || !visited.insert(d) {
                continue;
            }
            if let Some(desc) = &exceptions[d] {
                // Exact list: membership decides this whole subtree.
                if desc.binary_search(&(cv as V)).is_ok() {
                    return (true, visited.len());
                }
                continue;
            }
            if labelings.iter().all(|l| l.may_reach(d, cv)) {
                stack.push(d);
            }
        }
    }
    (false, visited.len())
}

/// Full descendant bitsets, one row per component, built in reverse
/// topological order so every child row is final before it is merged.
fn build_bitsets(dag: &DiGraph, order: &[V], words_per_row: usize) -> Vec<u64> {
    let k = dag.n();
    let mut rows = vec![0u64; k * words_per_row];
    for &c in order.iter().rev() {
        let c = c as usize;
        for &d in dag.out_neighbors(c as V) {
            let d = d as usize;
            or_row(&mut rows, words_per_row, c, d);
            rows[c * words_per_row + d / 64] |= 1u64 << (d % 64);
        }
    }
    rows
}

/// `rows[dst] |= rows[src]` for the flat row-major bitset.
fn or_row(rows: &mut [u64], words: usize, dst: usize, src: usize) {
    debug_assert_ne!(dst, src);
    let (d0, s0) = (dst * words, src * words);
    if d0 < s0 {
        let (a, b) = rows.split_at_mut(s0);
        let (d, s) = (&mut a[d0..d0 + words], &b[..words]);
        for (dw, sw) in d.iter_mut().zip(s) {
            *dw |= *sw;
        }
    } else {
        let (a, b) = rows.split_at_mut(d0);
        let (s, d) = (&a[s0..s0 + words], &mut b[..words]);
        for (dw, sw) in d.iter_mut().zip(s) {
            *dw |= *sw;
        }
    }
}

/// `count` randomized GRAIL labelings. Each is a DFS over the DAG from its
/// source components with a per-labeling pseudo-random neighbour order;
/// `rank` is the post-order number, `low` the minimum rank seen in the
/// DFS-reachable set, computed in reverse topological order.
fn build_labelings(dag: &DiGraph, order: &[V], count: usize, seed: u64) -> Vec<IntervalLabeling> {
    (0..count)
        .map(|li| {
            let mut rng = SplitMix64::new(seed ^ (li as u64).wrapping_mul(0x9e37_79b9));
            let rank = random_postorder(dag, &mut rng);
            // low[c] = min(rank[c], min over out-neighbours of low[d]),
            // processed in reverse topological order so neighbours are done.
            let mut low = rank.clone();
            for &c in order.iter().rev() {
                let c = c as usize;
                for &d in dag.out_neighbors(c as V) {
                    low[c] = low[c].min(low[d as usize]);
                }
            }
            IntervalLabeling { low, rank }
        })
        .collect()
}

/// Post-order ranks of one randomized iterative DFS covering every
/// component (roots and neighbour lists visited in shuffled order).
fn random_postorder(dag: &DiGraph, rng: &mut SplitMix64) -> Vec<u32> {
    let k = dag.n();
    let mut rank = vec![u32::MAX; k];
    let mut visited = vec![false; k];
    let mut next_rank = 0u32;
    // Shuffled root order (roots = all components; non-sources are skipped
    // as already-visited when their turn comes).
    let mut roots: Vec<V> = (0..k as V).collect();
    shuffle(&mut roots, rng);
    // Explicit DFS frames: (component, shuffled out-neighbours, cursor).
    let mut stack: Vec<(V, Vec<V>, usize)> = Vec::new();
    let frame = |c: V, rng: &mut SplitMix64| {
        let mut ns: Vec<V> = dag.out_neighbors(c).to_vec();
        shuffle(&mut ns, rng);
        (c, ns, 0usize)
    };
    for &r in &roots {
        if visited[r as usize] {
            continue;
        }
        visited[r as usize] = true;
        stack.push(frame(r, rng));
        while let Some(top) = stack.len().checked_sub(1) {
            let advance = {
                let (_, ns, i) = &mut stack[top];
                if *i < ns.len() {
                    let d = ns[*i];
                    *i += 1;
                    Some(d)
                } else {
                    None
                }
            };
            match advance {
                Some(d) if !visited[d as usize] => {
                    visited[d as usize] = true;
                    stack.push(frame(d, rng));
                }
                Some(_) => {}
                None => {
                    // analyze: allow(panic): the None arm is only reachable with a frame on the stack
                    let (c, _, _) = stack.pop().expect("non-empty stack");
                    rank[c as usize] = next_rank;
                    next_rank += 1;
                }
            }
        }
    }
    debug_assert!(rank.iter().all(|&r| r != u32::MAX));
    rank
}

/// Fisher–Yates shuffle driven by the workspace PRNG.
fn shuffle(v: &mut [V], rng: &mut SplitMix64) {
    for i in (1..v.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
}

/// Exact strict-descendant lists for components with at most `cap`
/// descendants, built bottom-up in reverse topological order (a component
/// overflows if any child overflows or the merged set exceeds `cap`).
fn build_exceptions(dag: &DiGraph, order: &[V], cap: usize) -> Vec<Option<Box<[V]>>> {
    let k = dag.n();
    let mut out: Vec<Option<Box<[V]>>> = vec![None; k];
    if cap == 0 {
        return out;
    }
    for &c in order.iter().rev() {
        out[c as usize] = merge_child_exceptions(dag, &out, c, cap);
    }
    out
}

/// The exact strict-descendant list of `c` merged from its children's
/// (final) lists: `∪ {d} ∪ descendants(d)` over out-neighbors `d`; `None`
/// if any child overflowed or the union exceeds `cap`.
fn merge_child_exceptions(
    dag: &DiGraph,
    lists: &[Option<Box<[V]>>],
    c: V,
    cap: usize,
) -> Option<Box<[V]>> {
    if cap == 0 {
        return None;
    }
    let mut set: Vec<V> = Vec::new();
    for &d in dag.out_neighbors(c) {
        match &lists[d as usize] {
            Some(desc) if set.len() + desc.len() < 2 * cap + 2 => {
                set.push(d);
                set.extend_from_slice(desc);
            }
            _ => return None,
        }
    }
    set.sort_unstable();
    set.dedup();
    if set.len() <= cap {
        Some(set.into_boxed_slice())
    } else {
        None
    }
}

/// Ancestors of `sources` (sources included) by backward traversal —
/// exactly the components whose descendant summary an arc splice at those
/// sources invalidates. Call with the **new** (post-splice) DAG so chains
/// of spliced arcs are followed too.
pub(crate) fn ancestors_of(dag: &DiGraph, sources: &[V]) -> Vec<V> {
    let mut seen = vec![false; dag.n()];
    let mut out: Vec<V> = Vec::new();
    let mut stack: Vec<V> = Vec::new();
    for &s in sources {
        if !seen[s as usize] {
            seen[s as usize] = true;
            stack.push(s);
            out.push(s);
        }
    }
    while let Some(c) = stack.pop() {
        for &p in dag.in_neighbors(c) {
            if !seen[p as usize] {
                seen[p as usize] = true;
                stack.push(p);
                out.push(p);
            }
        }
    }
    out
}

/// Descendants of `sources` (sources included) by forward traversal — the
/// label tier's `label_in` patch region for a spliced arc.
pub(crate) fn descendants_of(dag: &DiGraph, sources: &[V]) -> Vec<V> {
    let mut seen = vec![false; dag.n()];
    let mut out: Vec<V> = Vec::new();
    let mut stack: Vec<V> = Vec::new();
    for &s in sources {
        if !seen[s as usize] {
            seen[s as usize] = true;
            stack.push(s);
            out.push(s);
        }
    }
    while let Some(c) = stack.pop() {
        for &d in dag.out_neighbors(c) {
            if !seen[d as usize] {
                seen[d as usize] = true;
                stack.push(d);
                out.push(d);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_apps::topological_order;
    use pscc_graph::generators::random::gnm_digraph;

    fn dag_of(edges: &[(V, V)], n: usize) -> DiGraph {
        DiGraph::from_edges(n, edges)
    }

    #[test]
    fn level_splice_matches_full_rebuild() {
        // A diamond with a long arm: 0 -> 1 -> 2 -> 3, 0 -> 3.
        let dag = dag_of(&[(0, 1), (1, 2), (2, 3), (0, 3)], 5);
        let order = topological_order(&dag).unwrap();
        let mut levels = LevelLayer::build(&dag, &order);
        // Splice 4 -> 0: levels of 0..3 all shift by one.
        let spliced = dag.with_delta(&[(4, 0)], &[]);
        levels.splice(&spliced, &[(4, 0)]);
        let want = LevelLayer::build(&spliced, &topological_order(&spliced).unwrap());
        assert_eq!(levels.levels, want.levels);
    }

    #[test]
    fn level_splice_downhill_arc_is_free() {
        let dag = dag_of(&[(0, 1), (1, 2)], 4);
        let order = topological_order(&dag).unwrap();
        let mut levels = LevelLayer::build(&dag, &order);
        let before = levels.levels.clone();
        // 0 -> 2 already points strictly downhill: no level moves.
        let spliced = dag.with_delta(&[(0, 2)], &[]);
        levels.splice(&spliced, &[(0, 2)]);
        assert_eq!(levels.levels, before);
    }

    #[test]
    fn scc_remap_merges_sizes() {
        let layer = SccLayer { comp_of: vec![0, 0, 1, 2, 3], sizes: vec![2, 1, 1, 1] };
        // Merge components 1 and 2 into one, renumber compactly.
        let merged = layer.remapped(&[0, 1, 1, 2], 3);
        assert_eq!(merged.comp_of, vec![0, 0, 1, 1, 2]);
        assert_eq!(merged.sizes, vec![2, 2, 1]);
    }

    /// One forcing config per summary tier, for the three-way test loops.
    fn tier_configs() -> [(SummaryTier, SummaryConfig); 3] {
        let base = |bitset, label| SummaryConfig {
            bitset_budget_bytes: bitset,
            label_budget_bytes: label,
            label_min_components: 0,
            labelings: 2,
            exception_cap: 4,
            seed: 7,
        };
        [
            (SummaryTier::Bitset, base(usize::MAX, 0)),
            (SummaryTier::Labels, base(0, usize::MAX)),
            (SummaryTier::Intervals, base(0, 0)),
        ]
    }

    /// A 40-node random DAG: random edges oriented low -> high.
    fn random_dag(seed: u64) -> DiGraph {
        let g = gnm_digraph(40, 120, seed);
        let arcs: Vec<(V, V)> =
            g.out_csr().edges().map(|(a, b)| if a < b { (a, b) } else { (b, a) }).collect();
        let arcs: Vec<(V, V)> = arcs.into_iter().filter(|&(a, b)| a != b).collect();
        dag_of(&arcs, 40)
    }

    /// The pruned 2-hop labeling must answer every pair exactly like the
    /// full descendant bitsets.
    #[test]
    fn label_build_matches_bitset_oracle() {
        for seed in 0..8u64 {
            let dag = random_dag(seed);
            let order = topological_order(&dag).unwrap();
            let labels = LabelLayer::build(&dag, usize::MAX).unwrap();
            let rows = build_bitsets(&dag, &order, 1);
            for (cu, row) in rows.iter().enumerate() {
                for cv in 0..40usize {
                    if cu == cv {
                        continue;
                    }
                    let want = row >> cv & 1 == 1;
                    assert_eq!(labels.intersects(cu, cv).0, want, "seed {seed} pair ({cu}, {cv})");
                }
            }
        }
    }

    /// An impossible budget must refuse the label tier instead of building
    /// a truncated (unsound) labeling.
    #[test]
    fn label_build_respects_budget() {
        let dag = random_dag(1);
        assert!(LabelLayer::build(&dag, 64).is_none());
    }

    /// Splicing arcs into a random DAG and patching in place must answer
    /// exactly like a from-scratch summary build, in all three tiers.
    #[test]
    fn summary_splice_matches_full_rebuild_all_tiers() {
        for seed in 0..6u64 {
            let dag = random_dag(seed);
            let order = topological_order(&dag).unwrap();
            // New forward arcs (low -> high keeps it acyclic).
            let new_arcs: Vec<(V, V)> = vec![(seed as V, 30 + seed as V), (2, 39)];
            let new_arcs: Vec<(V, V)> = new_arcs
                .into_iter()
                .filter(|&(a, b)| dag.out_neighbors(a).binary_search(&b).is_err())
                .collect();
            let spliced = dag.with_delta(&new_arcs, &[]);
            let sorder = topological_order(&spliced).unwrap();
            let mut levels = LevelLayer::build(&dag, &order);
            levels.splice(&spliced, &new_arcs);

            for (tier, cfg) in tier_configs() {
                let (mut summary, _, _) = SummaryLayer::build(&dag, &order, &cfg);
                assert_eq!(summary.tier(), tier, "seed {seed}: forcing config picked wrong tier");
                let sources: Vec<V> = new_arcs.iter().map(|&(s, _)| s).collect();
                let mut affected = ancestors_of(&spliced, &sources);
                affected.sort_unstable_by_key(|&c| std::cmp::Reverse(levels.levels[c as usize]));
                summary.splice_arcs(&spliced, &new_arcs, &affected, cfg.exception_cap);

                let (want, _, _) = SummaryLayer::build(&spliced, &sorder, &cfg);
                for cu in 0..40usize {
                    for cv in 0..40usize {
                        if cu == cv || levels.levels[cu] >= levels.levels[cv] {
                            continue;
                        }
                        assert_eq!(
                            summary.comp_reaches(cu, cv, &spliced, &levels.levels),
                            want.comp_reaches(cu, cv, &spliced, &levels.levels),
                            "seed {seed} tier {tier:?} pair ({cu}, {cv})"
                        );
                    }
                }
            }
        }
    }

    /// Removing arcs and running the unsplice repair must answer exactly
    /// like a from-scratch summary build, in all three tiers (the label
    /// tier relabels; the others recompute affected ancestors).
    #[test]
    fn summary_unsplice_matches_full_rebuild_all_tiers() {
        for seed in 0..6u64 {
            let dag = random_dag(seed);
            let order = topological_order(&dag).unwrap();
            let all: Vec<(V, V)> = dag.out_csr().edges().collect();
            if all.len() < 4 {
                continue;
            }
            let dead: Vec<(V, V)> = vec![all[seed as usize % all.len()], all[all.len() / 2]];
            let shrunk = dag.with_delta(&[], &dead);
            let sorder = topological_order(&shrunk).unwrap();
            let seeds: Vec<V> = dead.iter().map(|&(_, b)| b).collect();
            let mut levels = LevelLayer::build(&dag, &order);
            levels.unsplice(&shrunk, &seeds);

            for (tier, cfg) in tier_configs() {
                let (mut summary, _, _) = SummaryLayer::build(&dag, &order, &cfg);
                assert_eq!(summary.tier(), tier);
                let sources: Vec<V> = dead.iter().map(|&(s, _)| s).collect();
                let mut affected = ancestors_of(&dag, &sources);
                affected.sort_unstable_by_key(|&c| std::cmp::Reverse(levels.levels[c as usize]));
                summary.unsplice_arcs(&shrunk, &affected, &cfg);

                let (want, _, _) = SummaryLayer::build(&shrunk, &sorder, &cfg);
                for cu in 0..40usize {
                    for cv in 0..40usize {
                        if cu == cv || levels.levels[cu] >= levels.levels[cv] {
                            continue;
                        }
                        assert_eq!(
                            summary.comp_reaches(cu, cv, &shrunk, &levels.levels),
                            want.comp_reaches(cu, cv, &shrunk, &levels.levels),
                            "seed {seed} tier {tier:?} pair ({cu}, {cv})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn ancestors_of_includes_sources_and_stops_at_sinks() {
        let dag = dag_of(&[(0, 1), (1, 2), (3, 1)], 5);
        let mut anc = ancestors_of(&dag, &[1]);
        anc.sort_unstable();
        assert_eq!(anc, vec![0, 1, 3]);
        assert_eq!(ancestors_of(&dag, &[4]), vec![4]);
    }
}

//! The reachability index: SCC labels + condensation DAG + per-component
//! descendant summaries, assembled from composable layers (SCC labeling,
//! topological levels, descendant summary) that each support partial
//! invalidation.
//!
//! ## Query tiers
//!
//! [`Index::reaches`] answers `u ⇝ v` through a cascade of increasingly
//! expensive checks, stopping at the first decisive one:
//!
//! 1. **Same SCC** — `comp(u) == comp(v)` ⇒ reachable (and `u == v`
//!    trivially). O(1).
//! 2. **Level prune** — components carry longest-path topological levels;
//!    every DAG path strictly increases the level, so
//!    `level(cu) ≥ level(cv)` ⇒ unreachable. O(1).
//! 3. **Descendant summary** — depends on the DAG size (chosen at build
//!    time, see [`SummaryTier`]):
//!    * *Bitset tier* (small DAGs): one descendant bitset row per
//!      component; the answer is a single bit test. O(1).
//!    * *Label tier* (large DAGs whose pruned 2-hop labeling fits the
//!      label budget): sorted hub arrays per component, built by pruned
//!      landmark labeling over the condensation DAG; the answer is one
//!      merge-intersection of `label_out(cu)` and `label_in(cv)` — no
//!      DFS fallback, O(label length).
//!    * *Interval tier* (large DAGs past the label budget): GRAIL-style
//!      pruned-DFS interval
//!      labels (d independent randomized post-order labelings; reachable ⇒
//!      the target's interval nests inside the source's in *every*
//!      labeling), plus exact *exception lists* — components whose strict
//!      descendant set is small carry it verbatim, answering exactly.
//!      Queries that survive every prune fall back to an interval- and
//!      level-pruned DFS over the condensation DAG. O(log) typical,
//!      DAG-bounded worst case.
//!
//! ## Repair, not just rebuild
//!
//! The index is immutable after construction and all query paths take
//! `&self`, so batches can share it across threads freely. Deltas are
//! therefore applied by *producing a patched index* next to the live one:
//! besides the full [`Index::build`], the repair planner
//! ([`crate::planner`]) drives two incremental constructors —
//! `Index::splice_dag_arcs` (new condensation arcs, no component
//! changes) and `Index::recompute_region` (component merges confined to
//! a DAG region) — each of which reuses every layer a delta provably
//! cannot have touched.

use crate::explain::QueryTier;
use crate::layers::{
    ancestors_of, LevelLayer, SccLayer, SummaryConfig, SummaryLayer, SupportLayer,
};
use pscc_apps::{condense, topological_order, Condensation};
use pscc_core::{normalize_labels, parallel_scc, parallel_scc_induced, SccConfig};
use pscc_graph::{DiGraph, V};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

pub use crate::layers::SummaryTier;

/// Build-time configuration for an [`Index`].
#[derive(Clone, Debug)]
pub struct IndexConfig {
    /// Configuration of the underlying parallel SCC run.
    pub scc: SccConfig,
    /// Ceiling (in bytes) on the bitset tier; DAGs whose full descendant
    /// bitsets would exceed it use the label or interval tier instead.
    pub bitset_budget_bytes: usize,
    /// Ceiling (in bytes) on the pruned 2-hop label tier: when the bitset
    /// budget overflows, labels are built as long as their total footprint
    /// stays under this; past it (or at 0, which disables the tier) the
    /// interval tier takes over.
    pub label_budget_bytes: usize,
    /// Minimum DAG size (in components) before the label tier is
    /// considered, so small graphs keep the exact bitset/interval
    /// behavior unchanged.
    pub label_min_components: usize,
    /// Number of independent interval labelings in the interval tier
    /// (more labelings prune more, cost more memory).
    pub labelings: usize,
    /// Components with at most this many strict descendants store them as
    /// an exact exception list in the interval tier (0 disables).
    pub exception_cap: usize,
    /// Seed for the randomized labeling orders.
    pub seed: u64,
    /// Cost bounds of the delta repair planner (see
    /// [`crate::planner::RepairBudget`]).
    pub repair: crate::planner::RepairBudget,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            scc: SccConfig::default(),
            bitset_budget_bytes: 64 << 20,
            label_budget_bytes: 64 << 20,
            label_min_components: 4096,
            labelings: 2,
            exception_cap: 16,
            seed: 0x5cc_1dec5,
            repair: crate::planner::RepairBudget::default(),
        }
    }
}

impl IndexConfig {
    fn summary(&self) -> SummaryConfig {
        SummaryConfig {
            bitset_budget_bytes: self.bitset_budget_bytes,
            label_budget_bytes: self.label_budget_bytes,
            label_min_components: self.label_min_components,
            labelings: self.labelings,
            exception_cap: self.exception_cap,
            seed: self.seed,
        }
    }
}

/// How an [`Index`] came to be — the "which repair tier ran" record of
/// the delta-application machinery in [`crate::catalog::Catalog`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BuildCause {
    /// Built for a freshly registered graph (or on first query).
    #[default]
    Fresh,
    /// Patched from a live index by splicing new condensation arcs
    /// (levels and summary repaired for affected ancestors only).
    DagSplice,
    /// Patched from a live index by re-running SCC on the affected DAG
    /// region and contracting the old condensation through the merge map.
    RegionRecompute,
    /// Patched from a live index by removing condensation arcs whose last
    /// direct-edge support a deletion took away (levels relaxed, summary
    /// narrowed for affected ancestors only).
    ArcUnsplice,
    /// Patched from a live index by re-running SCC on the members of the
    /// components an intra-SCC deletion may have split, splicing the
    /// resulting sub-components back into the DAG.
    SccSplit,
    /// Rebuilt from scratch because an applied [`crate::delta::Delta`]
    /// was priced out of every localized tier (a mixed
    /// structural-deletion + insertion delta, or a repair past the
    /// planner's budget).
    DeltaRebuild,
}

/// Build-cost breakdown and shape of one [`Index`] (the "index-build
/// breakdown" of the example server's report).
#[derive(Clone, Debug, Default)]
pub struct IndexStats {
    /// Seconds in the parallel SCC run (of the lineage's last full build).
    pub scc_seconds: f64,
    /// Seconds contracting into the condensation DAG (last full build).
    pub condense_seconds: f64,
    /// Seconds computing topological levels (last assembly).
    pub levels_seconds: f64,
    /// Seconds building the descendant summary (last assembly).
    pub summary_seconds: f64,
    /// Number of strongly connected components.
    pub num_components: usize,
    /// Arcs in the condensation DAG.
    pub dag_arcs: usize,
    /// Bytes held by the descendant summary.
    pub summary_bytes: usize,
    /// Components carrying an exact exception list (interval tier only).
    pub exception_components: usize,
    /// Hub entries across both label sides (label tier only, else 0);
    /// `summary_bytes` is the byte form of the same footprint.
    pub label_entries: usize,
    /// How this index came to be (fresh build, incremental repair tier,
    /// or delta-forced rebuild).
    pub built_by: BuildCause,
    /// Deltas this index lineage absorbed *without* any repair: every
    /// edge stayed inside one SCC or joined an already-reachable
    /// component pair, so all query answers were provably unchanged.
    pub absorbed_deltas: u64,
    /// Deltas repaired by splicing condensation arcs
    /// ([`BuildCause::DagSplice`]) in this index's lineage.
    pub dag_splices: u64,
    /// Deltas repaired by a region SCC recompute
    /// ([`BuildCause::RegionRecompute`]) in this index's lineage.
    pub region_recomputes: u64,
    /// Deltas repaired by removing dead condensation arcs
    /// ([`BuildCause::ArcUnsplice`]) in this index's lineage.
    pub arc_unsplices: u64,
    /// Deltas repaired by an SCC-split check over the affected components
    /// ([`BuildCause::SccSplit`]) in this index's lineage.
    pub scc_splits: u64,
    /// Distinct cross-component pairs in the arc-support table — the
    /// certificate behind the deletion tiers (0 when the table is
    /// untracked, e.g. for an index built from a bare condensation).
    pub supported_pairs: usize,
    /// Supported pairs currently absent from the DAG: insertions absorbed
    /// without a repair, to be spliced in by the next structural removal.
    pub latent_arcs: usize,
    /// Total seconds spent inside incremental repairs across the lineage
    /// (splices + region recomputes + unsplices + splits; full rebuilds
    /// reset the lineage).
    pub repair_seconds: f64,
}

impl IndexStats {
    /// Total seconds spent building this index (SCC + condensation +
    /// levels + summary) — the figure the bench runner and the example
    /// server report.
    pub fn total_build_seconds(&self) -> f64 {
        self.scc_seconds + self.condense_seconds + self.levels_seconds + self.summary_seconds
    }

    /// Mean hub-array length of the label tier (`label_entries` spread
    /// over the `2k` per-component arrays); 0 for the other tiers.
    pub fn mean_label_len(&self) -> f64 {
        if self.label_entries == 0 || self.num_components == 0 {
            0.0
        } else {
            self.label_entries as f64 / (2.0 * self.num_components as f64)
        }
    }
}

/// An immutable reachability index over one digraph.
///
/// "Immutable" covers everything queries read; two bookkeeping fields are
/// interior-mutable because kept indexes are shared as `Arc<Index>`: the
/// absorbed-delta counter and the arc-support table (only the catalog's
/// update-lock-serialized writers touch the latter — queries never do).
pub struct Index {
    scc: SccLayer,
    levels: LevelLayer,
    dag: DiGraph,
    summary: SummaryLayer,
    stats: IndexStats,
    /// Deltas absorbed without a repair (see [`IndexStats::absorbed_deltas`]).
    absorbed: AtomicU64,
    /// Direct-edge multiplicities per cross-component pair plus latent
    /// pairs — the deletion planner's certificate. `None` when the graph
    /// was never seen (an index from a bare [`Condensation`]): deletions
    /// then fall back to a full rebuild.
    support: Mutex<Option<SupportLayer>>,
}

impl Index {
    /// Builds an index for `g` with default configuration.
    pub fn build(g: &DiGraph) -> Index {
        Self::build_with_config(g, &IndexConfig::default())
    }

    /// Builds an index for `g`, running SCC + condensation + summaries.
    pub fn build_with_config(g: &DiGraph, cfg: &IndexConfig) -> Index {
        let t = Instant::now();
        let scc = parallel_scc(g, &cfg.scc);
        let scc_seconds = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let cond = condense(g, &scc.labels);
        let condense_seconds = t.elapsed().as_secs_f64();

        let mut index = Self::from_condensation(cond, cfg);
        index.stats.scc_seconds = scc_seconds;
        index.stats.condense_seconds = condense_seconds;
        // The graph is in hand, so the deletion planner's certificate can
        // be built: direct-edge multiplicities per condensation arc. A
        // fresh condensation has every supported pair as a real arc.
        let support = SupportLayer::build(g, &index.scc.comp_of);
        index.support = Mutex::new(Some(support));
        index
    }

    /// Builds an index from an existing condensation (skips the SCC run;
    /// useful when labels were computed elsewhere). Such an index never
    /// sees the graph, so it carries no arc-support table — deltas with
    /// deletions against it always take the full-rebuild path.
    pub fn from_condensation(cond: Condensation, cfg: &IndexConfig) -> Index {
        let Condensation { comp_of, dag, sizes } = cond;
        Self::assemble(SccLayer { comp_of, sizes }, dag, cfg, IndexStats::default())
    }

    /// Assembles an index from an SCC layer and its condensation DAG:
    /// computes the topological order once, then levels and the summary.
    /// `base` carries lineage fields (SCC/condense timings, repair
    /// counters, build cause) from the caller.
    fn assemble(scc: SccLayer, dag: DiGraph, cfg: &IndexConfig, base: IndexStats) -> Index {
        let t = Instant::now();
        // analyze: allow(panic): the dag argument is always a freshly condensed graph
        let order = topological_order(&dag).expect("condensation must be a DAG");
        let levels = LevelLayer::build(&dag, &order);
        let levels_seconds = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let (summary, summary_bytes, exception_components) =
            SummaryLayer::build(&dag, &order, &cfg.summary());
        let summary_seconds = t.elapsed().as_secs_f64();
        if summary.tier() == SummaryTier::Labels {
            // Build-time label telemetry: footprint gauges plus the
            // construction-cost histogram the bench gates on.
            pscc_telemetry::gauge("pscc_label_bytes").set(summary_bytes as i64);
            pscc_telemetry::gauge("pscc_label_entries").set(summary.label_entries() as i64);
            pscc_telemetry::histogram("pscc_label_build_nanos")
                .record(std::time::Duration::from_secs_f64(summary_seconds));
        }

        let stats = IndexStats {
            levels_seconds,
            summary_seconds,
            num_components: scc.sizes.len(),
            dag_arcs: dag.m(),
            summary_bytes,
            exception_components,
            label_entries: summary.label_entries(),
            ..base
        };
        Index {
            scc,
            levels,
            dag,
            summary,
            stats,
            absorbed: AtomicU64::new(0),
            support: Mutex::new(None),
        }
    }

    // ---- Arc-support bookkeeping ----------------------------------------

    /// Read access to the arc-support table for the repair planner.
    pub(crate) fn support_table(&self) -> std::sync::MutexGuard<'_, Option<SupportLayer>> {
        self.support.lock().expect("support lock")
    }

    fn support_clone(&self) -> Option<SupportLayer> {
        self.support.lock().expect("support lock").clone()
    }

    /// True if `a → b` is an arc of the index's condensation DAG.
    fn dag_has_arc(dag: &DiGraph, a: u32, b: u32) -> bool {
        dag.out_neighbors(a).binary_search(&b).is_ok()
    }

    /// Applies one delta's effective edges to a support table whose ids
    /// match `comp_of`, against `dag` (the DAG *after* this repair — a
    /// newly supported pair absent from it becomes latent).
    fn patch_support(
        support: &mut SupportLayer,
        comp_of: &[u32],
        dag: &DiGraph,
        ins: &[(V, V)],
        del: &[(V, V)],
    ) {
        for &(u, v) in del {
            let (a, b) = (comp_of[u as usize], comp_of[v as usize]);
            if a != b {
                support.record_delete((a, b));
            }
        }
        for &(u, v) in ins {
            let (a, b) = (comp_of[u as usize], comp_of[v as usize]);
            if a != b {
                support.record_insert((a, b), Self::dag_has_arc(dag, a, b));
            }
        }
    }

    // ---- Incremental repair constructors --------------------------------

    /// Tier-1 repair: splice new condensation arcs (old component id
    /// endpoints) into the DAG. Sound **only** when the planner proved the
    /// arcs cannot create a cycle among components — then the SCC layer is
    /// untouched, levels are relaxed from the new arcs, and the summary is
    /// repaired for the affected ancestors only (see the `layers`
    /// module). `ins`/`del` are the delta's effective edges, used solely
    /// to keep the arc-support table in lockstep (any deletions riding
    /// along were proven metadata-only by the planner).
    pub(crate) fn splice_dag_arcs(
        &self,
        arcs: &[(u32, u32)],
        ins: &[(V, V)],
        del: &[(V, V)],
        cfg: &IndexConfig,
    ) -> Index {
        let t = Instant::now();
        let mut arcs: Vec<(V, V)> = arcs.to_vec();
        pscc_graph::dedup_edges(&mut arcs);
        let dag = self.dag.with_delta(&arcs, &[]);
        let mut levels = self.levels.clone();
        levels.splice(&dag, &arcs);

        // Descendant sets grew exactly for ancestors (in the new DAG) of
        // the spliced arcs' sources; repair children-first.
        let mut sources: Vec<V> = arcs.iter().map(|&(s, _)| s).collect();
        sources.sort_unstable();
        sources.dedup();
        let mut affected = ancestors_of(&dag, &sources);
        affected.sort_unstable_by_key(|&c| std::cmp::Reverse(levels.levels[c as usize]));
        let mut summary = self.summary.clone();
        summary.splice_arcs(&dag, &arcs, &affected, cfg.exception_cap);

        let mut support = self.support_clone();
        if let Some(sup) = support.as_mut() {
            Self::patch_support(sup, &self.scc.comp_of, &dag, ins, del);
        }

        let mut stats = self.stats.clone();
        stats.dag_arcs = dag.m();
        stats.summary_bytes = summary.bytes(dag.n());
        stats.exception_components = summary.exception_count();
        stats.label_entries = summary.label_entries();
        stats.built_by = BuildCause::DagSplice;
        stats.dag_splices += 1;
        stats.repair_seconds += t.elapsed().as_secs_f64();
        Index {
            scc: self.scc.clone(),
            levels,
            dag,
            summary,
            stats,
            absorbed: AtomicU64::new(self.absorbed.load(Ordering::Relaxed)),
            support: Mutex::new(support),
        }
    }

    /// Tier-2 repair: collapse the SCCs a cycle-forming delta created by
    /// re-running the SCC algorithm on the **induced affected region** of
    /// the condensation DAG (old component ids; `region` must be closed
    /// over every possible merge — the planner's `t ⇝ C ⇝ s` cone), then
    /// contract the *old DAG* (never the graph) through the merge map and
    /// reassemble levels + summary.
    pub(crate) fn recompute_region(
        &self,
        region: &[u32],
        arcs: &[(u32, u32)],
        ins: &[(V, V)],
        del: &[(V, V)],
        cfg: &IndexConfig,
    ) -> Index {
        let t = Instant::now();
        let k_old = self.num_components();
        let mut in_region = vec![false; k_old];
        let mut region_pos = vec![usize::MAX; k_old];
        for (i, &c) in region.iter().enumerate() {
            in_region[c as usize] = true;
            region_pos[c as usize] = i;
        }
        // Sub-SCC over the region plus every new arc contained in it (the
        // cycle-forming ones are, by the region's closure; pure splice
        // arcs that happen to fall inside are harmless extra arcs).
        let inner: Vec<(V, V)> = arcs
            .iter()
            .copied()
            .filter(|&(s, t)| in_region[s as usize] && in_region[t as usize])
            .collect();
        let labels = parallel_scc_induced(&self.dag, region, &inner, &cfg.scc);
        let groups = normalize_labels(&labels);

        // Old component id -> new component id, numbered by ascending old
        // id so the remap is deterministic.
        let num_groups = groups.iter().map(|&g| g as usize + 1).max().unwrap_or(0);
        let mut group_new = vec![u32::MAX; num_groups];
        let mut map = vec![u32::MAX; k_old];
        let mut next = 0u32;
        for (c, slot) in map.iter_mut().enumerate() {
            if in_region[c] {
                let g = groups[region_pos[c]] as usize;
                if group_new[g] == u32::MAX {
                    group_new[g] = next;
                    next += 1;
                }
                *slot = group_new[g];
            } else {
                *slot = next;
                next += 1;
            }
        }
        let k_new = next as usize;

        let scc = self.scc.remapped(&map, k_new);
        // New condensation arcs: old DAG arcs + the delta's arcs,
        // contracted through the merge map (self-loops vanish, duplicates
        // are dropped by the CSR builder).
        let new_arcs: Vec<(V, V)> = self
            .dag
            .out_csr()
            .edges()
            .chain(arcs.iter().copied())
            .map(|(a, b)| (map[a as usize], map[b as usize]))
            .filter(|&(a, b)| a != b)
            .collect();
        let dag = DiGraph::from_edges(k_new, &new_arcs);

        // The support table follows the merge map (multiplicities of
        // merged pairs sum; merged-away pairs became intra-component);
        // then the delta's own edges land with the *new* component ids.
        let support = self.support_clone().map(|s| {
            let mut sup = s.remapped(&map, &dag);
            Self::patch_support(&mut sup, &scc.comp_of, &dag, ins, del);
            sup
        });

        let mut base = self.stats.clone();
        base.built_by = BuildCause::RegionRecompute;
        base.region_recomputes += 1;
        let mut index = Self::assemble(scc, dag, cfg, base);
        index.stats.repair_seconds += t.elapsed().as_secs_f64();
        index.absorbed = AtomicU64::new(self.absorbed.load(Ordering::Relaxed));
        index.support = Mutex::new(support);
        index
    }

    /// Tier-3 repair (deletions): remove condensation arcs whose last
    /// direct-edge support the delta deleted. Sound **only** when the
    /// planner proved every structural deletion is such a dead arc (no
    /// intra-SCC deletion, so the SCC layer is untouched). Before the
    /// arcs go, every **latent** pair is spliced into the DAG — a latent
    /// pair's reachability was witnessed by DAG paths that may run
    /// through exactly the arcs being removed. Levels are then relaxed
    /// exactly from the changed arcs and the summary is repaired for the
    /// affected ancestors only: ancestors (old DAG) of the dead arcs'
    /// sources whose descendant sets shrank, plus ancestors (new DAG) of
    /// the latent arcs' sources whose descendant sets grew.
    pub(crate) fn unsplice_dag_arcs(
        &self,
        dead: &[(u32, u32)],
        del: &[(V, V)],
        cfg: &IndexConfig,
    ) -> Index {
        let t = Instant::now();
        // analyze: allow(panic): the planner only emits Unsplice when support exists
        let mut support = self.support_clone().expect("unsplice is planned from a support table");
        for &(u, v) in del {
            let (a, b) = (self.comp(u), self.comp(v));
            if a != b {
                support.record_delete((a, b));
            }
        }
        // Dead pairs left the latent set above (if they were latent they
        // would have been metadata-only), so the drain yields exactly the
        // surviving absorbed pairs.
        let latent: Vec<(V, V)> = support.drain_latent();
        let mut dead: Vec<(V, V)> = dead.to_vec();
        pscc_graph::dedup_edges(&mut dead);
        let dag = self.dag.with_delta(&latent, &dead);

        let mut levels = self.levels.clone();
        let mut seeds: Vec<V> = dead.iter().chain(&latent).map(|&(_, b)| b).collect();
        seeds.sort_unstable();
        seeds.dedup();
        levels.unsplice(&dag, &seeds);

        let mut affected =
            ancestors_of(&self.dag, &dead.iter().map(|&(s, _)| s).collect::<Vec<_>>());
        affected.extend(ancestors_of(&dag, &latent.iter().map(|&(s, _)| s).collect::<Vec<_>>()));
        affected.sort_unstable();
        affected.dedup();
        affected.sort_unstable_by_key(|&c| std::cmp::Reverse(levels.levels[c as usize]));
        let mut summary = self.summary.clone();
        // Bitset/interval tiers repair the affected ancestors in place;
        // the label tier invalidates and relabels against the new DAG
        // (exact certificates cannot be narrowed locally) — see
        // `SummaryLayer::unsplice_arcs`.
        summary.unsplice_arcs(&dag, &affected, &cfg.summary());

        let mut stats = self.stats.clone();
        stats.dag_arcs = dag.m();
        stats.summary_bytes = summary.bytes(dag.n());
        stats.exception_components = summary.exception_count();
        stats.label_entries = summary.label_entries();
        stats.built_by = BuildCause::ArcUnsplice;
        stats.arc_unsplices += 1;
        stats.repair_seconds += t.elapsed().as_secs_f64();
        Index {
            scc: self.scc.clone(),
            levels,
            dag,
            summary,
            stats,
            absorbed: AtomicU64::new(self.absorbed.load(Ordering::Relaxed)),
            support: Mutex::new(Some(support)),
        }
    }

    /// Tier-4 repair (deletions): an intra-SCC deletion may have split
    /// its component — re-run SCC on **only that component's members**
    /// over `merged` (the post-deletion graph) and splice the resulting
    /// sub-components back into the DAG. `comps` are the components with
    /// an intra-SCC deletion; `dead` are condensation arcs the same delta
    /// killed (their pairs' support hit zero); `del` is the full
    /// effective deletion list (the plan admits no insertions).
    ///
    /// Returns `None` when no component actually split and no arc died —
    /// the reachability relation is then provably unchanged and the
    /// caller keeps the live index (support decrements applied through
    /// [`Index::note_absorbed`]).
    ///
    /// Arcs incident to a split component are re-derived (with support
    /// counts) from the members' adjacency in `merged` — a boundary scan
    /// bounded by the component's volume, never a whole-graph traversal;
    /// all other arcs carry over from the old DAG, minus the dead ones,
    /// plus every latent pair (drained for the same witness reason as in
    /// the unsplice tier). Levels and summary are reassembled over the
    /// patched condensation.
    pub(crate) fn split_sccs(
        &self,
        merged: &DiGraph,
        comps: &[u32],
        dead: &[(u32, u32)],
        del: &[(V, V)],
        cfg: &IndexConfig,
    ) -> Option<Index> {
        let t = Instant::now();
        let k_old = self.num_components();
        let mut split_pos = vec![usize::MAX; k_old];
        for (i, &c) in comps.iter().enumerate() {
            split_pos[c as usize] = i;
        }
        // Members per split component, in ascending vertex order (one
        // O(n) label scan — linear in vertices, far from a rebuild's
        // SCC + summary cost over the whole graph).
        let mut members: Vec<Vec<V>> = vec![Vec::new(); comps.len()];
        for (v, &c) in self.scc.comp_of.iter().enumerate() {
            if split_pos[c as usize] != usize::MAX {
                members[split_pos[c as usize]].push(v as V);
            }
        }
        // Sub-SCC per component over the post-deletion graph; labels
        // normalized to first-occurrence order for determinism.
        let groups: Vec<Vec<u32>> = members
            .iter()
            .map(|m| normalize_labels(&parallel_scc_induced(merged, m, &[], &cfg.scc)))
            .collect();
        let group_counts: Vec<usize> =
            groups.iter().map(|g| g.iter().map(|&x| x as usize + 1).max().unwrap_or(0)).collect();
        if group_counts.iter().all(|&c| c <= 1) && dead.is_empty() {
            return None; // every component held together: metadata only
        }

        // Renumber: old ids in order, split components expanding to their
        // group count (deterministic: groups are first-occurrence over
        // ascending member vertex ids).
        let mut map_whole = vec![u32::MAX; k_old]; // non-split comps only
        let mut group_base = vec![u32::MAX; comps.len()];
        let mut next = 0u32;
        for c in 0..k_old {
            match split_pos[c] {
                usize::MAX => {
                    map_whole[c] = next;
                    next += 1;
                }
                i => {
                    group_base[i] = next;
                    next += group_counts[i] as u32;
                }
            }
        }
        let k_new = next as usize;

        let mut comp_of = vec![u32::MAX; self.n()];
        for (v, &c) in self.scc.comp_of.iter().enumerate() {
            if split_pos[c as usize] == usize::MAX {
                comp_of[v] = map_whole[c as usize];
            }
        }
        for (i, m) in members.iter().enumerate() {
            for (j, &v) in m.iter().enumerate() {
                comp_of[v as usize] = group_base[i] + groups[i][j];
            }
        }
        let mut sizes = vec![0usize; k_new];
        for &c in &comp_of {
            sizes[c as usize] += 1;
        }
        let scc = SccLayer { comp_of, sizes };

        // New condensation arcs. Kept: old arcs not incident to a split
        // component and not dead. Re-derived (with support counts): every
        // merged-graph edge incident to a split component's members — the
        // out scan covers edges leaving members, the in scan edges
        // arriving from non-split components (member-to-member edges are
        // some member's out edge, counted exactly once).
        let dead_set: std::collections::BTreeSet<(u32, u32)> = dead.iter().copied().collect();
        let is_split = |c: u32| split_pos[c as usize] != usize::MAX;
        let mut arcs: Vec<(V, V)> = self
            .dag
            .out_csr()
            .edges()
            .filter(|&(a, b)| !is_split(a) && !is_split(b) && !dead_set.contains(&(a, b)))
            .map(|(a, b)| (map_whole[a as usize], map_whole[b as usize]))
            .collect();
        let mut boundary: std::collections::HashMap<(u32, u32), u64> =
            std::collections::HashMap::new();
        for m in &members {
            for &u in m {
                let cu = scc.comp_of[u as usize];
                for &w in merged.out_neighbors(u) {
                    let cw = scc.comp_of[w as usize];
                    if cu != cw {
                        *boundary.entry((cu, cw)).or_insert(0) += 1;
                    }
                }
                for &w in merged.in_neighbors(u) {
                    if !is_split(self.scc.comp_of[w as usize]) {
                        let cw = scc.comp_of[w as usize];
                        if cw != cu {
                            *boundary.entry((cw, cu)).or_insert(0) += 1;
                        }
                    }
                }
            }
        }
        arcs.extend(boundary.keys().copied());

        // Support table: kept entries remapped with the delta's
        // decrements applied; entries touching a split component replaced
        // by the boundary recount (ground truth over `merged`); latent
        // pairs all become arcs.
        let support = self.support_clone().map(|old| {
            let mut decrements: std::collections::HashMap<(u32, u32), u64> =
                std::collections::HashMap::new();
            for &(u, v) in del {
                let pair = (self.comp(u), self.comp(v));
                if pair.0 != pair.1 {
                    *decrements.entry(pair).or_insert(0) += 1;
                }
            }
            let mut sup = SupportLayer::default();
            for ((a, b), count) in old.entries() {
                if !is_split(a) && !is_split(b) && !dead_set.contains(&(a, b)) {
                    let count = count - decrements.get(&(a, b)).copied().unwrap_or(0);
                    if count == 0 {
                        // A pair dying outside `dead_arcs` must have been
                        // latent (the planner classified it metadata-only
                        // — the DAG witnesses it without the arc): it
                        // simply leaves the table, nothing to unsplice.
                        debug_assert!(old.is_latent((a, b)), "a dying kept pair must be latent");
                        continue;
                    }
                    let pair = (map_whole[a as usize], map_whole[b as usize]);
                    sup.set_arc_support(pair, count);
                    if old.is_latent((a, b)) {
                        arcs.push(pair); // drained latent pair becomes an arc
                    }
                }
            }
            for (&pair, &count) in &boundary {
                sup.set_arc_support(pair, count);
            }
            sup
        });
        let dag = DiGraph::from_edges(k_new, &arcs);

        let mut base = self.stats.clone();
        base.built_by = BuildCause::SccSplit;
        base.scc_splits += 1;
        let mut index = Self::assemble(scc, dag, cfg, base);
        index.stats.repair_seconds += t.elapsed().as_secs_f64();
        index.absorbed = AtomicU64::new(self.absorbed.load(Ordering::Relaxed));
        index.support = Mutex::new(support);
        Some(index)
    }

    /// Stamps the build cause (the catalog marks delta-forced rebuilds).
    pub(crate) fn set_built_by(&mut self, cause: BuildCause) {
        self.stats.built_by = cause;
    }

    /// Records one absorbed delta: the index is kept because every
    /// effective change provably preserves the reachability relation —
    /// but the arc-support table still moves (inserted cross edges add
    /// support or latent pairs, metadata-only deletions decrement it).
    pub(crate) fn note_absorbed(&self, ins: &[(V, V)], del: &[(V, V)]) {
        self.absorbed.fetch_add(1, Ordering::Relaxed);
        let mut guard = self.support.lock().expect("support lock");
        if let Some(sup) = guard.as_mut() {
            Self::patch_support(sup, &self.scc.comp_of, &self.dag, ins, del);
        }
    }

    /// Number of vertices of the indexed graph.
    pub fn n(&self) -> usize {
        self.scc.comp_of.len()
    }

    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.scc.sizes.len()
    }

    /// Component id of vertex `u` (ids are `0..num_components`).
    #[inline]
    pub fn comp(&self, u: V) -> u32 {
        self.scc.comp_of[u as usize]
    }

    /// Size (vertex count) of component `c`.
    pub fn component_size(&self, c: u32) -> usize {
        self.scc.sizes[c as usize]
    }

    /// Topological level of component `c` (every DAG arc strictly
    /// increases the level).
    #[inline]
    pub fn level(&self, c: u32) -> u32 {
        self.levels.levels[c as usize]
    }

    /// The condensation DAG.
    pub fn dag(&self) -> &DiGraph {
        &self.dag
    }

    /// Which summary representation this index built.
    pub fn tier(&self) -> SummaryTier {
        self.summary.tier()
    }

    /// Build-cost and shape statistics (a snapshot: `absorbed_deltas`
    /// and the arc-support figures advance as the catalog applies deltas
    /// to this index).
    pub fn stats(&self) -> IndexStats {
        let mut s = self.stats.clone();
        s.absorbed_deltas = self.absorbed.load(Ordering::Relaxed);
        if let Some(sup) = self.support.lock().expect("support lock").as_ref() {
            s.supported_pairs = sup.supported_pairs();
            s.latent_arcs = sup.latent_arcs();
        }
        s
    }

    /// True if a directed path `u ⇝ v` exists (trivially true for
    /// `u == v`).
    pub fn reaches(&self, u: V, v: V) -> bool {
        let (cu, cv) = (self.comp(u) as usize, self.comp(v) as usize);
        self.comp_reaches(cu, cv)
    }

    /// Component-level reachability `cu ⇝ cv` on the condensation DAG.
    pub fn comp_reaches(&self, cu: usize, cv: usize) -> bool {
        if cu == cv {
            return true;
        }
        if self.levels.levels[cu] >= self.levels.levels[cv] {
            return false;
        }
        self.summary.comp_reaches(cu, cv, &self.dag, &self.levels.levels)
    }

    /// [`Self::comp_reaches`] with provenance: the verdict, the
    /// [`QueryTier`] that decided it, and the components visited when the
    /// pruned-DFS fallback ran (0 otherwise).
    pub fn comp_reaches_explained(&self, cu: usize, cv: usize) -> (bool, QueryTier, usize) {
        if cu == cv {
            return (true, QueryTier::SameComponent, 0);
        }
        if self.levels.levels[cu] >= self.levels.levels[cv] {
            return (false, QueryTier::LevelPrune, 0);
        }
        self.summary.comp_reaches_explained(cu, cv, &self.dag, &self.levels.levels)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};

    /// Brute-force vertex-level reachability oracle.
    fn bfs_reaches(g: &DiGraph, u: V, v: V) -> bool {
        let mut seen = vec![false; g.n()];
        let mut stack = vec![u];
        seen[u as usize] = true;
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            for &w in g.out_neighbors(x) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    fn check_all_pairs(g: &DiGraph, cfg: &IndexConfig) {
        let idx = Index::build_with_config(g, cfg);
        for u in 0..g.n() as V {
            for v in 0..g.n() as V {
                assert_eq!(
                    idx.reaches(u, v),
                    bfs_reaches(g, u, v),
                    "({u}, {v}) tier {:?}",
                    idx.tier()
                );
            }
        }
    }

    fn tiny_budget() -> IndexConfig {
        // Forces the interval tier even on tiny DAGs (the label tier needs
        // an explicit opt-in via `label_min_components`, so it stays off).
        IndexConfig { bitset_budget_bytes: 0, ..IndexConfig::default() }
    }

    fn label_forcing() -> IndexConfig {
        // Forces the 2-hop label tier even on tiny DAGs.
        IndexConfig { bitset_budget_bytes: 0, label_min_components: 0, ..IndexConfig::default() }
    }

    /// One config per summary tier, for the per-tier repair test loops.
    fn tier_configs() -> [IndexConfig; 3] {
        [IndexConfig::default(), label_forcing(), tiny_budget()]
    }

    #[test]
    fn path_reachability_all_tiers() {
        let g = path_digraph(40);
        for cfg in tier_configs() {
            check_all_pairs(&g, &cfg);
        }
    }

    #[test]
    fn cycle_collapses_to_single_component() {
        let g = cycle_digraph(30);
        let idx = Index::build(&g);
        assert_eq!(idx.num_components(), 1);
        assert!(idx.reaches(3, 17) && idx.reaches(17, 3));
    }

    #[test]
    fn random_graphs_match_oracle_bitset_tier() {
        for seed in 0..4u64 {
            let g = gnm_digraph(60, 150, seed);
            check_all_pairs(&g, &IndexConfig::default());
        }
    }

    #[test]
    fn random_graphs_match_oracle_interval_tier() {
        for seed in 0..4u64 {
            let g = gnm_digraph(60, 150, seed + 100);
            check_all_pairs(&g, &tiny_budget());
        }
    }

    #[test]
    fn random_graphs_match_oracle_label_tier() {
        for seed in 0..4u64 {
            let g = gnm_digraph(60, 150, seed + 300);
            let cfg = label_forcing();
            assert_eq!(Index::build_with_config(&g, &cfg).tier(), SummaryTier::Labels);
            check_all_pairs(&g, &cfg);
        }
    }

    #[test]
    fn interval_tier_without_exceptions_matches_oracle() {
        let cfg = IndexConfig { exception_cap: 0, ..tiny_budget() };
        for seed in 0..3u64 {
            check_all_pairs(&gnm_digraph(50, 120, seed + 200), &cfg);
        }
    }

    #[test]
    fn tier_selection_follows_budget() {
        let g = gnm_digraph(100, 200, 7);
        assert_eq!(Index::build(&g).tier(), SummaryTier::Bitset);
        assert_eq!(Index::build_with_config(&g, &tiny_budget()).tier(), SummaryTier::Intervals);
        assert_eq!(Index::build_with_config(&g, &label_forcing()).tier(), SummaryTier::Labels);
        // Label tier declined when the labeling cannot fit its budget.
        let starved = IndexConfig { label_budget_bytes: 64, ..label_forcing() };
        assert_eq!(Index::build_with_config(&g, &starved).tier(), SummaryTier::Intervals);
        // ... and when the DAG is below the size floor.
        let floor = IndexConfig { label_min_components: 1 << 20, ..label_forcing() };
        assert_eq!(Index::build_with_config(&g, &floor).tier(), SummaryTier::Intervals);
    }

    #[test]
    fn label_tier_stats_are_populated() {
        let g = gnm_digraph(80, 160, 11);
        let idx = Index::build_with_config(&g, &label_forcing());
        assert_eq!(idx.tier(), SummaryTier::Labels);
        let s = idx.stats();
        assert!(s.label_entries >= 2 * s.num_components, "every component self-labels twice");
        assert!(s.mean_label_len() >= 1.0);
        assert!(s.summary_bytes >= s.label_entries * 4);
        assert_eq!(s.exception_components, 0);
    }

    #[test]
    fn levels_strictly_increase_along_dag_arcs() {
        let g = gnm_digraph(120, 300, 3);
        let idx = Index::build(&g);
        for (a, b) in idx.dag().out_csr().edges() {
            assert!(idx.level(a) < idx.level(b), "arc {a}->{b}");
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = gnm_digraph(80, 160, 5);
        let idx = Index::build(&g);
        let s = idx.stats();
        assert_eq!(s.num_components, idx.num_components());
        assert!(s.summary_bytes > 0);
        assert!(s.scc_seconds >= 0.0 && s.summary_seconds >= 0.0);
        assert_eq!(s.dag_splices, 0);
        assert_eq!(s.region_recomputes, 0);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = DiGraph::from_edges(0, &[]);
        let idx = Index::build(&g);
        assert_eq!(idx.num_components(), 0);
        let g1 = DiGraph::from_edges(1, &[]);
        let idx1 = Index::build(&g1);
        assert!(idx1.reaches(0, 0));
    }

    #[test]
    fn self_loops_are_single_vertex_components() {
        let g = DiGraph::from_edges(3, &[(0, 0), (0, 1), (1, 2)]);
        let idx = Index::build(&g);
        assert!(idx.reaches(0, 2) && !idx.reaches(2, 0));
        assert_eq!(idx.num_components(), 3);
    }

    /// `splice_dag_arcs` on a path's condensation must answer exactly
    /// like a from-scratch build on the spliced graph.
    #[test]
    fn splice_matches_scratch_build_all_tiers() {
        for cfg in tier_configs() {
            // Two parallel paths sharing nothing: 0->1->2, 3->4->5.
            let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (3, 4), (4, 5)]);
            let idx = Index::build_with_config(&g, &cfg);
            // Insert 2 -> 3 (components are vertex-labeled singletons here,
            // so comp arcs mirror vertex arcs).
            let arcs = vec![(idx.comp(2), idx.comp(3))];
            let patched = idx.splice_dag_arcs(&arcs, &[(2, 3)], &[], &cfg);
            assert_eq!(patched.stats.built_by, BuildCause::DagSplice);
            assert_eq!(patched.stats.dag_splices, 1);
            let merged = g.with_delta(&[(2, 3)], &[]);
            for u in 0..6 {
                for v in 0..6 {
                    assert_eq!(patched.reaches(u, v), bfs_reaches(&merged, u, v), "({u}, {v})");
                }
            }
        }
    }

    /// `unsplice_dag_arcs` on a dead arc must answer exactly like a
    /// from-scratch build on the post-deletion graph — including when a
    /// previously absorbed (latent) pair is the only surviving witness.
    #[test]
    fn unsplice_matches_scratch_build_all_tiers() {
        for cfg in tier_configs() {
            // 0 -> 1 -> 2 with a shortcut 0 -> 2 absorbed post-build.
            let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
            let idx = Index::build_with_config(&g, &cfg);
            let with_shortcut = g.with_delta(&[(0, 2)], &[]);
            idx.note_absorbed(&[(0, 2)], &[]); // (0, 2) is latent now
            assert_eq!(idx.stats().latent_arcs, 1);
            // Delete 1 -> 2: arc (c1, c2) dies; the latent (c0, c2) must
            // be spliced in or 0 ⇝ 2 would be lost.
            let dead = vec![(idx.comp(1), idx.comp(2))];
            let patched = idx.unsplice_dag_arcs(&dead, &[(1, 2)], &cfg);
            assert_eq!(patched.stats().built_by, BuildCause::ArcUnsplice);
            assert_eq!(patched.stats().arc_unsplices, 1);
            assert_eq!(patched.stats().latent_arcs, 0, "latent pairs drain on unsplice");
            let merged = with_shortcut.with_delta(&[], &[(1, 2)]);
            for u in 0..3 {
                for v in 0..3 {
                    assert_eq!(patched.reaches(u, v), bfs_reaches(&merged, u, v), "({u}, {v})");
                }
            }
            // Levels narrowed exactly: 2 is now a direct child of 0 only.
            assert!(patched.level(patched.comp(0)) < patched.level(patched.comp(2)));
        }
    }

    /// `split_sccs` must detect a component that stays whole (`None`) and
    /// otherwise answer like a from-scratch build on the split graph.
    #[test]
    fn split_sccs_matches_scratch_build_all_tiers() {
        for cfg in tier_configs() {
            // A 4-cycle {1,2,3,4} with a chord 1 -> 3, entered from 0 and
            // leaving to 5.
            let g =
                DiGraph::from_edges(6, &[(1, 2), (2, 3), (3, 4), (4, 1), (1, 3), (0, 1), (4, 5)]);
            let idx = Index::build_with_config(&g, &cfg);
            assert_eq!(idx.num_components(), 3);
            let c = idx.comp(1);
            // Deleting the chord keeps the cycle strongly connected.
            let still_whole = g.with_delta(&[], &[(1, 3)]);
            assert!(idx.split_sccs(&still_whole, &[c], &[], &[(1, 3)], &cfg).is_none());
            // Deleting 2 -> 3 splits the cycle: the chord 1 -> 3 keeps
            // {1, 3, 4} strongly connected, 2 falls out.
            let merged = g.with_delta(&[], &[(2, 3)]);
            let patched =
                idx.split_sccs(&merged, &[c], &[], &[(2, 3)], &cfg).expect("the cycle splits");
            assert_eq!(patched.stats().built_by, BuildCause::SccSplit);
            assert_eq!(patched.stats().scc_splits, 1);
            assert_eq!(patched.num_components(), 4);
            assert_eq!(patched.comp(1), patched.comp(3));
            assert_eq!(patched.comp(1), patched.comp(4));
            assert_ne!(patched.comp(1), patched.comp(2));
            for u in 0..6 {
                for v in 0..6 {
                    assert_eq!(patched.reaches(u, v), bfs_reaches(&merged, u, v), "({u}, {v})");
                }
            }
        }
    }

    /// `recompute_region` must merge exactly the components on the cycle
    /// and answer like a from-scratch build.
    #[test]
    fn region_recompute_matches_scratch_build_all_tiers() {
        for cfg in tier_configs() {
            // A path 0->1->2->3->4 plus an off-path sibling 1->5.
            let g = DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 3), (3, 4), (1, 5)]);
            let idx = Index::build_with_config(&g, &cfg);
            // Insert 3 -> 1: merges comps of {1, 2, 3}.
            let (c3, c1) = (idx.comp(3), idx.comp(1));
            let mut region: Vec<u32> = vec![idx.comp(1), idx.comp(2), idx.comp(3)];
            region.sort_unstable();
            let patched = idx.recompute_region(&region, &[(c3, c1)], &[(3, 1)], &[], &cfg);
            assert_eq!(patched.stats.built_by, BuildCause::RegionRecompute);
            assert_eq!(patched.num_components(), 4);
            assert_eq!(patched.comp(1), patched.comp(3));
            let merged = g.with_delta(&[(3, 1)], &[]);
            for u in 0..6 {
                for v in 0..6 {
                    assert_eq!(patched.reaches(u, v), bfs_reaches(&merged, u, v), "({u}, {v})");
                }
            }
        }
    }
}

//! The reachability index: SCC labels + condensation DAG + per-component
//! descendant summaries.
//!
//! ## Query tiers
//!
//! [`Index::reaches`] answers `u ⇝ v` through a cascade of increasingly
//! expensive checks, stopping at the first decisive one:
//!
//! 1. **Same SCC** — `comp(u) == comp(v)` ⇒ reachable (and `u == v`
//!    trivially). O(1).
//! 2. **Level prune** — components carry longest-path topological levels;
//!    every DAG path strictly increases the level, so
//!    `level(cu) ≥ level(cv)` ⇒ unreachable. O(1).
//! 3. **Descendant summary** — depends on the DAG size (chosen at build
//!    time, see [`SummaryTier`]):
//!    * *Bitset tier* (small DAGs): one descendant bitset row per
//!      component; the answer is a single bit test. O(1).
//!    * *Interval tier* (large DAGs): GRAIL-style pruned-DFS interval
//!      labels (d independent randomized post-order labelings; reachable ⇒
//!      the target's interval nests inside the source's in *every*
//!      labeling), plus exact *exception lists* — components whose strict
//!      descendant set is small carry it verbatim, answering exactly.
//!      Queries that survive every prune fall back to an interval- and
//!      level-pruned DFS over the condensation DAG. O(log) typical,
//!      DAG-bounded worst case.
//!
//! The index is immutable after construction and all query paths take
//! `&self`, so batches can share it across threads freely.

use pscc_apps::{condense, Condensation};
use pscc_core::{parallel_scc, SccConfig};
use pscc_graph::{DiGraph, V};
use pscc_runtime::SplitMix64;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Which descendant-summary representation an [`Index`] chose.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SummaryTier {
    /// Full per-component descendant bitsets (small DAGs).
    Bitset,
    /// Interval labels + exception lists + pruned DFS (large DAGs).
    Intervals,
}

/// Build-time configuration for an [`Index`].
#[derive(Clone, Debug)]
pub struct IndexConfig {
    /// Configuration of the underlying parallel SCC run.
    pub scc: SccConfig,
    /// Ceiling (in bytes) on the bitset tier; DAGs whose full descendant
    /// bitsets would exceed it use the interval tier instead.
    pub bitset_budget_bytes: usize,
    /// Number of independent interval labelings in the interval tier
    /// (more labelings prune more, cost more memory).
    pub labelings: usize,
    /// Components with at most this many strict descendants store them as
    /// an exact exception list in the interval tier (0 disables).
    pub exception_cap: usize,
    /// Seed for the randomized labeling orders.
    pub seed: u64,
}

impl Default for IndexConfig {
    fn default() -> Self {
        IndexConfig {
            scc: SccConfig::default(),
            bitset_budget_bytes: 64 << 20,
            labelings: 2,
            exception_cap: 16,
            seed: 0x5cc_1dec5,
        }
    }
}

/// Why an [`Index`] was (re)built — the "which path was taken" record of
/// the delta-application machinery in [`crate::catalog::Catalog`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum BuildCause {
    /// Built for a freshly registered graph (or on first query).
    #[default]
    Fresh,
    /// Rebuilt because an applied [`crate::delta::Delta`] could change
    /// reachability (an effective deletion, or an insertion joining
    /// component pairs not already reachable).
    DeltaRebuild,
}

/// Build-cost breakdown and shape of one [`Index`] (the "index-build
/// breakdown" of the example server's report).
#[derive(Clone, Debug, Default)]
pub struct IndexStats {
    /// Seconds in the parallel SCC run.
    pub scc_seconds: f64,
    /// Seconds contracting into the condensation DAG.
    pub condense_seconds: f64,
    /// Seconds computing topological levels.
    pub levels_seconds: f64,
    /// Seconds building the descendant summary (bitsets or intervals).
    pub summary_seconds: f64,
    /// Number of strongly connected components.
    pub num_components: usize,
    /// Arcs in the condensation DAG.
    pub dag_arcs: usize,
    /// Bytes held by the descendant summary.
    pub summary_bytes: usize,
    /// Components carrying an exact exception list (interval tier only).
    pub exception_components: usize,
    /// Why this index was built ([`BuildCause::DeltaRebuild`] when a
    /// non-absorbable delta forced it).
    pub built_by: BuildCause,
    /// Deltas this index absorbed *without* rebuilding: every edge in them
    /// stayed inside one SCC or joined an already-reachable component
    /// pair, so all query answers were provably unchanged.
    pub absorbed_deltas: u64,
}

impl IndexStats {
    /// Total seconds spent building this index (SCC + condensation +
    /// levels + summary) — the figure the bench runner and the example
    /// server report.
    pub fn total_build_seconds(&self) -> f64 {
        self.scc_seconds + self.condense_seconds + self.levels_seconds + self.summary_seconds
    }
}

/// One GRAIL-style labeling: a post-order rank and the subtree-minimum
/// rank per component, giving the containment invariant
/// `u ⇝ v ⇒ low[u] ≤ low[v] ∧ rank[v] ≤ rank[u]`.
struct IntervalLabeling {
    low: Vec<u32>,
    rank: Vec<u32>,
}

impl IntervalLabeling {
    /// True if `v`'s interval nests inside `u`'s (necessary for `u ⇝ v`).
    #[inline]
    fn may_reach(&self, u: usize, v: usize) -> bool {
        self.low[u] <= self.low[v] && self.rank[v] <= self.rank[u]
    }
}

enum Summary {
    /// Flat row-major bitset: row `c` holds one bit per component.
    Bitset { words_per_row: usize, rows: Vec<u64> },
    Intervals {
        labelings: Vec<IntervalLabeling>,
        /// Strict descendants, sorted, for components under the cap.
        exceptions: Vec<Option<Box<[V]>>>,
    },
}

/// An immutable reachability index over one digraph.
pub struct Index {
    comp_of: Vec<u32>,
    levels: Vec<u32>,
    dag: DiGraph,
    sizes: Vec<usize>,
    summary: Summary,
    stats: IndexStats,
    /// Deltas absorbed without a rebuild; interior-mutable because kept
    /// indexes are shared as `Arc<Index>` (see [`IndexStats::absorbed_deltas`]).
    absorbed: AtomicU64,
}

impl Index {
    /// Builds an index for `g` with default configuration.
    pub fn build(g: &DiGraph) -> Index {
        Self::build_with_config(g, &IndexConfig::default())
    }

    /// Builds an index for `g`, running SCC + condensation + summaries.
    pub fn build_with_config(g: &DiGraph, cfg: &IndexConfig) -> Index {
        let t = Instant::now();
        let scc = parallel_scc(g, &cfg.scc);
        let scc_seconds = t.elapsed().as_secs_f64();

        let t = Instant::now();
        let cond = condense(g, &scc.labels);
        let condense_seconds = t.elapsed().as_secs_f64();

        let mut index = Self::from_condensation(cond, cfg);
        index.stats.scc_seconds = scc_seconds;
        index.stats.condense_seconds = condense_seconds;
        index
    }

    /// Builds an index from an existing condensation (skips the SCC run;
    /// useful when labels were computed elsewhere).
    pub fn from_condensation(cond: Condensation, cfg: &IndexConfig) -> Index {
        let t = Instant::now();
        let order = cond.topo_order();
        let levels = cond.topo_levels();
        let levels_seconds = t.elapsed().as_secs_f64();
        let Condensation { comp_of, dag, sizes } = cond;
        let k = sizes.len();

        let t = Instant::now();
        let words_per_row = k.div_ceil(64);
        let bitset_bytes = k.saturating_mul(words_per_row).saturating_mul(8);
        let (summary, summary_bytes, exception_components) =
            if bitset_bytes <= cfg.bitset_budget_bytes {
                let rows = build_bitsets(&dag, &order, words_per_row);
                (Summary::Bitset { words_per_row, rows }, bitset_bytes, 0)
            } else {
                let labelings = build_labelings(&dag, &order, cfg.labelings.max(1), cfg.seed);
                let exceptions = build_exceptions(&dag, &order, cfg.exception_cap);
                let exc_count = exceptions.iter().filter(|e| e.is_some()).count();
                let bytes = labelings.len() * k * 8
                    + exceptions
                        .iter()
                        .map(|e| e.as_ref().map_or(0, |s| s.len() * 4 + 16))
                        .sum::<usize>();
                (Summary::Intervals { labelings, exceptions }, bytes, exc_count)
            };
        let summary_seconds = t.elapsed().as_secs_f64();

        let stats = IndexStats {
            scc_seconds: 0.0,
            condense_seconds: 0.0,
            levels_seconds,
            summary_seconds,
            num_components: k,
            dag_arcs: dag.m(),
            summary_bytes,
            exception_components,
            built_by: BuildCause::Fresh,
            absorbed_deltas: 0,
        };
        Index { comp_of, levels, dag, sizes, summary, stats, absorbed: AtomicU64::new(0) }
    }

    /// Stamps the build cause (the catalog marks delta-forced rebuilds).
    pub(crate) fn set_built_by(&mut self, cause: BuildCause) {
        self.stats.built_by = cause;
    }

    /// Records one absorbed delta (kept index, unchanged answers).
    pub(crate) fn note_absorbed(&self) {
        self.absorbed.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of vertices of the indexed graph.
    pub fn n(&self) -> usize {
        self.comp_of.len()
    }

    /// Number of strongly connected components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// Component id of vertex `u` (ids are `0..num_components`).
    #[inline]
    pub fn comp(&self, u: V) -> u32 {
        self.comp_of[u as usize]
    }

    /// Size (vertex count) of component `c`.
    pub fn component_size(&self, c: u32) -> usize {
        self.sizes[c as usize]
    }

    /// Topological level of component `c` (every DAG arc strictly
    /// increases the level).
    #[inline]
    pub fn level(&self, c: u32) -> u32 {
        self.levels[c as usize]
    }

    /// The condensation DAG.
    pub fn dag(&self) -> &DiGraph {
        &self.dag
    }

    /// Which summary representation this index built.
    pub fn tier(&self) -> SummaryTier {
        match self.summary {
            Summary::Bitset { .. } => SummaryTier::Bitset,
            Summary::Intervals { .. } => SummaryTier::Intervals,
        }
    }

    /// Build-cost and shape statistics (a snapshot: `absorbed_deltas`
    /// advances as the catalog absorbs deltas into this index).
    pub fn stats(&self) -> IndexStats {
        let mut s = self.stats.clone();
        s.absorbed_deltas = self.absorbed.load(Ordering::Relaxed);
        s
    }

    /// True if a directed path `u ⇝ v` exists (trivially true for
    /// `u == v`).
    pub fn reaches(&self, u: V, v: V) -> bool {
        let (cu, cv) = (self.comp(u) as usize, self.comp(v) as usize);
        self.comp_reaches(cu, cv)
    }

    /// Component-level reachability `cu ⇝ cv` on the condensation DAG.
    pub fn comp_reaches(&self, cu: usize, cv: usize) -> bool {
        if cu == cv {
            return true;
        }
        if self.levels[cu] >= self.levels[cv] {
            return false;
        }
        match &self.summary {
            Summary::Bitset { words_per_row, rows } => {
                rows[cu * words_per_row + cv / 64] >> (cv % 64) & 1 == 1
            }
            Summary::Intervals { labelings, exceptions } => {
                if let Some(desc) = &exceptions[cu] {
                    return desc.binary_search(&(cv as V)).is_ok();
                }
                if !labelings.iter().all(|l| l.may_reach(cu, cv)) {
                    return false;
                }
                self.pruned_dfs(cu, cv, labelings, exceptions)
            }
        }
    }

    /// Interval- and level-pruned DFS over the condensation DAG; the slow
    /// path of the interval tier for queries every prune lets through.
    fn pruned_dfs(
        &self,
        cu: usize,
        cv: usize,
        labelings: &[IntervalLabeling],
        exceptions: &[Option<Box<[V]>>],
    ) -> bool {
        let mut visited = std::collections::HashSet::new();
        let mut stack = vec![cu];
        visited.insert(cu);
        while let Some(c) = stack.pop() {
            for &d in self.dag.out_neighbors(c as V) {
                let d = d as usize;
                if d == cv {
                    return true;
                }
                if self.levels[d] >= self.levels[cv] || !visited.insert(d) {
                    continue;
                }
                if let Some(desc) = &exceptions[d] {
                    // Exact list: membership decides this whole subtree.
                    if desc.binary_search(&(cv as V)).is_ok() {
                        return true;
                    }
                    continue;
                }
                if labelings.iter().all(|l| l.may_reach(d, cv)) {
                    stack.push(d);
                }
            }
        }
        false
    }
}

/// Full descendant bitsets, one row per component, built in reverse
/// topological order so every child row is final before it is merged.
fn build_bitsets(dag: &DiGraph, order: &[V], words_per_row: usize) -> Vec<u64> {
    let k = dag.n();
    let mut rows = vec![0u64; k * words_per_row];
    for &c in order.iter().rev() {
        let c = c as usize;
        for &d in dag.out_neighbors(c as V) {
            let d = d as usize;
            or_row(&mut rows, words_per_row, c, d);
            rows[c * words_per_row + d / 64] |= 1u64 << (d % 64);
        }
    }
    rows
}

/// `rows[dst] |= rows[src]` for the flat row-major bitset.
fn or_row(rows: &mut [u64], words: usize, dst: usize, src: usize) {
    debug_assert_ne!(dst, src);
    let (d0, s0) = (dst * words, src * words);
    if d0 < s0 {
        let (a, b) = rows.split_at_mut(s0);
        let (d, s) = (&mut a[d0..d0 + words], &b[..words]);
        for (dw, sw) in d.iter_mut().zip(s) {
            *dw |= *sw;
        }
    } else {
        let (a, b) = rows.split_at_mut(d0);
        let (s, d) = (&a[s0..s0 + words], &mut b[..words]);
        for (dw, sw) in d.iter_mut().zip(s) {
            *dw |= *sw;
        }
    }
}

/// `count` randomized GRAIL labelings. Each is a DFS over the DAG from its
/// source components with a per-labeling pseudo-random neighbour order;
/// `rank` is the post-order number, `low` the minimum rank seen in the
/// DFS-reachable set, computed in reverse topological order.
fn build_labelings(dag: &DiGraph, order: &[V], count: usize, seed: u64) -> Vec<IntervalLabeling> {
    (0..count)
        .map(|li| {
            let mut rng = SplitMix64::new(seed ^ (li as u64).wrapping_mul(0x9e37_79b9));
            let rank = random_postorder(dag, &mut rng);
            // low[c] = min(rank[c], min over out-neighbours of low[d]),
            // processed in reverse topological order so neighbours are done.
            let mut low = rank.clone();
            for &c in order.iter().rev() {
                let c = c as usize;
                for &d in dag.out_neighbors(c as V) {
                    low[c] = low[c].min(low[d as usize]);
                }
            }
            IntervalLabeling { low, rank }
        })
        .collect()
}

/// Post-order ranks of one randomized iterative DFS covering every
/// component (roots and neighbour lists visited in shuffled order).
fn random_postorder(dag: &DiGraph, rng: &mut SplitMix64) -> Vec<u32> {
    let k = dag.n();
    let mut rank = vec![u32::MAX; k];
    let mut visited = vec![false; k];
    let mut next_rank = 0u32;
    // Shuffled root order (roots = all components; non-sources are skipped
    // as already-visited when their turn comes).
    let mut roots: Vec<V> = (0..k as V).collect();
    shuffle(&mut roots, rng);
    // Explicit DFS frames: (component, shuffled out-neighbours, cursor).
    let mut stack: Vec<(V, Vec<V>, usize)> = Vec::new();
    let frame = |c: V, rng: &mut SplitMix64| {
        let mut ns: Vec<V> = dag.out_neighbors(c).to_vec();
        shuffle(&mut ns, rng);
        (c, ns, 0usize)
    };
    for &r in &roots {
        if visited[r as usize] {
            continue;
        }
        visited[r as usize] = true;
        stack.push(frame(r, rng));
        while let Some(top) = stack.len().checked_sub(1) {
            let advance = {
                let (_, ns, i) = &mut stack[top];
                if *i < ns.len() {
                    let d = ns[*i];
                    *i += 1;
                    Some(d)
                } else {
                    None
                }
            };
            match advance {
                Some(d) if !visited[d as usize] => {
                    visited[d as usize] = true;
                    stack.push(frame(d, rng));
                }
                Some(_) => {}
                None => {
                    let (c, _, _) = stack.pop().expect("non-empty stack");
                    rank[c as usize] = next_rank;
                    next_rank += 1;
                }
            }
        }
    }
    debug_assert!(rank.iter().all(|&r| r != u32::MAX));
    rank
}

/// Fisher–Yates shuffle driven by the workspace PRNG.
fn shuffle(v: &mut [V], rng: &mut SplitMix64) {
    for i in (1..v.len()).rev() {
        let j = rng.next_below(i as u64 + 1) as usize;
        v.swap(i, j);
    }
}

/// Exact strict-descendant lists for components with at most `cap`
/// descendants, built bottom-up in reverse topological order (a component
/// overflows if any child overflows or the merged set exceeds `cap`).
fn build_exceptions(dag: &DiGraph, order: &[V], cap: usize) -> Vec<Option<Box<[V]>>> {
    let k = dag.n();
    let mut out: Vec<Option<Box<[V]>>> = vec![None; k];
    if cap == 0 {
        return out;
    }
    for &c in order.iter().rev() {
        let c = c as usize;
        let mut set: Vec<V> = Vec::new();
        let mut ok = true;
        for &d in dag.out_neighbors(c as V) {
            match &out[d as usize] {
                Some(desc) if set.len() + desc.len() < 2 * cap + 2 => {
                    set.push(d);
                    set.extend_from_slice(desc);
                }
                _ => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            set.sort_unstable();
            set.dedup();
            if set.len() <= cap {
                out[c] = Some(set.into_boxed_slice());
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};

    /// Brute-force vertex-level reachability oracle.
    fn bfs_reaches(g: &DiGraph, u: V, v: V) -> bool {
        let mut seen = vec![false; g.n()];
        let mut stack = vec![u];
        seen[u as usize] = true;
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            for &w in g.out_neighbors(x) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    fn check_all_pairs(g: &DiGraph, cfg: &IndexConfig) {
        let idx = Index::build_with_config(g, cfg);
        for u in 0..g.n() as V {
            for v in 0..g.n() as V {
                assert_eq!(
                    idx.reaches(u, v),
                    bfs_reaches(g, u, v),
                    "({u}, {v}) tier {:?}",
                    idx.tier()
                );
            }
        }
    }

    fn tiny_budget() -> IndexConfig {
        // Forces the interval tier even on tiny DAGs.
        IndexConfig { bitset_budget_bytes: 0, ..IndexConfig::default() }
    }

    #[test]
    fn path_reachability_both_tiers() {
        let g = path_digraph(40);
        check_all_pairs(&g, &IndexConfig::default());
        check_all_pairs(&g, &tiny_budget());
    }

    #[test]
    fn cycle_collapses_to_single_component() {
        let g = cycle_digraph(30);
        let idx = Index::build(&g);
        assert_eq!(idx.num_components(), 1);
        assert!(idx.reaches(3, 17) && idx.reaches(17, 3));
    }

    #[test]
    fn random_graphs_match_oracle_bitset_tier() {
        for seed in 0..4u64 {
            let g = gnm_digraph(60, 150, seed);
            check_all_pairs(&g, &IndexConfig::default());
        }
    }

    #[test]
    fn random_graphs_match_oracle_interval_tier() {
        for seed in 0..4u64 {
            let g = gnm_digraph(60, 150, seed + 100);
            check_all_pairs(&g, &tiny_budget());
        }
    }

    #[test]
    fn interval_tier_without_exceptions_matches_oracle() {
        let cfg = IndexConfig { exception_cap: 0, ..tiny_budget() };
        for seed in 0..3u64 {
            check_all_pairs(&gnm_digraph(50, 120, seed + 200), &cfg);
        }
    }

    #[test]
    fn tier_selection_follows_budget() {
        let g = gnm_digraph(100, 200, 7);
        assert_eq!(Index::build(&g).tier(), SummaryTier::Bitset);
        assert_eq!(Index::build_with_config(&g, &tiny_budget()).tier(), SummaryTier::Intervals);
    }

    #[test]
    fn levels_strictly_increase_along_dag_arcs() {
        let g = gnm_digraph(120, 300, 3);
        let idx = Index::build(&g);
        for (a, b) in idx.dag().out_csr().edges() {
            assert!(idx.level(a) < idx.level(b), "arc {a}->{b}");
        }
    }

    #[test]
    fn stats_are_populated() {
        let g = gnm_digraph(80, 160, 5);
        let idx = Index::build(&g);
        let s = idx.stats();
        assert_eq!(s.num_components, idx.num_components());
        assert!(s.summary_bytes > 0);
        assert!(s.scc_seconds >= 0.0 && s.summary_seconds >= 0.0);
    }

    #[test]
    fn empty_and_singleton_graphs() {
        let g = DiGraph::from_edges(0, &[]);
        let idx = Index::build(&g);
        assert_eq!(idx.num_components(), 0);
        let g1 = DiGraph::from_edges(1, &[]);
        let idx1 = Index::build(&g1);
        assert!(idx1.reaches(0, 0));
    }

    #[test]
    fn self_loops_are_single_vertex_components() {
        let g = DiGraph::from_edges(3, &[(0, 0), (0, 1), (1, 2)]);
        let idx = Index::build(&g);
        assert!(idx.reaches(0, 2) && !idx.reaches(2, 0));
        assert_eq!(idx.num_components(), 3);
    }
}

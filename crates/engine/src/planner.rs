//! The tiered delta-repair planner: given a live [`Index`] and an
//! effective edge delta, decide the *cheapest provably correct* way to
//! bring the index up to date, from "do nothing" to "rebuild everything".
//!
//! ## The tiers
//!
//! [`plan_repair`] classifies every effective change against the current
//! index and returns one [`RepairPlan`]:
//!
//! 1. **Absorb** ([`RepairPlan::Absorb`]) — every insertion `u → v` stays
//!    inside one SCC (`comp(u) == comp(v)`) or joins an already-reachable
//!    component pair (`comp(u) ⇝ comp(v)`). *Correctness:* `u` already
//!    reaches `v` through the old graph, so by induction every path using
//!    new edges reroutes over old ones — the reachability relation is
//!    unchanged and no cycle can form (that would need `comp(v) ⇝
//!    comp(u)`, contradicting DAG acyclicity). The index and its warm
//!    memo survive untouched. Absorbable edges are checked independently:
//!    individual absorbability implies joint absorbability because every
//!    absorbable edge's endpoints were already connected in the *old*
//!    graph.
//! 2. **DAG-edge splice** ([`RepairPlan::DagSplice`]) — the
//!    non-absorbable insertions, contracted to component arcs, provably
//!    create no cycle among components (see the supergraph argument
//!    below). *Correctness:* the SCC partition of a graph changes iff a
//!    new cycle appears across components, so the SCC layer is exactly
//!    preserved; the condensation gains precisely the new arcs; levels
//!    and the descendant summary are repaired only where the splice
//!    invalidated them (descendant sets grow exactly for ancestors of the
//!    new arcs' sources — see the engine's `layers` module). On the
//!    2-hop label tier the splice is an exact label patch: each new arc
//!    `a → b` extends hub `b`'s coverage over `anc(a) × desc(b)`, which
//!    is precisely the region the arc opened.
//! 3. **Region recompute** ([`RepairPlan::RegionRecompute`]) — some new
//!    arcs close a cycle. Every component that merges lies on a DAG path
//!    `t ⇝ C ⇝ s` for cycle-forming arcs `(s, t)` (a cycle alternates
//!    new arcs with old DAG paths, and `C` sits on one of those paths),
//!    so the *region* `descendants(targets) ∩ ancestors(sources)` is
//!    closed over all merges. The SCC algorithm re-runs on just the
//!    induced region (+ the new arcs inside it), the old DAG is
//!    contracted through the resulting merge map, and levels/summary are
//!    reassembled over the patched condensation — the graph itself is
//!    never re-traversed.
//! 4. **Deletion: support decrement** (classified into the plan of the
//!    remaining insertions, down to [`RepairPlan::Absorb`]) — the index
//!    carries an **arc-support table** (see the engine's `layers`
//!    module): direct-edge multiplicities per cross-component pair.
//!    Deleting one of several parallel supports of a pair — or the last
//!    support of a *latent* pair (absorbed, never became a DAG arc) — is
//!    a metadata-only decrement. *Correctness:* a cross-component edge
//!    lies on no cycle (that would need `comp(v) ⇝ comp(u)`), so SCCs
//!    cannot change; any path through the deleted edge reroutes over a
//!    surviving parallel support (endpoints share the same component
//!    pair), or — for a latent pair — over the DAG paths that witnessed
//!    the pair when it was absorbed, which still exist because arcs have
//!    only been added since (every structural removal drains the latent
//!    set into the DAG).
//! 5. **Deletion: DAG-arc unsplice** ([`RepairPlan::ArcUnsplice`]) — the
//!    delta takes some DAG arcs' support to zero and splits nothing:
//!    the dead arcs are removed (latent pairs spliced in first), levels
//!    are worklist-relaxed exactly, and summaries are narrowed for the
//!    affected ancestors only. Label entries are exact reachability
//!    certificates that a removed arc can falsify, and a partial
//!    re-prune is order-dependent, so the label tier prices deletion as
//!    rebuild-this-layer: the labeling is reconstructed from scratch
//!    over the post-unsplice DAG (SCCs, DAG, and levels are still
//!    repaired incrementally — only the summary layer pays).
//! 6. **Deletion: SCC split check** ([`RepairPlan::SccSplit`]) — an
//!    intra-SCC deletion can split its component: SCC re-runs on **only
//!    that component's members** in the post-deletion graph and the
//!    sub-components are spliced back into the DAG (a component that
//!    holds together leaves the index untouched). The graph is never
//!    re-traversed beyond the affected members' adjacency.
//! 7. **Cost-bounded fallback** ([`RepairPlan::FullRebuild`]) — deltas
//!    mixing structural deletions with insertions, indexes without a
//!    support table, deltas with more distinct new/dead arcs than the
//!    planner budget, and merge regions or split components past
//!    [`RepairBudget::max_region`] all fall back to the catalog's
//!    off-lock full rebuild: past that size, a localized repair would not
//!    beat rebuilding.
//!
//! ## The supergraph cycle test
//!
//! Whether jointly adding arc set `A` to the condensation DAG `D`
//! creates a cycle is decided exactly on a *supergraph* over the distinct
//! endpoint components of `A`: its edges are `A` itself plus `x → y`
//! whenever `x ⇝ y` in `D` (an O(1)–O(log) index query per ordered
//! pair). Any cycle in `D ∪ A` decomposes into new arcs joined by old
//! `D`-paths, each of which is a supergraph edge — and conversely every
//! supergraph cycle expands into a real cycle (a cycle of only `⇝`-edges
//! is impossible because `D` is acyclic). So `D ∪ A` is cyclic iff the
//! supergraph is, and an arc of `A` participates in a cycle iff its
//! endpoints share a supergraph SCC. The supergraph has at most
//! `2·|A| ≤ 2·`[`RepairBudget::max_planned_arcs`] nodes, so running the
//! workspace SCC algorithm on it is trivially cheap.

use crate::explain::PlanExplain;
use crate::index::Index;
use pscc_core::{parallel_scc, SccConfig};
use pscc_graph::{DiGraph, V};

/// Cost bounds deciding when a localized repair would not beat the
/// off-lock full rebuild (tier 4 of the planner, carried by
/// [`crate::IndexConfig`]).
#[derive(Clone, Copy, Debug)]
pub struct RepairBudget {
    /// Deltas contracting to more distinct new condensation arcs than
    /// this are priced straight to a full rebuild (bounds the planner's
    /// own supergraph analysis to `O(max_planned_arcs²)` index queries).
    pub max_planned_arcs: usize,
    /// A merge region larger than `region_frac × num_components` falls
    /// back to a full rebuild.
    pub region_frac: f64,
    /// Floor for the region bound, so small graphs still repair locally
    /// even when `region_frac × num_components` rounds to nothing.
    pub min_region: usize,
}

impl Default for RepairBudget {
    fn default() -> Self {
        RepairBudget { max_planned_arcs: 128, region_frac: 0.25, min_region: 32 }
    }
}

impl RepairBudget {
    /// The largest merge region (in components, out of `k`) the planner
    /// will repair in place.
    pub fn max_region(&self, k: usize) -> usize {
        ((k as f64 * self.region_frac) as usize).max(self.min_region)
    }
}

/// Why the planner fell back to a full rebuild.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RebuildReason {
    /// The delta mixes a *structural* deletion (a dead DAG arc or a
    /// possible SCC split) with insertions — the deletion tiers are
    /// proven for pure-deletion deltas only — or the index carries no
    /// arc-support table to classify deletions against (it was built
    /// from a bare condensation, never seeing the graph).
    Deletion,
    /// More distinct new (or dead) condensation arcs than
    /// [`RepairBudget::max_planned_arcs`].
    PlannerOverflow,
    /// The cycle-merge region exceeds [`RepairBudget::max_region`].
    RegionOverBudget,
    /// The components an intra-SCC deletion may split hold more vertices
    /// than [`RepairBudget::max_region`] admits — re-running SCC on them
    /// would not beat rebuilding.
    SplitOverBudget,
}

/// The repair tier [`plan_repair`] chose, with everything the executor
/// needs. Arc endpoints and region members are **old component ids** of
/// the index the plan was made against.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RepairPlan {
    /// Every effective change provably preserves the reachability
    /// relation: keep the index and its warm memo.
    Absorb,
    /// Splice these (deduplicated) arcs into the condensation DAG; no
    /// components merge (`Index::splice_dag_arcs`).
    DagSplice {
        /// New condensation arcs `(comp(u), comp(v))`.
        arcs: Vec<(u32, u32)>,
    },
    /// Re-run SCC on the induced `region` of the condensation DAG and
    /// contract (`Index::recompute_region`).
    RegionRecompute {
        /// Components possibly involved in a merge (sorted), closed over
        /// every cycle the delta can create.
        region: Vec<u32>,
        /// All new condensation arcs (cycle-forming and splice alike).
        arcs: Vec<(u32, u32)>,
    },
    /// Remove these DAG arcs — the delta deleted their last direct-edge
    /// support — splicing latent pairs in first
    /// (`Index::unsplice_dag_arcs`). Planned only for pure-deletion
    /// deltas that provably split no component.
    ArcUnsplice {
        /// Dead condensation arcs `(comp(u), comp(v))`, deduplicated.
        arcs: Vec<(u32, u32)>,
    },
    /// Re-run SCC on the members of these components — an intra-SCC
    /// deletion may have split them — and splice the sub-components back
    /// into the DAG (`Index::split_sccs`). Planned only for
    /// pure-deletion deltas.
    SccSplit {
        /// Components with an intra-SCC deletion (sorted, deduplicated).
        comps: Vec<u32>,
        /// DAG arcs the same delta killed (support reached zero).
        dead_arcs: Vec<(u32, u32)>,
    },
    /// A localized repair would not win: rebuild off-lock.
    FullRebuild {
        /// What priced the delta out of the localized tiers.
        reason: RebuildReason,
    },
}

impl RepairPlan {
    /// The tier's stable telemetry name, as recorded in the `tier`
    /// attribute of the planner's `plan` span and rendered in trace
    /// dumps.
    pub fn tier_name(&self) -> &'static str {
        match self {
            RepairPlan::Absorb => "absorb",
            RepairPlan::DagSplice { .. } => "dag_splice",
            RepairPlan::RegionRecompute { .. } => "region_recompute",
            RepairPlan::ArcUnsplice { .. } => "arc_unsplice",
            RepairPlan::SccSplit { .. } => "scc_split",
            RepairPlan::FullRebuild { .. } => "full_rebuild",
        }
    }
}

/// Chooses the cheapest provably correct repair for applying the
/// effective insertions `ins` and deletions `del` to the graph behind
/// `index` (see the [module docs](self) for the tier definitions and
/// correctness arguments).
///
/// `ins`/`del` must already be reduced against the graph: insertions of
/// absent edges and deletions of present ones only (the catalog's
/// effective-delta computation guarantees this).
pub fn plan_repair(
    index: &Index,
    ins: &[(V, V)],
    del: &[(V, V)],
    budget: &RepairBudget,
) -> RepairPlan {
    plan_repair_explained(index, ins, del, budget).0
}

/// [`plan_repair`] with provenance: the plan plus a [`PlanExplain`]
/// recording the cost-model inputs the planner measured and every
/// cheaper tier it priced out on the way to its decision. The boolean
/// entry point calls through here, so plan and explain can never
/// diverge.
pub fn plan_repair_explained(
    index: &Index,
    ins: &[(V, V)],
    del: &[(V, V)],
    budget: &RepairBudget,
) -> (RepairPlan, PlanExplain) {
    let mut span = pscc_telemetry::span("plan");
    let mut ex = PlanExplain {
        insertions: ins.len(),
        deletions: del.len(),
        deletion_class: "none",
        max_planned_arcs: budget.max_planned_arcs,
        max_region: budget.max_region(index.num_components()),
        ..PlanExplain::default()
    };
    ex.has_support_table = index.support_table().is_some();
    let plan = plan_repair_inner(index, ins, del, budget, &mut ex);
    ex.chosen = plan.tier_name();
    span.set_attr("tier", plan.tier_name());
    (plan, ex)
}

fn plan_repair_inner(
    index: &Index,
    ins: &[(V, V)],
    del: &[(V, V)],
    budget: &RepairBudget,
    ex: &mut PlanExplain,
) -> RepairPlan {
    if !del.is_empty() {
        match classify_deletions(index, del) {
            // Every deletion is a metadata-only support decrement: the
            // reachability relation is untouched, so the remaining
            // insertions are planned against the unchanged index exactly
            // as if the delta held no deletions.
            DeletionClass::Metadata => {
                ex.deletion_class = "metadata";
            }
            DeletionClass::Unplannable => {
                ex.deletion_class = "unplannable";
                ex.reject("absorb", "no arc-support table to classify deletions against");
                return RepairPlan::FullRebuild { reason: RebuildReason::Deletion };
            }
            DeletionClass::Structural { dead_arcs, splits } => {
                ex.deletion_class = "structural";
                ex.dead_arcs = dead_arcs.len();
                ex.split_comps = splits.len();
                ex.reject("absorb", "deletions are structural, not metadata-only");
                if !ins.is_empty() {
                    // The deletion tiers are proven for pure-deletion
                    // deltas; mixing in insertions prices out.
                    ex.reject("arc_unsplice", "structural deletions mixed with insertions");
                    ex.reject("scc_split", "structural deletions mixed with insertions");
                    return RepairPlan::FullRebuild { reason: RebuildReason::Deletion };
                }
                if dead_arcs.len() > budget.max_planned_arcs {
                    ex.reject("arc_unsplice", "more dead arcs than max_planned_arcs");
                    return RepairPlan::FullRebuild { reason: RebuildReason::PlannerOverflow };
                }
                if !splits.is_empty() {
                    let vertices: usize = splits.iter().map(|&c| index.component_size(c)).sum();
                    ex.split_vertices = vertices;
                    ex.max_region = budget.max_region(index.n());
                    if vertices > budget.max_region(index.n()) {
                        ex.reject(
                            "scc_split",
                            "split components hold more vertices than the region budget",
                        );
                        return RepairPlan::FullRebuild { reason: RebuildReason::SplitOverBudget };
                    }
                    ex.reject("arc_unsplice", "an intra-component deletion may split its SCC");
                    return RepairPlan::SccSplit { comps: splits, dead_arcs };
                }
                return RepairPlan::ArcUnsplice { arcs: dead_arcs };
            }
        }
    }
    // Contract the non-absorbable insertions to new condensation arcs.
    let mut arcs: Vec<(u32, u32)> = ins
        .iter()
        .map(|&(u, v)| (index.comp(u), index.comp(v)))
        .filter(|&(cu, cv)| cu != cv && !index.comp_reaches(cu as usize, cv as usize))
        .collect();
    pscc_graph::dedup_edges(&mut arcs);
    ex.new_arcs = arcs.len();
    if arcs.is_empty() {
        return RepairPlan::Absorb;
    }
    ex.reject("absorb", "insertions contract to new condensation arcs");
    if arcs.len() > budget.max_planned_arcs {
        ex.reject("dag_splice", "more new arcs than max_planned_arcs");
        return RepairPlan::FullRebuild { reason: RebuildReason::PlannerOverflow };
    }

    // Supergraph cycle test over the distinct endpoint components.
    let mut nodes: Vec<u32> = arcs.iter().flat_map(|&(s, t)| [s, t]).collect();
    nodes.sort_unstable();
    nodes.dedup();
    // analyze: allow(panic): nodes was built from exactly these arc endpoints
    let local = |c: u32| nodes.binary_search(&c).expect("endpoint is a node") as V;
    let mut sedges: Vec<(V, V)> = arcs.iter().map(|&(s, t)| (local(s), local(t))).collect();
    for (i, &x) in nodes.iter().enumerate() {
        for (j, &y) in nodes.iter().enumerate() {
            if i != j && index.comp_reaches(x as usize, y as usize) {
                sedges.push((i as V, j as V));
            }
        }
    }
    let supergraph = DiGraph::from_edges(nodes.len(), &sedges);
    let labels = parallel_scc(&supergraph, &SccConfig::default()).labels;
    let cyclic: Vec<(u32, u32)> = arcs
        .iter()
        .copied()
        .filter(|&(s, t)| labels[local(s) as usize] == labels[local(t) as usize])
        .collect();
    ex.cyclic_arcs = cyclic.len();
    if cyclic.is_empty() {
        return RepairPlan::DagSplice { arcs };
    }
    ex.reject("dag_splice", "some new arcs close a cycle among components");

    // Merge region: descendants(cycle targets) ∩ ancestors(cycle
    // sources), estimated with early exit once it cannot fit the budget.
    let cap = budget.max_region(index.num_components());
    let mut targets: Vec<V> = cyclic.iter().map(|&(_, t)| t).collect();
    let mut sources: Vec<V> = cyclic.iter().map(|&(s, _)| s).collect();
    targets.sort_unstable();
    targets.dedup();
    sources.sort_unstable();
    sources.dedup();
    let Some(region) = bounded_region(index.dag(), &targets, &sources, cap) else {
        ex.reject("region_recompute", "merge region exceeds the budget");
        return RepairPlan::FullRebuild { reason: RebuildReason::RegionOverBudget };
    };
    ex.region_size = region.len();
    RepairPlan::RegionRecompute { region, arcs }
}

/// How a delta's effective deletions bear on the index structure.
enum DeletionClass {
    /// Every deletion is a support decrement (parallel support survives,
    /// or the pair is latent / a self loop): the reachability relation is
    /// provably unchanged.
    Metadata,
    /// Some deletions change the index: DAG arcs whose support hit zero
    /// and/or components an intra-SCC deletion may split.
    Structural { dead_arcs: Vec<(u32, u32)>, splits: Vec<u32> },
    /// The index has no arc-support table to classify against.
    Unplannable,
}

/// Classifies the effective deletions `del` against `index`'s arc-support
/// table (see the [module docs](self), tiers 4–6).
fn classify_deletions(index: &Index, del: &[(V, V)]) -> DeletionClass {
    let guard = index.support_table();
    let Some(support) = guard.as_ref() else {
        return DeletionClass::Unplannable;
    };
    let mut splits: Vec<u32> = Vec::new();
    let mut pending: std::collections::HashMap<(u32, u32), u64> = std::collections::HashMap::new();
    for &(u, v) in del {
        if u == v {
            continue; // a self loop never changes reachability or SCCs
        }
        let (a, b) = (index.comp(u), index.comp(v));
        if a == b {
            // Intra-SCC deletion: only re-running SCC on the component's
            // members can tell whether it split.
            splits.push(a);
        } else {
            *pending.entry((a, b)).or_insert(0) += 1;
        }
    }
    splits.sort_unstable();
    splits.dedup();
    let mut dead_arcs: Vec<(u32, u32)> = Vec::new();
    for (&pair, &deleted) in &pending {
        let have = support.support(pair);
        debug_assert!(have >= deleted, "deleting more edges than pair {pair:?} supports");
        if have <= deleted && !support.is_latent(pair) {
            // The pair's last direct edge is going away and it is a real
            // DAG arc. (A dying *latent* pair is metadata-only: the DAG
            // witnesses its endpoints' reachability without it.)
            dead_arcs.push(pair);
        }
    }
    dead_arcs.sort_unstable();
    if splits.is_empty() && dead_arcs.is_empty() {
        DeletionClass::Metadata
    } else {
        DeletionClass::Structural { dead_arcs, splits }
    }
}

/// `descendants(targets) ∩ ancestors(sources)` over `dag`, or `None` as
/// soon as the result provably exceeds `cap`. The forward cone is
/// collected first (bailing past `cap·8` visited components — the cone
/// bounds the intersection, and a loose factor keeps a big cone from
/// spuriously failing a small region); the backward sweep then walks only
/// inside it, so its cost is bounded by the cone, not the whole DAG.
fn bounded_region(dag: &DiGraph, targets: &[V], sources: &[V], cap: usize) -> Option<Vec<u32>> {
    let k = dag.n();
    let mut in_cone = vec![false; k];
    let mut visited = 0usize;
    let mut stack: Vec<V> = Vec::new();
    let cone_cap = cap.saturating_mul(8).max(cap);
    for &t in targets {
        if !in_cone[t as usize] {
            in_cone[t as usize] = true;
            visited += 1;
            stack.push(t);
        }
    }
    while let Some(c) = stack.pop() {
        for &d in dag.out_neighbors(c) {
            if !in_cone[d as usize] {
                if visited >= cone_cap {
                    return None;
                }
                in_cone[d as usize] = true;
                visited += 1;
                stack.push(d);
            }
        }
    }
    // Backward from the sources, never leaving the cone.
    let mut in_region = vec![false; k];
    let mut region: Vec<u32> = Vec::new();
    for &s in sources {
        debug_assert!(in_cone[s as usize], "a cycle source is reachable from its target");
        if !in_region[s as usize] {
            in_region[s as usize] = true;
            region.push(s);
            stack.push(s);
        }
    }
    while let Some(c) = stack.pop() {
        for &p in dag.in_neighbors(c) {
            if in_cone[p as usize] && !in_region[p as usize] {
                if region.len() >= cap {
                    return None;
                }
                in_region[p as usize] = true;
                region.push(p);
                stack.push(p);
            }
        }
    }
    if region.len() > cap {
        return None;
    }
    region.sort_unstable();
    Some(region)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index_of(n: usize, edges: &[(V, V)]) -> Index {
        Index::build(&DiGraph::from_edges(n, edges))
    }

    #[test]
    fn absorbable_insertions_plan_absorb() {
        // {0,1} is an SCC; 1 -> 2 -> 3 is a tail.
        let idx = index_of(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]);
        let plan = plan_repair(&idx, &[(1, 0), (0, 3), (1, 3)], &[], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::Absorb);
    }

    #[test]
    fn structural_deletion_mixed_with_insertions_plans_full_rebuild() {
        // Deleting (1, 2) kills its arc (support 1); the insertion riding
        // along prices the delta out of the pure-deletion tiers.
        let idx = index_of(3, &[(0, 1), (1, 2)]);
        let plan = plan_repair(&idx, &[(0, 2)], &[(1, 2)], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::FullRebuild { reason: RebuildReason::Deletion });
    }

    #[test]
    fn parallel_support_deletion_plans_absorb() {
        // Two 2-cycles joined by two parallel supports of one arc.
        let idx = index_of(4, &[(0, 1), (1, 0), (2, 3), (3, 2), (1, 2), (0, 3)]);
        let plan = plan_repair(&idx, &[], &[(1, 2)], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::Absorb, "a parallel support survives");
        // Deleting both supports at once kills the arc.
        let plan = plan_repair(&idx, &[], &[(1, 2), (0, 3)], &RepairBudget::default());
        let arcs = vec![(idx.comp(1), idx.comp(2))];
        assert_eq!(plan, RepairPlan::ArcUnsplice { arcs });
    }

    #[test]
    fn self_loop_deletion_plans_absorb() {
        let idx = index_of(3, &[(0, 0), (0, 1), (1, 2)]);
        let plan = plan_repair(&idx, &[], &[(0, 0)], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::Absorb);
    }

    #[test]
    fn last_support_deletion_plans_unsplice() {
        let idx = index_of(3, &[(0, 1), (1, 2)]);
        let plan = plan_repair(&idx, &[], &[(1, 2)], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::ArcUnsplice { arcs: vec![(idx.comp(1), idx.comp(2))] });
    }

    #[test]
    fn latent_pair_deletion_plans_absorb() {
        // 0 -> 1 -> 2, then absorb a shortcut 0 -> 2 (never becomes an
        // arc). Deleting the shortcut is metadata-only: the DAG path
        // through 1 still witnesses 0 ⇝ 2.
        let idx = index_of(3, &[(0, 1), (1, 2)]);
        idx.note_absorbed(&[(0, 2)], &[]);
        let plan = plan_repair(&idx, &[], &[(0, 2)], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::Absorb);
    }

    #[test]
    fn intra_scc_deletion_plans_split_check() {
        // A 3-cycle feeding a tail; deleting a cycle edge needs the
        // split check over the cycle's component only.
        let idx = index_of(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let plan = plan_repair(&idx, &[], &[(1, 2)], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::SccSplit { comps: vec![idx.comp(1)], dead_arcs: vec![] });
    }

    #[test]
    fn split_and_dead_arc_combine_into_one_split_plan() {
        // Deleting a cycle edge *and* the tail arc in one delta.
        let idx = index_of(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]);
        let plan = plan_repair(&idx, &[], &[(1, 2), (2, 3)], &RepairBudget::default());
        assert_eq!(
            plan,
            RepairPlan::SccSplit {
                comps: vec![idx.comp(1)],
                dead_arcs: vec![(idx.comp(2), idx.comp(3))],
            }
        );
    }

    #[test]
    fn oversized_split_component_falls_back() {
        use pscc_graph::generators::simple::cycle_digraph;
        let idx = Index::build(&cycle_digraph(200));
        let tight = RepairBudget { region_frac: 0.1, min_region: 4, ..RepairBudget::default() };
        let plan = plan_repair(&idx, &[], &[(5, 6)], &tight);
        assert_eq!(plan, RepairPlan::FullRebuild { reason: RebuildReason::SplitOverBudget });
        // A budget admitting the whole component runs the split check.
        let roomy = RepairBudget { min_region: 256, ..RepairBudget::default() };
        let plan = plan_repair(&idx, &[], &[(5, 6)], &roomy);
        assert_eq!(plan, RepairPlan::SccSplit { comps: vec![idx.comp(5)], dead_arcs: vec![] });
    }

    #[test]
    fn index_without_a_support_table_prices_deletions_out() {
        // An index from a bare condensation never saw the graph.
        let g = DiGraph::from_edges(3, &[(0, 1), (1, 2)]);
        let scc = parallel_scc(&g, &SccConfig::default());
        let cond = pscc_apps::condense(&g, &scc.labels);
        let idx = Index::from_condensation(cond, &crate::IndexConfig::default());
        let plan = plan_repair(&idx, &[], &[(1, 2)], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::FullRebuild { reason: RebuildReason::Deletion });
    }

    #[test]
    fn cross_component_forward_edge_plans_splice() {
        // Two disconnected paths: 0 -> 1 and 2 -> 3.
        let idx = index_of(4, &[(0, 1), (2, 3)]);
        let plan = plan_repair(&idx, &[(1, 2)], &[], &RepairBudget::default());
        let arcs = vec![(idx.comp(1), idx.comp(2))];
        assert_eq!(plan, RepairPlan::DagSplice { arcs });
    }

    #[test]
    fn back_edge_plans_region_recompute_over_the_path() {
        // 0 -> 1 -> 2 -> 3 -> 4; inserting 3 -> 1 merges {1, 2, 3}.
        let idx = index_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let plan = plan_repair(&idx, &[(3, 1)], &[], &RepairBudget::default());
        match plan {
            RepairPlan::RegionRecompute { region, arcs } => {
                let mut want: Vec<u32> = vec![idx.comp(1), idx.comp(2), idx.comp(3)];
                want.sort_unstable();
                assert_eq!(region, want);
                assert_eq!(arcs, vec![(idx.comp(3), idx.comp(1))]);
            }
            other => panic!("expected RegionRecompute, got {other:?}"),
        }
    }

    #[test]
    fn jointly_cyclic_splices_are_detected() {
        // Two paths: 0 -> 1 and 2 -> 3. Inserting 1 -> 2 AND 3 -> 0 is
        // individually acyclic but jointly closes a cycle through all
        // four components — the supergraph test must catch it.
        let idx = index_of(4, &[(0, 1), (2, 3)]);
        let plan = plan_repair(&idx, &[(1, 2), (3, 0)], &[], &RepairBudget::default());
        match plan {
            RepairPlan::RegionRecompute { region, .. } => {
                let mut want: Vec<u32> = (0..4).map(|v| idx.comp(v)).collect();
                want.sort_unstable();
                assert_eq!(region, want, "all four components are on the joint cycle");
            }
            other => panic!("expected RegionRecompute, got {other:?}"),
        }
    }

    #[test]
    fn oversized_arc_sets_fall_back() {
        let edges: Vec<(V, V)> = (0..40).map(|i| (i, i + 1)).collect();
        let idx = index_of(41, &edges);
        // Every (even, odd) pair going backward is a distinct new arc.
        let ins: Vec<(V, V)> = (0..20).map(|i| (40 - i, i)).collect();
        let tight = RepairBudget { max_planned_arcs: 3, ..RepairBudget::default() };
        let plan = plan_repair(&idx, &ins, &[], &tight);
        assert_eq!(plan, RepairPlan::FullRebuild { reason: RebuildReason::PlannerOverflow });
    }

    #[test]
    fn oversized_region_falls_back() {
        // A long path; a back edge from the end to the start makes the
        // whole path the region.
        let edges: Vec<(V, V)> = (0..99).map(|i| (i, i + 1)).collect();
        let idx = index_of(100, &edges);
        let tight = RepairBudget { region_frac: 0.1, min_region: 4, ..RepairBudget::default() };
        let plan = plan_repair(&idx, &[(99, 0)], &[], &tight);
        assert_eq!(plan, RepairPlan::FullRebuild { reason: RebuildReason::RegionOverBudget });
        // A budget that admits the whole path repairs it in place.
        let roomy = RepairBudget { min_region: 128, ..RepairBudget::default() };
        let plan = plan_repair(&idx, &[(99, 0)], &[], &roomy);
        assert!(
            matches!(plan, RepairPlan::RegionRecompute { ref region, .. } if region.len() == 100)
        );
    }

    #[test]
    fn explain_records_inputs_and_rejections() {
        // 0 -> 1 -> 2 -> 3 -> 4; the back edge 3 -> 1 merges {1, 2, 3},
        // so the planner must reject absorb and dag_splice on the way to
        // region_recompute.
        let idx = index_of(5, &[(0, 1), (1, 2), (2, 3), (3, 4)]);
        let (plan, ex) = plan_repair_explained(&idx, &[(3, 1)], &[], &RepairBudget::default());
        assert_eq!(ex.chosen, plan.tier_name());
        assert_eq!(ex.chosen, "region_recompute");
        assert_eq!(ex.insertions, 1);
        assert_eq!(ex.deletions, 0);
        assert_eq!(ex.deletion_class, "none");
        assert_eq!(ex.new_arcs, 1);
        assert_eq!(ex.cyclic_arcs, 1);
        assert_eq!(ex.region_size, 3);
        assert!(ex.rejected.iter().any(|&(t, _)| t == "absorb"), "{:?}", ex.rejected);
        assert!(ex.rejected.iter().any(|&(t, _)| t == "dag_splice"), "{:?}", ex.rejected);
        let text = ex.describe();
        assert!(text.contains("region_recompute"), "{text}");
        assert!(text.contains("rejected dag_splice"), "{text}");
        let fields = ex.journal_fields();
        assert!(fields.iter().any(|(k, v)| *k == "chosen" && v == "region_recompute"));
        assert!(fields.iter().any(|(k, v)| *k == "region_size" && v == "3"));
    }

    #[test]
    fn explain_classifies_deletions_and_budget_price_outs() {
        // A structural deletion (last support of the 1 -> 2 arc).
        let idx = index_of(3, &[(0, 1), (1, 2)]);
        let (plan, ex) = plan_repair_explained(&idx, &[], &[(1, 2)], &RepairBudget::default());
        assert_eq!(plan, RepairPlan::ArcUnsplice { arcs: vec![(idx.comp(1), idx.comp(2))] });
        assert!(ex.has_support_table);
        assert_eq!(ex.deletion_class, "structural");
        assert_eq!(ex.dead_arcs, 1);
        assert_eq!(ex.split_comps, 0);
        // An over-budget merge region prices region_recompute out.
        let edges: Vec<(V, V)> = (0..99).map(|i| (i, i + 1)).collect();
        let long = index_of(100, &edges);
        let tight = RepairBudget { region_frac: 0.1, min_region: 4, ..RepairBudget::default() };
        let (plan, ex) = plan_repair_explained(&long, &[(99, 0)], &[], &tight);
        assert_eq!(plan, RepairPlan::FullRebuild { reason: RebuildReason::RegionOverBudget });
        assert_eq!(ex.chosen, "full_rebuild");
        assert_eq!(ex.region_size, 0);
        assert!(ex.rejected.iter().any(|&(t, _)| t == "region_recompute"), "{:?}", ex.rejected);
    }

    #[test]
    fn absorbability_follows_the_summary() {
        // {0,1} is an SCC; 1 -> 2 -> 3 is a tail.
        let idx = index_of(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]);
        // A back edge merges components: not absorbable, and one bad edge
        // taints the whole batch out of the absorb tier.
        let plan = plan_repair(&idx, &[(0, 3), (3, 0)], &[], &RepairBudget::default());
        assert!(!matches!(plan, RepairPlan::Absorb), "got {plan:?}");
    }
}

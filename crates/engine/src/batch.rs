//! Batched query execution: answer thousands of `(u, v)` reachability
//! queries in parallel over one shared [`Index`].
//!
//! Queries are distributed over workers with [`pscc_runtime::par_for`]
//! (blocked, dynamically claimed), writing into disjoint slots of the
//! result vector. A fixed-capacity concurrent memo caches component-pair
//! verdicts so hot pairs — repeated sources hitting the interval tier's
//! DFS fallback — are answered once; entries are evicted by overwrite
//! (LRU-style: the freshest verdict for a slot always wins, stale ones
//! simply fall out).

use crate::index::Index;
use pscc_graph::V;
use pscc_runtime::par_for_grain;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

/// Cached handle for the `pscc_batch_query_nanos` histogram (wall time
/// of each `answer` / `answer_sequential` call).
fn batch_histogram() -> &'static Arc<pscc_telemetry::Histogram> {
    static HIST: OnceLock<Arc<pscc_telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| pscc_telemetry::histogram("pscc_batch_query_nanos"))
}

/// Cached handle for the `pscc_batch_queries_total` counter.
fn queries_counter() -> &'static Arc<pscc_telemetry::Counter> {
    static C: OnceLock<Arc<pscc_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| pscc_telemetry::counter("pscc_batch_queries_total"))
}

/// Cached handle for the `pscc_batch_memo_hits_total` counter.
fn memo_hits_counter() -> &'static Arc<pscc_telemetry::Counter> {
    static C: OnceLock<Arc<pscc_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| pscc_telemetry::counter("pscc_batch_memo_hits_total"))
}

/// Cached handle for the `pscc_batch_memo_misses_total` counter.
fn memo_misses_counter() -> &'static Arc<pscc_telemetry::Counter> {
    static C: OnceLock<Arc<pscc_telemetry::Counter>> = OnceLock::new();
    C.get_or_init(|| pscc_telemetry::counter("pscc_batch_memo_misses_total"))
}

/// Cached handle for the `pscc_label_intersect_len` histogram: merge
/// steps per label-tier verdict, recorded on the EXPLAIN path (the
/// boolean serving path skips the record so the label hot loop stays free
/// of shared-counter traffic).
fn label_intersect_histogram() -> &'static Arc<pscc_telemetry::Histogram> {
    static HIST: OnceLock<Arc<pscc_telemetry::Histogram>> = OnceLock::new();
    HIST.get_or_init(|| pscc_telemetry::histogram("pscc_label_intersect_len"))
}

/// Options for [`QueryBatch`].
#[derive(Clone, Debug)]
pub struct BatchOptions {
    /// log2 of the memo capacity (0 disables the memo).
    pub memo_bits: u32,
    /// Queries per worker block.
    pub grain: usize,
}

impl Default for BatchOptions {
    fn default() -> Self {
        BatchOptions { memo_bits: 16, grain: 512 }
    }
}

/// Running tallies of one batch execution.
#[derive(Clone, Debug, Default)]
pub struct BatchStats {
    /// Queries answered.
    pub queries: usize,
    /// Memo hits among them.
    pub memo_hits: usize,
}

/// A reusable batch executor bound to one index.
pub struct QueryBatch<'a> {
    index: &'a Index,
    memo: std::sync::Arc<MemoCache>,
    queries: AtomicUsize,
    grain: usize,
}

impl<'a> QueryBatch<'a> {
    /// Creates an executor with default options.
    pub fn new(index: &'a Index) -> Self {
        Self::with_options(index, &BatchOptions::default())
    }

    /// Creates an executor with explicit options.
    pub fn with_options(index: &'a Index, opts: &BatchOptions) -> Self {
        let memo = std::sync::Arc::new(MemoCache::new(opts.memo_bits, index.num_components()));
        Self::with_shared_memo(index, memo, opts.grain)
    }

    /// Creates an executor over an existing memo (the catalog uses this to
    /// keep verdicts warm across batches against the same index).
    pub(crate) fn with_shared_memo(
        index: &'a Index,
        memo: std::sync::Arc<MemoCache>,
        grain: usize,
    ) -> Self {
        QueryBatch { index, memo, queries: AtomicUsize::new(0), grain: grain.max(1) }
    }

    /// The index this executor queries.
    pub fn index(&self) -> &Index {
        self.index
    }

    /// Answers one query through the memo.
    pub fn reaches(&self, u: V, v: V) -> bool {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let mut hits = 0usize;
        let ans = self.reaches_counted(u, v, &mut hits);
        if hits > 0 {
            self.memo.record_hit();
        }
        ans
    }

    /// The tally-free query core: memo hits accumulate into the caller's
    /// local counter instead of the shared atomic, so batch loops pay one
    /// `fetch_add` per *block* rather than per query (per-query traffic on
    /// a shared cache line was the warm-batch throughput ceiling).
    #[inline]
    fn reaches_counted(&self, u: V, v: V, hits: &mut usize) -> bool {
        let (cu, cv) = (self.index.comp(u) as usize, self.index.comp(v) as usize);
        if cu == cv {
            return true;
        }
        if let Some(hit) = self.memo.get(cu, cv) {
            *hits += 1;
            return hit;
        }
        let ans = self.index.comp_reaches(cu, cv);
        self.memo.put(cu, cv, ans);
        ans
    }

    /// Answers every query *with provenance*: the verdict plus the
    /// [`QueryTier`](crate::QueryTier) that decided it and the work done.
    /// Runs sequentially (EXPLAIN is a diagnostic path, not a serving
    /// path) but goes through the same memo and the same tier cascade as
    /// [`Self::answer`], so `explain(q)[i].reaches == answer(q)[i]`
    /// always — the only divergence possible is `Memo` appearing where a
    /// cold run would have consulted the summary.
    pub fn explain(&self, queries: &[(V, V)]) -> Vec<crate::explain::QueryExplain> {
        use crate::explain::{QueryExplain, QueryTier};
        queries
            .iter()
            .map(|&(u, v)| {
                self.queries.fetch_add(1, Ordering::Relaxed);
                let (cu, cv) = (self.index.comp(u) as usize, self.index.comp(v) as usize);
                if cu == cv {
                    return QueryExplain {
                        u,
                        v,
                        reaches: true,
                        tier: QueryTier::SameComponent,
                        dfs_visited: 0,
                    };
                }
                if let Some(hit) = self.memo.get(cu, cv) {
                    self.memo.record_hit();
                    return QueryExplain {
                        u,
                        v,
                        reaches: hit,
                        tier: QueryTier::Memo,
                        dfs_visited: 0,
                    };
                }
                let (ans, tier, visited) = self.index.comp_reaches_explained(cu, cv);
                if tier == QueryTier::LabelIntersect && pscc_telemetry::enabled() {
                    label_intersect_histogram().record_nanos(visited as u64);
                }
                self.memo.put(cu, cv, ans);
                QueryExplain { u, v, reaches: ans, tier, dfs_visited: visited }
            })
            .collect()
    }

    /// Answers every query in parallel; `out[i]` corresponds to
    /// `queries[i]`.
    pub fn answer(&self, queries: &[(V, V)]) -> Vec<bool> {
        self.instrumented(queries, || {
            if pscc_runtime::num_workers() <= 1 {
                // One worker: the atomic result bitmap buys nothing.
                return self.sequential_core(queries);
            }
            // The grain is rounded up to whole 64-bit result words, so
            // every block owns its words exclusively: verdicts accumulate
            // in a plain local word and land with one relaxed store per
            // word, and the query/memo-hit tallies fold into one atomic
            // add per block. The per-query `fetch_add`/`fetch_or` this
            // replaces serialized warm batches on two shared cache lines.
            let len = queries.len();
            let grain = self.grain.div_ceil(64) * 64;
            let words: Vec<AtomicU64> = (0..len.div_ceil(64)).map(|_| AtomicU64::new(0)).collect();
            par_for_grain(len.div_ceil(grain), 1, |b| {
                let start = b * grain;
                let end = (start + grain).min(len);
                let mut hits = 0usize;
                let mut word = 0u64;
                for i in start..end {
                    if i % 64 == 0 && i != start {
                        if word != 0 {
                            words[i / 64 - 1].store(word, Ordering::Relaxed);
                        }
                        word = 0;
                    }
                    let (u, v) = queries[i];
                    if self.reaches_counted(u, v, &mut hits) {
                        word |= 1 << (i % 64);
                    }
                }
                if word != 0 {
                    words[(end - 1) / 64].store(word, Ordering::Relaxed);
                }
                self.queries.fetch_add(end - start, Ordering::Relaxed);
                if hits > 0 {
                    self.memo.hits.fetch_add(hits, Ordering::Relaxed);
                }
            });
            (0..len).map(|i| words[i / 64].load(Ordering::Relaxed) >> (i % 64) & 1 == 1).collect()
        })
    }

    /// Answers every query one at a time on the calling thread (the
    /// baseline the `engine_queries` bench compares against).
    pub fn answer_sequential(&self, queries: &[(V, V)]) -> Vec<bool> {
        self.instrumented(queries, || self.sequential_core(queries))
    }

    fn sequential_core(&self, queries: &[(V, V)]) -> Vec<bool> {
        let mut hits = 0usize;
        let out: Vec<bool> =
            queries.iter().map(|&(u, v)| self.reaches_counted(u, v, &mut hits)).collect();
        self.queries.fetch_add(queries.len(), Ordering::Relaxed);
        if hits > 0 {
            self.memo.hits.fetch_add(hits, Ordering::Relaxed);
        }
        out
    }

    /// Runs `f` (the batch body over `queries`), recording the batch's
    /// wall time into `pscc_batch_query_nanos` and its query / memo-hit /
    /// memo-miss counts into the global counters. Per-query hot paths pay
    /// nothing for this: the hit count is a before/after diff of the
    /// memo's existing tally, which is exact for this batch unless
    /// another batch shares the same memo concurrently (then the split
    /// between the two is approximate; the totals still add up).
    fn instrumented(&self, queries: &[(V, V)], f: impl FnOnce() -> Vec<bool>) -> Vec<bool> {
        if !pscc_telemetry::enabled() || queries.is_empty() {
            return f();
        }
        let hits_before = self.memo.hits.load(Ordering::Relaxed);
        let timer = pscc_telemetry::Timer::start();
        let out = f();
        batch_histogram().record(timer.elapsed());
        let hits = self.memo.hits.load(Ordering::Relaxed).saturating_sub(hits_before);
        let total = queries.len();
        queries_counter().add(total as u64);
        memo_hits_counter().add(hits.min(total) as u64);
        memo_misses_counter().add(total.saturating_sub(hits) as u64);
        out
    }

    /// Tallies: queries answered by this executor, and hits of its memo
    /// (cumulative across executors when the memo is shared).
    pub fn stats(&self) -> BatchStats {
        BatchStats {
            queries: self.queries.load(Ordering::Relaxed),
            memo_hits: self.memo.hits.load(Ordering::Relaxed),
        }
    }
}

/// Fixed-capacity concurrent verdict cache: open-addressed, one atomic
/// u64 per slot packing `(cu, cv, verdict, occupied)`; collisions simply
/// overwrite.
pub(crate) struct MemoCache {
    slots: Vec<AtomicU64>,
    mask: usize,
    enabled: bool,
    hits: AtomicUsize,
}

/// Component ids must fit 31 bits each to pack into a slot.
const PACK_LIMIT: usize = 1 << 31;

impl MemoCache {
    pub(crate) fn new(bits: u32, num_components: usize) -> Self {
        let enabled = bits > 0 && num_components < PACK_LIMIT;
        let cap = if enabled { 1usize << bits.min(28) } else { 0 };
        MemoCache {
            slots: (0..cap).map(|_| AtomicU64::new(0)).collect(),
            mask: cap.saturating_sub(1),
            enabled,
            hits: AtomicUsize::new(0),
        }
    }

    #[inline]
    fn pack(cu: usize, cv: usize, verdict: bool) -> u64 {
        // [cu:31][cv:31][verdict:1][occupied:1]
        (cu as u64) << 33 | (cv as u64) << 2 | (verdict as u64) << 1 | 1
    }

    #[inline]
    fn slot_of(&self, cu: usize, cv: usize) -> usize {
        let h = pscc_runtime::hash64((cu as u64) << 32 | cv as u64);
        h as usize & self.mask
    }

    fn get(&self, cu: usize, cv: usize) -> Option<bool> {
        if !self.enabled {
            return None;
        }
        let e = self.slots[self.slot_of(cu, cv)].load(Ordering::Relaxed);
        if e & 1 == 1 && e >> 33 == cu as u64 && (e >> 2) & 0x7fff_ffff == cv as u64 {
            Some(e >> 1 & 1 == 1)
        } else {
            None
        }
    }

    fn put(&self, cu: usize, cv: usize, verdict: bool) {
        if self.enabled {
            self.slots[self.slot_of(cu, cv)].store(Self::pack(cu, cv, verdict), Ordering::Relaxed);
        }
    }

    fn record_hit(&self) {
        self.hits.fetch_add(1, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::IndexConfig;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::DiGraph;
    use pscc_runtime::SplitMix64;

    fn bfs_reaches(g: &DiGraph, u: V, v: V) -> bool {
        let mut seen = vec![false; g.n()];
        let mut stack = vec![u];
        seen[u as usize] = true;
        while let Some(x) = stack.pop() {
            if x == v {
                return true;
            }
            for &w in g.out_neighbors(x) {
                if !seen[w as usize] {
                    seen[w as usize] = true;
                    stack.push(w);
                }
            }
        }
        false
    }

    fn random_queries(n: usize, count: usize, seed: u64) -> Vec<(V, V)> {
        let mut rng = SplitMix64::new(seed);
        (0..count).map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)).collect()
    }

    #[test]
    fn batch_matches_oracle_and_sequential() {
        let g = gnm_digraph(200, 500, 1);
        let idx = Index::build(&g);
        let batch = QueryBatch::new(&idx);
        let queries = random_queries(200, 2000, 42);
        let par = batch.answer(&queries);
        let seq = batch.answer_sequential(&queries);
        assert_eq!(par, seq);
        for (i, &(u, v)) in queries.iter().enumerate() {
            assert_eq!(par[i], bfs_reaches(&g, u, v), "query ({u}, {v})");
        }
    }

    #[test]
    fn batch_matches_oracle_interval_tier() {
        let g = gnm_digraph(150, 350, 2);
        let cfg = IndexConfig { bitset_budget_bytes: 0, ..IndexConfig::default() };
        let idx = Index::build_with_config(&g, &cfg);
        let batch = QueryBatch::new(&idx);
        let queries = random_queries(150, 3000, 7);
        for (i, ans) in batch.answer(&queries).into_iter().enumerate() {
            let (u, v) = queries[i];
            assert_eq!(ans, bfs_reaches(&g, u, v), "query ({u}, {v})");
        }
    }

    #[test]
    fn memo_hits_on_repeated_queries() {
        let g = gnm_digraph(100, 220, 3);
        let cfg = IndexConfig { bitset_budget_bytes: 0, ..IndexConfig::default() };
        let idx = Index::build_with_config(&g, &cfg);
        let batch = QueryBatch::new(&idx);
        // Cross-component pairs repeated many times must mostly hit.
        let queries: Vec<(V, V)> =
            (0..1000).map(|i| (1 + (i % 3) as V, 90 + (i % 4) as V)).collect();
        let _ = batch.answer_sequential(&queries);
        let stats = batch.stats();
        assert_eq!(stats.queries, 1000);
        // At most 12 distinct cross-component pairs exist, so nearly every
        // non-same-component query after the first dozen hits the memo.
        let distinct_cross = queries
            .iter()
            .map(|&(u, v)| (idx.comp(u), idx.comp(v)))
            .filter(|(a, b)| a != b)
            .collect::<std::collections::HashSet<_>>()
            .len();
        let same_comp = queries.iter().filter(|&&(u, v)| idx.comp(u) == idx.comp(v)).count();
        assert_eq!(stats.memo_hits, 1000 - same_comp - distinct_cross, "stats {stats:?}");
    }

    #[test]
    fn memo_disabled_still_correct() {
        let g = gnm_digraph(80, 200, 4);
        let idx = Index::build(&g);
        let opts = BatchOptions { memo_bits: 0, ..BatchOptions::default() };
        let batch = QueryBatch::with_options(&idx, &opts);
        let queries = random_queries(80, 500, 9);
        for (i, ans) in batch.answer(&queries).into_iter().enumerate() {
            let (u, v) = queries[i];
            assert_eq!(ans, bfs_reaches(&g, u, v));
        }
    }

    #[test]
    fn empty_batch_is_empty() {
        let g = gnm_digraph(10, 20, 5);
        let idx = Index::build(&g);
        let batch = QueryBatch::new(&idx);
        assert!(batch.answer(&[]).is_empty());
    }

    #[test]
    fn explain_agrees_with_answer_and_reports_tiers() {
        use crate::explain::QueryTier;
        let g = gnm_digraph(150, 350, 2);
        // Interval tier: exercises exception lists, refutes, and the DFS.
        let cfg = IndexConfig { bitset_budget_bytes: 0, ..IndexConfig::default() };
        let idx = Index::build_with_config(&g, &cfg);
        let batch = QueryBatch::new(&idx);
        let queries = random_queries(150, 2000, 13);
        let answers = batch.answer_sequential(&queries);
        // Fresh executor so no memo entries mask the real tiers.
        let cold = QueryBatch::new(&idx);
        let explains = cold.explain(&queries);
        assert_eq!(explains.len(), answers.len());
        let mut tiers = std::collections::HashSet::new();
        for (ex, &ans) in explains.iter().zip(&answers) {
            assert_eq!(ex.reaches, ans, "explain({}, {}) disagrees with answer", ex.u, ex.v);
            if ex.tier != QueryTier::PrunedDfs {
                assert_eq!(ex.dfs_visited, 0);
            }
            tiers.insert(ex.tier.name());
        }
        assert!(tiers.contains("same_component"), "tiers seen: {tiers:?}");
        assert!(tiers.contains("level_prune"), "tiers seen: {tiers:?}");
        // Re-explaining the same queries on the same executor hits the memo.
        let warm = cold.explain(&queries);
        assert!(
            warm.iter().any(|ex| ex.tier == QueryTier::Memo),
            "repeated cross-component queries must report memo provenance"
        );
        for (w, ex) in warm.iter().zip(&explains) {
            assert_eq!(w.reaches, ex.reaches);
        }
    }

    #[test]
    fn explain_reports_bitset_rows_on_the_bitset_tier() {
        use crate::explain::QueryTier;
        let g = gnm_digraph(100, 220, 3);
        let idx = Index::build(&g);
        assert_eq!(idx.tier(), crate::SummaryTier::Bitset);
        let batch = QueryBatch::new(&idx);
        let explains = batch.explain(&random_queries(100, 500, 17));
        assert!(
            explains.iter().any(|ex| ex.tier == QueryTier::BitsetRow),
            "bitset-tier index must answer some queries via its rows"
        );
        assert!(explains.iter().all(|ex| ex.tier != QueryTier::PrunedDfs));
    }

    #[test]
    fn label_tier_batch_matches_oracle_and_explains_intersections() {
        use crate::explain::QueryTier;
        let g = gnm_digraph(150, 350, 2);
        let cfg = IndexConfig {
            bitset_budget_bytes: 0,
            label_min_components: 0,
            ..IndexConfig::default()
        };
        let idx = Index::build_with_config(&g, &cfg);
        assert_eq!(idx.tier(), crate::SummaryTier::Labels);
        let batch = QueryBatch::new(&idx);
        let queries = random_queries(150, 3000, 21);
        for (i, ans) in batch.answer(&queries).into_iter().enumerate() {
            let (u, v) = queries[i];
            assert_eq!(ans, bfs_reaches(&g, u, v), "query ({u}, {v})");
        }
        // A cold executor must attribute summary verdicts to the label
        // tier — the label path has no DFS fallback to leak into.
        let cold = QueryBatch::new(&idx);
        let explains = cold.explain(&queries);
        assert!(
            explains.iter().any(|ex| ex.tier == QueryTier::LabelIntersect),
            "label-tier index must answer some queries via intersections"
        );
        assert!(explains.iter().all(|ex| ex.tier != QueryTier::PrunedDfs
            && ex.tier != QueryTier::BitsetRow
            && ex.tier != QueryTier::ExceptionList
            && ex.tier != QueryTier::IntervalRefute));
    }

    #[test]
    fn explain_describe_mentions_the_tier() {
        let g = gnm_digraph(50, 120, 4);
        let idx = Index::build(&g);
        let batch = QueryBatch::new(&idx);
        let ex = &batch.explain(&[(0, 1)])[0];
        let line = ex.describe();
        assert!(line.contains("0 -> 1"), "{line}");
        assert!(line.contains(ex.tier.name()), "{line}");
    }

    #[test]
    fn oversubscribed_batch_agrees() {
        let g = gnm_digraph(300, 900, 6);
        let idx = Index::build(&g);
        let batch = QueryBatch::with_options(&idx, &BatchOptions { grain: 16, memo_bits: 8 });
        let queries = random_queries(300, 4000, 11);
        let seq = batch.answer_sequential(&queries);
        let par = pscc_runtime::with_threads(8, || batch.answer(&queries));
        assert_eq!(seq, par);
    }
}

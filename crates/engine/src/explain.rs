//! Query and planner provenance: *which* path answered, and *why*.
//!
//! The engine can answer a reachability query seven different ways (same
//! SCC, level prune, memo, bitset row, 2-hop label intersection, exception
//! list, interval labels with a pruned-DFS fallback) and repair an index
//! six different ways
//! (absorb through full rebuild). The serving API only returns booleans
//! and tallies — fine for throughput, useless for "why was *this* query
//! slow" or "why did *that* delta fall to a full rebuild". This module
//! carries the provenance:
//!
//! * [`QueryExplain`] — per-query: the verdict, the [`QueryTier`] that
//!   decided it, and the work done (DFS nodes visited on the fallback
//!   path). Produced by [`QueryBatch::explain`](crate::QueryBatch::explain)
//!   and [`Catalog::answer_batch_explained`](crate::Catalog::answer_batch_explained).
//! * [`PlanExplain`] — per-delta: the cost-model inputs the planner saw
//!   (deletion classification, support-table state, contracted arc
//!   counts, region size, budget) and every cheaper tier it rejected,
//!   with the reason. Produced by
//!   [`plan_repair_explained`](crate::planner::plan_repair_explained),
//!   surfaced via
//!   [`Catalog::last_plan_explain`](crate::Catalog::last_plan_explain),
//!   and recorded to the flight-recorder journal.

/// The decision path that produced one query verdict, ordered roughly
/// cheapest-first.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryTier {
    /// `u` and `v` share an SCC: `true` in O(1) from the component map.
    SameComponent,
    /// `level(cu) >= level(cv)`: `false` in O(1) — every DAG arc strictly
    /// increases the topological level, so no path can exist.
    LevelPrune,
    /// The component-pair verdict was already in the batch memo.
    Memo,
    /// One bit test in the bitset tier's descendant row.
    BitsetRow,
    /// One merge-intersection of the 2-hop label tier's sorted hub arrays
    /// (`label_out(u)` against `label_in(v)`) — the label path never falls
    /// back to a DFS.
    LabelIntersect,
    /// The source component carries an exact exception list; binary
    /// search decided.
    ExceptionList,
    /// The interval labelings refuted reachability without any traversal
    /// (`may_reach` failed for some labeling).
    IntervalRefute,
    /// Every prune let the query through: the interval tier ran its
    /// pruned DFS over the condensation DAG.
    PrunedDfs,
}

impl QueryTier {
    /// Stable lower-snake name, as printed in EXPLAIN output and journal
    /// events.
    pub fn name(&self) -> &'static str {
        match self {
            QueryTier::SameComponent => "same_component",
            QueryTier::LevelPrune => "level_prune",
            QueryTier::Memo => "memo",
            QueryTier::BitsetRow => "bitset_row",
            QueryTier::LabelIntersect => "label_intersect",
            QueryTier::ExceptionList => "exception_list",
            QueryTier::IntervalRefute => "interval_refute",
            QueryTier::PrunedDfs => "pruned_dfs",
        }
    }
}

/// Provenance of one answered query.
#[derive(Clone, Debug)]
pub struct QueryExplain {
    /// Source vertex.
    pub u: pscc_graph::V,
    /// Target vertex.
    pub v: pscc_graph::V,
    /// The verdict, identical to what `answer` would return.
    pub reaches: bool,
    /// The tier that decided it.
    pub tier: QueryTier,
    /// Work done on the summary's slow-ish paths: condensation components
    /// visited by the pruned DFS when `tier` is [`QueryTier::PrunedDfs`],
    /// or merge steps taken by the sorted-hub intersection when `tier` is
    /// [`QueryTier::LabelIntersect`]; 0 everywhere else.
    pub dfs_visited: usize,
}

impl QueryExplain {
    /// One human-readable line, e.g. `0 -> 4 = true via pruned_dfs (7 visited)`.
    pub fn describe(&self) -> String {
        let mut out =
            format!("{} -> {} = {} via {}", self.u, self.v, self.reaches, self.tier.name());
        if self.tier == QueryTier::PrunedDfs {
            out.push_str(&format!(" ({} visited)", self.dfs_visited));
        }
        out
    }
}

/// The planner's cost-model inputs and decisions for one delta: what it
/// measured, which cheaper tiers it rejected and why, and what it chose.
///
/// Counts refer to the *contracted* view (condensation arcs and
/// components), not raw edges, matching the quantities the budget prices.
#[derive(Clone, Debug, Default)]
pub struct PlanExplain {
    /// Effective edge insertions in the delta.
    pub insertions: usize,
    /// Effective edge deletions in the delta.
    pub deletions: usize,
    /// Whether the index carries an arc-support table (without one, every
    /// deletion is unplannable).
    pub has_support_table: bool,
    /// How the deletions classified: `"none"`, `"metadata"`,
    /// `"structural"`, or `"unplannable"`.
    pub deletion_class: &'static str,
    /// DAG arcs whose last direct-edge support the delta kills.
    pub dead_arcs: usize,
    /// Components an intra-SCC deletion may split.
    pub split_comps: usize,
    /// Total vertices in those components (what the split budget prices).
    pub split_vertices: usize,
    /// Distinct non-absorbable new condensation arcs.
    pub new_arcs: usize,
    /// How many of those close a cycle among components.
    pub cyclic_arcs: usize,
    /// Size of the computed merge region in components (0 when no region
    /// was computed or it overran the budget).
    pub region_size: usize,
    /// Budget: [`RepairBudget::max_planned_arcs`](crate::RepairBudget::max_planned_arcs).
    pub max_planned_arcs: usize,
    /// Budget: [`RepairBudget::max_region`](crate::RepairBudget::max_region)
    /// at the index's current size.
    pub max_region: usize,
    /// Cheaper tiers rejected on the way down, as `(tier, why)` pairs in
    /// rejection order.
    pub rejected: Vec<(&'static str, &'static str)>,
    /// Tier name of the chosen plan
    /// ([`RepairPlan::tier_name`](crate::RepairPlan::tier_name)).
    pub chosen: &'static str,
}

impl PlanExplain {
    pub(crate) fn reject(&mut self, tier: &'static str, why: &'static str) {
        self.rejected.push((tier, why));
    }

    /// The explain as flat `key=value` fields for the flight-recorder
    /// journal (rejections joined as `tier:why` with `;`).
    pub fn journal_fields(&self) -> Vec<(&'static str, String)> {
        let rejected = self
            .rejected
            .iter()
            .map(|(tier, why)| format!("{tier}:{why}"))
            .collect::<Vec<_>>()
            .join("; ");
        vec![
            ("chosen", self.chosen.to_string()),
            ("insertions", self.insertions.to_string()),
            ("deletions", self.deletions.to_string()),
            ("support_table", self.has_support_table.to_string()),
            ("deletion_class", self.deletion_class.to_string()),
            ("dead_arcs", self.dead_arcs.to_string()),
            ("split_comps", self.split_comps.to_string()),
            ("split_vertices", self.split_vertices.to_string()),
            ("new_arcs", self.new_arcs.to_string()),
            ("cyclic_arcs", self.cyclic_arcs.to_string()),
            ("region_size", self.region_size.to_string()),
            ("max_planned_arcs", self.max_planned_arcs.to_string()),
            ("max_region", self.max_region.to_string()),
            ("rejected", rejected),
        ]
    }

    /// A multi-line human-readable report, for the server example and
    /// doctor output.
    pub fn describe(&self) -> String {
        let mut out = format!(
            "plan: {} ({} ins, {} del; support table: {})\n  inputs: deletion_class={} \
             dead_arcs={} split_comps={} split_vertices={} new_arcs={} cyclic_arcs={} \
             region_size={}\n  budget: max_planned_arcs={} max_region={}",
            self.chosen,
            self.insertions,
            self.deletions,
            if self.has_support_table { "yes" } else { "no" },
            self.deletion_class,
            self.dead_arcs,
            self.split_comps,
            self.split_vertices,
            self.new_arcs,
            self.cyclic_arcs,
            self.region_size,
            self.max_planned_arcs,
            self.max_region,
        );
        for (tier, why) in &self.rejected {
            out.push_str(&format!("\n  rejected {tier}: {why}"));
        }
        out
    }
}

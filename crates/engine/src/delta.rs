//! Batched edge updates for registered graphs: the [`Delta`] type, its
//! normalization rules, and the report of what applying one did.
//!
//! ## Semantics
//!
//! A delta is a set of edge insertions and deletions applied atomically to
//! one registered graph: the result is `(G ∖ deletions) ∪ insertions`
//! over the same vertex set (an edge named by both lists ends up
//! **present**). Inserting an edge that already exists or deleting one
//! that doesn't is a no-op, so deltas are idempotent.
//!
//! [`Delta::normalized`] reduces a batch to that canonical form up front —
//! duplicates within each list collapse, and an insert+delete pair drops
//! its deletion per the ends-up-present rule — so classification, the
//! write-ahead log, and the CSR merge all see one edge at most once.
//!
//! ## How the index is repaired
//!
//! Applying a delta through [`crate::Catalog::apply_delta`] no longer
//! faces a binary absorb-or-rebuild choice: the effective changes are
//! handed to the **tiered repair planner** ([`crate::planner`]), which
//! picks the cheapest provably correct repair — keep the index untouched
//! ([`DeltaOutcome::Absorbed`]), splice new condensation arcs and patch
//! only the affected ancestors ([`DeltaOutcome::DagSpliced`]), re-run SCC
//! on just the affected DAG region ([`DeltaOutcome::RegionRecomputed`]),
//! or fall back to the off-lock full rebuild when a localized repair
//! would not win ([`DeltaOutcome::Rebuilt`]). See the planner module for
//! the tier definitions and the correctness argument behind each.

use pscc_graph::{dedup_edges, V};

/// A batch of edge insertions and deletions for one graph.
///
/// Build one incrementally with [`Delta::insert`] / [`Delta::delete`] (or
/// in bulk with [`Delta::from_parts`]) and apply it through
/// [`crate::Catalog::apply_delta`].
///
/// ```
/// use pscc_engine::Delta;
///
/// let mut delta = Delta::new();
/// delta.insert(0, 3).insert(3, 4).delete(1, 2);
/// assert_eq!(delta.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Delta {
    insertions: Vec<(V, V)>,
    deletions: Vec<(V, V)>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// A delta from bulk edge lists.
    pub fn from_parts(insertions: Vec<(V, V)>, deletions: Vec<(V, V)>) -> Self {
        Delta { insertions, deletions }
    }

    /// Queues the insertion of edge `u → v`.
    pub fn insert(&mut self, u: V, v: V) -> &mut Self {
        self.insertions.push((u, v));
        self
    }

    /// Queues the deletion of edge `u → v`.
    pub fn delete(&mut self, u: V, v: V) -> &mut Self {
        self.deletions.push((u, v));
        self
    }

    /// The queued insertions, in queue order.
    pub fn insertions(&self) -> &[(V, V)] {
        &self.insertions
    }

    /// The queued deletions, in queue order.
    pub fn deletions(&self) -> &[(V, V)] {
        &self.deletions
    }

    /// Total queued operations.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True if no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }

    /// The canonical form of this delta, independent of any graph:
    ///
    /// * both lists are sorted and deduplicated (a delta is a *set* of
    ///   operations — repeating one changes nothing);
    /// * an edge named by both lists keeps only its insertion, per the
    ///   documented ends-up-present rule. Queue **order is irrelevant**:
    ///   delete-then-insert-then-delete of one edge resolves exactly like
    ///   insert-then-delete — the edge ends up present.
    ///
    /// [`crate::Catalog::apply_delta`] normalizes every delta before
    /// classification and merging, so downstream code (the repair
    /// planner, the write-ahead log, the CSR merge) sees each edge at
    /// most once with an unambiguous operation.
    ///
    /// ```
    /// use pscc_engine::Delta;
    ///
    /// let mut d = Delta::new();
    /// d.insert(0, 1).insert(0, 1).delete(0, 1).delete(2, 3);
    /// let n = d.normalized();
    /// assert_eq!(n.insertions(), &[(0, 1)]); // deduped
    /// assert_eq!(n.deletions(), &[(2, 3)]); // (0, 1) ends up present
    /// ```
    pub fn normalized(&self) -> Delta {
        let mut insertions = self.insertions.clone();
        dedup_edges(&mut insertions);
        let mut deletions: Vec<(V, V)> = self
            .deletions
            .iter()
            .filter(|e| insertions.binary_search(e).is_err())
            .copied()
            .collect();
        dedup_edges(&mut deletions);
        Delta { insertions, deletions }
    }
}

/// Which repair tier [`crate::Catalog::apply_delta`] took (see
/// [`crate::planner`] for the tier definitions).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// Every operation was redundant (insertions already present,
    /// deletions already absent): nothing changed, index untouched.
    NoOp,
    /// The graph was updated; no index existed yet, so the next query
    /// builds a fresh one over the new graph.
    Deferred,
    /// The graph was updated and every effective change provably preserves
    /// the reachability relation: the existing index and its warm memo
    /// were kept.
    Absorbed,
    /// The graph was updated and the new edges only added condensation
    /// arcs (no component merges): the index was patched in place by the
    /// arc-splice tier (SCC labels untouched, levels/summary repaired for
    /// affected ancestors only).
    DagSpliced,
    /// The graph was updated and some new edges merged components: SCC
    /// re-ran on just the affected DAG region and the condensation was
    /// contracted through the merge map.
    RegionRecomputed,
    /// The graph was updated and some deletions took condensation arcs'
    /// last direct-edge support away (without splitting any component):
    /// the dead arcs were removed in place, levels relaxed and summaries
    /// narrowed for affected ancestors only.
    ArcUnspliced,
    /// The graph was updated and an intra-SCC deletion split its
    /// component: SCC re-ran on just that component's members and the
    /// sub-components were spliced back into the DAG.
    SccSplit,
    /// The graph was updated and no localized repair would win (a delta
    /// mixing structural deletions with insertions, or a repair past the
    /// planner's budget): the index was rebuilt from scratch (with a
    /// fresh memo).
    Rebuilt,
}

/// What applying one [`Delta`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaReport {
    /// Index-repair path taken.
    pub outcome: DeltaOutcome,
    /// Edges actually added (queued insertions not already present).
    pub inserted: usize,
    /// Edges actually removed (queued deletions that were present and not
    /// re-inserted by the same delta).
    pub deleted: usize,
}

/// Why a [`Delta`] could not be applied. Nothing is modified when
/// [`crate::Catalog::apply_delta`] returns one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// No graph is registered under the given name.
    UnknownGraph(String),
    /// An operation names a vertex outside the graph's vertex set.
    EndpointOutOfRange {
        /// The offending edge.
        edge: (V, V),
        /// The graph's vertex count.
        n: usize,
    },
    /// The entry is durable and its write-ahead append failed (the
    /// rendered `io::Error`). The delta was **not** applied: write-ahead
    /// means nothing mutates until the log has it.
    Storage(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownGraph(name) => write!(f, "no graph registered as {name:?}"),
            DeltaError::EndpointOutOfRange { edge: (u, v), n } => {
                write!(f, "delta edge ({u}, {v}) out of range (n={n})")
            }
            DeltaError::Storage(msg) => write!(f, "write-ahead append failed: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_operations() {
        let mut d = Delta::new();
        d.insert(1, 2).insert(2, 3).delete(0, 1);
        assert_eq!(d.insertions(), &[(1, 2), (2, 3)]);
        assert_eq!(d.deletions(), &[(0, 1)]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(Delta::new().is_empty());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = DeltaError::UnknownGraph("web".into());
        assert!(e.to_string().contains("web"));
        let e = DeltaError::EndpointOutOfRange { edge: (3, 9), n: 5 };
        assert!(e.to_string().contains("(3, 9)") && e.to_string().contains("n=5"));
    }

    #[test]
    fn normalize_dedupes_repeated_insertions() {
        let mut d = Delta::new();
        d.insert(5, 6).insert(0, 1).insert(5, 6).insert(5, 6);
        let n = d.normalized();
        assert_eq!(n.insertions(), &[(0, 1), (5, 6)]);
        assert!(n.deletions().is_empty());
    }

    #[test]
    fn normalize_dedupes_repeated_deletions() {
        let mut d = Delta::new();
        d.delete(2, 0).delete(2, 0).delete(1, 1);
        let n = d.normalized();
        assert!(n.insertions().is_empty());
        assert_eq!(n.deletions(), &[(1, 1), (2, 0)]);
    }

    #[test]
    fn normalize_drops_deletion_of_inserted_edge() {
        // Ends-up-present: the insertion wins, the deletion vanishes.
        let mut d = Delta::new();
        d.insert(0, 1).delete(0, 1).delete(3, 4);
        let n = d.normalized();
        assert_eq!(n.insertions(), &[(0, 1)]);
        assert_eq!(n.deletions(), &[(3, 4)]);
    }

    #[test]
    fn normalize_handles_duplicate_conflicting_pairs() {
        // Many copies of the same conflicted edge still resolve to one
        // insertion and no deletion.
        let mut d = Delta::new();
        d.insert(7, 8).insert(7, 8).delete(7, 8).delete(7, 8);
        let n = d.normalized();
        assert_eq!(n.insertions(), &[(7, 8)]);
        assert!(n.deletions().is_empty());
    }

    #[test]
    fn normalize_delete_insert_delete_is_insert_wins() {
        // A delta is a *set* of operations — queue order is irrelevant.
        // delete → insert → delete of one edge must resolve exactly like
        // insert → delete: the insertion wins, the edge ends up present.
        let mut d = Delta::new();
        d.delete(4, 5).insert(4, 5).delete(4, 5);
        let n = d.normalized();
        assert_eq!(n.insertions(), &[(4, 5)]);
        assert!(n.deletions().is_empty());
    }

    #[test]
    fn normalize_insert_delete_insert_is_insert_wins() {
        let mut d = Delta::new();
        d.insert(1, 2).delete(1, 2).insert(1, 2);
        let n = d.normalized();
        assert_eq!(n.insertions(), &[(1, 2)]);
        assert!(n.deletions().is_empty());
    }

    #[test]
    fn normalize_is_order_independent() {
        // Every interleaving of the same multiset of operations yields
        // the same canonical form.
        let ops: [(&str, V, V); 6] =
            [("d", 0, 1), ("i", 0, 1), ("d", 0, 1), ("i", 2, 3), ("d", 4, 5), ("d", 2, 3)];
        let build = |order: &[usize]| {
            let mut d = Delta::new();
            for &k in order {
                let (op, u, v) = ops[k];
                if op == "i" {
                    d.insert(u, v);
                } else {
                    d.delete(u, v);
                }
            }
            d.normalized()
        };
        let want = build(&[0, 1, 2, 3, 4, 5]);
        for order in
            [[5, 4, 3, 2, 1, 0], [2, 0, 1, 5, 3, 4], [3, 5, 4, 0, 2, 1], [1, 2, 0, 4, 5, 3]]
        {
            let got = build(&order);
            assert_eq!(got.insertions(), want.insertions(), "order {order:?}");
            assert_eq!(got.deletions(), want.deletions(), "order {order:?}");
        }
        assert_eq!(want.insertions(), &[(0, 1), (2, 3)]);
        assert_eq!(want.deletions(), &[(4, 5)]);
    }

    #[test]
    fn normalize_of_empty_is_empty() {
        let n = Delta::new().normalized();
        assert!(n.is_empty());
    }

    #[test]
    fn normalize_is_idempotent() {
        let mut d = Delta::new();
        d.insert(3, 1).insert(3, 1).delete(3, 1).delete(0, 2).delete(0, 2);
        let once = d.normalized();
        let twice = once.normalized();
        assert_eq!(once.insertions(), twice.insertions());
        assert_eq!(once.deletions(), twice.deletions());
    }
}

//! Batched edge updates for registered graphs: the [`Delta`] type, the
//! report of what applying one did, and the absorbability rule behind the
//! catalog's incremental index repair.
//!
//! ## Semantics
//!
//! A delta is a set of edge insertions and deletions applied atomically to
//! one registered graph: the result is `(G ∖ deletions) ∪ insertions`
//! over the same vertex set (an edge named by both lists ends up
//! **present**). Inserting an edge that already exists or deleting one
//! that doesn't is a no-op, so deltas are idempotent.
//!
//! ## When the index survives
//!
//! The reachability index answers from SCC labels plus a condensation-DAG
//! summary, so it only has to be rebuilt when a delta can *change* the
//! reachability relation:
//!
//! * an **effective deletion** (the edge was present) can remove paths or
//!   split an SCC → rebuild;
//! * an inserted edge `u → v` with `comp(u) == comp(v)` adds a parallel
//!   route inside one SCC → answers unchanged;
//! * an inserted edge whose component pair is **already reachable**
//!   (`comp(u) ⇝ comp(v)` per the summary) only duplicates an existing
//!   path: `u` reaches `v` through the old graph, so by induction every
//!   path using new edges can be rerouted over old ones — answers
//!   unchanged, and no cycle can form (that would need `comp(v) ⇝
//!   comp(u)`, contradicting DAG acyclicity);
//! * any other insertion can add DAG reachability or merge components →
//!   rebuild.
//!
//! When every change falls in the two "unchanged" classes the catalog
//! keeps the existing `Arc<Index>` *and* its warm memo, and the index
//! records the absorption in [`IndexStats::absorbed_deltas`]; otherwise it
//! rebuilds with [`BuildCause::DeltaRebuild`].
//!
//! [`IndexStats::absorbed_deltas`]: crate::index::IndexStats::absorbed_deltas
//! [`BuildCause::DeltaRebuild`]: crate::index::BuildCause::DeltaRebuild

use crate::index::Index;
use pscc_graph::V;

/// A batch of edge insertions and deletions for one graph.
///
/// Build one incrementally with [`Delta::insert`] / [`Delta::delete`] (or
/// in bulk with [`Delta::from_parts`]) and apply it through
/// [`crate::Catalog::apply_delta`].
///
/// ```
/// use pscc_engine::Delta;
///
/// let mut delta = Delta::new();
/// delta.insert(0, 3).insert(3, 4).delete(1, 2);
/// assert_eq!(delta.len(), 3);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Delta {
    insertions: Vec<(V, V)>,
    deletions: Vec<(V, V)>,
}

impl Delta {
    /// An empty delta.
    pub fn new() -> Self {
        Self::default()
    }

    /// A delta from bulk edge lists.
    pub fn from_parts(insertions: Vec<(V, V)>, deletions: Vec<(V, V)>) -> Self {
        Delta { insertions, deletions }
    }

    /// Queues the insertion of edge `u → v`.
    pub fn insert(&mut self, u: V, v: V) -> &mut Self {
        self.insertions.push((u, v));
        self
    }

    /// Queues the deletion of edge `u → v`.
    pub fn delete(&mut self, u: V, v: V) -> &mut Self {
        self.deletions.push((u, v));
        self
    }

    /// The queued insertions, in queue order.
    pub fn insertions(&self) -> &[(V, V)] {
        &self.insertions
    }

    /// The queued deletions, in queue order.
    pub fn deletions(&self) -> &[(V, V)] {
        &self.deletions
    }

    /// Total queued operations.
    pub fn len(&self) -> usize {
        self.insertions.len() + self.deletions.len()
    }

    /// True if no operations are queued.
    pub fn is_empty(&self) -> bool {
        self.insertions.is_empty() && self.deletions.is_empty()
    }
}

/// Which path [`crate::Catalog::apply_delta`] took.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DeltaOutcome {
    /// Every operation was redundant (insertions already present,
    /// deletions already absent): nothing changed, index untouched.
    NoOp,
    /// The graph was updated; no index existed yet, so the next query
    /// builds a fresh one over the new graph.
    Deferred,
    /// The graph was updated and every effective change provably preserves
    /// the reachability relation: the existing index and its warm memo
    /// were kept.
    Absorbed,
    /// The graph was updated and the delta could change reachability: the
    /// index was rebuilt (with a fresh memo).
    Rebuilt,
}

/// What applying one [`Delta`] did.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DeltaReport {
    /// Index-repair path taken.
    pub outcome: DeltaOutcome,
    /// Edges actually added (queued insertions not already present).
    pub inserted: usize,
    /// Edges actually removed (queued deletions that were present and not
    /// re-inserted by the same delta).
    pub deleted: usize,
}

/// Why a [`Delta`] could not be applied. Nothing is modified when
/// [`crate::Catalog::apply_delta`] returns one of these.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DeltaError {
    /// No graph is registered under the given name.
    UnknownGraph(String),
    /// An operation names a vertex outside the graph's vertex set.
    EndpointOutOfRange {
        /// The offending edge.
        edge: (V, V),
        /// The graph's vertex count.
        n: usize,
    },
    /// The entry is durable and its write-ahead append failed (the
    /// rendered `io::Error`). The delta was **not** applied: write-ahead
    /// means nothing mutates until the log has it.
    Storage(String),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownGraph(name) => write!(f, "no graph registered as {name:?}"),
            DeltaError::EndpointOutOfRange { edge: (u, v), n } => {
                write!(f, "delta edge ({u}, {v}) out of range (n={n})")
            }
            DeltaError::Storage(msg) => write!(f, "write-ahead append failed: {msg}"),
        }
    }
}

impl std::error::Error for DeltaError {}

/// True if inserting every edge in `ins` provably leaves the reachability
/// relation of the indexed graph unchanged (see the module docs for the
/// argument). Each edge is checked independently: individual
/// absorbability implies joint absorbability because every absorbable
/// edge's endpoints were already connected in the *old* graph.
pub(crate) fn absorbs_all(index: &Index, ins: &[(V, V)]) -> bool {
    ins.iter().all(|&(u, v)| {
        let (cu, cv) = (index.comp(u) as usize, index.comp(v) as usize);
        cu == cv || index.comp_reaches(cu, cv)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_operations() {
        let mut d = Delta::new();
        d.insert(1, 2).insert(2, 3).delete(0, 1);
        assert_eq!(d.insertions(), &[(1, 2), (2, 3)]);
        assert_eq!(d.deletions(), &[(0, 1)]);
        assert_eq!(d.len(), 3);
        assert!(!d.is_empty());
        assert!(Delta::new().is_empty());
    }

    #[test]
    fn error_messages_are_descriptive() {
        let e = DeltaError::UnknownGraph("web".into());
        assert!(e.to_string().contains("web"));
        let e = DeltaError::EndpointOutOfRange { edge: (3, 9), n: 5 };
        assert!(e.to_string().contains("(3, 9)") && e.to_string().contains("n=5"));
    }

    #[test]
    fn absorbability_follows_the_summary() {
        use pscc_graph::DiGraph;
        // {0,1} is an SCC; 1 -> 2 -> 3 is a tail.
        let g = DiGraph::from_edges(4, &[(0, 1), (1, 0), (1, 2), (2, 3)]);
        let idx = Index::build(&g);
        // In-SCC and already-reachable insertions absorb.
        assert!(absorbs_all(&idx, &[(1, 0), (0, 3), (1, 3)]));
        // A back edge would merge components: not absorbable.
        assert!(!absorbs_all(&idx, &[(3, 0)]));
        // One bad edge poisons the batch.
        assert!(!absorbs_all(&idx, &[(0, 3), (3, 0)]));
    }
}

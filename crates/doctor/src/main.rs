//! `pscc-doctor` — read-only post-mortem diagnostics for a catalog data
//! dir.
//!
//! ```text
//! pscc-doctor <data-dir> [--timeline N] [--explain <queries-file>]
//! ```
//!
//! Exit codes: 0 healthy, 1 corruption detected (or an I/O failure
//! reading the dir), 2 usage error.

use std::path::PathBuf;
use std::process::ExitCode;

struct Args {
    data_dir: PathBuf,
    timeline: usize,
    explain: Option<PathBuf>,
}

fn usage() -> ExitCode {
    eprintln!("usage: pscc-doctor <data-dir> [--timeline N] [--explain <queries-file>]");
    ExitCode::from(2)
}

fn parse_args() -> Result<Args, ExitCode> {
    let mut data_dir: Option<PathBuf> = None;
    let mut timeline = 20usize;
    let mut explain: Option<PathBuf> = None;
    let mut argv = std::env::args().skip(1);
    while let Some(arg) = argv.next() {
        match arg.as_str() {
            "--timeline" => {
                let Some(n) = argv.next().and_then(|v| v.parse().ok()) else {
                    eprintln!("--timeline expects a number");
                    return Err(usage());
                };
                timeline = n;
            }
            "--explain" => {
                let Some(path) = argv.next() else {
                    eprintln!("--explain expects a file path");
                    return Err(usage());
                };
                explain = Some(PathBuf::from(path));
            }
            "--help" | "-h" => return Err(usage()),
            _ if arg.starts_with('-') => {
                eprintln!("unknown flag {arg:?}");
                return Err(usage());
            }
            _ if data_dir.is_none() => data_dir = Some(PathBuf::from(arg)),
            _ => {
                eprintln!("unexpected extra argument {arg:?}");
                return Err(usage());
            }
        }
    }
    let Some(data_dir) = data_dir else {
        return Err(usage());
    };
    Ok(Args { data_dir, timeline, explain })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(code) => return code,
    };

    let diag = match pscc_doctor::diagnose(&args.data_dir, args.timeline) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("pscc-doctor: cannot read {}: {e}", args.data_dir.display());
            return ExitCode::from(1);
        }
    };
    print!("{}", diag.report);

    let mut explain_failed = false;
    if let Some(path) = &args.explain {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("pscc-doctor: cannot read {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        let queries = match pscc_doctor::parse_queries(&text) {
            Ok(q) => q,
            Err(e) => {
                eprintln!("pscc-doctor: {}: {e}", path.display());
                return ExitCode::from(2);
            }
        };
        println!("\n== explain ==");
        // Group consecutive queries by graph so each graph is replayed
        // and indexed once.
        let mut idx = 0;
        while idx < queries.len() {
            let graph = queries[idx].0.clone();
            let mut batch = Vec::new();
            while idx < queries.len() && queries[idx].0 == graph {
                batch.push((queries[idx].1, queries[idx].2));
                idx += 1;
            }
            match pscc_doctor::explain_queries(&args.data_dir, &graph, &batch) {
                Ok(lines) => {
                    for line in lines {
                        println!("  [{graph}] {line}");
                    }
                }
                Err(e) => {
                    println!("  [{graph}] replay failed: {e}");
                    explain_failed = true;
                }
            }
        }
    }

    if diag.healthy() && !explain_failed {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(1)
    }
}

//! # pscc-doctor — read-only post-mortem diagnostics for a catalog data dir
//!
//! After a crash (or against a live, possibly wedged process) the
//! question is always the same: *what is on disk, is it consistent, and
//! what was the process doing when it stopped?* This crate answers all
//! three without modifying a byte:
//!
//! * **Store integrity** — every graph subdirectory's snapshot lineage is
//!   validated (checksums, header-vs-name sequence) and its write-ahead
//!   log scanned exactly as recovery would read it, but read-only: no
//!   advisory lock is taken and torn tails are *reported*, never
//!   truncated (see [`pscc_store::inspect`]).
//! * **Flight-recorder timeline** — the `flight-<seq>.fdr` journal the
//!   serving stack writes (see [`pscc_telemetry::recorder`]) is scanned
//!   and the causal trace of the last deltas, rebuilds, compactions, and
//!   panics is reconstructed, including each delta's planner explain
//!   (chosen tier, rejected cheaper tiers).
//! * **Health report** — repair-tier mix, discarded builds, and the
//!   latency percentiles the process last journaled (fsync, delta,
//!   batch-query histograms).
//! * **EXPLAIN replay** ([`explain_queries`]) — rebuilds a graph from its
//!   newest valid snapshot plus the WAL suffix, builds a fresh index, and
//!   answers queries *with provenance*
//!   ([`pscc_engine::QueryExplain`]) — the same verdicts a recovered
//!   catalog would serve.
//!
//! Everything tolerates arbitrary corruption: damaged inputs become
//! findings in [`Diagnosis::corruption`] (the CLI exits nonzero), never
//! panics.

use std::io;
use std::path::{Path, PathBuf};

use pscc_engine::catalog::{decode_name, encode_name};
use pscc_engine::{Index, QueryBatch};
use pscc_graph::{DiGraph, V};
use pscc_store::inspect;
use pscc_telemetry::recorder;

/// The outcome of one [`diagnose`] run.
#[derive(Debug)]
pub struct Diagnosis {
    /// The rendered multi-line report.
    pub report: String,
    /// Detected corruption, one finding per line; non-empty means the
    /// data dir cannot be trusted (the CLI exits 1).
    pub corruption: Vec<String>,
}

impl Diagnosis {
    /// True when no corruption was found.
    pub fn healthy(&self) -> bool {
        self.corruption.is_empty()
    }
}

/// One parsed flight-recorder event: the journal sequence, the recorded
/// timestamp, the event kind, and the remaining `key=value` fields.
#[derive(Debug)]
pub struct TimelineEvent {
    /// Journal sequence number of the record.
    pub seq: u64,
    /// Recorder timestamp (nanoseconds, process-monotonic).
    pub ts: u64,
    /// Event kind (`apply_delta`, `rebuild_swap`, `panic`, …).
    pub kind: String,
    /// The event's remaining fields, in recorded order.
    pub fields: Vec<(String, String)>,
}

impl TimelineEvent {
    /// The value of `key`, if the event recorded it.
    pub fn field(&self, key: &str) -> Option<&str> {
        self.fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }
}

/// Diagnoses `data_dir` read-only: store integrity per graph, flight
/// journal scan, timeline of the last `timeline` events, and health
/// tallies. Never modifies, locks, or truncates anything, and never
/// panics on damaged input — corruption becomes findings.
pub fn diagnose(data_dir: &Path, timeline: usize) -> io::Result<Diagnosis> {
    let mut out = String::new();
    let mut corruption: Vec<String> = Vec::new();
    out.push_str(&format!("pscc-doctor report for {}\n", data_dir.display()));

    out.push_str("\n== stores ==\n");
    let graphs = graph_dirs(data_dir)?;
    if graphs.is_empty() {
        out.push_str("  (no graph stores found)\n");
    }
    for (name, dir) in &graphs {
        inspect_store(name, dir, &mut out, &mut corruption)?;
    }

    out.push_str("\n== flight recorder ==\n");
    let events = scan_flight_journal(data_dir, &mut out, &mut corruption)?;

    out.push_str("\n== timeline ==\n");
    render_timeline(&events, timeline, &mut out);

    out.push_str("\n== health ==\n");
    render_health(&events, &mut out);

    if corruption.is_empty() {
        out.push_str("\nverdict: healthy\n");
    } else {
        out.push_str(&format!("\nverdict: {} corruption finding(s)\n", corruption.len()));
        for c in &corruption {
            out.push_str(&format!("  !! {c}\n"));
        }
    }
    Ok(Diagnosis { report: out, corruption })
}

/// The graph store subdirectories of `data_dir`, as
/// `(decoded name, path)` sorted by name. Directories without store
/// files (backups, `lost+found`) are skipped, mirroring recovery's scan.
fn graph_dirs(data_dir: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out: Vec<(String, PathBuf)> = Vec::new();
    for entry in std::fs::read_dir(data_dir)? {
        let entry = entry?;
        if !entry.file_type()?.is_dir() {
            continue;
        }
        let path = entry.path();
        if !holds_store_files(&path)? {
            continue;
        }
        let raw = entry.file_name().to_string_lossy().into_owned();
        let name = decode_name(&raw)
            .filter(|n| encode_name(n) == raw)
            .unwrap_or_else(|| format!("<undecodable: {raw}>"));
        out.push((name, path));
    }
    out.sort();
    Ok(out)
}

/// True if `dir` holds a write-ahead log or snapshot files.
fn holds_store_files(dir: &Path) -> io::Result<bool> {
    if dir.join(inspect::WAL_FILE_NAME).exists() {
        return Ok(true);
    }
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(n) = entry.file_name().to_str() {
            if n.starts_with("snapshot-") && n.ends_with(".pscc") {
                return Ok(true);
            }
        }
    }
    Ok(false)
}

/// Validates one graph store: snapshot lineage, WAL scan, and
/// snapshot-to-WAL coverage.
fn inspect_store(
    name: &str,
    dir: &Path,
    out: &mut String,
    corruption: &mut Vec<String>,
) -> io::Result<()> {
    out.push_str(&format!("graph {name:?} ({})\n", dir.display()));
    let snapshots = inspect::list_snapshots(dir)?;
    let mut newest_valid: Option<u64> = None;
    for info in &snapshots {
        match &info.contents {
            Ok(c) => {
                out.push_str(&format!(
                    "  snapshot seq {}: ok ({} nodes, {} edges, generation {}, {} bytes)\n",
                    c.seq, c.nodes, c.edges, c.meta.generation, info.bytes
                ));
                if newest_valid.is_none() {
                    newest_valid = Some(c.seq);
                }
            }
            Err(e) => {
                out.push_str(&format!("  snapshot seq {}: INVALID ({e})\n", info.name_seq));
                corruption.push(format!("graph {name:?}: snapshot seq {}: {e}", info.name_seq));
            }
        }
    }
    if snapshots.is_empty() {
        out.push_str("  no snapshots\n");
    }
    if newest_valid.is_none() && !snapshots.is_empty() {
        corruption.push(format!("graph {name:?}: no snapshot validates — unrecoverable"));
    }

    let wal_path = dir.join(inspect::WAL_FILE_NAME);
    let wal = match inspect::scan_wal(&wal_path) {
        Ok(scan) => scan,
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            out.push_str("  wal: missing\n");
            return Ok(());
        }
        Err(e) => return Err(e),
    };
    let seq_span = match (wal.records.first(), wal.records.last()) {
        (Some((first, _)), Some((last, _))) => format!("seqs {first}..={last}"),
        _ => "empty".to_string(),
    };
    out.push_str(&format!(
        "  wal: {} record(s) ({seq_span}), {} torn byte(s)\n",
        wal.records.len(),
        wal.torn_bytes
    ));
    if wal.torn_bytes > 0 {
        out.push_str("    (a torn tail is normal crash residue; recovery would truncate it)\n");
    }
    if let Some(c) = &wal.corruption {
        out.push_str(&format!("  wal: CORRUPT ({c})\n"));
        corruption.push(format!("graph {name:?}: wal: {c}"));
    }
    // Coverage: recovery replays records after the snapshot's sequence,
    // so the log must reach back at least that far.
    if let (Some(base), Some(&(first, _))) = (newest_valid, wal.records.first()) {
        if first > base + 1 {
            let finding = format!(
                "graph {name:?}: wal starts at seq {first} but the newest valid snapshot \
                 covers {base} — unreplayable gap"
            );
            out.push_str(&format!("  wal: GAP (first record {first}, snapshot {base})\n"));
            corruption.push(finding);
        } else {
            let suffix = wal.records.iter().filter(|(seq, _)| *seq > base).count();
            out.push_str(&format!("  replay: {suffix} record(s) past the snapshot\n"));
        }
    }
    Ok(())
}

/// Scans the flight journal in `data_dir`, reporting segment layout and
/// collecting parsed events.
fn scan_flight_journal(
    data_dir: &Path,
    out: &mut String,
    corruption: &mut Vec<String>,
) -> io::Result<Vec<TimelineEvent>> {
    let scan = recorder::scan_dir(data_dir)?;
    if scan.segments.is_empty() {
        out.push_str("  (no flight journal — the recorder was not enabled)\n");
        return Ok(Vec::new());
    }
    for seg in &scan.segments {
        out.push_str(&format!(
            "  segment {}: {} record(s), {} trailing byte(s)\n",
            seg.path.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default(),
            seg.records.len(),
            seg.trailing_bytes,
        ));
    }
    out.push_str(&format!(
        "  total: {} record(s), {} torn byte(s)\n",
        scan.records.len(),
        scan.torn_bytes
    ));
    for c in &scan.corruption {
        corruption.push(format!("flight journal: {c}"));
    }
    let mut events = Vec::with_capacity(scan.records.len());
    for rec in &scan.records {
        events.push(parse_event(rec.seq, &rec.line));
    }
    Ok(events)
}

/// Parses one journal line into a [`TimelineEvent`]. Damaged lines
/// (missing `ts`/`event` keys) still come back, with kind `"?"` — the
/// scan layer's checksums make this rare, but the doctor never drops
/// evidence silently.
fn parse_event(seq: u64, line: &str) -> TimelineEvent {
    let mut ts = 0u64;
    let mut kind = String::from("?");
    let mut fields = Vec::new();
    for (k, v) in recorder::parse_line(line) {
        match k.as_str() {
            "ts" => ts = v.parse().unwrap_or(0),
            "event" => kind = v,
            _ => fields.push((k, v)),
        }
    }
    TimelineEvent { seq, ts, kind, fields }
}

/// The event kinds worth a timeline line (spans and histogram snapshots
/// are health material, not causal steps).
fn is_timeline_kind(kind: &str) -> bool {
    matches!(
        kind,
        "apply_delta"
            | "rebuild_start"
            | "rebuild_swap"
            | "rebuild_discard"
            | "recovery_replay"
            | "compaction"
            | "panic"
            | "ring_overflow"
    )
}

/// Renders the causal trace of the last `limit` lifecycle events, oldest
/// first, timestamps relative to the first shown event.
fn render_timeline(events: &[TimelineEvent], limit: usize, out: &mut String) {
    let picked: Vec<&TimelineEvent> = events.iter().filter(|e| is_timeline_kind(&e.kind)).collect();
    if picked.is_empty() {
        out.push_str("  (no lifecycle events recorded)\n");
        return;
    }
    let start = picked.len().saturating_sub(limit);
    let base_ts = picked[start].ts;
    if start > 0 {
        out.push_str(&format!("  ... {start} earlier event(s) omitted\n"));
    }
    for ev in &picked[start..] {
        let rel_ms = ev.ts.saturating_sub(base_ts) / 1_000_000;
        let mut line = format!("  #{:<6} +{:>6}ms {}", ev.seq, rel_ms, ev.kind);
        for (k, v) in &ev.fields {
            if v.is_empty() {
                continue;
            }
            line.push_str(&format!(" {k}={v}"));
        }
        out.push_str(&line);
        out.push('\n');
    }
}

/// Renders repair-tier mix, discard/panic tallies, and the last
/// journaled percentile snapshot per histogram.
fn render_health(events: &[TimelineEvent], out: &mut String) {
    let mut outcomes: Vec<(String, u64)> = Vec::new();
    let mut discarded = 0u64;
    let mut panics = 0u64;
    let mut overflow_dropped = 0u64;
    let mut hists: Vec<(String, String)> = Vec::new(); // name -> rendered line (last wins)
    for ev in events {
        match ev.kind.as_str() {
            "apply_delta" => {
                let outcome = ev.field("outcome").unwrap_or("?").to_string();
                match outcomes.iter_mut().find(|(o, _)| *o == outcome) {
                    Some((_, n)) => *n += 1,
                    None => outcomes.push((outcome, 1)),
                }
            }
            "rebuild_discard" => discarded += 1,
            "panic" => panics += 1,
            "ring_overflow" => {
                overflow_dropped +=
                    ev.field("dropped").and_then(|v| v.parse::<u64>().ok()).unwrap_or(0)
            }
            "hist" => {
                if let Some(name) = ev.field("name") {
                    let line = format!(
                        "count={} p50={}ns p90={}ns p99={}ns max={}ns",
                        ev.field("count").unwrap_or("?"),
                        ev.field("p50").unwrap_or("?"),
                        ev.field("p90").unwrap_or("?"),
                        ev.field("p99").unwrap_or("?"),
                        ev.field("max").unwrap_or("?"),
                    );
                    let name = name.to_string();
                    match hists.iter_mut().find(|(n, _)| *n == name) {
                        Some((_, l)) => *l = line,
                        None => hists.push((name, line)),
                    }
                }
            }
            _ => {}
        }
    }
    if outcomes.is_empty() {
        out.push_str("  deltas: none recorded\n");
    } else {
        outcomes.sort_by_key(|&(_, n)| std::cmp::Reverse(n));
        let mix = outcomes.iter().map(|(o, n)| format!("{o}={n}")).collect::<Vec<_>>().join(", ");
        out.push_str(&format!("  repair-tier mix: {mix}\n"));
    }
    out.push_str(&format!("  discarded builds: {discarded}\n"));
    if panics > 0 {
        out.push_str(&format!("  PANICS RECORDED: {panics}\n"));
    }
    if overflow_dropped > 0 {
        out.push_str(&format!("  ring overflow dropped {overflow_dropped} event(s)\n"));
    }
    hists.sort();
    for (name, line) in &hists {
        out.push_str(&format!("  {name}: {line}\n"));
    }
}

// ---- EXPLAIN replay -------------------------------------------------------

/// Rebuilds graph `name` exactly as recovery would see it — newest valid
/// snapshot plus the WAL records past its sequence — but read-only.
/// `Ok(None)` when no snapshot validates.
pub fn replay_graph(data_dir: &Path, name: &str) -> io::Result<Option<DiGraph>> {
    let dir = data_dir.join(encode_name(name));
    if !dir.is_dir() {
        return Ok(None);
    }
    let Some((base, mut graph, _meta)) = inspect::load_newest_snapshot(&dir)? else {
        return Ok(None);
    };
    let wal = match inspect::scan_wal(&dir.join(inspect::WAL_FILE_NAME)) {
        Ok(scan) => scan,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Some(graph)),
        Err(e) => return Err(e),
    };
    for (seq, rec) in &wal.records {
        if *seq > base {
            graph = graph.with_delta(&rec.insertions, &rec.deletions);
        }
    }
    Ok(Some(graph))
}

/// Replays graph `name` from disk, builds a fresh index, and answers
/// `queries` with provenance — one [`describe`][pscc_engine::QueryExplain::describe]d
/// line per query. Out-of-range endpoints produce an explanatory line
/// instead of a panic.
pub fn explain_queries(data_dir: &Path, name: &str, queries: &[(V, V)]) -> io::Result<Vec<String>> {
    explain_queries_with_config(data_dir, name, queries, &pscc_engine::IndexConfig::default())
}

/// [`explain_queries`] with an explicit [`pscc_engine::IndexConfig`], so
/// the replayed index lands on the same summary tier the live process
/// used (e.g. a label-tier deployment replays with `label_intersect`
/// provenance rather than the default tier cascade).
pub fn explain_queries_with_config(
    data_dir: &Path,
    name: &str,
    queries: &[(V, V)],
    config: &pscc_engine::IndexConfig,
) -> io::Result<Vec<String>> {
    let Some(graph) = replay_graph(data_dir, name)? else {
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!("graph {name:?}: no valid snapshot under {}", data_dir.display()),
        ));
    };
    let n = graph.n();
    let index = Index::build_with_config(&graph, config);
    let batch = QueryBatch::new(&index);
    let mut out = Vec::with_capacity(queries.len());
    for &(u, v) in queries {
        if (u as usize) < n && (v as usize) < n {
            out.push(batch.explain(&[(u, v)]).swap_remove(0).describe());
        } else {
            out.push(format!("{u} -> {v} = invalid (vertex out of range, n={n})"));
        }
    }
    Ok(out)
}

/// Parses a queries file: one `<graph> <u> <v>` triple per line, blank
/// lines and `#` comments skipped.
pub fn parse_queries(text: &str) -> Result<Vec<(String, V, V)>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let parsed = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(g), Some(u), Some(v), None) => match (u.parse::<V>(), v.parse::<V>()) {
                (Ok(u), Ok(v)) => Some((g.to_string(), u, v)),
                _ => None,
            },
            _ => None,
        };
        match parsed {
            Some(q) => out.push(q),
            None => {
                return Err(format!(
                    "line {}: expected `<graph> <u> <v>`, got {line:?}",
                    lineno + 1
                ))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_engine::{Catalog, Delta};
    use pscc_graph::generators::simple::path_digraph;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_doctor_test_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn populated_dir(name: &str) -> PathBuf {
        let dir = tmpdir(name);
        let cat = Catalog::new();
        cat.insert("g", path_digraph(6));
        cat.persist_to("g", &dir).unwrap();
        let mut d = Delta::new();
        d.insert(5, 0);
        cat.apply_delta("g", &d).unwrap();
        drop(cat);
        dir
    }

    #[test]
    fn healthy_dir_diagnoses_clean() {
        let dir = populated_dir("healthy");
        let diag = diagnose(&dir, 20).unwrap();
        assert!(diag.healthy(), "{:?}", diag.corruption);
        assert!(diag.report.contains("graph \"g\""), "{}", diag.report);
        assert!(diag.report.contains("verdict: healthy"), "{}", diag.report);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn replay_and_explain_match_recovery() {
        let dir = populated_dir("replay");
        let g = replay_graph(&dir, "g").unwrap().unwrap();
        assert_eq!(g.m(), 6, "path(6) edges plus the applied back edge");
        let lines = explain_queries(&dir, "g", &[(2, 1), (9, 0)]).unwrap();
        assert!(lines[0].contains("= true"), "{}", lines[0]);
        assert!(lines[1].contains("invalid"), "{}", lines[1]);
        assert!(replay_graph(&dir, "missing").unwrap().is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn label_tier_explain_survives_snapshot_and_wal() {
        use pscc_engine::{BatchOptions, IndexConfig};
        let dir = tmpdir("label_replay");
        let cfg = IndexConfig {
            bitset_budget_bytes: 0,
            label_min_components: 0,
            ..IndexConfig::default()
        };
        // Sources 0..=2 feed hub 3, which fans out to sinks 4..=6; the
        // WAL carries one extra spoke applied after the snapshot.
        let g = DiGraph::from_edges(7, &[(0, 3), (1, 3), (2, 3), (3, 4), (3, 5)]);
        let cat = Catalog::new();
        cat.insert_with_config("g", g, cfg.clone(), BatchOptions::default());
        cat.persist_to("g", &dir).unwrap();
        let mut d = Delta::new();
        d.insert(3, 6);
        cat.apply_delta("g", &d).unwrap();
        drop(cat);

        // The replayed index must land on the label tier and attribute
        // the hub-witnessed verdicts — including one only the WAL suffix
        // makes true — to `label_intersect`.
        let lines =
            explain_queries_with_config(&dir, "g", &[(0, 5), (1, 6), (5, 0)], &cfg).unwrap();
        assert!(lines[0].contains("= true via label_intersect"), "{}", lines[0]);
        assert!(lines[1].contains("= true via label_intersect"), "{}", lines[1]);
        assert!(lines[2].contains("= false"), "{}", lines[2]);
        for line in &lines {
            assert!(!line.contains("pruned_dfs"), "label tier has no DFS fallback: {line}");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn damaged_wal_is_a_finding_not_a_panic() {
        let dir = populated_dir("damage");
        let wal = dir.join(encode_name("g")).join(inspect::WAL_FILE_NAME);
        let mut bytes = std::fs::read(&wal).unwrap();
        bytes[0] ^= 0xff; // kill the magic
        std::fs::write(&wal, &bytes).unwrap();
        let diag = diagnose(&dir, 20).unwrap();
        assert!(!diag.healthy());
        assert!(diag.corruption.iter().any(|c| c.contains("wal")), "{:?}", diag.corruption);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn queries_file_parses_and_rejects() {
        let text = "# comment\n\ng 0 5\nother 3 4\n";
        let qs = parse_queries(text).unwrap();
        assert_eq!(qs.len(), 2);
        assert_eq!(qs[0], ("g".to_string(), 0, 5));
        assert!(parse_queries("g 0").is_err());
        assert!(parse_queries("g x y").is_err());
        assert!(parse_queries("g 0 1 2").is_err());
    }
}

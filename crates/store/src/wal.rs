//! The append-only write-ahead delta log.
//!
//! ## File format
//!
//! ```text
//! "PSCCWAL1"                                    8-byte magic header
//! record*                                       zero or more records
//! ```
//!
//! Each record frames one applied delta batch:
//!
//! ```text
//! len: u32        payload length in bytes
//! seq: u64        1-based sequence number, contiguous per log
//! payload         ins_count: u32, del_count: u32, then (u, v) u32 pairs
//! crc: u64        Checksum64 over len ∥ seq ∥ payload
//! ```
//!
//! All integers are little-endian. Appends are flushed with `fsync`
//! (`File::sync_data`) before returning, so a record the writer reported
//! durable survives a crash.
//!
//! ## Recovery
//!
//! [`Wal::open`] scans records from the start and stops at the first
//! violation — short frame, implausible length, checksum mismatch, or a
//! sequence break — and reports the byte offset of the last valid record
//! end. A crash mid-append therefore loses only the torn tail; the store
//! truncates the file there and resumes appending.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::Path;
#[cfg(test)]
use std::path::PathBuf;

use pscc_graph::io::Checksum64;
use pscc_graph::V;

use crate::DeltaRecord;

/// Cached handle for the `pscc_wal_append_nanos` histogram (whole append:
/// truncate + write + fsync).
fn append_histogram() -> &'static std::sync::Arc<pscc_telemetry::Histogram> {
    static HIST: std::sync::OnceLock<std::sync::Arc<pscc_telemetry::Histogram>> =
        std::sync::OnceLock::new();
    HIST.get_or_init(|| pscc_telemetry::histogram("pscc_wal_append_nanos"))
}

/// Cached handle for the `pscc_wal_fsync_nanos` histogram (the
/// `sync_data` call alone — the dominant, device-bound cost).
fn fsync_histogram() -> &'static std::sync::Arc<pscc_telemetry::Histogram> {
    static HIST: std::sync::OnceLock<std::sync::Arc<pscc_telemetry::Histogram>> =
        std::sync::OnceLock::new();
    HIST.get_or_init(|| pscc_telemetry::histogram("pscc_wal_fsync_nanos"))
}

/// Cached handle for the `pscc_wal_appends_total` counter.
fn appends_counter() -> &'static std::sync::Arc<pscc_telemetry::Counter> {
    static C: std::sync::OnceLock<std::sync::Arc<pscc_telemetry::Counter>> =
        std::sync::OnceLock::new();
    C.get_or_init(|| pscc_telemetry::counter("pscc_wal_appends_total"))
}

pub(crate) const WAL_MAGIC: &[u8; 8] = b"PSCCWAL1";
/// Bytes of framing around a record payload: len (4) + seq (8) + crc (8).
const FRAME_BYTES: u64 = 20;

fn invalid<T>(msg: impl Into<String>) -> io::Result<T> {
    Err(io::Error::new(io::ErrorKind::InvalidData, msg.into()))
}

/// Serializes one delta batch as a WAL record payload.
fn encode_payload(rec: &DeltaRecord) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 8 * (rec.insertions.len() + rec.deletions.len()));
    out.extend_from_slice(&(rec.insertions.len() as u32).to_le_bytes());
    out.extend_from_slice(&(rec.deletions.len() as u32).to_le_bytes());
    for &(u, v) in rec.insertions.iter().chain(&rec.deletions) {
        out.extend_from_slice(&u.to_le_bytes());
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Parses a record payload back into a delta batch.
fn decode_payload(payload: &[u8]) -> io::Result<DeltaRecord> {
    if payload.len() < 8 {
        return invalid("wal payload shorter than its counts");
    }
    // analyze: allow(panic): fixed-width slice, try_into is infallible
    let ins_count = u32::from_le_bytes(payload[0..4].try_into().expect("4 bytes")) as usize;
    // analyze: allow(panic): fixed-width slice, try_into is infallible
    let del_count = u32::from_le_bytes(payload[4..8].try_into().expect("4 bytes")) as usize;
    let want = 8 + 8 * (ins_count + del_count);
    if payload.len() != want {
        return invalid(format!(
            "wal payload holds {} bytes but its counts imply {want}",
            payload.len()
        ));
    }
    let mut edges = payload[8..].chunks_exact(8).map(|c| {
        (
            // analyze: allow(panic): chunks_exact(8) guarantees the width
            V::from_le_bytes(c[0..4].try_into().expect("4 bytes")),
            // analyze: allow(panic): chunks_exact(8) guarantees the width
            V::from_le_bytes(c[4..8].try_into().expect("4 bytes")),
        )
    });
    let insertions: Vec<(V, V)> = edges.by_ref().take(ins_count).collect();
    let deletions: Vec<(V, V)> = edges.collect();
    Ok(DeltaRecord { insertions, deletions })
}

/// What scanning an existing log recovered.
#[derive(Debug)]
pub(crate) struct WalScan {
    /// Every valid record, in sequence order, with its sequence number.
    pub records: Vec<(u64, DeltaRecord)>,
    /// Bytes of torn tail discarded past the last valid record.
    pub torn_bytes: u64,
}

/// An open write-ahead log: an append handle plus bookkeeping.
#[derive(Debug)]
pub(crate) struct Wal {
    file: File,
    /// Sequence number the next appended record receives.
    next_seq: u64,
    /// Current file length (header + valid records).
    bytes: u64,
}

impl Wal {
    /// Creates an empty log (header only, fsynced). Fails if `path`
    /// already exists.
    pub fn create(path: &Path) -> io::Result<Wal> {
        let mut file = OpenOptions::new().write(true).create_new(true).open(path)?;
        file.write_all(WAL_MAGIC)?;
        file.sync_data()?;
        Ok(Wal { file, next_seq: 1, bytes: WAL_MAGIC.len() as u64 })
    }

    /// Opens an existing log, scanning every record and truncating any
    /// torn tail in place. Records with `seq <= base_seq` (already covered
    /// by the snapshot being recovered against) are scanned for integrity
    /// but not returned.
    ///
    /// The record stream must be contiguous: the first record past
    /// `base_seq` must carry `base_seq + 1`, and each subsequent record
    /// must increment. A checksum-valid record with a broken sequence
    /// number means the snapshot and log disagree (e.g. recovery fell
    /// back to an older snapshot after the newer one rotted) — that is an
    /// error, **not** a torn tail: truncating would destroy fsynced
    /// records that a repaired snapshot could still replay. Only frames
    /// that fail validation (torn appends) are truncated. A corrupt
    /// header is likewise an error.
    pub fn open(path: &Path, base_seq: u64) -> io::Result<(Wal, WalScan)> {
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        let file_len = file.metadata()?.len();
        let mut magic = [0u8; 8];
        if file_len < magic.len() as u64 {
            return invalid("wal shorter than its magic header");
        }
        file.read_exact(&mut magic)?;
        if &magic != WAL_MAGIC {
            return invalid("bad wal magic");
        }

        let mut records = Vec::new();
        let mut valid_len = magic.len() as u64;
        let mut expect_seq: Option<u64> = None; // None until the first record
        while let Some((seq, rec, end)) = Self::read_record(&mut file, valid_len, file_len) {
            // Contiguity: each checksum-valid record must follow its
            // predecessor; a break is unreplayable history, not a torn
            // append — refuse loudly rather than truncate valid data.
            if seq != expect_seq.unwrap_or(seq) {
                return invalid(format!(
                    "wal sequence break: record {seq} follows {}",
                    // analyze: allow(panic): the != above can only fire when expect_seq is Some
                    expect_seq.expect("a predecessor exists") - 1
                ));
            }
            if seq > base_seq {
                // The first replayable record must continue the snapshot.
                if records.is_empty() && seq != base_seq + 1 {
                    return invalid(format!(
                        "wal starts at record {seq} but the snapshot covers only \
                         up to {base_seq}: unreplayable gap"
                    ));
                }
                records.push((seq, rec));
            }
            expect_seq = Some(seq + 1);
            valid_len = end;
        }
        let torn_bytes = file_len - valid_len;
        if torn_bytes > 0 {
            file.set_len(valid_len)?;
            file.sync_data()?;
        }
        file.seek(SeekFrom::Start(valid_len))?;
        let next_seq = expect_seq.unwrap_or(base_seq + 1);
        let wal = Wal { file, next_seq, bytes: valid_len };
        Ok((wal, WalScan { records, torn_bytes }))
    }

    /// Reads one record starting at `at`; `None` on any violation (short
    /// frame, implausible length, checksum mismatch). On success returns
    /// `(seq, record, end_offset)`. Shared with the read-only
    /// [`inspect`](crate::inspect) scan, so the doctor and recovery agree
    /// byte-for-byte on what a valid record is.
    pub(crate) fn read_record(
        file: &mut File,
        at: u64,
        file_len: u64,
    ) -> Option<(u64, DeltaRecord, u64)> {
        if file_len - at < FRAME_BYTES {
            return None;
        }
        file.seek(SeekFrom::Start(at)).ok()?;
        let mut head = [0u8; 12];
        file.read_exact(&mut head).ok()?;
        // analyze: allow(panic): fixed-width slice, try_into is infallible
        let len = u32::from_le_bytes(head[0..4].try_into().expect("4 bytes")) as u64;
        // analyze: allow(panic): fixed-width slice, try_into is infallible
        let seq = u64::from_le_bytes(head[4..12].try_into().expect("8 bytes"));
        if len > file_len - at - FRAME_BYTES {
            return None; // length outruns the file: torn or corrupt
        }
        let mut payload = vec![0u8; len as usize];
        file.read_exact(&mut payload).ok()?;
        let mut trailer = [0u8; 8];
        file.read_exact(&mut trailer).ok()?;
        let want_crc = u64::from_le_bytes(trailer);
        let mut crc = Checksum64::new();
        crc.update(&head);
        crc.update(&payload);
        if crc.finish() != want_crc {
            return None;
        }
        let rec = decode_payload(&payload).ok()?;
        Some((seq, rec, at + FRAME_BYTES + len))
    }

    /// Appends one record and fsyncs it; returns its sequence number.
    /// The record is durable when this returns.
    ///
    /// Fails with [`io::ErrorKind::InvalidInput`] if the batch exceeds
    /// the frame's `u32` limits (more than `u32::MAX` insertions or
    /// deletions, or a payload past `u32::MAX` bytes) — silently wrapped
    /// counts would be discarded as corruption on recovery.
    ///
    /// A *failed* append (transient `ENOSPC`/`EIO` on the write or the
    /// fsync) leaves no trace: the next append truncates back to the last
    /// durable record before writing, so a leftover partial frame can
    /// never sit in front of — and on recovery swallow — a record that
    /// was later acknowledged as durable.
    pub fn append(&mut self, rec: &DeltaRecord) -> io::Result<u64> {
        let (ni, nd) = (rec.insertions.len() as u64, rec.deletions.len() as u64);
        if ni > u32::MAX as u64 || nd > u32::MAX as u64 || 8 + 8 * (ni + nd) > u32::MAX as u64 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!("delta batch too large for one wal record ({ni} ins, {nd} del)"),
            ));
        }
        let seq = self.next_seq;
        let payload = encode_payload(rec);
        let mut frame = Vec::with_capacity(payload.len() + FRAME_BYTES as usize);
        frame.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        frame.extend_from_slice(&seq.to_le_bytes());
        frame.extend_from_slice(&payload);
        let crc = Checksum64::of(&frame);
        frame.extend_from_slice(&crc.to_le_bytes());
        // Re-anchor at the last durable record: a previously failed
        // append may have left partial bytes and an advanced cursor.
        let append_timer = pscc_telemetry::enabled().then(pscc_telemetry::Timer::start);
        self.file.set_len(self.bytes)?;
        self.file.seek(SeekFrom::Start(self.bytes))?;
        self.file.write_all(&frame)?;
        let fsync_timer = append_timer.map(|_| pscc_telemetry::Timer::start());
        self.file.sync_data()?;
        if let Some(t) = fsync_timer {
            fsync_histogram().record(t.elapsed());
        }
        if let Some(t) = append_timer {
            append_histogram().record(t.elapsed());
            appends_counter().inc();
        }
        self.next_seq = seq + 1;
        self.bytes += frame.len() as u64;
        Ok(seq)
    }

    /// Discards every record (the snapshot now covers them): truncates to
    /// the header and fsyncs. Sequence numbering continues from where it
    /// was, so the log stays contiguous with the snapshot.
    pub fn reset(&mut self) -> io::Result<()> {
        self.file.set_len(WAL_MAGIC.len() as u64)?;
        self.file.sync_data()?;
        self.file.seek(SeekFrom::End(0))?;
        self.bytes = WAL_MAGIC.len() as u64;
        Ok(())
    }

    /// Sequence number of the most recently appended record (0 if none
    /// ever was).
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }

    /// Current log size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_wal_test_{name}_{}", std::process::id()));
        std::fs::remove_file(&p).ok();
        p
    }

    fn rec(ins: &[(V, V)], del: &[(V, V)]) -> DeltaRecord {
        DeltaRecord { insertions: ins.to_vec(), deletions: del.to_vec() }
    }

    #[test]
    fn append_scan_roundtrip() {
        let path = tmp("roundtrip");
        let mut wal = Wal::create(&path).unwrap();
        assert_eq!(wal.append(&rec(&[(0, 1), (2, 3)], &[])).unwrap(), 1);
        assert_eq!(wal.append(&rec(&[], &[(9, 9)])).unwrap(), 2);
        assert_eq!(wal.append(&rec(&[(5, 6)], &[(7, 8)])).unwrap(), 3);
        drop(wal);
        let (wal, scan) = Wal::open(&path, 0).unwrap();
        assert_eq!(scan.torn_bytes, 0);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[0], (1, rec(&[(0, 1), (2, 3)], &[])));
        assert_eq!(scan.records[1], (2, rec(&[], &[(9, 9)])));
        assert_eq!(scan.records[2], (3, rec(&[(5, 6)], &[(7, 8)])));
        assert_eq!(wal.last_seq(), 3);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn base_seq_skips_snapshotted_prefix() {
        let path = tmp("baseseq");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..5u32 {
            wal.append(&rec(&[(i, i + 1)], &[])).unwrap();
        }
        drop(wal);
        let (_, scan) = Wal::open(&path, 3).unwrap();
        assert_eq!(scan.records.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![4, 5]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn torn_tail_is_truncated() {
        let path = tmp("torn");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&rec(&[(1, 2)], &[])).unwrap();
        let good_len = wal.bytes();
        wal.append(&rec(&[(3, 4)], &[])).unwrap();
        drop(wal);
        // Chop the second record in half: a torn append.
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..good_len as usize + 7]).unwrap();
        let (mut wal, scan) = Wal::open(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.torn_bytes, 7);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), good_len);
        // Appending resumes with the lost record's sequence number.
        assert_eq!(wal.append(&rec(&[(3, 4)], &[])).unwrap(), 2);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_byte_stops_the_scan() {
        let path = tmp("flip");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&rec(&[(1, 2)], &[])).unwrap();
        let one = wal.bytes();
        wal.append(&rec(&[(3, 4)], &[])).unwrap();
        wal.append(&rec(&[(5, 6)], &[])).unwrap();
        drop(wal);
        // Flip a byte inside record 2: records 2 *and* 3 are discarded
        // (recovery keeps only a prefix — replaying 3 without 2 would
        // reorder history).
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[one as usize + 13] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let (_, scan) = Wal::open(&path, 0).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert_eq!(std::fs::metadata(&path).unwrap().len(), one);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn bad_header_is_an_error_not_a_silent_reset() {
        let path = tmp("hdr");
        std::fs::write(&path, b"NOTAWAL!").unwrap();
        let err = Wal::open(&path, 0).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::write(&path, b"PS").unwrap();
        assert!(Wal::open(&path, 0).is_err());
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn append_truncates_the_leftovers_of_a_failed_append() {
        let path = tmp("leftover");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&rec(&[(1, 2)], &[])).unwrap();
        // Simulate a failed append that got partial bytes to disk (the
        // bookkeeping was not advanced): garbage past the durable end.
        let mut raw = OpenOptions::new().append(true).open(&path).unwrap();
        raw.write_all(&[0xaa; 13]).unwrap();
        raw.sync_data().unwrap();
        drop(raw);
        // The next append must re-anchor at the durable boundary; the
        // garbage must not survive in front of the new record.
        wal.append(&rec(&[(3, 4)], &[])).unwrap();
        drop(wal);
        let (_, scan) = Wal::open(&path, 0).unwrap();
        assert_eq!(scan.torn_bytes, 0, "no garbage may remain");
        assert_eq!(
            scan.records,
            vec![(1, rec(&[(1, 2)], &[])), (2, rec(&[(3, 4)], &[]))],
            "both durable records recovered, in order"
        );
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn gap_after_fallback_snapshot_is_an_error_not_truncation() {
        // The fallback-recovery hazard: a log whose records start *past*
        // the snapshot's coverage (snapshot-5 rotted, recovery fell back
        // to snapshot-0, but compaction already dropped records 1..=5).
        // Refuse loudly; truncating would destroy valid fsynced records.
        let path = tmp("gap");
        let mut wal = Wal::create(&path).unwrap();
        for i in 0..3u32 {
            wal.append(&rec(&[(i, i + 1)], &[])).unwrap();
        }
        wal.reset().unwrap(); // snapshot now covers 1..=3
        wal.append(&rec(&[(7, 8)], &[])).unwrap(); // record 4
        drop(wal);
        let len = std::fs::metadata(&path).unwrap().len();
        let err = Wal::open(&path, 0).unwrap_err(); // older snapshot: base 0
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("gap"), "{err}");
        assert_eq!(
            std::fs::metadata(&path).unwrap().len(),
            len,
            "a sequence gap must not truncate valid records"
        );
        // The matching snapshot still opens it fine.
        let (_, scan) = Wal::open(&path, 3).unwrap();
        assert_eq!(scan.records.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![4]);
        std::fs::remove_file(path).ok();
    }

    #[test]
    fn reset_keeps_sequence_numbering() {
        let path = tmp("reset");
        let mut wal = Wal::create(&path).unwrap();
        wal.append(&rec(&[(1, 2)], &[])).unwrap();
        wal.append(&rec(&[(3, 4)], &[])).unwrap();
        wal.reset().unwrap();
        assert_eq!(wal.bytes(), WAL_MAGIC.len() as u64);
        assert_eq!(wal.append(&rec(&[(5, 6)], &[])).unwrap(), 3);
        drop(wal);
        // Reopening against the covering snapshot's seq sees only rec 3.
        let (_, scan) = Wal::open(&path, 2).unwrap();
        assert_eq!(scan.records.iter().map(|&(s, _)| s).collect::<Vec<_>>(), vec![3]);
        std::fs::remove_file(path).ok();
    }
}

//! # pscc-store — durable per-graph snapshots + write-ahead delta log
//!
//! The engine's [`Catalog`] keeps graphs and indexes in memory; this crate
//! makes one graph survive restarts. A [`Store`] owns one directory:
//!
//! ```text
//! <dir>/snapshot-<seq>.pscc   checksummed binary snapshot (graph + metadata)
//! <dir>/wal.log               append-only framed delta log, fsynced per append
//! ```
//!
//! **Write path** — every applied delta batch is appended to the log
//! ([`Store::append`]) and fsynced *before* the in-memory graph swap
//! completes: once the caller's `apply_delta` returns, the batch is
//! durable.
//!
//! **Recovery** ([`Store::open`]) — load the newest valid snapshot, replay
//! the log suffix (records with sequence numbers past the snapshot), and
//! truncate any torn tail left by a crash mid-append. Replay hands the
//! decoded batches back to the caller ([`Recovery::replayed`]), who applies
//! them through its own merge path.
//!
//! **Compaction** ([`Store::compact`]) — when the log outgrows the
//! snapshot, write a fresh snapshot covering everything applied so far
//! (temp file + fsync + atomic rename) and truncate the log. The engine
//! schedules this on a background worker: queries never wait on it (they
//! take no lock compaction holds); concurrent updates to the *same*
//! graph wait for the snapshot write, updates to other graphs do not.
//!
//! The delta payload type ([`DeltaRecord`]) is deliberately plain edge
//! lists: this crate depends only on `pscc-graph`, and the engine converts
//! to and from its richer `Delta` type.
//!
//! [`Catalog`]: https://docs.rs/pscc-engine

pub mod inspect;
pub(crate) mod snapshot;
pub(crate) mod wal;

use std::io;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use pscc_graph::{DiGraph, V};

use snapshot::{parse_snapshot_name, read_snapshot, snapshot_file_name, sync_dir, write_snapshot};
use wal::Wal;

/// Cached handle for the `pscc_store_compaction_nanos` histogram.
fn compaction_histogram() -> &'static std::sync::Arc<pscc_telemetry::Histogram> {
    static HIST: std::sync::OnceLock<std::sync::Arc<pscc_telemetry::Histogram>> =
        std::sync::OnceLock::new();
    HIST.get_or_init(|| pscc_telemetry::histogram("pscc_store_compaction_nanos"))
}

/// One durable delta batch: the effective edge insertions and deletions
/// of an applied update, exactly as merged into the graph.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct DeltaRecord {
    /// Edges added by the batch.
    pub insertions: Vec<(V, V)>,
    /// Edges removed by the batch.
    pub deletions: Vec<(V, V)>,
}

/// Catalog metadata persisted alongside the graph in every snapshot.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StoreMeta {
    /// The catalog's per-entry generation counter at capture time.
    pub generation: u64,
    /// `BatchOptions::memo_bits` of the entry.
    pub memo_bits: u32,
    /// `BatchOptions::grain` of the entry.
    pub grain: u64,
}

/// What [`Store::open`] recovered.
#[derive(Debug)]
pub struct Recovery {
    /// The graph as of the newest valid snapshot.
    pub graph: DiGraph,
    /// Metadata from that snapshot.
    pub meta: StoreMeta,
    /// Log records past the snapshot, in order; the caller replays these
    /// through its merge path to reach the durable state.
    pub replayed: Vec<DeltaRecord>,
    /// Bytes of torn log tail discarded (0 after a clean shutdown).
    pub torn_bytes: u64,
}

#[derive(Debug)]
struct Inner {
    wal: Wal,
    snapshot_seq: u64,
    snapshot_bytes: u64,
}

/// A durable store for one graph: a snapshot plus a write-ahead delta log
/// in one directory. See the [crate docs](self) for the formats and
/// guarantees.
///
/// All methods take `&self`; an internal mutex serializes file access, so
/// a store can be shared behind an `Arc` between the serving path and a
/// background compactor.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    inner: Mutex<Inner>,
    /// Advisory cross-process lock on `dir/LOCK`, held for the store's
    /// lifetime: two processes appending to one log would truncate each
    /// other's fsynced records.
    _lock: std::fs::File,
}

const WAL_FILE: &str = "wal.log";
const LOCK_FILE: &str = "LOCK";

/// Takes the store directory's advisory lock, failing with
/// [`io::ErrorKind::WouldBlock`] if another process (or another `Store`
/// in this one) already holds it.
fn acquire_dir_lock(dir: &Path) -> io::Result<std::fs::File> {
    let lock = std::fs::OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join(LOCK_FILE))?;
    lock.try_lock().map_err(|e| {
        io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("{} is locked by another store instance ({e})", dir.display()),
        )
    })?;
    Ok(lock)
}

fn locked(inner: &Mutex<Inner>) -> std::sync::MutexGuard<'_, Inner> {
    inner.lock().expect("store lock")
}

impl Store {
    /// Creates a fresh store in `dir` (created if missing, which must not
    /// already contain a store): writes an empty log and the initial
    /// snapshot of `g` + `meta` covering sequence 0, in that order — a
    /// crash in between leaves an [aborted creation](Store::is_aborted_create)
    /// (no acknowledged state) that a retry of `create` repairs in place.
    pub fn create(dir: impl AsRef<Path>, g: &DiGraph, meta: StoreMeta) -> io::Result<Store> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        let wal_path = dir.join(WAL_FILE);
        if Self::is_aborted_create(&dir)? {
            // A previous create crashed before its snapshot: nothing was
            // ever acknowledged, so start over.
            std::fs::remove_file(&wal_path)?;
        } else if wal_path.exists() || newest_snapshot(&dir)?.is_some() {
            // (the parse cost here is trivial: create() refuses occupied
            // directories, so a hit means an error path anyway)
            return Err(io::Error::new(
                io::ErrorKind::AlreadyExists,
                format!("{} already holds a store", dir.display()),
            ));
        }
        let lock = acquire_dir_lock(&dir)?;
        // Log first: records can only ever exist once the snapshot they
        // follow does, so every crash window is classifiable.
        let wal = Wal::create(&wal_path)?;
        let (_, snapshot_bytes) = write_snapshot(&dir, 0, g, &meta)?;
        sync_dir(&dir);
        Ok(Store {
            dir,
            inner: Mutex::new(Inner { wal, snapshot_seq: 0, snapshot_bytes }),
            _lock: lock,
        })
    }

    /// True if `dir` holds the debris of a [`Store::create`] that crashed
    /// before writing its initial snapshot: a header-only log and no
    /// snapshot files. No state was ever acknowledged for such a
    /// directory (`create` had not returned), so callers may safely treat
    /// it as absent — [`Store::create`] repairs it in place, and the
    /// engine's recovery scan skips it instead of failing the whole data
    /// directory.
    pub fn is_aborted_create(dir: impl AsRef<Path>) -> io::Result<bool> {
        let dir = dir.as_ref();
        let wal_path = dir.join(WAL_FILE);
        let header_only = match std::fs::metadata(&wal_path) {
            Ok(m) => m.len() <= wal::WAL_MAGIC.len() as u64,
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(false),
            Err(e) => return Err(e),
        };
        if !header_only {
            return Ok(false);
        }
        // Snapshot *presence* (not validity!): an empty log next to a
        // snapshot file that merely fails validation is data loss and
        // must stay a loud recovery error, never "aborted, wipe it".
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if entry.file_name().to_str().and_then(parse_snapshot_name).is_some() {
                return Ok(false);
            }
        }
        Ok(true)
    }

    /// Opens an existing store: loads the newest valid snapshot, scans the
    /// log (truncating any torn tail in place), and returns the store plus
    /// everything the caller must replay.
    ///
    /// Fails with [`io::ErrorKind::InvalidData`] if no snapshot validates
    /// or the log header is corrupt — those are lost data, not torn
    /// tails — and with [`io::ErrorKind::WouldBlock`] if another live
    /// store instance (this process or another) holds the directory.
    /// Stale `.tmp` files from interrupted snapshot writes are swept.
    pub fn open(dir: impl AsRef<Path>) -> io::Result<(Store, Recovery)> {
        let dir = dir.as_ref().to_path_buf();
        let lock = acquire_dir_lock(&dir).map_err(|e| {
            if e.kind() == io::ErrorKind::NotFound {
                // A missing directory is "not a store", same as an empty one.
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{} holds no valid snapshot", dir.display()),
                )
            } else {
                e
            }
        })?;
        remove_stale_tmp_files(&dir);
        // Recovery timing: the snapshot load plus the full log scan —
        // the restart cost the compaction policy exists to bound.
        let mut recovery_span = pscc_telemetry::span("store_recovery");
        let recovery_timer = pscc_telemetry::enabled().then(pscc_telemetry::Timer::start);
        let snap = newest_snapshot(&dir)?.ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{} holds no valid snapshot", dir.display()),
            )
        })?;
        let Snapshot { seq: snap_seq, path, graph, meta } = snap;
        let (wal, scan) = Wal::open(&dir.join(WAL_FILE), snap_seq)?;
        let snapshot_bytes = std::fs::metadata(&path)?.len();
        let recovery = Recovery {
            graph,
            meta,
            replayed: scan.records.into_iter().map(|(_, r)| r).collect(),
            torn_bytes: scan.torn_bytes,
        };
        recovery_span.set_attr("replayed", recovery.replayed.len());
        recovery_span.set_attr("torn_bytes", recovery.torn_bytes);
        if let Some(t) = recovery_timer {
            pscc_telemetry::histogram("pscc_store_recovery_replay_nanos").record(t.elapsed());
        }
        drop(recovery_span);
        let store = Store {
            dir,
            inner: Mutex::new(Inner { wal, snapshot_seq: snap_seq, snapshot_bytes }),
            _lock: lock,
        };
        Ok((store, recovery))
    }

    /// Appends one delta batch to the log and fsyncs it. When this
    /// returns, the batch is durable: a crash at any later point replays
    /// it on [`Store::open`]. Returns the batch's sequence number.
    pub fn append(&self, rec: &DeltaRecord) -> io::Result<u64> {
        locked(&self.inner).wal.append(rec)
    }

    /// Writes a fresh snapshot of `g` + `meta` covering every batch
    /// appended so far, then truncates the log. `g` must be the graph with
    /// exactly those batches applied — the engine guarantees this by
    /// holding its per-entry update lock across capture and compaction.
    ///
    /// Queries never wait on this (it touches no engine query lock);
    /// concurrent appends to this store are excluded by the caller's
    /// update lock and wait for the snapshot write.
    pub fn compact(&self, g: &DiGraph, meta: StoreMeta) -> io::Result<()> {
        let mut inner = locked(&self.inner);
        let seq = inner.wal.last_seq();
        if seq == inner.snapshot_seq {
            return Ok(()); // nothing new to cover
        }
        let mut span = pscc_telemetry::span("compaction");
        span.set_attr("covered_seq", seq);
        let timer = pscc_telemetry::enabled().then(pscc_telemetry::Timer::start);
        let old = self.dir.join(snapshot_file_name(inner.snapshot_seq));
        let (_, snapshot_bytes) = write_snapshot(&self.dir, seq, g, &meta)?;
        // Remove the old snapshot *before* truncating the log: were the
        // log emptied first, a crash in between would leave a fallback
        // snapshot whose records are gone — and if the new snapshot later
        // rotted, recovery would silently resume from the old one minus
        // its acknowledged batches. Without a fallback, that double fault
        // is a loud "no valid snapshot" error instead.
        std::fs::remove_file(old).ok();
        // Truncate the log before adopting the new bookkeeping: if the
        // reset fails, snapshot_seq stays behind wal.last_seq() and the
        // next compaction retries instead of no-opping forever. (A crash
        // here is fine too — recovery skips records the snapshot covers.)
        inner.wal.reset()?;
        inner.snapshot_seq = seq;
        inner.snapshot_bytes = snapshot_bytes;
        sync_dir(&self.dir);
        if let Some(t) = timer {
            compaction_histogram().record(t.elapsed());
        }
        pscc_telemetry::counter("pscc_store_compactions_total").inc();
        Ok(())
    }

    /// Current log size in bytes (grows with every append, resets on
    /// compaction).
    pub fn wal_bytes(&self) -> u64 {
        locked(&self.inner).wal.bytes()
    }

    /// Size in bytes of the current snapshot file.
    pub fn snapshot_bytes(&self) -> u64 {
        locked(&self.inner).snapshot_bytes
    }

    /// Sequence number of the most recently appended batch (0 if none
    /// since the initial snapshot).
    pub fn last_seq(&self) -> u64 {
        locked(&self.inner).wal.last_seq()
    }

    /// WAL sequence number the current snapshot covers.
    pub fn snapshot_seq(&self) -> u64 {
        locked(&self.inner).snapshot_seq
    }

    /// The store's directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// Removes leftover `snapshot-*.tmp` files from snapshot writes that
/// never reached their rename (ENOSPC, crash): each is a full graph copy
/// and nothing ever reads them. Best-effort.
fn remove_stale_tmp_files(dir: &Path) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    for entry in entries.flatten() {
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if name.starts_with("snapshot-") && name.ends_with(".tmp") {
            std::fs::remove_file(entry.path()).ok();
        }
    }
}

/// A parsed, validated snapshot candidate.
struct Snapshot {
    seq: u64,
    path: PathBuf,
    graph: DiGraph,
    meta: StoreMeta,
}

/// Newest snapshot in `dir` that *validates* (checksum and all): tries
/// candidates in descending sequence order, skipping corrupt ones, so a
/// damaged newer file falls back to an older intact snapshot when one
/// still exists. Returns the parsed result so recovery never reads the
/// winning file twice.
fn newest_snapshot(dir: &Path) -> io::Result<Option<Snapshot>> {
    let mut seqs: Vec<u64> = Vec::new();
    match std::fs::read_dir(dir) {
        Ok(entries) => {
            for entry in entries {
                let entry = entry?;
                if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_name) {
                    seqs.push(seq);
                }
            }
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e),
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    for seq in seqs {
        let path = dir.join(snapshot_file_name(seq));
        if let Ok((graph, meta, snap_seq)) = read_snapshot(&path) {
            debug_assert_eq!(snap_seq, seq, "snapshot name disagrees with its header");
            return Ok(Some(Snapshot { seq, path, graph, meta }));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_store_test_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn demo_graph() -> DiGraph {
        DiGraph::from_edges(8, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 6)])
    }

    fn rec(ins: &[(V, V)], del: &[(V, V)]) -> DeltaRecord {
        DeltaRecord { insertions: ins.to_vec(), deletions: del.to_vec() }
    }

    #[test]
    fn create_append_open_replays_everything() {
        let dir = tmpdir("replay");
        let g = demo_graph();
        let meta = StoreMeta { generation: 0, memo_bits: 16, grain: 512 };
        let store = Store::create(&dir, &g, meta).unwrap();
        assert_eq!(store.append(&rec(&[(4, 5)], &[])).unwrap(), 1);
        assert_eq!(store.append(&rec(&[], &[(0, 1)])).unwrap(), 2);
        drop(store);
        let (store, recovery) = Store::open(&dir).unwrap();
        assert_eq!(recovery.graph.out_csr(), g.out_csr());
        assert_eq!(recovery.meta, meta);
        assert_eq!(recovery.replayed, vec![rec(&[(4, 5)], &[]), rec(&[], &[(0, 1)])]);
        assert_eq!(recovery.torn_bytes, 0);
        assert_eq!(store.last_seq(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn create_refuses_an_occupied_directory() {
        let dir = tmpdir("occupied");
        let g = demo_graph();
        Store::create(&dir, &g, StoreMeta::default()).unwrap();
        let err = Store::create(&dir, &g, StoreMeta::default()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::AlreadyExists);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn second_live_instance_is_locked_out() {
        let dir = tmpdir("locked");
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        // Two writers on one log would truncate each other's records.
        let err = Store::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        drop(store);
        assert!(Store::open(&dir).is_ok(), "lock released with the instance");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn aborted_create_is_repaired_by_retry() {
        // Simulate a create that crashed between Wal::create and the
        // initial snapshot: a header-only log, nothing else.
        let dir = tmpdir("aborted");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(WAL_FILE), b"PSCCWAL1").unwrap();
        assert!(Store::is_aborted_create(&dir).unwrap());
        // Nothing was acknowledged, so open() refusing is correct...
        assert!(Store::open(&dir).is_err());
        // ...and a retried create repairs the directory in place.
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        assert!(!Store::is_aborted_create(&dir).unwrap());
        store.append(&rec(&[(4, 5)], &[])).unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir).unwrap();
        assert_eq!(recovery.replayed, vec![rec(&[(4, 5)], &[])]);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn empty_log_next_to_an_invalid_snapshot_is_not_aborted() {
        // A compacted store whose only snapshot later rots: the empty log
        // must read as data loss, never as an aborted creation a create
        // could silently wipe.
        let dir = tmpdir("rotted");
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        store.append(&rec(&[(4, 5)], &[])).unwrap();
        store.compact(&g.with_delta(&[(4, 5)], &[]), StoreMeta::default()).unwrap();
        drop(store);
        let snap = dir.join(snapshot_file_name(1));
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();
        assert!(!Store::is_aborted_create(&dir).unwrap());
        assert!(Store::open(&dir).is_err());
        assert_eq!(
            Store::create(&dir, &g, StoreMeta::default()).unwrap_err().kind(),
            io::ErrorKind::AlreadyExists
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compaction_covers_the_log_and_survives_reopen() {
        let dir = tmpdir("compact");
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        store.append(&rec(&[(4, 5)], &[])).unwrap();
        store.append(&rec(&[(6, 7)], &[])).unwrap();
        let with_both = g.with_delta(&[(4, 5), (6, 7)], &[]);
        let wal_before = store.wal_bytes();
        store.compact(&with_both, StoreMeta { generation: 2, memo_bits: 16, grain: 512 }).unwrap();
        assert!(store.wal_bytes() < wal_before);
        assert_eq!(store.snapshot_seq(), 2);
        // Later appends land after the snapshot.
        store.append(&rec(&[(7, 0)], &[])).unwrap();
        drop(store);
        let (_, recovery) = Store::open(&dir).unwrap();
        assert_eq!(recovery.graph.out_csr(), with_both.out_csr());
        assert_eq!(recovery.meta.generation, 2);
        assert_eq!(recovery.replayed, vec![rec(&[(7, 0)], &[])]);
        // Exactly one snapshot file remains.
        let snaps = std::fs::read_dir(&dir)
            .unwrap()
            .filter(|e| {
                parse_snapshot_name(e.as_ref().unwrap().file_name().to_str().unwrap()).is_some()
            })
            .count();
        assert_eq!(snaps, 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compact_with_empty_log_is_a_noop() {
        let dir = tmpdir("noopcompact");
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        let bytes = store.snapshot_bytes();
        store.compact(&g, StoreMeta::default()).unwrap();
        assert_eq!(store.snapshot_seq(), 0);
        assert_eq!(store.snapshot_bytes(), bytes);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_wal_tail_recovers_the_fsynced_prefix() {
        let dir = tmpdir("torn");
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        store.append(&rec(&[(4, 5)], &[])).unwrap();
        let good = store.wal_bytes();
        store.append(&rec(&[(6, 7)], &[])).unwrap();
        drop(store);
        // Tear the second record: keep 5 bytes of it.
        let wal_path = dir.join(WAL_FILE);
        let bytes = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &bytes[..good as usize + 5]).unwrap();
        let (store, recovery) = Store::open(&dir).unwrap();
        assert_eq!(recovery.replayed, vec![rec(&[(4, 5)], &[])]);
        assert_eq!(recovery.torn_bytes, 5);
        // The tail is gone from disk and appending resumes at seq 2.
        assert_eq!(std::fs::metadata(&wal_path).unwrap().len(), good);
        assert_eq!(store.append(&rec(&[(6, 7)], &[])).unwrap(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_only_snapshot_fails_loudly() {
        let dir = tmpdir("fallback");
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        store.append(&rec(&[(4, 5)], &[])).unwrap();
        let newer = g.with_delta(&[(4, 5)], &[]);
        store.compact(&newer, StoreMeta { generation: 1, ..Default::default() }).unwrap();
        drop(store);
        // Corrupt the (only) snapshot: recovery must fail loudly, not
        // fabricate an empty graph.
        let snap = dir.join(snapshot_file_name(1));
        let mut bytes = std::fs::read(&snap).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        std::fs::write(&snap, &bytes).unwrap();
        let err = Store::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_directory_is_not_a_store() {
        let dir = tmpdir("missing");
        let err = Store::open(&dir).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}

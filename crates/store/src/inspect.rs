//! Read-only introspection of a store directory, for `pscc-doctor`.
//!
//! [`Store::open`](crate::Store::open) is a *recovery* path: it takes the
//! directory's advisory `LOCK` and truncates torn WAL tails in place.
//! A post-mortem tool must do neither — the data dir under diagnosis may
//! belong to a live (or wedged) process, and the evidence must stay
//! byte-identical to what the crash left. Everything here opens files
//! read-only, ignores the lock, and reports damage instead of repairing
//! it.

use std::fs::File;
use std::io;
use std::path::{Path, PathBuf};

use pscc_graph::DiGraph;

use crate::snapshot::{parse_snapshot_name, read_snapshot};
use crate::wal::{Wal, WAL_MAGIC};
use crate::{DeltaRecord, StoreMeta};

/// File name of the write-ahead log inside a store directory.
pub const WAL_FILE_NAME: &str = crate::WAL_FILE;

/// One snapshot file found in a store directory, validated but untouched.
#[derive(Debug)]
pub struct SnapshotInfo {
    /// The snapshot file.
    pub path: PathBuf,
    /// The WAL sequence its file name claims to cover.
    pub name_seq: u64,
    /// File size in bytes.
    pub bytes: u64,
    /// Full validation result: the parsed contents, or why the file is
    /// unusable (checksum mismatch, truncation, version skew, …).
    pub contents: Result<SnapshotContents, String>,
}

/// The parsed contents of a valid snapshot file.
#[derive(Debug)]
pub struct SnapshotContents {
    /// The WAL sequence the snapshot's header says it covers.
    pub seq: u64,
    /// Catalog metadata persisted with the graph.
    pub meta: StoreMeta,
    /// Vertex count of the embedded graph.
    pub nodes: usize,
    /// Edge count of the embedded graph.
    pub edges: usize,
}

/// Lists and validates every `snapshot-<seq>.pscc` in `dir`, newest
/// first. Each candidate is fully read (the trailing checksum covers the
/// whole file), but nothing is modified or deleted — unlike recovery,
/// which sweeps `.tmp` debris.
pub fn list_snapshots(dir: &Path) -> io::Result<Vec<SnapshotInfo>> {
    let mut seqs: Vec<u64> = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seq) = entry.file_name().to_str().and_then(parse_snapshot_name) {
            seqs.push(seq);
        }
    }
    seqs.sort_unstable_by(|a, b| b.cmp(a));
    let mut out = Vec::with_capacity(seqs.len());
    for seq in seqs {
        let path = dir.join(crate::snapshot::snapshot_file_name(seq));
        let bytes = std::fs::metadata(&path)?.len();
        let contents = match read_snapshot(&path) {
            Ok((graph, meta, header_seq)) => {
                if header_seq == seq {
                    Ok(SnapshotContents {
                        seq: header_seq,
                        meta,
                        nodes: graph.n(),
                        edges: graph.m(),
                    })
                } else {
                    Err(format!("header covers seq {header_seq} but file name claims {seq}"))
                }
            }
            Err(e) => Err(e.to_string()),
        };
        out.push(SnapshotInfo { path, name_seq: seq, bytes, contents });
    }
    Ok(out)
}

/// What a read-only WAL scan found.
#[derive(Debug, Default)]
pub struct WalInspect {
    /// Every checksum-valid record from the start of the log, in order,
    /// with its sequence number — including records a snapshot already
    /// covers (the caller cross-checks coverage itself).
    pub records: Vec<(u64, DeltaRecord)>,
    /// Bytes past the last valid record: a torn append, normal crash
    /// residue (recovery would truncate them; this scan does not).
    pub torn_bytes: u64,
    /// Damage that recovery would refuse to open: a bad or short header,
    /// or a sequence break between checksum-valid records.
    pub corruption: Option<String>,
}

/// Scans the WAL at `path` read-only: no lock, no truncation, the file
/// is left byte-identical. Contrast [`crate::Store::open`], which
/// truncates the torn tail it finds.
pub fn scan_wal(path: &Path) -> io::Result<WalInspect> {
    let mut file = File::open(path)?;
    let file_len = file.metadata()?.len();
    let mut out = WalInspect::default();
    if file_len < WAL_MAGIC.len() as u64 {
        out.corruption = Some("wal shorter than its magic header".to_string());
        out.torn_bytes = file_len;
        return Ok(out);
    }
    {
        use std::io::Read;
        let mut magic = [0u8; 8];
        file.read_exact(&mut magic)?;
        if &magic != WAL_MAGIC {
            out.corruption = Some("bad wal magic".to_string());
            out.torn_bytes = file_len - magic.len() as u64;
            return Ok(out);
        }
    }
    let mut valid_len = WAL_MAGIC.len() as u64;
    let mut expect_seq: Option<u64> = None;
    while let Some((seq, rec, end)) = Wal::read_record(&mut file, valid_len, file_len) {
        if let Some(want) = expect_seq {
            if seq != want {
                out.corruption =
                    Some(format!("wal sequence break: record {seq} follows {}", want - 1));
                break;
            }
        }
        out.records.push((seq, rec));
        expect_seq = Some(seq + 1);
        valid_len = end;
    }
    out.torn_bytes = file_len - valid_len;
    Ok(out)
}

/// Loads the newest snapshot that validates, exactly as recovery would
/// pick it — but without the lock, the `.tmp` sweep, or the WAL scan.
/// Returns the covered WAL sequence, the graph, and its metadata; `None`
/// when no snapshot validates.
pub fn load_newest_snapshot(dir: &Path) -> io::Result<Option<(u64, DiGraph, StoreMeta)>> {
    for info in list_snapshots(dir)? {
        if info.contents.is_ok() {
            // Re-read for the graph: list_snapshots validated but did not
            // keep the (potentially large) graph alive for every entry.
            let (graph, meta, seq) = read_snapshot(&info.path)?;
            return Ok(Some((seq, graph, meta)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Store;
    use pscc_graph::V;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_inspect_test_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        p
    }

    fn demo_graph() -> DiGraph {
        DiGraph::from_edges(8, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (5, 6)])
    }

    fn rec(ins: &[(V, V)], del: &[(V, V)]) -> DeltaRecord {
        DeltaRecord { insertions: ins.to_vec(), deletions: del.to_vec() }
    }

    #[test]
    fn inspect_sees_a_live_store_without_disturbing_it() {
        let dir = tmpdir("live");
        let g = demo_graph();
        let meta = StoreMeta { generation: 3, memo_bits: 16, grain: 512 };
        let store = Store::create(&dir, &g, meta).unwrap();
        store.append(&rec(&[(4, 5)], &[])).unwrap();
        store.append(&rec(&[], &[(0, 1)])).unwrap();
        // The store is still open (holding LOCK): inspection must work
        // anyway, read-only.
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 1);
        let contents = snaps[0].contents.as_ref().unwrap();
        assert_eq!(contents.seq, 0);
        assert_eq!(contents.meta, meta);
        assert_eq!(contents.nodes, 8);
        let wal = scan_wal(&dir.join(WAL_FILE_NAME)).unwrap();
        assert!(wal.corruption.is_none());
        assert_eq!(wal.torn_bytes, 0);
        assert_eq!(wal.records.len(), 2);
        assert_eq!(wal.records[0], (1, rec(&[(4, 5)], &[])));
        let (seq, graph, _) = load_newest_snapshot(&dir).unwrap().unwrap();
        assert_eq!(seq, 0);
        assert_eq!(graph.out_csr(), g.out_csr());
        drop(store);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_wal_tail_is_reported_but_never_truncated() {
        let dir = tmpdir("torn");
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        store.append(&rec(&[(4, 5)], &[])).unwrap();
        store.append(&rec(&[(6, 7)], &[])).unwrap();
        drop(store);
        let wal_path = dir.join(WAL_FILE_NAME);
        let full = std::fs::read(&wal_path).unwrap();
        std::fs::write(&wal_path, &full[..full.len() - 9]).unwrap();
        let before = std::fs::metadata(&wal_path).unwrap().len();
        let scan = scan_wal(&wal_path).unwrap();
        assert!(scan.corruption.is_none(), "a torn tail is not corruption");
        assert_eq!(scan.records.len(), 1);
        assert!(scan.torn_bytes > 0);
        assert_eq!(
            std::fs::metadata(&wal_path).unwrap().len(),
            before,
            "inspection must leave the file byte-identical"
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn damaged_snapshot_and_wal_are_classified() {
        let dir = tmpdir("damage");
        let g = demo_graph();
        let store = Store::create(&dir, &g, StoreMeta::default()).unwrap();
        store.append(&rec(&[(4, 5)], &[])).unwrap();
        drop(store);
        // Flip a byte mid-snapshot: listed, but invalid.
        let snaps = list_snapshots(&dir).unwrap();
        let snap_path = snaps[0].path.clone();
        let mut bytes = std::fs::read(&snap_path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&snap_path, &bytes).unwrap();
        let snaps = list_snapshots(&dir).unwrap();
        assert!(snaps[0].contents.is_err());
        assert!(load_newest_snapshot(&dir).unwrap().is_none());
        // Damage the WAL header: corruption, not a torn tail.
        let wal_path = dir.join(WAL_FILE_NAME);
        let mut wal_bytes = std::fs::read(&wal_path).unwrap();
        wal_bytes[0] ^= 0xff;
        std::fs::write(&wal_path, &wal_bytes).unwrap();
        let scan = scan_wal(&wal_path).unwrap();
        assert!(scan.corruption.is_some());
        std::fs::remove_dir_all(dir).ok();
    }
}

//! Versioned, checksummed snapshot files.
//!
//! ## File format (version 1)
//!
//! ```text
//! "PSCCSNAP"          8-byte magic
//! version: u32        format version (1)
//! seq: u64            WAL sequence number this snapshot covers
//! generation: u64     catalog generation counter at capture
//! memo_bits: u32      BatchOptions.memo_bits
//! grain: u64          BatchOptions.grain
//! graph               pscc-graph binary CSR ("PSCCCSR1" framing)
//! crc: u64            Checksum64 over every preceding byte
//! ```
//!
//! All integers are little-endian. A snapshot is written to a temporary
//! file, fsynced, and renamed into place (`snapshot-<seq>.pscc`), with a
//! best-effort directory fsync after the rename — a crash mid-write
//! leaves either the old snapshot or the new one, never a half-written
//! file under the live name. The trailing checksum rejects bit rot and
//! torn renames on filesystems without atomic rename.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use pscc_graph::io::{binary_len, read_binary_from, write_binary_to, Checksum64};
use pscc_graph::DiGraph;

use crate::StoreMeta;

const SNAP_MAGIC: &[u8; 8] = b"PSCCSNAP";
const SNAP_VERSION: u32 = 1;
/// Bytes before the embedded graph: magic + version + seq + generation +
/// memo_bits + grain.
const HEADER_BYTES: u64 = 8 + 4 + 8 + 8 + 4 + 8;

fn invalid<T>(msg: impl Into<String>) -> io::Result<T> {
    Err(io::Error::new(io::ErrorKind::InvalidData, msg.into()))
}

/// A writer adapter folding everything written into a [`Checksum64`].
struct HashingWriter<W: Write> {
    inner: W,
    crc: Checksum64,
}

impl<W: Write> Write for HashingWriter<W> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let written = self.inner.write(buf)?;
        self.crc.update(&buf[..written]);
        Ok(written)
    }
    fn flush(&mut self) -> io::Result<()> {
        self.inner.flush()
    }
}

/// A reader adapter folding everything read into a [`Checksum64`].
struct HashingReader<R: Read> {
    inner: R,
    crc: Checksum64,
}

impl<R: Read> Read for HashingReader<R> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let got = self.inner.read(buf)?;
        self.crc.update(&buf[..got]);
        Ok(got)
    }
}

/// The live filename of the snapshot covering WAL sequence `seq`.
pub(crate) fn snapshot_file_name(seq: u64) -> String {
    format!("snapshot-{seq:020}.pscc")
}

/// Parses `snapshot-<seq>.pscc` back into `seq`.
pub(crate) fn parse_snapshot_name(name: &str) -> Option<u64> {
    name.strip_prefix("snapshot-")?.strip_suffix(".pscc")?.parse().ok()
}

/// Writes a snapshot of `g` + `meta` covering WAL sequence `seq` into
/// `dir`, atomically (temp file + fsync + rename + dir fsync). Returns
/// the live path and the file's size in bytes.
pub(crate) fn write_snapshot(
    dir: &Path,
    seq: u64,
    g: &DiGraph,
    meta: &StoreMeta,
) -> io::Result<(PathBuf, u64)> {
    let live = dir.join(snapshot_file_name(seq));
    let tmp = dir.join(format!("snapshot-{seq:020}.tmp"));
    let mut span = pscc_telemetry::span("snapshot_write");
    span.set_attr("seq", seq);
    let timer = pscc_telemetry::enabled().then(pscc_telemetry::Timer::start);
    let result = write_snapshot_tmp(&tmp, seq, g, meta).and_then(|()| {
        std::fs::rename(&tmp, &live)?;
        sync_dir(dir);
        Ok(())
    });
    if let Some(t) = timer {
        pscc_telemetry::histogram("pscc_store_snapshot_write_nanos").record(t.elapsed());
    }
    if let Err(e) = result {
        // Don't leak a graph-sized temp file on every failed attempt
        // (failures cluster exactly when disk space is short).
        std::fs::remove_file(&tmp).ok();
        return Err(e);
    }
    let bytes = HEADER_BYTES + binary_len(g) + 8;
    Ok((live, bytes))
}

/// The fallible body of [`write_snapshot`]: everything up to (not
/// including) the rename into the live name.
fn write_snapshot_tmp(tmp: &Path, seq: u64, g: &DiGraph, meta: &StoreMeta) -> io::Result<()> {
    let file = File::create(tmp)?;
    let mut w = HashingWriter { inner: BufWriter::new(file), crc: Checksum64::new() };
    w.write_all(SNAP_MAGIC)?;
    w.write_all(&SNAP_VERSION.to_le_bytes())?;
    w.write_all(&seq.to_le_bytes())?;
    w.write_all(&meta.generation.to_le_bytes())?;
    w.write_all(&meta.memo_bits.to_le_bytes())?;
    w.write_all(&meta.grain.to_le_bytes())?;
    write_binary_to(g, &mut w)?;
    let crc = w.crc.finish();
    let mut inner = w.inner;
    inner.write_all(&crc.to_le_bytes())?;
    inner.flush()?;
    inner.get_ref().sync_all()?;
    Ok(())
}

/// Reads and validates one snapshot file: magic, version, trailing
/// checksum, and the embedded graph's own header validation. Returns the
/// graph, its metadata, and the WAL sequence the snapshot covers.
pub(crate) fn read_snapshot(path: &Path) -> io::Result<(DiGraph, StoreMeta, u64)> {
    let file = File::open(path)?;
    let file_len = file.metadata()?.len();
    if file_len < HEADER_BYTES + 8 {
        return invalid("snapshot shorter than its header");
    }
    let mut r = HashingReader { inner: BufReader::new(file), crc: Checksum64::new() };
    let mut magic = [0u8; 8];
    r.read_exact(&mut magic)?;
    if &magic != SNAP_MAGIC {
        return invalid("bad snapshot magic");
    }
    let mut b4 = [0u8; 4];
    let mut b8 = [0u8; 8];
    r.read_exact(&mut b4)?;
    let version = u32::from_le_bytes(b4);
    if version != SNAP_VERSION {
        return invalid(format!("unsupported snapshot version {version}"));
    }
    r.read_exact(&mut b8)?;
    let seq = u64::from_le_bytes(b8);
    r.read_exact(&mut b8)?;
    let generation = u64::from_le_bytes(b8);
    r.read_exact(&mut b4)?;
    let memo_bits = u32::from_le_bytes(b4);
    r.read_exact(&mut b8)?;
    let grain = u64::from_le_bytes(b8);
    // The graph may use at most what lies between the header and the
    // trailing checksum.
    let graph = read_binary_from(&mut r, file_len - HEADER_BYTES - 8)?;
    let want_crc = r.crc.finish();
    let mut trailer = [0u8; 8];
    r.inner.read_exact(&mut trailer)?;
    if u64::from_le_bytes(trailer) != want_crc {
        return invalid("snapshot checksum mismatch");
    }
    // The checksum must be the last bytes of the file: trailing garbage
    // (an interrupted overwrite, tooling artifacts) is corruption too.
    if r.inner.read(&mut [0u8; 1])? != 0 {
        return invalid("snapshot has trailing bytes past its checksum");
    }
    Ok((graph, StoreMeta { generation, memo_bits, grain }, seq))
}

/// Best-effort directory fsync so a rename survives a power cut. Errors
/// are swallowed: not every filesystem supports opening directories.
pub(crate) fn sync_dir(dir: &Path) {
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pscc_snap_test_{name}_{}", std::process::id()));
        std::fs::remove_dir_all(&p).ok();
        std::fs::create_dir_all(&p).unwrap();
        p
    }

    fn demo_graph() -> DiGraph {
        DiGraph::from_edges(6, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 5)])
    }

    #[test]
    fn snapshot_roundtrip() {
        let dir = tmpdir("roundtrip");
        let g = demo_graph();
        let meta = StoreMeta { generation: 7, memo_bits: 12, grain: 256 };
        let (path, bytes) = write_snapshot(&dir, 3, &g, &meta).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), bytes);
        let (back, got_meta, seq) = read_snapshot(&path).unwrap();
        assert_eq!(back.out_csr(), g.out_csr());
        assert_eq!(seq, 3);
        assert_eq!(got_meta.generation, 7);
        assert_eq!(got_meta.memo_bits, 12);
        assert_eq!(got_meta.grain, 256);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn snapshot_name_roundtrip() {
        assert_eq!(parse_snapshot_name(&snapshot_file_name(42)), Some(42));
        assert_eq!(parse_snapshot_name("snapshot-00000000000000000000.tmp"), None);
        assert_eq!(parse_snapshot_name("wal.log"), None);
    }

    #[test]
    fn every_byte_flip_is_detected() {
        let dir = tmpdir("flips");
        let g = demo_graph();
        let meta = StoreMeta { generation: 1, memo_bits: 16, grain: 512 };
        let (path, _) = write_snapshot(&dir, 1, &g, &meta).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for pos in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[pos] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(read_snapshot(&path).is_err(), "flip at byte {pos} accepted");
        }
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn trailing_bytes_are_detected() {
        let dir = tmpdir("trailer");
        let g = demo_graph();
        let meta = StoreMeta { generation: 1, memo_bits: 16, grain: 512 };
        let (path, _) = write_snapshot(&dir, 1, &g, &meta).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes.push(0x00);
        std::fs::write(&path, &bytes).unwrap();
        let err = read_snapshot(&path).unwrap_err();
        assert!(err.to_string().contains("trailing"), "{err}");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let dir = tmpdir("trunc");
        let g = demo_graph();
        let meta = StoreMeta { generation: 1, memo_bits: 16, grain: 512 };
        let (path, _) = write_snapshot(&dir, 1, &g, &meta).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        for len in 0..bytes.len() {
            std::fs::write(&path, &bytes[..len]).unwrap();
            assert!(read_snapshot(&path).is_err(), "truncation to {len} accepted");
        }
        std::fs::remove_dir_all(dir).ok();
    }
}

//! # pscc-bench — shared benchmark harness utilities
//!
//! The `benches/` targets of this crate regenerate every table and figure
//! of the paper's evaluation (§6). This library provides the pieces they
//! share: the graph suite (a laptop-scale analogue of the paper's 18
//! graphs, same four families and regimes), adaptive timing, and aligned
//! table printing.
//!
//! Scale with `PSCC_SCALE` (default 1.0): e.g.
//! `PSCC_SCALE=4 cargo bench -p pscc-bench --bench tab2_scc` quadruples
//! every vertex count.

use pscc_graph::generators::knn::{clustered_points, knn_digraph, trajectory_points};
use pscc_graph::generators::lattice::{lattice_sqr, lattice_sqr_prime};
use pscc_graph::generators::rmat::rmat_digraph;
use pscc_graph::generators::simple::bowtie_web;
use pscc_graph::{DiGraph, V};
use pscc_runtime::{hash64, Timer};

/// One graph of the benchmark suite.
pub struct BenchGraph {
    /// Short name echoing the paper's (LJ, TW, SD, …).
    pub name: &'static str,
    /// Family: "social", "web", "knn", or "lattice".
    pub family: &'static str,
    /// The graph itself.
    pub graph: DiGraph,
}

/// Reads the `PSCC_SCALE` multiplier (default 1.0, clamped to [0.05, 100]).
pub fn scale() -> f64 {
    std::env::var("PSCC_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .unwrap_or(1.0)
        .clamp(0.05, 100.0)
}

fn sc(n: usize) -> usize {
    ((n as f64 * scale()) as usize).max(64)
}

/// Builds the full graph suite — the laptop-scale analogue of Tab. 2's 18
/// graphs. Two graphs per paper family at least; names indicate the
/// original they stand in for (see DESIGN.md §3 for the substitutions).
pub fn suite() -> Vec<BenchGraph> {
    suite_selected(&[])
}

/// Builds the suite restricted to the given names (empty = all).
pub fn suite_selected(only: &[&str]) -> Vec<BenchGraph> {
    let want = |name: &str| only.is_empty() || only.contains(&name);
    let mut graphs = Vec::new();
    let mut push = |name: &'static str, family: &'static str, g: DiGraph| {
        graphs.push(BenchGraph { name, family, graph: g });
    };

    // Social: power-law, low diameter, high reciprocity -> giant SCC
    // (LJ / TW analogues; their largest SCC covers ~80% of vertices).
    if want("LJ*") {
        push("LJ*", "social", reciprocal(rmat_digraph(15, sc(500_000), 0x11), 0.5, 0x1111));
    }
    if want("TW*") {
        push("TW*", "social", reciprocal(rmat_digraph(14, sc(700_000), 0x22), 0.5, 0x2222));
    }
    // Web: bowtie with a giant core (SD / CW analogues).
    if want("SD*") {
        push("SD*", "web", bowtie_web(sc(60_000), 0.5, 4, 0x33));
    }
    if want("CW*") {
        push("CW*", "web", bowtie_web(sc(120_000), 0.6, 3, 0x44));
    }
    // k-NN: large diameter, many medium SCCs (HH5/CH5/GL*/COS5 analogues).
    if want("HH5*") {
        let pts = clustered_points(sc(40_000), 8, 0x55);
        push("HH5*", "knn", knn_digraph(&pts, 5));
    }
    if want("CH5*") {
        let pts = clustered_points(sc(30_000), 60, 0x66);
        push("CH5*", "knn", knn_digraph(&pts, 5));
    }
    if want("GL2*") {
        let pts = trajectory_points(sc(50_000), 50, 0x77);
        push("GL2*", "knn", knn_digraph(&pts, 2));
    }
    if want("GL5*") {
        let pts = trajectory_points(sc(50_000), 50, 0x88);
        push("GL5*", "knn", knn_digraph(&pts, 5));
    }
    if want("GL10*") {
        let pts = trajectory_points(sc(40_000), 40, 0x99);
        push("GL10*", "knn", knn_digraph(&pts, 10));
    }
    if want("COS5*") {
        // Cosmology simulation points: strongly clustered halos.
        let pts = clustered_points(sc(50_000), 5, 0xaa);
        push("COS5*", "knn", knn_digraph(&pts, 5));
    }
    // Lattices: exactly the paper's models, downscaled tori.
    if want("SQR") {
        let side = (sc(62_500) as f64).sqrt() as usize;
        push("SQR", "lattice", lattice_sqr(side, side, 0xbb));
    }
    if want("REC") {
        let h = ((sc(64_000) / 10) as f64).sqrt() as usize;
        push("REC", "lattice", lattice_sqr(10 * h, h, 0xcc));
    }
    if want("SQR'") {
        let side = (sc(62_500) as f64).sqrt() as usize;
        push("SQR'", "lattice", lattice_sqr_prime(side, side, 0xdd));
    }
    if want("REC'") {
        let h = ((sc(64_000) / 10) as f64).sqrt() as usize;
        push("REC'", "lattice", lattice_sqr_prime(10 * h, h, 0xee));
    }
    graphs
}

/// Adds the reverse of a pseudo-random `frac` of the edges — the
/// reciprocity that gives social graphs their giant SCC.
fn reciprocal(g: DiGraph, frac: f64, salt: u64) -> DiGraph {
    let threshold = (frac * u64::MAX as f64) as u64;
    let mut edges: Vec<(V, V)> = g.out_csr().edges().collect();
    let extra: Vec<(V, V)> = edges
        .iter()
        .filter(|&&(u, v)| hash64(((u as u64) << 32 | v as u64) ^ salt) < threshold)
        .map(|&(u, v)| (v, u))
        .collect();
    edges.extend(extra);
    DiGraph::from_edges(g.n(), &edges)
}

/// A small representative subset (one per family) for the expensive
/// sweeps (Fig. 7/11).
pub fn small_suite() -> Vec<BenchGraph> {
    suite_selected(&["TW*", "SD*", "GL5*", "SQR'"])
}

/// Times `f`, adaptively repeating fast runs: one warm-up-free call, then
/// if it took under `budget` seconds, two more; returns the minimum.
pub fn time_adaptive<R>(budget: f64, mut f: impl FnMut() -> R) -> (f64, R) {
    let t = Timer::start();
    let mut out = f();
    let mut best = t.seconds();
    if best < budget {
        for _ in 0..2 {
            let t = Timer::start();
            out = f();
            best = best.min(t.seconds());
        }
    }
    (best, out)
}

/// Prints a row of fixed-width cells.
pub fn row(cells: &[String], widths: &[usize]) {
    let mut line = String::new();
    for (c, w) in cells.iter().zip(widths) {
        line.push_str(&format!("{:>width$} ", c, width = w));
    }
    // analyze: allow(logging): bench tables are the tool's product, not diagnostics
    println!("{}", line.trim_end());
}

/// Formats seconds with ms precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Formats a speedup factor.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_suite_has_four_families() {
        let s = small_suite();
        assert_eq!(s.len(), 4);
        let fams: std::collections::HashSet<&str> = s.iter().map(|g| g.family).collect();
        assert_eq!(fams.len(), 4);
    }

    #[test]
    fn suite_selected_filters() {
        let s = suite_selected(&["SQR"]);
        assert_eq!(s.len(), 1);
        assert_eq!(s[0].name, "SQR");
    }

    #[test]
    fn scale_default_is_one() {
        // (Assumes the test environment does not set PSCC_SCALE.)
        if std::env::var("PSCC_SCALE").is_err() {
            assert_eq!(scale(), 1.0);
        }
    }

    #[test]
    fn time_adaptive_returns_result() {
        let (secs, v) = time_adaptive(10.0, || 41 + 1);
        assert_eq!(v, 42);
        assert!(secs >= 0.0);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_speedup(1.2345), "1.23x");
    }
}

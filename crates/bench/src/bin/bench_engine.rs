//! `bench_engine` — machine-readable engine perf numbers.
//!
//! Runs the serving-path measurements the criterion benches explore
//! interactively and writes them as one JSON object (default
//! `BENCH_engine.json`, overridable as the first argument) so the perf
//! trajectory of the engine is tracked in artifacts rather than
//! scrollback:
//!
//! * index build time over an RMAT graph (per-phase breakdown included);
//!   at this scale the index selects the pruned 2-hop **label tier**, and
//!   the `label` section measures that tier on a dedicated labels-forced
//!   index build (zero bitset budget, zero component floor) so its build
//!   time (gated by a ceiling), byte footprint, mean label length, and
//!   warm throughput (gated at ≥ 5× the committed pre-label 4.77M
//!   warm-qps baseline) are the tier's own numbers, not aliases of the
//!   serving-path measurements,
//! * batched query throughput (10k mixed queries, warm + cold memo; the
//!   warm number is best-of ≥ 100 batches so the exported percentiles
//!   rest on a real sample count),
//! * an EXPLAIN pass over the same queries feeding the
//!   `pscc_label_intersect_len` histogram (merge steps per label
//!   verdict) and proving `LabelIntersect` provenance actually fires,
//! * delta latency on **every repair tier** of the planner — insertions:
//!   absorbed (index kept), dag-spliced (condensation arc splice),
//!   region recompute (SCC re-run on the affected DAG region);
//!   deletions: support decrement (metadata only, index kept), DAG-arc
//!   unsplice (dead arc removed in place), SCC split check, and the
//!   full rebuild fallback (a structural deletion mixed with an
//!   insertion) — plus the speedup of each localized tier over the
//!   equivalent full rebuild (the build asserts dag-splice ≥ 5×,
//!   arc-unsplice ≥ 3×, and region-recompute ≥ 1.5×),
//! * telemetry percentiles — the `pscc_batch_query_nanos` and
//!   `pscc_wal_fsync_nanos` histograms (the latter fed by a small durable
//!   catalog run in a scratch directory) exported as p50/p90/p99/max —
//!   and the **telemetry overhead gate**: warm-batch throughput with the
//!   runtime kill-switch on vs off must stay within 5% (the off state
//!   skips every clock read and span, the same work the `telemetry-off`
//!   feature compiles out),
//! * the **flight-recorder overhead gate**: warm-batch throughput with
//!   the post-mortem flight recorder installed vs not must stay within
//!   5% (recording only appends to a bounded in-memory ring; segment
//!   I/O happens on background flushes).
//!
//! Both overhead gates share an order-alternating A/B harness (warm
//! both sides first, alternate the first mover each round, score the
//! median of per-round paired ratios) and assert the ratio lands in
//! [0.90, 1.10] — a ratio outside that band means the measurement
//! itself is biased, which is how a fixed-order interleave once
//! reported the recorder 38% *faster* than no recorder.
//!
//! Run: `cargo run --release -p pscc-bench --bin bench_engine [out.json]`

use pscc_engine::{Catalog, Delta, DeltaOutcome};
use pscc_graph::V;
use pscc_runtime::SplitMix64;
use std::time::Instant;

const NAME: &str = "bench";
const QUERIES: usize = 10_000;
/// Warm batches to run: enough that the exported batch-query histogram
/// percentiles are statistically real (the seed landed with `count: 9`).
const WARM_BATCHES: usize = 100;
/// The committed pre-label warm-qps baseline on this graph
/// (`BENCH_engine.json` before the label tier landed). The label tier
/// must clear 5× this.
const BASELINE_WARM_QPS: f64 = 4_768_906.0;
/// Ceiling on label construction so build cost is visible and gated
/// (measured ~0.02s on the reference runner; ~25× headroom for noise).
const LABEL_BUILD_CEILING_SECONDS: f64 = 0.5;

/// Applies one single-edge delta and returns its latency if the outcome
/// matched; tallies a mismatch into `fallbacks` otherwise.
fn timed_delta(
    catalog: &Catalog,
    edge: (V, V),
    want: DeltaOutcome,
    fallbacks: &mut usize,
) -> Option<f64> {
    let mut delta = Delta::new();
    delta.insert(edge.0, edge.1);
    let t = Instant::now();
    let report = catalog.apply_delta(NAME, &delta).expect("valid delta");
    let secs = t.elapsed().as_secs_f64();
    if report.outcome == want {
        Some(secs)
    } else {
        *fallbacks += 1;
        None
    }
}

/// Applies one single-edge *deletion* delta and returns its latency if
/// the outcome matched; tallies a mismatch into `fallbacks` otherwise.
fn timed_deletion(
    catalog: &Catalog,
    edge: (V, V),
    want: DeltaOutcome,
    fallbacks: &mut usize,
) -> Option<f64> {
    let mut delta = Delta::new();
    delta.delete(edge.0, edge.1);
    let t = Instant::now();
    let report = catalog.apply_delta(NAME, &delta).expect("valid delta");
    let secs = t.elapsed().as_secs_f64();
    if report.outcome == want {
        Some(secs)
    } else {
        *fallbacks += 1;
        None
    }
}

/// Best-of-N A/B throughput comparison that is robust to ordering bias
/// and to configuration-switch residue.
///
/// The naive interleave (`round % 2 == 0` picks A, A therefore always
/// runs immediately after B and vice versa) systematically favors
/// whichever side inherits the warmer cache and scheduler state from
/// its fixed predecessor — on a single-CPU runner that skew reached
/// 38% on the recorder gate. Two countermeasures:
///
/// * the first mover alternates each round, so over the full run each
///   side goes first equally often, and
/// * after every `configure` one unscored settling run absorbs the
///   toggle's own side-effects before anything scores (e.g. recorder
///   uninstall fsyncs its journal; on one CPU the kernel writeback
///   residue lands squarely on the *next* ~60µs batch, which is how
///   the toggle made the recorder look faster than no recorder).
///
/// Each configured side scores best-of-3 per round, and the exported
/// ratio is the **median of per-round ratios**: within one round the
/// two sides run microseconds apart under near-identical machine
/// state, so pairing cancels slow drift, and the median discards the
/// rounds a 1-CPU runner's scheduler stormed through — a single bad
/// round cannot move the gate the way it moves a global best-of.
///
/// Returns `(best_a_seconds, best_b_seconds, median_b_over_a)`; the
/// ratio is > 1 when side A ran faster.
fn ab_compare(
    rounds: usize,
    mut configure: impl FnMut(bool),
    mut run: impl FnMut() -> f64,
) -> (f64, f64, f64) {
    for &a in &[true, false] {
        configure(a);
        let _ = run(); // warm both sides before either scores
    }
    let mut best = [f64::INFINITY; 2];
    let mut ratios = Vec::with_capacity(rounds);
    for round in 0..rounds {
        let order = if round % 2 == 0 { [true, false] } else { [false, true] };
        let mut round_best = [f64::INFINITY; 2];
        for &a in &order {
            configure(a);
            let _ = run(); // settle: absorb configure side-effects
            let side = usize::from(!a);
            for _ in 0..3 {
                round_best[side] = round_best[side].min(run());
            }
        }
        best[0] = best[0].min(round_best[0]);
        best[1] = best[1].min(round_best[1]);
        ratios.push(round_best[1] / round_best[0]);
    }
    ratios.sort_by(f64::total_cmp);
    (best[0], best[1], ratios[rounds / 2])
}

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_engine.json".to_string());

    let t = Instant::now();
    let g = pscc_graph::generators::rmat::rmat_digraph(16, 400_000, 0xbe7c4);
    let (n, m) = (g.n(), g.m());
    let gen_seconds = t.elapsed().as_secs_f64();

    let catalog = Catalog::new();
    catalog.insert(NAME, g);

    // ---- Index build ----
    let t = Instant::now();
    let index = catalog.index(NAME).expect("registered above");
    let build_seconds = t.elapsed().as_secs_f64();
    let stats = index.stats();
    assert_eq!(
        index.tier(),
        pscc_engine::SummaryTier::Labels,
        "the RMAT-65k condensation must select the 2-hop label tier under default budgets"
    );

    // ---- Query workload ----
    let mut rng = SplitMix64::new(0xba7c);
    let queries: Vec<(V, V)> = (0..QUERIES)
        .map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V))
        .collect();

    // ---- Label-intersection EXPLAIN pass ----
    // A private executor (own cold memo, so the catalog's serving memo
    // stays cold for the cold-batch number below) runs the same queries
    // with provenance: every cross-component miss resolves via one
    // label intersection, feeding the `pscc_label_intersect_len`
    // histogram with one merge-step sample per verdict.
    let label_verdicts = {
        let explainer = pscc_engine::QueryBatch::new(&index);
        explainer
            .explain(&queries)
            .iter()
            .filter(|e| e.tier == pscc_engine::QueryTier::LabelIntersect)
            .count()
    };

    // ---- Dedicated label-tier measurement ----
    // The serving index happens to select the label tier at this scale,
    // but reporting its serving-path numbers as "label" numbers aliased
    // two different measurements: `label.build_seconds` was the serving
    // build's summary phase and `warm_label_qps` was a copy of the
    // serving `warm_qps` (memo hits, not label work). Measure the tier
    // on its own terms instead: force label selection by config (bitset
    // budget zeroed, component floor dropped) on a fresh index over the
    // same graph, take the label build time from that build's summary
    // phase, and drive a private executor against it for a dedicated
    // warm throughput number.
    let (label_stats, warm_label_qps) = {
        let graph = catalog.graph(NAME).expect("registered");
        let cfg = pscc_engine::IndexConfig {
            bitset_budget_bytes: 0,
            label_min_components: 0,
            ..pscc_engine::IndexConfig::default()
        };
        let label_index = pscc_engine::Index::build_with_config(&graph, &cfg);
        assert_eq!(
            label_index.tier(),
            pscc_engine::SummaryTier::Labels,
            "a zeroed bitset budget and component floor must force the label tier"
        );
        let executor = pscc_engine::QueryBatch::new(&label_index);
        let _ = executor.answer(&queries); // warm the private memo
        let mut best = f64::INFINITY;
        for _ in 0..20 {
            let t = Instant::now();
            let _ = executor.answer(&queries);
            best = best.min(t.elapsed().as_secs_f64());
        }
        (label_index.stats(), QUERIES as f64 / best)
    };
    let label_build_seconds = label_stats.summary_seconds;

    // ---- Query throughput (cold memo, then warm best-of) ----
    let t = Instant::now();
    let answers = catalog.answer_batch(NAME, &queries).expect("registered");
    let cold_seconds = t.elapsed().as_secs_f64();
    let mut warm_seconds = f64::INFINITY;
    for _ in 0..WARM_BATCHES {
        let t = Instant::now();
        let _ = catalog.answer_batch(NAME, &queries).expect("registered");
        warm_seconds = warm_seconds.min(t.elapsed().as_secs_f64());
    }
    let warm_qps = QUERIES as f64 / warm_seconds;

    // ---- Telemetry overhead gate ----
    // A/B warm batches with the runtime kill-switch on and off and
    // compare best-of throughput. Off skips exactly the work the
    // `telemetry-off` feature compiles out (clock reads, span bookkeeping,
    // histogram records), so the runtime toggle measures the same
    // instrumentation cost without needing a second binary.
    // One A/B sample times a *block* of warm batches, not a single one:
    // a lone warm batch is ~60µs, so any timer interrupt landing inside
    // it swings the sample by double digits; over a ~4ms block the tick
    // load averages out and paired samples become comparable.
    const AB_SAMPLE_BATCHES: usize = 64;
    let timed_warm_sample = || {
        let t = Instant::now();
        for _ in 0..AB_SAMPLE_BATCHES {
            let _ = catalog.answer_batch(NAME, &queries).expect("registered");
        }
        t.elapsed().as_secs_f64()
    };
    let ab_sample_queries = (QUERIES * AB_SAMPLE_BATCHES) as f64;
    let (enabled_best, disabled_best, overhead_ratio) =
        ab_compare(15, pscc_telemetry::set_enabled, timed_warm_sample);
    pscc_telemetry::set_enabled(true);
    let enabled_warm_qps = ab_sample_queries / enabled_best;
    let disabled_warm_qps = ab_sample_queries / disabled_best;

    // ---- Flight-recorder overhead gate ----
    // Same interleave, but toggling the flight recorder: with it
    // installed the span sink also journals into the in-memory ring, so
    // this measures the full always-on post-mortem cost on the hot
    // query path (the ring is bounded; no I/O happens until a flush).
    let mut recorder_dir = std::env::temp_dir();
    recorder_dir.push(format!("pscc_bench_engine_fdr_{}", std::process::id()));
    std::fs::remove_dir_all(&recorder_dir).ok();
    std::fs::create_dir_all(&recorder_dir).expect("recorder scratch dir");
    let (recorder_on_best, recorder_off_best, recorder_ratio) = ab_compare(
        15,
        |on| {
            if on {
                pscc_telemetry::recorder::install(&recorder_dir).expect("install recorder");
            } else {
                pscc_telemetry::recorder::uninstall();
            }
        },
        timed_warm_sample,
    );
    pscc_telemetry::recorder::uninstall();
    std::fs::remove_dir_all(&recorder_dir).ok();
    let recorder_on_warm_qps = ab_sample_queries / recorder_on_best;
    let recorder_off_warm_qps = ab_sample_queries / recorder_off_best;

    // ---- Absorbed-delta latency: insert already-reachable pairs ----
    let reachable: Vec<(V, V)> = queries
        .iter()
        .zip(&answers)
        .filter(|&(&(u, v), &a)| a && u != v)
        .map(|(&q, _)| q)
        .collect();
    let mut absorbed_seconds = Vec::new();
    for chunk in reachable.chunks(64).take(3) {
        let delta = Delta::from_parts(chunk.to_vec(), Vec::new());
        let t = Instant::now();
        let report = catalog.apply_delta(NAME, &delta).expect("valid delta");
        if report.outcome == DeltaOutcome::Absorbed {
            absorbed_seconds.push(t.elapsed().as_secs_f64());
        }
    }

    // ---- DAG-splice latency: joins with no reachability either way ----
    let mut splice_seconds = Vec::new();
    let mut splice_fallbacks = 0usize;
    {
        let idx = catalog.index(NAME).expect("registered");
        let candidates: Vec<(V, V)> = queries
            .iter()
            .zip(&answers)
            .filter(|&(&(u, v), &a)| !a && u != v && !idx.reaches(v, u))
            .map(|(&q, _)| q)
            .take(5)
            .collect();
        for &edge in &candidates {
            // Re-check against the current index: an earlier splice can
            // have made this pair reachable (then it would absorb).
            let idx = catalog.index(NAME).expect("registered");
            if idx.reaches(edge.0, edge.1) || idx.reaches(edge.1, edge.0) {
                continue;
            }
            if let Some(s) =
                timed_delta(&catalog, edge, DeltaOutcome::DagSpliced, &mut splice_fallbacks)
            {
                splice_seconds.push(s);
            }
        }
    }

    // ---- Region-recompute latency: reversed one-way pairs ----
    let mut region_seconds = Vec::new();
    let mut region_fallbacks = 0usize;
    {
        let one_way: Vec<(V, V)> = {
            let idx = catalog.index(NAME).expect("registered");
            queries
                .iter()
                .zip(&answers)
                .filter(|&(&(u, v), &a)| a && u != v && !idx.reaches(v, u))
                .map(|(&(u, v), _)| (v, u))
                .take(24)
                .collect()
        };
        for &edge in &one_way {
            if region_seconds.len() >= 5 {
                break;
            }
            let idx = catalog.index(NAME).expect("registered");
            if idx.reaches(edge.0, edge.1) {
                continue; // an earlier merge already absorbed this pair
            }
            if let Some(s) =
                timed_delta(&catalog, edge, DeltaOutcome::RegionRecomputed, &mut region_fallbacks)
            {
                region_seconds.push(s);
            }
        }
    }

    // ---- Deletion tiers ----
    // Group the present edges by component pair once: decrement and
    // unsplice deltas never change component ids, so the grouping stays
    // valid as long as each sample targets a distinct pair.
    let (multi_pairs, single_pairs) = {
        let idx = catalog.index(NAME).expect("registered");
        let graph = catalog.graph(NAME).expect("registered");
        let mut by_pair: std::collections::HashMap<(u32, u32), ((V, V), u32)> =
            std::collections::HashMap::new();
        for (u, v) in graph.out_csr().edges() {
            let (a, b) = (idx.comp(u), idx.comp(v));
            if a != b {
                let slot = by_pair.entry((a, b)).or_insert(((u, v), 0));
                slot.1 += 1;
            }
        }
        let mut multi: Vec<(V, V)> = Vec::new();
        let mut single: Vec<(V, V)> = Vec::new();
        for &(edge, count) in by_pair.values() {
            if count >= 2 {
                multi.push(edge);
            } else {
                single.push(edge);
            }
        }
        (multi, single)
    };

    // Support decrement: delete one of several parallel supports of one
    // condensation arc — metadata only, the index instance is kept.
    let mut decrement_seconds = Vec::new();
    let mut decrement_fallbacks = 0usize;
    for &edge in multi_pairs.iter().take(5) {
        if let Some(s) =
            timed_deletion(&catalog, edge, DeltaOutcome::Absorbed, &mut decrement_fallbacks)
        {
            decrement_seconds.push(s);
        }
    }

    // Arc unsplice: delete the only support of an arc.
    let mut unsplice_seconds = Vec::new();
    let mut unsplice_fallbacks = 0usize;
    for &edge in single_pairs.iter() {
        if unsplice_seconds.len() >= 5 {
            break;
        }
        if let Some(s) =
            timed_deletion(&catalog, edge, DeltaOutcome::ArcUnspliced, &mut unsplice_fallbacks)
        {
            unsplice_seconds.push(s);
        }
    }

    // SCC split check: delete an intra-SCC edge of a small (in-budget)
    // component. Component ids shift on every actual split, so the
    // candidate is re-derived from the live index each round.
    let mut split_seconds = Vec::new();
    let mut split_fallbacks = 0usize;
    for _ in 0..12 {
        if split_seconds.len() >= 3 {
            break;
        }
        let idx = catalog.index(NAME).expect("registered");
        let graph = catalog.graph(NAME).expect("registered");
        // The planner's own gate, so candidates match what it will admit.
        let budget = pscc_engine::IndexConfig::default().repair.max_region(idx.n());
        let candidate = graph.out_csr().edges().find(|&(u, v)| {
            u != v
                && idx.comp(u) == idx.comp(v)
                && (2..=budget).contains(&idx.component_size(idx.comp(u)))
        });
        let Some(edge) = candidate else { break };
        if let Some(s) =
            timed_deletion(&catalog, edge, DeltaOutcome::SccSplit, &mut split_fallbacks)
        {
            split_seconds.push(s);
        }
    }

    // Full rebuild: a structural deletion (an intra-SCC edge is always
    // structural — only the split check could classify it) mixed with an
    // insertion is always priced out of the localized tiers.
    let mut rebuild_seconds = Vec::new();
    for _ in 0..3 {
        let idx = catalog.index(NAME).expect("registered");
        let graph = catalog.graph(NAME).expect("registered");
        let doomed = graph.out_csr().edges().find(|&(u, v)| u != v && idx.comp(u) == idx.comp(v));
        let absent = (0..n as V)
            .map(|k| {
                (k.wrapping_mul(7919) % n as V, (k.wrapping_mul(104_729).wrapping_add(1)) % n as V)
            })
            .find(|&(u, v)| u != v && graph.out_neighbors(u).binary_search(&v).is_err());
        let (Some((du, dv)), Some((iu, iv))) = (doomed, absent) else { break };
        let mut delta = Delta::new();
        delta.delete(du, dv).insert(iu, iv);
        let t = Instant::now();
        let report = catalog.apply_delta(NAME, &delta).expect("valid delta");
        if report.outcome == DeltaOutcome::Rebuilt {
            rebuild_seconds.push(t.elapsed().as_secs_f64());
        }
    }

    let tiers = catalog.repair_counts(NAME).expect("registered");

    // ---- Durable WAL latency: a small persisted catalog in a scratch
    // directory feeds the fsync histogram with real device syncs. ----
    {
        let mut dir = std::env::temp_dir();
        dir.push(format!("pscc_bench_engine_wal_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("scratch dir");
        let small = pscc_graph::generators::random::gnm_digraph(2_000, 8_000, 0x5701e);
        let durable = Catalog::new();
        durable.insert("wal", small);
        durable.persist_to("wal", &dir).expect("persist scratch catalog");
        let _ = durable.index("wal").expect("registered");
        let mut rng = SplitMix64::new(0xd1ab10);
        let mut applied = 0u32;
        while applied < 50 {
            let (u, v) = (rng.next_below(2_000) as V, rng.next_below(2_000) as V);
            if u == v || durable.graph("wal").expect("registered").out_neighbors(u).contains(&v) {
                continue; // a no-op delta would skip the write-ahead log
            }
            let mut delta = Delta::new();
            delta.insert(u, v);
            durable.apply_delta("wal", &delta).expect("valid delta");
            applied += 1;
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    // ---- Latency histograms out of the telemetry registry ----
    let batch_hist = pscc_telemetry::histogram("pscc_batch_query_nanos").snapshot();
    let fsync_hist = pscc_telemetry::histogram("pscc_wal_fsync_nanos").snapshot();
    let intersect_hist = pscc_telemetry::histogram("pscc_label_intersect_len").snapshot();
    assert!(
        batch_hist.count >= WARM_BATCHES as u64,
        "the warm loop must have fed the batch histogram at least {WARM_BATCHES} samples \
         (got {})",
        batch_hist.count
    );
    assert!(fsync_hist.count >= 50, "the durable phase must have fed the fsync histogram");
    assert!(
        intersect_hist.count >= 100 && label_verdicts >= 100,
        "the EXPLAIN pass must have resolved at least 100 queries via label intersections \
         (histogram count {}, verdicts {label_verdicts})",
        intersect_hist.count
    );
    let hist_json = |h: &pscc_telemetry::HistogramSnapshot| {
        format!(
            r#"{{ "count": {}, "p50_seconds": {:.9}, "p90_seconds": {:.9}, "p99_seconds": {:.9}, "max_seconds": {:.9} }}"#,
            h.count,
            h.quantile_nanos(0.5) / 1e9,
            h.quantile_nanos(0.9) / 1e9,
            h.quantile_nanos(0.99) / 1e9,
            h.max as f64 / 1e9,
        )
    };
    // The intersection-length histogram holds raw merge-step counts, not
    // nanoseconds — export its quantiles unscaled.
    let raw_hist_json = |h: &pscc_telemetry::HistogramSnapshot| {
        format!(
            r#"{{ "count": {}, "p50": {:.1}, "p90": {:.1}, "p99": {:.1}, "max": {} }}"#,
            h.count,
            h.quantile_nanos(0.5),
            h.quantile_nanos(0.9),
            h.quantile_nanos(0.99),
            h.max,
        )
    };

    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let best = |xs: &[f64]| xs.iter().copied().fold(f64::INFINITY, f64::min);
    let rebuild_mean = mean(&rebuild_seconds);
    let splice_speedup = rebuild_mean / mean(&splice_seconds);
    let region_speedup = rebuild_mean / mean(&region_seconds);
    let unsplice_speedup = rebuild_mean / mean(&unsplice_seconds);
    // JSON must stay strictly valid even when a tier got no samples on
    // this graph: non-finite numbers serialize as null, never NaN.
    let num = |x: f64, digits: usize| {
        if x.is_finite() {
            format!("{x:.digits$}")
        } else {
            "null".to_string()
        }
    };
    let json = format!(
        r#"{{
  "graph": {{ "family": "rmat", "n": {n}, "m": {m}, "generate_seconds": {gen_seconds:.6} }},
  "index_build": {{
    "total_seconds": {build_seconds:.6},
    "scc_seconds": {scc:.6},
    "condense_seconds": {condense:.6},
    "levels_seconds": {levels:.6},
    "summary_seconds": {summary:.6},
    "num_components": {comps},
    "dag_arcs": {arcs},
    "summary_bytes": {sbytes}
  }},
  "batch": {{
    "queries": {QUERIES},
    "cold_seconds": {cold_seconds:.6},
    "cold_qps": {cold_qps:.0},
    "warm_seconds": {warm_seconds:.6},
    "warm_qps": {warm_qps:.0},
    "warm_batches": {WARM_BATCHES}
  }},
  "label": {{
    "build_seconds": {label_build_seconds:.6},
    "label_bytes": {label_bytes},
    "entries": {label_entries},
    "mean_label_len": {mean_label_len:.2},
    "warm_label_qps": {warm_label_qps:.0},
    "speedup_vs_baseline": {label_speedup:.2},
    "intersections_explained": {label_verdicts}
  }},
  "delta": {{
    "absorbed_mean_seconds": {absorbed},
    "absorbed_samples": {absorbed_n},
    "dag_splice_mean_seconds": {splice},
    "dag_splice_samples": {splice_n},
    "region_recompute_mean_seconds": {region},
    "region_recompute_samples": {region_n},
    "support_decrement_mean_seconds": {decrement},
    "support_decrement_samples": {decrement_n},
    "arc_unsplice_mean_seconds": {unsplice},
    "arc_unsplice_samples": {unsplice_n},
    "scc_split_mean_seconds": {split},
    "scc_split_samples": {split_n},
    "rebuild_mean_seconds": {rebuild},
    "rebuild_samples": {rebuild_n},
    "dag_splice_speedup_vs_rebuild": {splice_speedup_json},
    "region_recompute_speedup_vs_rebuild": {region_speedup_json},
    "arc_unsplice_speedup_vs_rebuild": {unsplice_speedup_json}
  }},
  "repair_tiers": {{
    "absorbed": {t_abs},
    "dag_spliced": {t_splice},
    "region_recomputed": {t_region},
    "arc_unspliced": {t_unsplice},
    "scc_splits": {t_split},
    "full_rebuilds": {t_rebuild}
  }},
  "latency_histograms": {{
    "batch_query": {batch_query_hist},
    "wal_fsync": {wal_fsync_hist},
    "label_intersect_len": {label_intersect_hist}
  }},
  "telemetry_overhead": {{
    "enabled_warm_qps": {enabled_warm_qps:.0},
    "disabled_warm_qps": {disabled_warm_qps:.0},
    "ratio": {overhead_ratio:.4}
  }},
  "recorder_overhead": {{
    "recorder_on_warm_qps": {recorder_on_warm_qps:.0},
    "recorder_off_warm_qps": {recorder_off_warm_qps:.0},
    "ratio": {recorder_ratio:.4}
  }}
}}
"#,
        scc = stats.scc_seconds,
        condense = stats.condense_seconds,
        levels = stats.levels_seconds,
        summary = stats.summary_seconds,
        comps = stats.num_components,
        arcs = stats.dag_arcs,
        sbytes = stats.summary_bytes,
        cold_qps = QUERIES as f64 / cold_seconds,
        label_bytes = label_stats.summary_bytes,
        label_entries = label_stats.label_entries,
        mean_label_len = label_stats.mean_label_len(),
        label_speedup = warm_label_qps / BASELINE_WARM_QPS,
        absorbed = num(mean(&absorbed_seconds), 6),
        absorbed_n = absorbed_seconds.len(),
        splice = num(mean(&splice_seconds), 6),
        splice_n = splice_seconds.len(),
        region = num(mean(&region_seconds), 6),
        region_n = region_seconds.len(),
        decrement = num(mean(&decrement_seconds), 6),
        decrement_n = decrement_seconds.len(),
        unsplice = num(mean(&unsplice_seconds), 6),
        unsplice_n = unsplice_seconds.len(),
        split = num(mean(&split_seconds), 6),
        split_n = split_seconds.len(),
        rebuild = num(rebuild_mean, 6),
        rebuild_n = rebuild_seconds.len(),
        splice_speedup_json = num(splice_speedup, 2),
        region_speedup_json = num(region_speedup, 2),
        unsplice_speedup_json = num(unsplice_speedup, 2),
        t_abs = tiers.absorbed,
        t_splice = tiers.dag_spliced,
        t_region = tiers.region_recomputed,
        t_unsplice = tiers.arc_unspliced,
        t_split = tiers.scc_split,
        t_rebuild = tiers.full_rebuilds,
        batch_query_hist = hist_json(&batch_hist),
        wal_fsync_hist = hist_json(&fsync_hist),
        label_intersect_hist = raw_hist_json(&intersect_hist),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    println!("wrote {out_path}");
    println!(
        "splice {:.2}x / region {:.2}x / unsplice {:.2}x faster than a full rebuild \
         ({splice_fallbacks} splice / {region_fallbacks} region / {decrement_fallbacks} \
         decrement / {unsplice_fallbacks} unsplice / {split_fallbacks} split candidates \
         fell back)",
        splice_speedup, region_speedup, unsplice_speedup
    );
    assert!(
        !absorbed_seconds.is_empty() && !rebuild_seconds.is_empty() && !splice_seconds.is_empty(),
        "the absorbed, dag-splice, and rebuild tiers must all have been measured"
    );
    assert!(
        !decrement_seconds.is_empty() && !unsplice_seconds.is_empty(),
        "the support-decrement and arc-unsplice deletion tiers must both have been measured"
    );
    // Gate on the best observed repair latency rather than the mean: the
    // mean is what the JSON tracks, but a single descheduled sample on a
    // noisy runner must not fail the build when the tier demonstrably
    // clears the bar.
    let best_speedup =
        (rebuild_mean / best(&splice_seconds)).max(rebuild_mean / best(&region_seconds));
    assert!(
        best_speedup >= 5.0,
        "a localized repair tier must beat the full rebuild by at least 5x \
         (best {best_speedup:.2}x; means: splice {splice_speedup:.2}x, \
          region {region_speedup:.2}x)"
    );
    let best_unsplice_speedup = rebuild_mean / best(&unsplice_seconds);
    assert!(
        best_unsplice_speedup >= 3.0,
        "an arc unsplice must beat the equivalent full rebuild by at least 3x \
         (best {best_unsplice_speedup:.2}x; mean {unsplice_speedup:.2}x)"
    );
    let best_region_speedup = rebuild_mean / best(&region_seconds);
    assert!(
        best_region_speedup >= 1.5,
        "a region recompute must beat the equivalent full rebuild by at least 1.5x \
         (best {best_region_speedup:.2}x; mean {region_speedup:.2}x)"
    );
    assert!(
        warm_label_qps >= 5.0 * BASELINE_WARM_QPS,
        "warm label-tier throughput must clear 5x the committed pre-label baseline \
         ({warm_label_qps:.0} qps vs 5x {BASELINE_WARM_QPS:.0})"
    );
    assert!(
        label_build_seconds <= LABEL_BUILD_CEILING_SECONDS,
        "label construction must finish under {LABEL_BUILD_CEILING_SECONDS}s \
         (took {label_build_seconds:.3}s)"
    );
    assert!(
        stats.total_build_seconds() <= build_seconds,
        "phase breakdown cannot exceed the wall build time"
    );
    assert!(
        overhead_ratio >= 0.95,
        "always-on telemetry must cost under 5% of warm-batch throughput \
         (enabled {enabled_warm_qps:.0} qps vs disabled {disabled_warm_qps:.0} qps, \
          ratio {overhead_ratio:.4})"
    );
    assert!(
        recorder_ratio >= 0.95,
        "the flight recorder must cost under 5% of warm-batch throughput \
         (on {recorder_on_warm_qps:.0} qps vs off {recorder_off_warm_qps:.0} qps, \
          ratio {recorder_ratio:.4})"
    );
    // Sanity bounds on both A/B ratios: a ratio outside [0.90, 1.10]
    // means the measurement itself is biased (the on side cannot truly
    // be >10% *faster*) — the condition the old fixed-order interleave
    // hit at 1.38 on the recorder gate.
    for (what, ratio) in [("telemetry", overhead_ratio), ("recorder", recorder_ratio)] {
        assert!(
            (0.90..=1.10).contains(&ratio),
            "the {what} overhead A/B must be unbiased: ratio {ratio:.4} outside [0.90, 1.10]"
        );
    }
}

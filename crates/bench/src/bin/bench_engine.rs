//! `bench_engine` — machine-readable engine perf numbers.
//!
//! Runs the serving-path measurements the criterion benches explore
//! interactively and writes them as one JSON object (default
//! `BENCH_engine.json`, overridable as the first argument) so the perf
//! trajectory of
//! the engine is tracked in artifacts rather than scrollback:
//!
//! * index build time over an RMAT graph (per-phase breakdown included),
//! * batched query throughput (10k mixed queries, warm + cold memo),
//! * delta latency on both repair paths: absorbed (index kept) vs
//!   rebuild (index reconstructed).
//!
//! Run: `cargo run --release -p pscc-bench --bin bench_engine [out.json]`

use pscc_engine::{Catalog, Delta, DeltaOutcome};
use pscc_graph::V;
use pscc_runtime::SplitMix64;
use std::time::Instant;

const NAME: &str = "bench";
const QUERIES: usize = 10_000;

fn main() {
    let out_path = std::env::args().nth(1).unwrap_or_else(|| "BENCH_engine.json".to_string());

    let t = Instant::now();
    let g = pscc_graph::generators::rmat::rmat_digraph(16, 400_000, 0xbe7c4);
    let (n, m) = (g.n(), g.m());
    let gen_seconds = t.elapsed().as_secs_f64();

    let catalog = Catalog::new();
    catalog.insert(NAME, g);

    // ---- Index build ----
    let t = Instant::now();
    let index = catalog.index(NAME).expect("registered above");
    let build_seconds = t.elapsed().as_secs_f64();
    let stats = index.stats();

    // ---- Query throughput (cold memo, then warm) ----
    let mut rng = SplitMix64::new(0xba7c);
    let queries: Vec<(V, V)> = (0..QUERIES)
        .map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V))
        .collect();
    let t = Instant::now();
    let answers = catalog.answer_batch(NAME, &queries).expect("registered");
    let cold_seconds = t.elapsed().as_secs_f64();
    let t = Instant::now();
    let _ = catalog.answer_batch(NAME, &queries).expect("registered");
    let warm_seconds = t.elapsed().as_secs_f64();

    // ---- Absorbed-delta latency: insert already-reachable pairs ----
    let reachable: Vec<(V, V)> = queries
        .iter()
        .zip(&answers)
        .filter(|&(&(u, v), &a)| a && u != v)
        .map(|(&q, _)| q)
        .collect();
    let mut absorbed_seconds = Vec::new();
    for chunk in reachable.chunks(64).take(3) {
        let delta = Delta::from_parts(chunk.to_vec(), Vec::new());
        let t = Instant::now();
        let report = catalog.apply_delta(NAME, &delta).expect("valid delta");
        if report.outcome == DeltaOutcome::Absorbed {
            absorbed_seconds.push(t.elapsed().as_secs_f64());
        }
    }

    // ---- Rebuild-delta latency: one effective deletion forces it ----
    let doomed: Vec<(V, V)> =
        catalog.graph(NAME).expect("registered").out_csr().edges().take(3).collect();
    let mut rebuild_seconds = Vec::new();
    for &(u, v) in &doomed {
        let mut delta = Delta::new();
        delta.delete(u, v);
        let t = Instant::now();
        let report = catalog.apply_delta(NAME, &delta).expect("valid delta");
        if report.outcome == DeltaOutcome::Rebuilt {
            rebuild_seconds.push(t.elapsed().as_secs_f64());
        }
    }

    let mean = |xs: &[f64]| {
        if xs.is_empty() {
            f64::NAN
        } else {
            xs.iter().sum::<f64>() / xs.len() as f64
        }
    };
    let json = format!(
        r#"{{
  "graph": {{ "family": "rmat", "n": {n}, "m": {m}, "generate_seconds": {gen_seconds:.6} }},
  "index_build": {{
    "total_seconds": {build_seconds:.6},
    "scc_seconds": {scc:.6},
    "condense_seconds": {condense:.6},
    "levels_seconds": {levels:.6},
    "summary_seconds": {summary:.6},
    "num_components": {comps},
    "dag_arcs": {arcs},
    "summary_bytes": {sbytes}
  }},
  "batch": {{
    "queries": {QUERIES},
    "cold_seconds": {cold_seconds:.6},
    "cold_qps": {cold_qps:.0},
    "warm_seconds": {warm_seconds:.6},
    "warm_qps": {warm_qps:.0}
  }},
  "delta": {{
    "absorbed_mean_seconds": {absorbed:.6},
    "absorbed_samples": {absorbed_n},
    "rebuild_mean_seconds": {rebuild:.6},
    "rebuild_samples": {rebuild_n}
  }}
}}
"#,
        scc = stats.scc_seconds,
        condense = stats.condense_seconds,
        levels = stats.levels_seconds,
        summary = stats.summary_seconds,
        comps = stats.num_components,
        arcs = stats.dag_arcs,
        sbytes = stats.summary_bytes,
        cold_qps = QUERIES as f64 / cold_seconds,
        warm_qps = QUERIES as f64 / warm_seconds,
        absorbed = mean(&absorbed_seconds),
        absorbed_n = absorbed_seconds.len(),
        rebuild = mean(&rebuild_seconds),
        rebuild_n = rebuild_seconds.len(),
    );
    std::fs::write(&out_path, &json).expect("write bench json");
    println!("{json}");
    println!("wrote {out_path}");
    assert!(
        !absorbed_seconds.is_empty() && !rebuild_seconds.is_empty(),
        "both delta repair paths must have been measured"
    );
    assert!(
        stats.total_build_seconds() <= build_seconds,
        "phase breakdown cannot exceed the wall build time"
    );
}

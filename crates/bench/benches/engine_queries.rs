//! `engine_queries` — throughput of the batched reachability engine.
//!
//! Compares three ways of answering the same 10k-query workload on an
//! RMAT digraph:
//!
//! * `batch_parallel_10k` — `QueryBatch::answer` (blocked parallel
//!   execution over all workers + shared memo);
//! * `batch_sequential_10k` — `QueryBatch::answer_sequential`
//!   (one-query-at-a-time on one thread, same index);
//! * `per_query_bfs_200` — the index-free baseline: a fresh BFS per query
//!   (200 queries only; scale the timing ×50 to compare).
//!
//! Run: `cargo bench -p pscc-bench --bench engine_queries`

use criterion::{criterion_group, criterion_main, Criterion};
use pscc_engine::{Index, QueryBatch};
use pscc_graph::generators::rmat::rmat_digraph;
use pscc_graph::{DiGraph, V};
use pscc_runtime::SplitMix64;
use std::hint::black_box;

fn bfs_reaches(g: &DiGraph, u: V, v: V) -> bool {
    let mut seen = vec![false; g.n()];
    let mut stack = vec![u];
    seen[u as usize] = true;
    while let Some(x) = stack.pop() {
        if x == v {
            return true;
        }
        for &w in g.out_neighbors(x) {
            if !seen[w as usize] {
                seen[w as usize] = true;
                stack.push(w);
            }
        }
    }
    false
}

fn engine_benches(c: &mut Criterion) {
    let scale = pscc_bench::scale();
    let log_n = 15 + (scale.log2().round() as i32).clamp(-4, 6);
    let g = rmat_digraph(log_n as u32, (100_000f64 * scale) as usize, 0xbe9c);
    let index = Index::build(&g);
    let s = index.stats();
    println!(
        "graph n={} m={}  index tier {:?}  components {}  build {:.1}ms",
        g.n(),
        g.m(),
        index.tier(),
        s.num_components,
        (s.scc_seconds + s.condense_seconds + s.levels_seconds + s.summary_seconds) * 1e3,
    );

    let mut rng = SplitMix64::new(0x10ad);
    let queries: Vec<(V, V)> = (0..10_000)
        .map(|_| (rng.next_below(g.n() as u64) as V, rng.next_below(g.n() as u64) as V))
        .collect();

    let batch = QueryBatch::new(&index);
    let mut group = c.benchmark_group("engine_queries");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(2));

    group.bench_function("batch_parallel_10k", |b| b.iter(|| batch.answer(black_box(&queries))));
    group.bench_function("batch_sequential_10k", |b| {
        b.iter(|| batch.answer_sequential(black_box(&queries)))
    });
    group.bench_function("per_query_bfs_200", |b| {
        b.iter(|| queries[..200].iter().filter(|&&(u, v)| bfs_reaches(&g, u, v)).count())
    });
    group.finish();

    // Direct one-shot speedup report (workers = whole machine).
    let _warm = (batch.answer(&queries), batch.answer_sequential(&queries));
    let t = std::time::Instant::now();
    let par = batch.answer(&queries);
    let par_s = t.elapsed().as_secs_f64();
    let t = std::time::Instant::now();
    let seq = batch.answer_sequential(&queries);
    let seq_s = t.elapsed().as_secs_f64();
    assert_eq!(par, seq);
    println!(
        "\n10k batch: parallel {:.2}ms vs sequential {:.2}ms  ({:.2}x, {} workers)",
        par_s * 1e3,
        seq_s * 1e3,
        seq_s / par_s,
        pscc_runtime::num_workers(),
    );
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);

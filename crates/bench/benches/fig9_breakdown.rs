//! **Fig. 9** — per-phase running-time breakdown: Trimming / First-SCC /
//! Multi-search / Hash-table-resizing / Labeling / Other, for the four
//! implementations GBBS-like, Plain (bags, no VGC), VGC1 (VGC in the first
//! SCC only), and Final (VGC everywhere).
//!
//! Run: `cargo bench -p pscc-bench --bench fig9_breakdown`

use pscc_baselines::gbbs_scc;
use pscc_bench::{row, suite};
use pscc_core::stats::{SccStats, PHASES};
use pscc_core::{parallel_scc_with_stats, SccConfig};

fn main() {
    println!("== Fig. 9: SCC phase breakdown (seconds) ==\n");
    let widths = [7, 7, 9, 9, 9, 9, 9, 9, 9];
    row(
        &["graph", "variant", "trim", "first_scc", "multi", "resize", "label", "other", "TOTAL"]
            .map(String::from),
        &widths,
    );

    for bg in suite() {
        let g = &bg.graph;
        let runs: Vec<(&str, SccStats)> = vec![
            ("gbbs", gbbs_scc(g, &SccConfig::default()).1),
            ("plain", parallel_scc_with_stats(g, &SccConfig::plain()).1),
            ("vgc1", parallel_scc_with_stats(g, &SccConfig::vgc1()).1),
            ("final", parallel_scc_with_stats(g, &SccConfig::final_version()).1),
        ];
        let gbbs_total = runs[0].1.total_seconds;
        for (variant, stats) in &runs {
            let mut cells = vec![bg.name.to_string(), variant.to_string()];
            for phase in PHASES {
                let p = match phase {
                    "multi_search" => "multi",
                    "table_resize" => "resize",
                    "labeling" => "label",
                    other => other,
                };
                let _ = p;
                cells.push(format!("{:.4}", stats.phase_seconds(phase)));
            }
            cells.push(format!(
                "{:.4} ({:.2}x)",
                stats.total_seconds,
                gbbs_total / stats.total_seconds
            ));
            row(&cells, &widths);
        }
        println!();
    }
    println!("(x-factor = speedup over the GBBS-like baseline, as annotated atop Fig. 9's bars)");
}

//! Microbenchmarks of the two core data structures: the parallel hash bag
//! (insert / extract_all) against simpler frontier containers, and the
//! phase-concurrent pair table (insert / contains / grow).
//!
//! These quantify the §3.3 claims at the data-structure level: bag inserts
//! are O(1) CAS operations, extract touches only the used prefix, and the
//! table's copy-grow is the expensive operation the §4.5 heuristic avoids.
//!
//! Run: `cargo bench -p pscc-bench --bench micro_structures`

use pscc_bag::HashBag;
use pscc_bench::{fmt_secs, row};
use pscc_runtime::{par_for, Timer};
use pscc_table::{Insert, PairTable};
use std::sync::Mutex;

fn bench<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Timer::start();
        std::hint::black_box(f());
        best = best.min(t.seconds());
    }
    best
}

fn main() {
    let n: usize = std::env::var("PSCC_SCALE")
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|s| (1_000_000.0 * s) as usize)
        .unwrap_or(1_000_000);
    println!("== microbenchmarks (n = {n}) ==\n");
    let widths = [34, 12, 14];
    row(&["operation", "time", "throughput"].map(String::from), &widths);
    let thr = |t: f64| format!("{:.1} M/s", n as f64 / t / 1e6);

    // Hash bag: parallel insert of n unique keys. The bag is sized for n
    // elements, so each timed rep must drain it before the next.
    let bag: HashBag<u32> = HashBag::new(n);
    let mut t_ext = f64::INFINITY;
    let t_ins = bench(3, || {
        let t = Timer::start();
        par_for(n, |i| bag.insert(i as u32));
        let ins = t.seconds();
        let t = Timer::start();
        std::hint::black_box(bag.extract_all());
        t_ext = t_ext.min(t.seconds());
        ins
    });
    // bench() times the whole closure; re-derive the insert-only time from
    // the closure's own measurement (returned value is ignored by bench).
    let t_ins = t_ins - t_ext;
    row(&["bag: par insert x n".into(), fmt_secs(t_ins), thr(t_ins)], &widths);
    row(&["bag: extract_all x n".into(), fmt_secs(t_ext), thr(t_ext)], &widths);

    // Extract cost must track content size, not capacity: measure a small
    // extraction from a huge bag (Theorem 3.1's O(s + λ)).
    par_for(1000, |i| bag.insert(i as u32));
    let t_small = bench(3, || bag.extract_all());
    row(&["bag: extract 1k from cap-1M bag".into(), fmt_secs(t_small), "-".into()], &widths);

    // Baseline frontier container: Mutex<Vec> (what a naive implementation
    // would use for concurrent frontier pushes).
    let locked: Mutex<Vec<u32>> = Mutex::new(Vec::with_capacity(n));
    let t_mutex = bench(3, || {
        locked.lock().unwrap().clear();
        par_for(n, |i| locked.lock().unwrap().push(i as u32));
    });
    row(&["Mutex<Vec>: par push x n".into(), fmt_secs(t_mutex), thr(t_mutex)], &widths);
    println!();

    // Pair table.
    let table = PairTable::with_capacity(n);
    let t_tins = bench(3, || {
        table.clear();
        par_for(n, |i| {
            let _ = table.insert(i as u64);
        });
    });
    row(&["table: par insert x n".into(), fmt_secs(t_tins), thr(t_tins)], &widths);

    let t_contains = bench(3, || {
        par_for(n, |i| {
            std::hint::black_box(table.contains(i as u64));
        })
    });
    row(&["table: par contains x n".into(), fmt_secs(t_contains), thr(t_contains)], &widths);

    // The copy-grow the heuristic avoids.
    let mut small = PairTable::with_capacity(n / 2);
    par_for(n / 2, |i| {
        let _ = small.insert(i as u64);
    });
    let t = Timer::start();
    small.grow();
    let t_grow = t.seconds();
    row(&["table: grow (rehash n/2 keys)".into(), fmt_secs(t_grow), "-".into()], &widths);

    // Sanity: growing preserved everything.
    let mut missing = 0usize;
    for i in 0..(n / 2) as u64 {
        if !small.contains(i) {
            missing += 1;
        }
    }
    assert_eq!(missing, 0, "grow lost keys");
    let _ = Insert::Added;
    println!(
        "\n(bag inserts should be within ~an order of magnitude of raw CAS; the \
              Mutex<Vec> row shows why a lock-based frontier cannot keep up, and the \
              grow row is the per-resize cost the §4.5 heuristic amortizes away)"
    );
}

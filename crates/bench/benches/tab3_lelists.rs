//! **Tab. 3 (LE-lists)** — the BGSS LE-list algorithm with hash-bag
//! frontiers versus the ParlayLib-like edge-revisit baseline, sizes
//! verified against Cohen's sequential algorithm.
//!
//! The paper cannot run LE-lists on its largest graphs (output is
//! Θ(n log n)); analogously this harness uses the suite's smaller graphs.
//!
//! Run: `cargo bench -p pscc-bench --bench tab3_lelists`

use pscc_bench::{fmt_secs, row, suite_selected, time_adaptive};
use pscc_lelists::bgss::le_lists_with_priority;
use pscc_lelists::{cohen_le_lists, FrontierMode, LeListsConfig};
use pscc_runtime::random_permutation;

fn main() {
    println!("== Tab. 3 (LE-lists): ours vs ParlayLib-like ==\n");
    let widths = [7, 9, 9, 9, 9, 9, 8, 10];
    row(
        &["graph", "n", "m", "ours", "base", "cohen", "spd", "total size"].map(String::from),
        &widths,
    );

    // LE-lists output is Θ(n log n): use the moderate-size graphs, as the
    // paper does (it skips CW/HL14/HL12).
    let names = ["TW*", "SD*", "HH5*", "CH5*", "GL2*", "GL5*", "SQR", "REC", "SQR'", "REC'"];
    let mut speedups = Vec::new();
    for bg in suite_selected(&names) {
        let g = bg.graph.symmetrize();
        let perm = random_permutation(g.n(), 0x1e1);

        let ours_cfg = LeListsConfig { mode: FrontierMode::HashBag, ..LeListsConfig::default() };
        let base_cfg =
            LeListsConfig { mode: FrontierMode::EdgeRevisit, ..LeListsConfig::default() };

        let (t_ours, ours) = time_adaptive(1.0, || le_lists_with_priority(&g, &perm, &ours_cfg));
        let (t_base, base) = time_adaptive(1.0, || le_lists_with_priority(&g, &perm, &base_cfg));
        let (t_seq, want) = time_adaptive(1.0, || cohen_le_lists(&g, &perm));

        // Correctness: all three agree exactly (the paper flags baselines
        // with wrong list sizes with '?' — we assert instead).
        assert_eq!(ours.0, want, "{}: ours wrong", bg.name);
        assert_eq!(base.0, want, "{}: baseline wrong", bg.name);
        let total: usize = want.iter().map(|l| l.len()).sum();

        speedups.push(t_base / t_ours);
        row(
            &[
                bg.name.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                fmt_secs(t_ours),
                fmt_secs(t_base),
                fmt_secs(t_seq),
                format!("{:.2}", t_base / t_ours),
                total.to_string(),
            ],
            &widths,
        );
    }
    let gm = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!(
        "\ngeomean speedup ours/baseline: {:.2} (paper: 4.34x avg vs ParlayLib, up to 10x \
         on large-diameter graphs — driven by per-round frontier regeneration cost)",
        gm
    );
}

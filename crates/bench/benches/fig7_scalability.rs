//! **Fig. 7 / Fig. 8** — scalability: speedup over sequential Tarjan and
//! self-relative speedup as the worker count grows.
//!
//! The paper sweeps 1..192 hyperthreads on a 96-core machine; this harness
//! sweeps 1..available cores (falling back to a degenerate sweep on
//! single-core hosts — the code path is identical, only the x-axis
//! shrinks).
//!
//! Run: `cargo bench -p pscc-bench --bench fig7_scalability`

use pscc_baselines::{gbbs_scc, tarjan_scc};
use pscc_bench::{fmt_secs, row, small_suite, time_adaptive};
use pscc_core::{parallel_scc, SccConfig};
use pscc_runtime::with_threads;

fn thread_sweep() -> Vec<usize> {
    let max = pscc_runtime::pool::available_parallelism();
    let mut points = vec![1usize];
    let mut p = 2;
    while p < max {
        points.push(p);
        p *= 2;
    }
    if max > 1 {
        points.push(max);
    }
    points
}

fn main() {
    let sweep = thread_sweep();
    println!("== Fig. 7/8: scalability over {:?} worker(s) ==\n", sweep);
    let widths = [7, 9, 9, 10, 10, 10, 10];
    row(
        &["graph", "threads", "seq", "ours", "gbbs", "ours/seq", "ours-self"].map(String::from),
        &widths,
    );

    for bg in small_suite() {
        let g = &bg.graph;
        let (t_seq, _) = time_adaptive(2.0, || tarjan_scc(g));
        let mut t1_ours = None;
        for &threads in &sweep {
            let (t_ours, _) = with_threads(threads, || {
                time_adaptive(2.0, || parallel_scc(g, &SccConfig::default()))
            });
            let (t_gbbs, _) =
                with_threads(threads, || time_adaptive(2.0, || gbbs_scc(g, &SccConfig::default())));
            let base = *t1_ours.get_or_insert(t_ours);
            row(
                &[
                    bg.name.to_string(),
                    threads.to_string(),
                    fmt_secs(t_seq),
                    fmt_secs(t_ours),
                    fmt_secs(t_gbbs),
                    format!("{:.2}", t_seq / t_ours),
                    format!("{:.2}", base / t_ours),
                ],
                &widths,
            );
        }
        println!();
    }
    println!(
        "(ours/seq is the Fig. 7 y-axis, ours-self the Fig. 8 y-axis; with one \
         visible core both curves are flat by construction)"
    );
}

//! **Tab. 3 (connectivity)** — LDD-UF-JTB with our hash-bag+VGC LDD versus
//! the ConnectIt-like edge-revisit baseline, on the symmetrized suite.
//!
//! Run: `cargo bench -p pscc-bench --bench tab3_cc`

use pscc_bench::{fmt_secs, row, suite, time_adaptive};
use pscc_cc::{connected_components, sequential_cc, CcConfig, LddConfig, LddMode};
use pscc_core::verify::same_partition;

fn main() {
    println!("== Tab. 3 (CC): LDD-UF-JTB, ours vs ConnectIt-like ==\n");
    let widths = [7, 9, 9, 9, 9, 8, 8, 8];
    row(&["graph", "n", "m", "ours", "base", "spd", "rnd(o)", "rnd(b)"].map(String::from), &widths);

    let mut speedups = Vec::new();
    for bg in suite() {
        let g = bg.graph.symmetrize();
        let want = sequential_cc(&g);

        let cfg_ours =
            CcConfig { ldd: LddConfig { mode: LddMode::HashBagVgc, ..LddConfig::default() } };
        let cfg_base =
            CcConfig { ldd: LddConfig { mode: LddMode::EdgeRevisit, ..LddConfig::default() } };

        let (t_ours, ours) = time_adaptive(1.0, || connected_components(&g, &cfg_ours));
        assert!(same_partition(&ours.labels, &want), "{}: ours wrong", bg.name);
        let (t_base, base) = time_adaptive(1.0, || connected_components(&g, &cfg_base));
        assert!(same_partition(&base.labels, &want), "{}: baseline wrong", bg.name);

        speedups.push(t_base / t_ours);
        row(
            &[
                bg.name.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                fmt_secs(t_ours),
                fmt_secs(t_base),
                format!("{:.2}", t_base / t_ours),
                ours.ldd_rounds.to_string(),
                base.ldd_rounds.to_string(),
            ],
            &widths,
        );
    }
    let gm = (speedups.iter().map(|s| s.ln()).sum::<f64>() / speedups.len() as f64).exp();
    println!("\ngeomean speedup ours/baseline: {:.2} (paper: 1.67x overall, up to 3.2x)", gm);
}

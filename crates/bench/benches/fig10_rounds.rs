//! **Fig. 10** — number of reachability-search rounds with and without VGC.
//!
//! For every reachability search inside the SCC computation we record the
//! round count under plain BFS (`y`) and under VGC (`x`); the paper plots
//! the (x, y) points per graph and reports the average ratio `avg = y/x`
//! (3–200x in the paper). Both runs share the permutation seed, so search
//! `i` of one run corresponds to search `i` of the other.
//!
//! Run: `cargo bench -p pscc-bench --bench fig10_rounds`

use pscc_bench::{row, suite};
use pscc_core::{parallel_scc_with_stats, SccConfig};

fn main() {
    println!("== Fig. 10: reachability rounds, VGC vs plain BFS ==\n");
    let widths = [7, 10, 10, 10, 10, 8];
    row(
        &["graph", "searches", "rounds", "rounds", "max y/x", "avg y/x"].map(String::from),
        &widths,
    );
    row(&["", "", "(VGC)", "(plain)", "", ""].map(String::from), &widths);

    for bg in suite() {
        let g = &bg.graph;
        let (_, with_vgc) = parallel_scc_with_stats(g, &SccConfig::final_version());
        let (_, without) = parallel_scc_with_stats(g, &SccConfig::plain());

        let n = with_vgc.searches.len().min(without.searches.len());
        let mut ratios = Vec::with_capacity(n);
        for i in 0..n {
            let x = with_vgc.searches[i].rounds.max(1) as f64;
            let y = without.searches[i].rounds.max(1) as f64;
            ratios.push(y / x);
        }
        let avg = ratios.iter().sum::<f64>() / ratios.len().max(1) as f64;
        let max = ratios.iter().cloned().fold(0.0f64, f64::max);
        row(
            &[
                bg.name.to_string(),
                n.to_string(),
                with_vgc.total_rounds().to_string(),
                without.total_rounds().to_string(),
                format!("{max:.1}"),
                format!("{avg:.1}"),
            ],
            &widths,
        );
    }
    println!(
        "\n(paper: avg ratios 3–202 depending on graph; k-NN/lattice graphs sit at \
         the high end, social/web at the low end)"
    );
}

//! `engine_delta` — cost of batched graph updates.
//!
//! Compares the parallel CSR merge behind `DiGraph::with_delta` against
//! the from-scratch edge-list rebuild it replaces, and measures the
//! catalog's delta fast paths:
//!
//! * `with_delta_4k` — merge a 4 096-edge insertion/deletion delta into
//!   an RMAT digraph (O(n/P + m/P + |delta| log |delta|));
//! * `rebuild_from_edges_4k` — the old way: collect every edge, apply the
//!   delta to the list, rebuild both CSRs from scratch;
//! * `apply_delta_redundant` — `Catalog::apply_delta` for a delta of
//!   already-present edges (the redundant-update hot path: effective-set
//!   computation only, index untouched);
//! * `absorb_check_2k` — the absorbability decision itself: 2 048
//!   reachable pairs probed through the index, the per-edge cost a
//!   genuinely absorbed delta pays on top of the CSR merge.
//!
//! Run: `cargo bench -p pscc-bench --bench engine_delta`

use criterion::{criterion_group, criterion_main, Criterion};
use pscc_engine::{Catalog, Delta};
use pscc_graph::generators::rmat::rmat_digraph;
use pscc_graph::{dedup_edges, DiGraph, V};
use pscc_runtime::SplitMix64;
use std::hint::black_box;

fn random_edges(n: usize, count: usize, seed: u64) -> Vec<(V, V)> {
    let mut rng = SplitMix64::new(seed);
    (0..count).map(|_| (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V)).collect()
}

fn delta_benches(c: &mut Criterion) {
    let g = rmat_digraph(16, 500_000, 0xbe4c4);
    let n = g.n();
    let ins = random_edges(n, 2048, 0x111);
    let del: Vec<(V, V)> = g.out_csr().edges().step_by(g.m() / 2048).collect();

    c.bench_function("with_delta_4k", |b| {
        b.iter(|| black_box(g.with_delta(black_box(&ins), black_box(&del))))
    });

    c.bench_function("rebuild_from_edges_4k", |b| {
        b.iter(|| {
            let mut d = del.clone();
            dedup_edges(&mut d);
            let mut edges: Vec<(V, V)> =
                g.out_csr().edges().filter(|e| d.binary_search(e).is_err()).collect();
            edges.extend_from_slice(&ins);
            black_box(DiGraph::from_edges(n, &edges))
        })
    });

    let catalog = Catalog::new();
    catalog.insert("g", g.clone());
    let index = catalog.index("g").expect("registered above");
    // Every edge already present: the apply is answered from the
    // effective-set computation alone (applying an *absorbable* delta is
    // not repeatable — its first application mutates the graph — so the
    // absorb decision is measured separately below).
    let present: Vec<(V, V)> = g.out_csr().edges().take(2048).collect();
    let redundant = Delta::from_parts(present, Vec::new());
    c.bench_function("apply_delta_redundant", |b| {
        b.iter(|| black_box(catalog.apply_delta("g", black_box(&redundant)).unwrap()))
    });

    // Reachable pairs sampled like an absorbable delta's edges: the probe
    // an absorbed apply runs per insertion (same-SCC / summary check).
    let mut rng = SplitMix64::new(0xab50);
    let mut reachable: Vec<(V, V)> = Vec::new();
    while reachable.len() < 2048 {
        let (u, v) = (rng.next_below(n as u64) as V, rng.next_below(n as u64) as V);
        if index.reaches(u, v) {
            reachable.push((u, v));
        }
    }
    c.bench_function("absorb_check_2k", |b| {
        b.iter(|| black_box(reachable.iter().all(|&(u, v)| index.reaches(u, v))))
    });
}

criterion_group!(benches, delta_benches);
criterion_main!(benches);

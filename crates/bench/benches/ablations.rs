//! **Ablations** — isolating each design choice the paper (and DESIGN.md)
//! credits for performance:
//!
//! 1. the §4.5 hash-table sizing heuristic vs naive small-start sizing;
//! 2. the dense (direction-optimizing) mode of the first SCC (§4.2);
//! 3. fixed τ = 512 vs the §8 adaptive-τ extension;
//! 4. the prefix-doubling multiplier β (Tab. 1 default 1.5);
//! 5. the hash-bag first-chunk size λ (paper: insensitive in 2⁸..2¹⁶).
//!
//! Run: `cargo bench -p pscc-bench --bench ablations`

use pscc_bag::BagConfig;
use pscc_bench::{fmt_secs, row, small_suite, time_adaptive};
use pscc_core::{parallel_scc, parallel_scc_with_stats, SccConfig};

fn main() {
    println!("== Ablation 1+2+3: sizing heuristic, dense mode, adaptive τ ==\n");
    let widths = [7, 10, 10, 10, 10, 10];
    row(
        &["graph", "final", "naive-size", "no-dense", "adapt-τ", "resize(n/h)"].map(String::from),
        &widths,
    );
    for bg in small_suite() {
        let g = &bg.graph;
        let (t_final, _) = time_adaptive(1.0, || parallel_scc(g, &SccConfig::default()));
        let naive_cfg = SccConfig { naive_table_sizing: true, ..SccConfig::default() };
        let (t_naive, naive_stats) =
            time_adaptive(1.0, || parallel_scc_with_stats(g, &naive_cfg).1);
        let nodense_cfg = SccConfig { use_dense: false, ..SccConfig::default() };
        let (t_nodense, _) = time_adaptive(1.0, || parallel_scc(g, &nodense_cfg));
        let adapt_cfg = SccConfig { adaptive_tau: true, ..SccConfig::default() };
        let (t_adapt, _) = time_adaptive(1.0, || parallel_scc(g, &adapt_cfg));
        let (_, smart_stats) = parallel_scc_with_stats(g, &SccConfig::default());
        row(
            &[
                bg.name.to_string(),
                fmt_secs(t_final),
                fmt_secs(t_naive),
                fmt_secs(t_nodense),
                fmt_secs(t_adapt),
                format!(
                    "{:.1}ms/{:.1}ms",
                    naive_stats.phase_seconds("table_resize") * 1e3,
                    smart_stats.phase_seconds("table_resize") * 1e3
                ),
            ],
            &widths,
        );
    }

    println!("\n== Ablation 4: batch multiplier β ==\n");
    let betas = [1.2f64, 1.5, 2.0, 3.0, 4.0];
    let mut widths = vec![7usize];
    widths.extend(std::iter::repeat_n(9, betas.len()));
    let mut header = vec!["graph".to_string()];
    header.extend(betas.iter().map(|b| format!("β={b}")));
    row(&header, &widths);
    for bg in small_suite() {
        let g = &bg.graph;
        let mut cells = vec![bg.name.to_string()];
        for &beta in &betas {
            let cfg = SccConfig { beta, ..SccConfig::default() };
            let (t, _) = time_adaptive(1.0, || parallel_scc(g, &cfg));
            cells.push(fmt_secs(t));
        }
        row(&cells, &widths);
    }

    println!("\n== Ablation 5: hash-bag first-chunk size λ ==\n");
    let lambdas: Vec<usize> = (6..=16).step_by(2).map(|e| 1usize << e).collect();
    let mut widths = vec![7usize];
    widths.extend(std::iter::repeat_n(9, lambdas.len()));
    let mut header = vec!["graph".to_string()];
    header.extend(lambdas.iter().map(|l| format!("λ=2^{}", l.trailing_zeros())));
    row(&header, &widths);
    for bg in small_suite() {
        let g = &bg.graph;
        let mut cells = vec![bg.name.to_string()];
        for &lambda in &lambdas {
            let cfg = SccConfig {
                bag: BagConfig { lambda, ..BagConfig::default() },
                ..SccConfig::default()
            };
            let (t, _) = time_adaptive(1.0, || parallel_scc(g, &cfg));
            cells.push(fmt_secs(t));
        }
        row(&cells, &widths);
    }
    println!(
        "\n(expectations: naive sizing inflates the resize column; no-dense hurts \
         graphs with a giant SCC; β and λ should be flat across a wide range — \
         the paper's Tab. 1/§3.3 insensitivity claims)"
    );
}

//! **Fig. 11** — sensitivity of SCC running time to the VGC threshold τ.
//!
//! Sweeps τ over powers of two and reports running time relative to τ = 1
//! (no VGC), per representative graph — the paper's conclusion: a wide
//! sweet spot 2⁶ ≤ τ ≤ 2¹², default 2⁹.
//!
//! Run: `cargo bench -p pscc-bench --bench fig11_tau`

use pscc_bench::{row, small_suite, time_adaptive};
use pscc_core::{parallel_scc, SccConfig};

fn main() {
    let taus: Vec<usize> = (0..=14).step_by(2).map(|e| 1usize << e).collect();
    println!("== Fig. 11: running time vs τ (relative to τ = 1) ==\n");

    let mut widths = vec![7usize];
    widths.extend(std::iter::repeat_n(8, taus.len()));
    let mut header = vec!["graph".to_string()];
    header.extend(taus.iter().map(|t| format!("τ=2^{}", t.trailing_zeros())));
    row(&header, &widths);

    for bg in small_suite() {
        let g = &bg.graph;
        let (base, _) = time_adaptive(1.0, || parallel_scc(g, &SccConfig::default().with_tau(1)));
        let mut cells = vec![bg.name.to_string()];
        for &tau in &taus {
            let (t, _) =
                time_adaptive(1.0, || parallel_scc(g, &SccConfig::default().with_tau(tau)));
            cells.push(format!("{:.2}", t / base));
        }
        row(&cells, &widths);
    }
    println!(
        "\n(<1.00 means faster than no-VGC; the paper finds the minimum around \
         τ = 2⁹ = 512 and insensitivity across 2⁶..2¹²)"
    );
}

//! **Tab. 2 / Fig. 1** — SCC running times of all implementations over the
//! graph suite, with speedups over sequential Tarjan.
//!
//! Paper columns reproduced: n, m, |SCC1|, |SCC1|%, #SCC, per-algorithm
//! time, and the relative-speedup heatmap values (time_SEQ / time_algo).
//!
//! Run: `cargo bench -p pscc-bench --bench tab2_scc`
//! Scale up with `PSCC_SCALE=4 cargo bench …`.

use pscc_baselines::{fwbw_scc, gbbs_scc, multistep_scc, tarjan_scc};
use pscc_bench::{fmt_secs, row, suite, time_adaptive};
use pscc_core::verify::{component_stats, same_partition};
use pscc_core::{parallel_scc, ReachParams, SccConfig};

fn main() {
    println!("== Tab. 2 / Fig. 1: SCC running times and speedups over SEQ ==");
    println!("(speedup = Tarjan_time / algo_time; >1 means faster than sequential)\n");
    let widths = [6, 8, 9, 9, 7, 8, 9, 9, 9, 9, 9, 7, 7, 7, 7];
    row(
        &[
            "graph", "family", "n", "m", "|SCC1|%", "#SCC", "ours", "gbbs", "mstep", "fwbw", "seq",
            "ours+", "gbbs+", "mstep+", "fwbw+",
        ]
        .map(String::from),
        &widths,
    );

    let budget = 2.0;
    let plain = ReachParams { vgc: false, ..ReachParams::default() };
    let mut geo: Vec<(f64, f64, f64, f64)> = Vec::new();

    for bg in suite() {
        let g = &bg.graph;
        let (t_seq, seq_labels) = time_adaptive(budget, || tarjan_scc(g));
        let (k, largest) = component_stats(&seq_labels);

        let (t_ours, ours) = time_adaptive(budget, || parallel_scc(g, &SccConfig::default()));
        assert!(same_partition(&ours.labels, &seq_labels), "{}: ours wrong", bg.name);

        let (t_gbbs, gbbs) = time_adaptive(budget, || gbbs_scc(g, &SccConfig::default()).0);
        assert!(same_partition(&gbbs.labels, &seq_labels), "{}: gbbs wrong", bg.name);

        let (t_ms, ms) = time_adaptive(budget, || multistep_scc(g, &plain));
        assert!(same_partition(&ms.labels, &seq_labels), "{}: multistep wrong", bg.name);

        let (t_fb, fb) = time_adaptive(budget, || fwbw_scc(g, &plain));
        assert!(same_partition(&fb.labels, &seq_labels), "{}: fwbw wrong", bg.name);

        let sp = |t: f64| t_seq / t;
        geo.push((sp(t_ours), sp(t_gbbs), sp(t_ms), sp(t_fb)));
        row(
            &[
                bg.name.to_string(),
                bg.family.to_string(),
                g.n().to_string(),
                g.m().to_string(),
                format!("{:.1}%", 100.0 * largest as f64 / g.n() as f64),
                k.to_string(),
                fmt_secs(t_ours),
                fmt_secs(t_gbbs),
                fmt_secs(t_ms),
                fmt_secs(t_fb),
                fmt_secs(t_seq),
                format!("{:.2}", sp(t_ours)),
                format!("{:.2}", sp(t_gbbs)),
                format!("{:.2}", sp(t_ms)),
                format!("{:.2}", sp(t_fb)),
            ],
            &widths,
        );
    }

    let gm = |sel: fn(&(f64, f64, f64, f64)) -> f64| {
        (geo.iter().map(|t| sel(t).ln()).sum::<f64>() / geo.len() as f64).exp()
    };
    println!("\ngeomean speedups over SEQ (paper Fig. 1 'MEAN' row analogue):");
    println!("  ours  : {:.2}", gm(|t| t.0));
    println!("  gbbs  : {:.2}", gm(|t| t.1));
    println!("  mstep : {:.2}", gm(|t| t.2));
    println!("  fwbw  : {:.2}", gm(|t| t.3));
    println!(
        "\nNOTE: this host exposes {} core(s); absolute speedups over SEQ need the \
         paper's 96 cores. The machine-independent comparisons (ours vs gbbs \
         ordering, round counts in fig10) are the reproduction targets here.",
        pscc_runtime::pool::available_parallelism()
    );
}

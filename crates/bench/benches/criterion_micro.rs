//! Criterion statistical microbenchmarks for the hash bag and pair table
//! hot paths (sequential single-op latencies, complementing the parallel
//! throughput numbers of `micro_structures`).
//!
//! Run: `cargo bench -p pscc-bench --bench criterion_micro`

use criterion::{criterion_group, criterion_main, Criterion};
use pscc_bag::HashBag;
use pscc_table::PairTable;
use std::hint::black_box;

fn bag_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("hashbag");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("insert_100k", |b| {
        let bag: HashBag<u32> = HashBag::new(100_000);
        b.iter(|| {
            for i in 0..100_000u32 {
                bag.insert(black_box(i));
            }
            bag.extract_all()
        });
    });
    group.bench_function("extract_10k", |b| {
        let bag: HashBag<u32> = HashBag::new(1_000_000);
        b.iter(|| {
            for i in 0..10_000u32 {
                bag.insert(i);
            }
            black_box(bag.extract_all())
        });
    });
    group.finish();
}

fn table_benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("pairtable");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(2));
    group.warm_up_time(std::time::Duration::from_millis(500));

    group.bench_function("insert_100k", |b| {
        let table = PairTable::with_capacity(100_000);
        b.iter(|| {
            table.clear();
            for i in 0..100_000u64 {
                let _ = table.insert(black_box(i));
            }
        });
    });
    group.bench_function("contains_hit_miss", |b| {
        let table = PairTable::with_capacity(100_000);
        for i in 0..100_000u64 {
            let _ = table.insert(i * 2);
        }
        b.iter(|| {
            let mut hits = 0usize;
            for i in 0..100_000u64 {
                hits += table.contains(black_box(i)) as usize;
            }
            hits
        });
    });
    group.finish();
}

criterion_group!(benches, bag_benches, table_benches);
criterion_main!(benches);

//! The Multi-step SCC algorithm (Slota, Rajamanickam, Madduri — IPDPS'14).
//!
//! Three phases:
//! 1. **Trim** — iteratively remove zero-in/out-degree vertices;
//! 2. **FW-BW** — one forward + one backward BFS from a high-degree pivot
//!    finds the giant SCC (the algorithm's bet: one SCC dominates);
//! 3. **Coloring** — repeated max-color propagation; each color root's
//!    backward reach inside its color class is an SCC (`O(m′·D)` work in
//!    the worst case, which is why Multi-step struggles on large-diameter /
//!    many-SCC graphs — Tab. 2's k-NN and lattice rows).

use std::sync::atomic::{AtomicU32, AtomicUsize, Ordering};

use pscc_core::config::ReachParams;
use pscc_core::reach::single_reach;
use pscc_core::scc::trim;
use pscc_core::state::SccState;
use pscc_core::verify::component_stats;
use pscc_core::SccResult;
use pscc_graph::{DiGraph, V};
use pscc_runtime::{atomic_max_u32, pack_index, par_for, AtomicBits};

/// Computes SCCs with the Multi-step algorithm. `reach` controls the
/// FW-BW searches; pass [`ReachParams::plain`]-style settings for a
/// faithful baseline (its BFS had no VGC).
pub fn multistep_scc(g: &DiGraph, reach: &ReachParams) -> SccResult {
    let n = g.n();
    if n == 0 {
        return SccResult { labels: Vec::new(), num_sccs: 0, largest_scc: 0 };
    }
    let state = SccState::new(n);

    // Phase 1: iterative trim.
    trim(g, &state, true);

    // Phase 2: FW-BW from the pivot with max degree product.
    if state.unfinished() > 0 {
        let pivot = (0..n as V)
            .filter(|&v| !state.is_done(v))
            .max_by_key(|&v| g.in_degree(v) as u64 * g.out_degree(v) as u64)
            // analyze: allow(panic): guarded by the unfinished() > 0 check above
            .expect("unfinished vertex must exist");
        let fvis = AtomicBits::new(n);
        let bvis = AtomicBits::new(n);
        single_reach(g, pivot, true, &state.labels, reach, &fvis);
        single_reach(g, pivot, false, &state.labels, reach, &bvis);
        par_for(n, |v| {
            if !state.is_done(v as V) && fvis.get(v) && bvis.get(v) {
                state.finish(v as V, pivot);
            }
        });
    }

    // Phase 3: coloring rounds on whatever is left.
    let colors: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    while state.unfinished() > 0 {
        // Reset colors of alive vertices to their own ids.
        par_for(n, |v| colors[v].store(v as u32, Ordering::Relaxed));

        // Propagate max color along alive edges to a fixed point.
        loop {
            let changed = AtomicUsize::new(0);
            par_for(n, |v| {
                if state.is_done(v as V) {
                    return;
                }
                let cv = colors[v].load(Ordering::Relaxed);
                for &u in g.out_neighbors(v as V) {
                    if !state.is_done(u) && atomic_max_u32(&colors[u as usize], cv) {
                        changed.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
            if changed.load(Ordering::Relaxed) == 0 {
                break;
            }
        }

        // Roots: alive vertices whose color is their own id. The SCC of a
        // root r is its backward reach within its color class.
        let roots = pack_index(n, |v| {
            !state.is_done(v as V) && colors[v].load(Ordering::Relaxed) == v as u32
        });
        par_for(roots.len(), |i| {
            let r = roots[i] as V;
            // Sequential backward BFS per root; roots' classes are disjoint
            // so these run embarrassingly parallel across roots.
            let mut stack = vec![r];
            state.finish(r, r);
            while let Some(v) = stack.pop() {
                for &u in g.in_neighbors(v) {
                    if !state.is_done(u) && colors[u as usize].load(Ordering::Relaxed) == r as u32 {
                        state.finish(u, r);
                        stack.push(u);
                    }
                }
            }
        });
    }

    let labels = state.labels_snapshot();
    let (num_sccs, largest_scc) = component_stats(&labels);
    SccResult { labels, num_sccs, largest_scc }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;
    use pscc_core::verify::{partition_groups, same_partition};
    use pscc_graph::fixtures::{fig2_graph, fig2_sccs};
    use pscc_graph::generators::lattice::{lattice_sqr, lattice_sqr_prime};
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::bowtie_web;

    fn plain() -> ReachParams {
        ReachParams { vgc: false, ..ReachParams::default() }
    }

    fn check(g: &DiGraph) {
        let got = multistep_scc(g, &plain());
        assert!(same_partition(&got.labels, &tarjan_scc(g)));
    }

    #[test]
    fn fig2_partition() {
        let got = multistep_scc(&fig2_graph(), &plain());
        assert_eq!(partition_groups(&got.labels), fig2_sccs());
    }

    #[test]
    fn finds_giant_scc_on_bowtie() {
        let g = bowtie_web(200, 0.5, 2, 1);
        let got = multistep_scc(&g, &plain());
        assert_eq!(got.largest_scc, 100);
        check(&g);
    }

    #[test]
    fn random_graphs_match_tarjan() {
        for seed in 0..5u64 {
            check(&gnm_digraph(200, 700, seed));
        }
    }

    #[test]
    fn lattices_match_tarjan() {
        check(&lattice_sqr(15, 15, 2));
        check(&lattice_sqr_prime(20, 20, 2));
    }

    #[test]
    fn empty_and_singleton() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(multistep_scc(&g, &plain()).num_sccs, 0);
        let g1 = DiGraph::from_edges(1, &[]);
        assert_eq!(multistep_scc(&g1, &plain()).num_sccs, 1);
    }
}

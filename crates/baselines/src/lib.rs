//! # pscc-baselines — comparator SCC algorithms
//!
//! Every algorithm the paper's evaluation (§6) compares against:
//!
//! * [`tarjan`] — Tarjan's sequential algorithm ("SEQ" in Tab. 2),
//!   implemented iteratively so billion-hop DFS chains cannot overflow the
//!   stack;
//! * [`kosaraju`] — Kosaraju's two-pass algorithm (an independent
//!   sequential oracle for tests);
//! * [`gbbs_like`] — the BGSS algorithm as GBBS implements it: parallel
//!   BFS reachability with the *edge-revisit* frontier scheme, no VGC, and
//!   copy-on-growth pair tables (the costs our hash bag + heuristic
//!   eliminate, Fig. 9);
//! * [`multistep`] — the Multi-step algorithm of Slota et al. (IPDPS'14):
//!   iterative trim, FW-BW for the giant SCC, then coloring propagation;
//! * [`fwbw`] — plain recursive forward-backward decomposition
//!   (Coppersmith et al.), the ancestor of iSpan.
//!
//! All return per-vertex label vectors comparable with
//! [`pscc_core::verify::same_partition`].

pub mod fwbw;
pub mod gbbs_like;
pub mod kosaraju;
pub mod multistep;
pub mod tarjan;

pub use fwbw::fwbw_scc;
pub use gbbs_like::gbbs_scc;
pub use kosaraju::kosaraju_scc;
pub use multistep::multistep_scc;
pub use tarjan::tarjan_scc;

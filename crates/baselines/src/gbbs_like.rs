//! The GBBS-style BGSS implementation: parallel BFS reachability with the
//! **edge-revisit** frontier scheme, no VGC, and naive copy-on-growth pair
//! tables.
//!
//! This baseline isolates exactly the three costs the paper's techniques
//! remove (§6.2, Fig. 9):
//!
//! 1. every sparse round scans the frontier's edges **twice** — once to
//!    claim vertices (CAS) and count winners, once to write them into a
//!    pre-sized array (here: the winner re-check pass);
//! 2. reachability searches take `O(D)` rounds (no local search);
//! 3. pair tables start small and grow by rehash-copying, instead of the
//!    §4.5 `max(0.3 b, 1.5 a)` estimate.
//!
//! The driver structure (trim → first SCC → prefix-doubling batches →
//! labeling) is shared with `pscc-core`, so any timing difference comes
//! from the reachability internals — mirroring the paper's "our framework
//! is similar to GBBS's" comparison methodology.

use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Mutex;
use std::time::Duration;

use pscc_core::config::SccConfig;
use pscc_core::scc::{label_from_multi, label_from_single, trim, LabelScratch};
use pscc_core::state::SccState;
use pscc_core::stats::{SccStats, SearchRecord};
use pscc_core::verify::component_stats;
use pscc_core::SccResult;
use pscc_graph::{Csr, DiGraph, V};
use pscc_runtime::{par_range, random_permutation, scan_exclusive, AtomicBits, Timer};
use pscc_table::{pack_pair, pair_source, pair_vertex, Insert, PairTable};

const NONE: u32 = u32::MAX;

/// Computes SCCs with the GBBS-like baseline. `cfg` supplies the
/// permutation seed and β; its VGC/τ fields are ignored (this baseline
/// never local-searches).
pub fn gbbs_scc(g: &DiGraph, cfg: &SccConfig) -> (SccResult, SccStats) {
    let n = g.n();
    let mut stats = SccStats::default();
    let total = Timer::start();
    if n == 0 {
        return (SccResult { labels: Vec::new(), num_sccs: 0, largest_scc: 0 }, stats);
    }
    let state = SccState::new(n);
    stats.trimmed = stats.breakdown.run("trim", || trim(g, &state, false));
    let mut unfinished = n - stats.trimmed;
    let perm = stats.breakdown.run("other", || random_permutation(n, cfg.seed));
    let scratch = stats.breakdown.run("other", || LabelScratch::new(n));
    // Per-search parent array for the edge-revisit scheme.
    let parent: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(NONE)).collect();

    let mut cursor = 0usize;
    let mut batch_size = 1usize;
    while cursor < n && unfinished > 0 {
        let end = (cursor + batch_size).min(n);
        let sources: Vec<V> =
            perm[cursor..end].iter().copied().filter(|&v| !state.is_done(v)).collect();
        cursor = end;
        batch_size = ((batch_size as f64 * cfg.beta).ceil() as usize).max(batch_size + 1);
        if sources.is_empty() {
            continue;
        }
        stats.num_batches += 1;
        let batch = stats.num_batches;

        if batch == 1 && sources.len() == 1 {
            let s0 = sources[0];
            let fvis = AtomicBits::new(n);
            let bvis = AtomicBits::new(n);
            let t = Timer::start();
            let f_rounds = single_reach_revisit(g, s0, true, &state, &parent, &fvis);
            let b_rounds = single_reach_revisit(g, s0, false, &state, &parent, &bvis);
            stats.breakdown.add("first_scc", t.elapsed());
            stats.searches.push(SearchRecord {
                batch,
                sources: 1,
                forward: true,
                multi: false,
                rounds: f_rounds,
                dense_rounds: 0,
                reached: fvis.count_ones(),
            });
            stats.searches.push(SearchRecord {
                batch,
                sources: 1,
                forward: false,
                multi: false,
                rounds: b_rounds,
                dense_rounds: 0,
                reached: bvis.count_ones(),
            });
            let newly =
                stats.breakdown.run("labeling", || label_from_single(&state, s0, &fvis, &bvis));
            unfinished -= newly;
        } else {
            // Naive sizing: fresh small tables every batch.
            let mut t_out = PairTable::with_capacity(1024);
            let mut t_in = PairTable::with_capacity(1024);
            let t = Timer::start();
            let (fr, f_resize) = multi_reach_revisit(g, &sources, true, &state, &mut t_out);
            let (br, b_resize) = multi_reach_revisit(g, &sources, false, &state, &mut t_in);
            let elapsed = t.seconds();
            let resize = f_resize + b_resize;
            stats
                .breakdown
                .add("multi_search", Duration::from_secs_f64((elapsed - resize).max(0.0)));
            stats.breakdown.add("table_resize", Duration::from_secs_f64(resize));
            stats.searches.push(SearchRecord {
                batch,
                sources: sources.len(),
                forward: true,
                multi: true,
                rounds: fr,
                dense_rounds: 0,
                reached: t_out.len(),
            });
            stats.searches.push(SearchRecord {
                batch,
                sources: sources.len(),
                forward: false,
                multi: true,
                rounds: br,
                dense_rounds: 0,
                reached: t_in.len(),
            });
            let newly = stats
                .breakdown
                .run("labeling", || label_from_multi(&state, &t_out, &t_in, &scratch));
            unfinished -= newly;
        }
    }
    assert_eq!(unfinished, 0);
    let labels = state.labels_snapshot();
    let (num_sccs, largest_scc) = component_stats(&labels);
    stats.total_seconds = total.seconds();
    (SccResult { labels, num_sccs, largest_scc }, stats)
}

/// Single-source BFS with the literal edge-revisit scheme (Ligra-style).
/// Returns the number of rounds. `parent` must be a length-n array which
/// this function resets before use.
fn single_reach_revisit(
    g: &DiGraph,
    src: V,
    forward: bool,
    state: &SccState,
    parent: &[AtomicU32],
    visited: &AtomicBits,
) -> usize {
    let n = g.n();
    par_range(0..n, 4096, &|r| {
        for i in r {
            parent[i].store(NONE, Ordering::Relaxed);
        }
    });
    visited.set(src as usize);
    let csr = g.csr_dir(forward);
    let mut frontier: Vec<V> = vec![src];
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        frontier = revisit_round(csr, &frontier, state, parent, visited);
    }
    rounds
}

/// One edge-revisit round: visit all frontier edges twice.
fn revisit_round(
    csr: &Csr,
    frontier: &[V],
    state: &SccState,
    parent: &[AtomicU32],
    visited: &AtomicBits,
) -> Vec<V> {
    let k = frontier.len();
    let mut counts = vec![0u64; k + 1];

    // Visit 1: claim neighbours, count per-frontier-vertex wins.
    {
        struct P(*mut u64);
        // SAFETY: P is only shared with the count pass below, where each
        // frontier slot i < k has exactly one writer.
        unsafe impl Sync for P {}
        impl P {
            fn get(&self) -> *mut u64 {
                self.0
            }
        }
        let cptr = P(counts.as_mut_ptr());
        par_range(0..k, 1, &|r| {
            for i in r {
                let v = frontier[i];
                let lv = state.label(v);
                let mut won = 0u64;
                for &u in csr.neighbors(v) {
                    if state.label(u) == lv && visited.test_and_set(u as usize) {
                        parent[u as usize].store(v, Ordering::Relaxed);
                        won += 1;
                    }
                }
                // SAFETY: i < k indexes the k+1-entry counts buffer and
                // is visited by exactly one task.
                unsafe { *cptr.get().add(i) = won };
            }
        });
    }
    let total = scan_exclusive(&mut counts) as usize;

    // Visit 2: re-scan the same edges and write the winners into their
    // pre-assigned segment.
    let mut next: Vec<V> = vec![0; total];
    {
        struct P(*mut V);
        // SAFETY: P is only shared with the write pass below, where each
        // task fills its own disjoint segment of `next`.
        unsafe impl Sync for P {}
        impl P {
            fn get(&self) -> *mut V {
                self.0
            }
        }
        let nptr = P(next.as_mut_ptr());
        let counts = &counts;
        par_range(0..k, 1, &|r| {
            for i in r {
                let v = frontier[i];
                let mut pos = counts[i] as usize;
                for &u in csr.neighbors(v) {
                    if parent[u as usize].load(Ordering::Relaxed) == v {
                        // SAFETY: pos walks [counts[i], counts[i+1]),
                        // the segment of `next` the exclusive scan
                        // reserved for slot i's wins; segments tile the
                        // buffer without overlap (debug-asserted below).
                        unsafe { *nptr.get().add(pos) = u };
                        pos += 1;
                    }
                }
                debug_assert_eq!(pos as u64, counts[i + 1]);
            }
        });
    }
    next
}

/// Multi-source BFS over pairs: global table `table` plus a per-round
/// "new pairs" table whose pack is the next frontier (the GBBS approach to
/// regenerating multi-BFS frontiers). Returns (rounds, resize seconds).
fn multi_reach_revisit(
    g: &DiGraph,
    sources: &[V],
    forward: bool,
    state: &SccState,
    table: &mut PairTable,
) -> (usize, f64) {
    let csr = g.csr_dir(forward);
    let mut resize = 0.0f64;
    let mut frontier: Vec<u64> = Vec::with_capacity(sources.len());
    for &s in sources {
        let key = pack_pair(s, s);
        loop {
            match table.insert(key) {
                Insert::Added => {
                    frontier.push(key);
                    break;
                }
                Insert::Present => break,
                Insert::Full => {
                    let t = Timer::start();
                    table.grow();
                    resize += t.seconds();
                }
            }
        }
    }

    let overflow: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        if table.len() * 2 >= table.slot_count() {
            let t = Timer::start();
            table.grow();
            resize += t.seconds();
        }
        // Round-local table of freshly added pairs (the "next frontier").
        let round = PairTable::with_capacity(table.slot_count());
        {
            let table = &*table;
            let round = &round;
            let overflow = &overflow;
            par_range(0..frontier.len(), 1, &|r| {
                for i in r {
                    let pair = frontier[i];
                    let (v, s) = (pair_vertex(pair), pair_source(pair));
                    let lv = state.label(v);
                    for &u in csr.neighbors(v) {
                        if state.label(u) == lv {
                            let key = pack_pair(u, s);
                            match table.insert(key) {
                                Insert::Added => {
                                    let _ = round.insert(key);
                                }
                                Insert::Present => {}
                                Insert::Full => overflow.lock().expect("overflow lock").push(key),
                            }
                        }
                    }
                }
            });
        }
        // The revisit: pack the round table's slots into the frontier.
        let mut next = round.keys();
        loop {
            let pending = std::mem::take(&mut *overflow.lock().expect("overflow lock"));
            if pending.is_empty() {
                break;
            }
            let t = Timer::start();
            table.grow();
            resize += t.seconds();
            for key in pending {
                match table.insert(key) {
                    Insert::Added => next.push(key),
                    Insert::Present => {}
                    Insert::Full => overflow.lock().expect("overflow lock").push(key),
                }
            }
        }
        frontier = next;
    }
    (rounds, resize)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;
    use pscc_core::verify::{partition_groups, same_partition};
    use pscc_graph::fixtures::{fig2_graph, fig2_sccs};
    use pscc_graph::generators::lattice::lattice_sqr_prime;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};

    fn check(g: &DiGraph) {
        let (got, _) = gbbs_scc(g, &SccConfig::default());
        assert!(same_partition(&got.labels, &tarjan_scc(g)));
    }

    #[test]
    fn fig2_partition() {
        let (got, _) = gbbs_scc(&fig2_graph(), &SccConfig::default());
        assert_eq!(partition_groups(&got.labels), fig2_sccs());
    }

    #[test]
    fn cycle_and_path() {
        check(&cycle_digraph(300));
        check(&path_digraph(300));
    }

    #[test]
    fn random_graphs_match_tarjan() {
        for seed in 0..5u64 {
            check(&gnm_digraph(250, 900, seed));
        }
    }

    #[test]
    fn lattice_matches_tarjan() {
        check(&lattice_sqr_prime(20, 20, 3));
    }

    #[test]
    fn uses_more_rounds_than_vgc_version() {
        // The whole point of the baseline: O(D) rounds.
        let g = pscc_graph::generators::lattice::lattice_sqr(30, 30, 5);
        let (_, base_stats) = gbbs_scc(&g, &SccConfig::default());
        let (_, ours_stats) = pscc_core::parallel_scc_with_stats(&g, &SccConfig::default());
        assert!(
            ours_stats.total_rounds() * 2 <= base_stats.total_rounds(),
            "ours {} vs gbbs {}",
            ours_stats.total_rounds(),
            base_stats.total_rounds()
        );
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let (got, _) = gbbs_scc(&g, &SccConfig::default());
        assert_eq!(got.num_sccs, 0);
    }
}

//! Kosaraju's two-pass sequential SCC algorithm — a second, independent
//! oracle so test failures can distinguish "parallel code wrong" from
//! "oracle wrong".

use pscc_graph::{DiGraph, V};

/// Computes SCC labels via (1) an iterative DFS post-order on `g` and
/// (2) reverse-graph DFS in reverse post-order.
pub fn kosaraju_scc(g: &DiGraph) -> Vec<u32> {
    let n = g.n();
    let mut order: Vec<V> = Vec::with_capacity(n);
    let mut seen = vec![false; n];
    let mut frames: Vec<(V, usize)> = Vec::new();

    // Pass 1: post-order over the forward graph.
    for root in 0..n as V {
        if seen[root as usize] {
            continue;
        }
        seen[root as usize] = true;
        frames.push((root, 0));
        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let ns = g.out_neighbors(v);
            if *cursor < ns.len() {
                let u = ns[*cursor];
                *cursor += 1;
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    frames.push((u, 0));
                }
            } else {
                frames.pop();
                order.push(v);
            }
        }
    }

    // Pass 2: DFS on the transpose in reverse post-order.
    const UNSET: u32 = u32::MAX;
    let mut labels = vec![UNSET; n];
    let mut next_label = 0u32;
    let mut stack: Vec<V> = Vec::new();
    for &root in order.iter().rev() {
        if labels[root as usize] != UNSET {
            continue;
        }
        labels[root as usize] = next_label;
        stack.push(root);
        while let Some(v) = stack.pop() {
            for &u in g.in_neighbors(v) {
                if labels[u as usize] == UNSET {
                    labels[u as usize] = next_label;
                    stack.push(u);
                }
            }
        }
        next_label += 1;
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tarjan::tarjan_scc;
    use pscc_core::verify::{partition_groups, same_partition};
    use pscc_graph::fixtures::{fig2_graph, fig2_sccs};
    use pscc_graph::generators::random::gnm_digraph;

    #[test]
    fn fig2_partition() {
        let labels = kosaraju_scc(&fig2_graph());
        assert_eq!(partition_groups(&labels), fig2_sccs());
    }

    #[test]
    fn agrees_with_tarjan_on_random_graphs() {
        for seed in 0..8u64 {
            let g = gnm_digraph(300, 900, seed);
            assert!(same_partition(&kosaraju_scc(&g), &tarjan_scc(&g)), "seed {seed}");
        }
    }

    #[test]
    fn deep_path_iterative_safe() {
        let g = pscc_graph::generators::simple::path_digraph(300_000);
        let labels = kosaraju_scc(&g);
        assert_eq!(pscc_core::verify::component_stats(&labels).0, 300_000);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        assert!(kosaraju_scc(&g).is_empty());
    }
}

//! Tarjan's sequential SCC algorithm (1972) — the "SEQ" baseline.
//!
//! Implemented with an explicit DFS stack (a state machine of
//! `(vertex, neighbour cursor)` frames) so the recursion depth is bounded
//! by heap, not thread stack: the evaluation graphs have paths of length
//! Θ(√n) and worse.

use pscc_graph::{DiGraph, V};

/// Computes SCC labels sequentially; labels are `0..k` in reverse
/// topological discovery order (Tarjan's property: each SCC is numbered
/// when it is popped, so every edge goes from a higher label to a lower or
/// equal one).
pub fn tarjan_scc(g: &DiGraph) -> Vec<u32> {
    let n = g.n();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut low = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut stack: Vec<V> = Vec::new();
    let mut labels = vec![0u32; n];
    let mut next_index = 0u32;
    let mut next_label = 0u32;
    let mut frames: Vec<(V, usize)> = Vec::new();

    for root in 0..n as V {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        low[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut cursor)) = frames.last_mut() {
            let ns = g.out_neighbors(v);
            if *cursor < ns.len() {
                let u = ns[*cursor];
                *cursor += 1;
                if index[u as usize] == UNSET {
                    index[u as usize] = next_index;
                    low[u as usize] = next_index;
                    next_index += 1;
                    stack.push(u);
                    on_stack[u as usize] = true;
                    frames.push((u, 0));
                } else if on_stack[u as usize] {
                    low[v as usize] = low[v as usize].min(index[u as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (p, _)) = frames.last_mut() {
                    low[p as usize] = low[p as usize].min(low[v as usize]);
                }
                if low[v as usize] == index[v as usize] {
                    loop {
                        // analyze: allow(panic): v itself is on the stack, so pop cannot fail
                        let w = stack.pop().expect("tarjan stack underflow");
                        on_stack[w as usize] = false;
                        labels[w as usize] = next_label;
                        if w == v {
                            break;
                        }
                    }
                    next_label += 1;
                }
            }
        }
    }
    labels
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_core::verify::{component_stats, partition_groups};
    use pscc_graph::fixtures::{fig2_graph, fig2_sccs};
    use pscc_graph::generators::simple::{cycle_digraph, path_digraph};

    #[test]
    fn fig2_partition() {
        let labels = tarjan_scc(&fig2_graph());
        assert_eq!(partition_groups(&labels), fig2_sccs());
    }

    #[test]
    fn cycle_one_component() {
        let (k, largest) = component_stats(&tarjan_scc(&cycle_digraph(100)));
        assert_eq!((k, largest), (1, 100));
    }

    #[test]
    fn path_all_singletons() {
        let (k, largest) = component_stats(&tarjan_scc(&path_digraph(100)));
        assert_eq!((k, largest), (100, 1));
    }

    #[test]
    fn deep_path_does_not_overflow_stack() {
        // A 500k-vertex path would blow a recursive implementation.
        let g = path_digraph(500_000);
        let (k, _) = component_stats(&tarjan_scc(&g));
        assert_eq!(k, 500_000);
    }

    #[test]
    fn labels_are_reverse_topological() {
        // Tarjan numbers SCCs in reverse topological order: for every edge
        // u -> v across components, label[u] > label[v].
        let g = fig2_graph();
        let labels = tarjan_scc(&g);
        for (u, v) in g.out_csr().edges() {
            assert!(
                labels[u as usize] >= labels[v as usize],
                "edge {u}->{v} violates reverse-topo labeling"
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        assert!(tarjan_scc(&g).is_empty());
    }
}

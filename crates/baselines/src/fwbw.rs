//! Recursive forward-backward (FW-BW) SCC decomposition
//! (Fleischer–Hendrickson–Pınar / Coppersmith et al.) — the ancestor of
//! iSpan-style algorithms.
//!
//! Pick a pivot, compute its forward set `F` and backward set `B` inside
//! the current partition; `F ∩ B` is an SCC, and every other SCC lies
//! entirely within `F∖B`, `B∖F`, or the remainder — recurse on those three.
//! Parallelism comes from the reachability searches and from processing
//! independent partitions; the recursion depth (number of SCCs found
//! serially along one chain) is what makes FW-BW slow when there are many
//! small SCCs.

use std::sync::atomic::Ordering;

use pscc_core::config::ReachParams;
use pscc_core::reach::single_reach;
use pscc_core::scc::trim;
use pscc_core::state::SccState;
use pscc_core::verify::component_stats;
use pscc_core::SccResult;
use pscc_graph::{DiGraph, V};
use pscc_runtime::rng::hash_combine;
use pscc_runtime::{par_for, AtomicBits};

use crate::tarjan::tarjan_scc;

/// Partitions smaller than this are finished sequentially with Tarjan —
/// the standard FW-BW engineering cutoff.
const SEQ_CUTOFF: usize = 64;

/// Computes SCCs by recursive FW-BW decomposition.
pub fn fwbw_scc(g: &DiGraph, reach: &ReachParams) -> SccResult {
    let n = g.n();
    if n == 0 {
        return SccResult { labels: Vec::new(), num_sccs: 0, largest_scc: 0 };
    }
    let state = SccState::new(n);
    trim(g, &state, false);

    // Work list of partitions, each a (partition label, member candidates).
    let initial: Vec<V> = (0..n as V).filter(|&v| !state.is_done(v)).collect();
    let mut work: Vec<(u64, Vec<V>)> = vec![(0, initial)];

    while let Some((plabel, verts)) = work.pop() {
        // Keep only the vertices still in this partition.
        let verts: Vec<V> =
            verts.into_iter().filter(|&v| !state.is_done(v) && state.label(v) == plabel).collect();
        if verts.is_empty() {
            continue;
        }
        if verts.len() <= SEQ_CUTOFF {
            finish_small_partition(g, &state, &verts);
            continue;
        }
        let pivot = verts[0];
        let fvis = AtomicBits::new(n);
        let bvis = AtomicBits::new(n);
        single_reach(g, pivot, true, &state.labels, reach, &fvis);
        single_reach(g, pivot, false, &state.labels, reach, &bvis);

        // Split into SCC / F∖B / B∖F / rest, relabelling the three
        // surviving groups with fresh partition labels.
        let lab_f = hash_combine(plabel, 1) & !pscc_core::FINAL_TAG;
        let lab_b = hash_combine(plabel, 2) & !pscc_core::FINAL_TAG;
        let lab_r = hash_combine(plabel, 3) & !pscc_core::FINAL_TAG;
        par_for(verts.len(), |i| {
            let v = verts[i];
            let (inf, inb) = (fvis.get(v as usize), bvis.get(v as usize));
            if inf && inb {
                state.finish(v, pivot);
            } else {
                let lab = if inf {
                    lab_f
                } else if inb {
                    lab_b
                } else {
                    lab_r
                };
                state.labels[v as usize].store(lab, Ordering::Relaxed);
            }
        });
        let mut group_f = Vec::new();
        let mut group_b = Vec::new();
        let mut group_r = Vec::new();
        for &v in &verts {
            if state.is_done(v) {
                continue;
            }
            let l = state.label(v);
            if l == lab_f {
                group_f.push(v);
            } else if l == lab_b {
                group_b.push(v);
            } else {
                group_r.push(v);
            }
        }
        for (lab, group) in [(lab_f, group_f), (lab_b, group_b), (lab_r, group_r)] {
            if !group.is_empty() {
                work.push((lab, group));
            }
        }
    }

    let labels = state.labels_snapshot();
    let (num_sccs, largest_scc) = component_stats(&labels);
    SccResult { labels, num_sccs, largest_scc }
}

/// Runs Tarjan on the subgraph induced by `verts` and finishes them.
fn finish_small_partition(g: &DiGraph, state: &SccState, verts: &[V]) {
    // Build a compact induced subgraph.
    let mut local_id = std::collections::HashMap::with_capacity(verts.len());
    for (i, &v) in verts.iter().enumerate() {
        local_id.insert(v, i as V);
    }
    let mut edges: Vec<(V, V)> = Vec::new();
    for (i, &v) in verts.iter().enumerate() {
        let lv = state.label(v);
        for &u in g.out_neighbors(v) {
            if state.label(u) == lv {
                if let Some(&j) = local_id.get(&u) {
                    edges.push((i as V, j));
                }
            }
        }
    }
    let sub = DiGraph::from_edges(verts.len(), &edges);
    let sub_labels = tarjan_scc(&sub);
    // Representative per local component: the first member (stable).
    let mut rep: Vec<Option<V>> = vec![None; verts.len()];
    for (i, &l) in sub_labels.iter().enumerate() {
        let r = rep[l as usize].get_or_insert(verts[i]);
        state.finish(verts[i], *r);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_core::verify::{partition_groups, same_partition};
    use pscc_graph::fixtures::{fig2_graph, fig2_sccs};
    use pscc_graph::generators::lattice::lattice_sqr;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{bowtie_web, cycle_digraph, path_digraph};

    fn plain() -> ReachParams {
        ReachParams { vgc: false, ..ReachParams::default() }
    }

    fn check(g: &DiGraph) {
        let got = fwbw_scc(g, &plain());
        assert!(same_partition(&got.labels, &tarjan_scc(g)));
    }

    #[test]
    fn fig2_partition() {
        let got = fwbw_scc(&fig2_graph(), &plain());
        assert_eq!(partition_groups(&got.labels), fig2_sccs());
    }

    #[test]
    fn simple_shapes() {
        check(&cycle_digraph(200));
        check(&path_digraph(200));
        check(&bowtie_web(150, 0.4, 2, 3));
    }

    #[test]
    fn random_graphs_match_tarjan() {
        for seed in 0..5u64 {
            check(&gnm_digraph(300, 1000, seed));
        }
    }

    #[test]
    fn lattice_matches_tarjan() {
        check(&lattice_sqr(15, 15, 1));
    }

    #[test]
    fn works_with_vgc_reachability_too() {
        let g = gnm_digraph(300, 1000, 42);
        let got = fwbw_scc(&g, &ReachParams::default());
        assert!(same_partition(&got.labels, &tarjan_scc(&g)));
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(fwbw_scc(&g, &plain()).num_sccs, 0);
    }
}

//! k-core decomposition (coreness) with hash-bag wake-up frontiers.
//!
//! §8 of the paper lists k-core as a traversal-based algorithm where its
//! techniques apply with a "wake-up strategy to find the next frontier":
//! peeling removes all vertices of degree < k in waves, and each removal
//! wakes up neighbours whose degree just dropped. The frontier of woken
//! vertices is exactly the paper's hash-bag use case — deduplicated by a
//! CAS on the vertex's current degree.
//!
//! `core_numbers` returns for every vertex the largest `k` such that the
//! vertex belongs to a subgraph of minimum degree `k` (its *coreness*).

use std::sync::atomic::{AtomicU32, Ordering};

use pscc_bag::{BagConfig, HashBag};
use pscc_graph::{UnGraph, V};
use pscc_runtime::{pack_index, par_range};

/// Parallel k-core decomposition: coreness of every vertex.
///
/// Peels level by level; within a level, waves of removals proceed through
/// a hash-bag frontier until no vertex of degree ≤ k remains.
pub fn core_numbers(g: &UnGraph) -> Vec<u32> {
    let n = g.n();
    if n == 0 {
        return Vec::new();
    }
    let deg: Vec<AtomicU32> = (0..n).map(|v| AtomicU32::new(g.degree(v as V) as u32)).collect();
    let coreness: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    // removed[v] = true once peeled.
    let removed: Vec<AtomicU32> = (0..n).map(|_| AtomicU32::new(0)).collect();
    let bag: HashBag<u32> = HashBag::with_config(n, BagConfig::default());
    let mut alive = n;
    let mut k = 0u32;

    while alive > 0 {
        // Wake-up seed: all alive vertices with degree <= k.
        let mut frontier: Vec<V> = pack_index(n, |v| {
            removed[v].load(Ordering::Relaxed) == 0 && deg[v].load(Ordering::Relaxed) <= k
        })
        .into_iter()
        .map(|v| v as V)
        .collect();

        if frontier.is_empty() {
            k += 1;
            continue;
        }

        // Peel waves at level k.
        while !frontier.is_empty() {
            par_range(0..frontier.len(), 1, &|r| {
                for i in r {
                    let v = frontier[i];
                    // Claim v (a vertex can be woken by several dying
                    // neighbours in one wave).
                    if removed[v as usize]
                        .compare_exchange(0, 1, Ordering::Relaxed, Ordering::Relaxed)
                        .is_err()
                    {
                        continue;
                    }
                    coreness[v as usize].store(k, Ordering::Relaxed);
                    for &u in g.neighbors(v) {
                        if removed[u as usize].load(Ordering::Relaxed) != 0 {
                            continue;
                        }
                        // Decrement the neighbour's degree; whoever drops
                        // it to exactly k wakes it up (unique winner).
                        let prev = deg[u as usize].fetch_sub(1, Ordering::Relaxed);
                        if prev == k + 1 {
                            bag.insert(u);
                        }
                    }
                }
            });
            frontier = bag.extract_all();
        }
        // Recount alive after the level completes.
        alive = (0..n).filter(|&v| removed[v].load(Ordering::Relaxed) == 0).count();
        k += 1;
    }

    coreness.into_iter().map(|c| c.into_inner()).collect()
}

/// Sequential reference: textbook bucket peeling (Batagelj–Zaveršnik).
pub fn core_numbers_sequential(g: &UnGraph) -> Vec<u32> {
    let n = g.n();
    let mut deg: Vec<usize> = (0..n).map(|v| g.degree(v as V)).collect();
    let maxd = deg.iter().copied().max().unwrap_or(0);
    let mut buckets: Vec<Vec<V>> = vec![Vec::new(); maxd + 1];
    for v in 0..n {
        buckets[deg[v]].push(v as V);
    }
    let mut core = vec![0u32; n];
    let mut removed = vec![false; n];
    let mut k = 0usize;
    let mut processed = 0usize;
    while processed < n {
        // Find the next non-empty bucket at level <= k, else raise k.
        let mut popped = None;
        for bucket in buckets.iter_mut().take(k.min(maxd) + 1) {
            if let Some(v) = bucket.pop() {
                popped = Some(v);
                break;
            }
        }
        let Some(v) = popped else {
            k += 1;
            continue;
        };
        if removed[v as usize] {
            continue;
        }
        if deg[v as usize] > k {
            buckets[deg[v as usize]].push(v);
            continue;
        }
        removed[v as usize] = true;
        core[v as usize] = k as u32;
        processed += 1;
        for &u in g.neighbors(v) {
            if !removed[u as usize] && deg[u as usize] > 0 {
                deg[u as usize] -= 1;
                buckets[deg[u as usize]].push(u);
            }
        }
    }
    core
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;

    fn complete_graph(n: usize) -> UnGraph {
        let mut edges = Vec::new();
        for u in 0..n as V {
            for v in (u + 1)..n as V {
                edges.push((u, v));
            }
        }
        UnGraph::from_undirected_edges(n, &edges)
    }

    #[test]
    fn complete_graph_is_one_core() {
        let g = complete_graph(6);
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 5));
    }

    #[test]
    fn path_is_1_core() {
        let edges: Vec<(V, V)> = (0..9).map(|v| (v, v + 1)).collect();
        let g = UnGraph::from_undirected_edges(10, &edges);
        let core = core_numbers(&g);
        assert!(core.iter().all(|&c| c == 1), "{core:?}");
    }

    #[test]
    fn isolated_vertices_are_0_core() {
        let g = UnGraph::from_undirected_edges(3, &[(0, 1)]);
        let core = core_numbers(&g);
        assert_eq!(core[2], 0);
        assert_eq!(core[0], 1);
    }

    #[test]
    fn triangle_with_tail() {
        // Triangle (2-core) with a pendant path (1-core).
        let g = UnGraph::from_undirected_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]);
        let core = core_numbers(&g);
        assert_eq!(&core[..3], &[2, 2, 2]);
        assert_eq!(&core[3..], &[1, 1]);
    }

    #[test]
    fn matches_sequential_on_random_graphs() {
        for seed in 0..6u64 {
            let g = gnm_digraph(300, 1200, seed).symmetrize();
            assert_eq!(core_numbers(&g), core_numbers_sequential(&g), "seed {seed}");
        }
    }

    #[test]
    fn matches_sequential_on_dense_graph() {
        let g = gnm_digraph(100, 2500, 9).symmetrize();
        assert_eq!(core_numbers(&g), core_numbers_sequential(&g));
    }

    #[test]
    fn coreness_invariant_holds() {
        // Every vertex with coreness c has >= c neighbours of coreness >= c.
        let g = gnm_digraph(400, 1600, 3).symmetrize();
        let core = core_numbers(&g);
        for v in 0..g.n() as V {
            let c = core[v as usize];
            let supporters = g.neighbors(v).iter().filter(|&&u| core[u as usize] >= c).count();
            assert!(supporters >= c as usize, "vertex {v} coreness {c}");
        }
    }

    #[test]
    fn empty_graph() {
        let g = UnGraph::from_undirected_edges(0, &[]);
        assert!(core_numbers(&g).is_empty());
    }
}

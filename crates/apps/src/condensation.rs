//! Graph contraction by SCC: the condensation DAG.

use pscc_core::verify::normalize_labels;
use pscc_graph::{DiGraph, V};

/// The condensation of a digraph: one vertex per SCC, one arc per pair of
/// components joined by at least one original edge. Always a DAG.
#[derive(Clone, Debug)]
pub struct Condensation {
    /// Component id of each original vertex (`0..num_components`, numbered
    /// by first appearance).
    pub comp_of: Vec<u32>,
    /// The contracted DAG (deduplicated arcs, no self loops).
    pub dag: DiGraph,
    /// Number of original vertices in each component.
    pub sizes: Vec<usize>,
}

impl Condensation {
    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.sizes.len()
    }

    /// A topological order of the condensation DAG: every arc goes from an
    /// earlier to a later position.
    pub fn topo_order(&self) -> Vec<V> {
        crate::toposort::topological_order(&self.dag)
            // analyze: allow(panic): condensing an SCC labelling cannot leave a cycle
            .expect("condensation is a DAG by construction")
    }

    /// Longest-path levels of the condensation DAG: `levels[c]` is the
    /// length of the longest path from any source component to `c`, so
    /// every arc (and hence every path) strictly increases the level —
    /// the pruning invariant reachability indexes rely on.
    pub fn topo_levels(&self) -> Vec<u32> {
        topo_levels_of(&self.dag, &self.topo_order())
    }
}

/// Longest-path levels of any DAG given one of its topological orders
/// (the sweep behind [`Condensation::topo_levels`], reusable by callers
/// that already hold an order — e.g. incremental index assembly).
pub fn topo_levels_of(dag: &DiGraph, order: &[V]) -> Vec<u32> {
    let mut levels = vec![0u32; dag.n()];
    for &c in order {
        for &d in dag.out_neighbors(c) {
            levels[d as usize] = levels[d as usize].max(levels[c as usize] + 1);
        }
    }
    levels
}

/// Contracts `g` using precomputed SCC `labels` (any label type that marks
/// components, e.g. [`pscc_core::SccResult::labels`]).
pub fn condense<T: Copy + Eq + std::hash::Hash>(g: &DiGraph, labels: &[T]) -> Condensation {
    assert_eq!(labels.len(), g.n());
    let comp_of = normalize_labels(labels);
    let k = comp_of.iter().copied().max().map(|m| m as usize + 1).unwrap_or(0);
    let mut sizes = vec![0usize; k];
    for &c in &comp_of {
        sizes[c as usize] += 1;
    }
    let mut arcs: Vec<(V, V)> = Vec::new();
    for (u, v) in g.out_csr().edges() {
        let (cu, cv) = (comp_of[u as usize], comp_of[v as usize]);
        if cu != cv {
            arcs.push((cu, cv));
        }
    }
    let dag = DiGraph::from_edges(k, &arcs);
    Condensation { comp_of, dag, sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_core::{parallel_scc, SccConfig};
    use pscc_graph::fixtures::fig2_graph;
    use pscc_graph::generators::random::gnm_digraph;

    fn condensation_of(g: &DiGraph) -> Condensation {
        let res = parallel_scc(g, &SccConfig::default());
        condense(g, &res.labels)
    }

    #[test]
    fn fig2_condensation_shape() {
        let g = fig2_graph();
        let c = condensation_of(&g);
        assert_eq!(c.num_components(), 6);
        let mut sizes = c.sizes.clone();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 1, 1, 2, 3, 4]);
        // Condensation must have fewer edges than the graph and no
        // self-loops.
        assert!(c.dag.m() <= g.m());
        for (u, v) in c.dag.out_csr().edges() {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn condensation_is_acyclic() {
        for seed in 0..5u64 {
            let g = gnm_digraph(200, 800, seed);
            let c = condensation_of(&g);
            assert!(
                crate::toposort::topological_order(&c.dag).is_some(),
                "condensation has a cycle (seed {seed})"
            );
        }
    }

    #[test]
    fn sizes_sum_to_n() {
        let g = gnm_digraph(300, 900, 9);
        let c = condensation_of(&g);
        assert_eq!(c.sizes.iter().sum::<usize>(), g.n());
    }

    #[test]
    fn single_scc_condenses_to_point() {
        let g = pscc_graph::generators::simple::cycle_digraph(50);
        let c = condensation_of(&g);
        assert_eq!(c.num_components(), 1);
        assert_eq!(c.dag.m(), 0);
    }

    #[test]
    fn empty_graph() {
        let g = DiGraph::from_edges(0, &[]);
        let c = condense(&g, &Vec::<u64>::new());
        assert_eq!(c.num_components(), 0);
    }

    #[test]
    fn topo_order_respects_arcs() {
        let g = gnm_digraph(250, 700, 17);
        let c = condensation_of(&g);
        let order = c.topo_order();
        assert_eq!(order.len(), c.num_components());
        let mut pos = vec![0usize; c.num_components()];
        for (i, &comp) in order.iter().enumerate() {
            pos[comp as usize] = i;
        }
        for (a, b) in c.dag.out_csr().edges() {
            assert!(pos[a as usize] < pos[b as usize], "arc {a}->{b}");
        }
    }

    #[test]
    fn topo_levels_strictly_increase_along_arcs() {
        let g = gnm_digraph(250, 700, 18);
        let c = condensation_of(&g);
        let levels = c.topo_levels();
        for (a, b) in c.dag.out_csr().edges() {
            assert!(levels[a as usize] < levels[b as usize], "arc {a}->{b}");
        }
        // Source components sit at level 0.
        for comp in 0..c.num_components() as u32 {
            if c.dag.in_degree(comp) == 0 {
                assert_eq!(levels[comp as usize], 0);
            }
        }
    }
}

//! Single-source shortest paths with hash-bag frontiers and relaxation
//! wake-ups.
//!
//! §8 of the paper: distance-based algorithms "need additional designs on
//! top of local-search, such as supporting revisiting certain vertices for
//! relaxation". This module implements that design for weighted SSSP:
//! a frontier-driven Bellman–Ford where a vertex re-enters the frontier
//! whenever its tentative distance improves. The within-round frontier is
//! deduplicated by a per-vertex "queued" flag (the same CAS-then-insert
//! idiom as Alg. 3), while re-insertion across rounds implements the
//! revisiting the paper calls for.

use std::sync::atomic::{AtomicU64, Ordering};

use pscc_bag::{BagConfig, HashBag};
use pscc_graph::wcsr::WCsr;
use pscc_graph::V;
use pscc_runtime::{par_range, AtomicBits};

/// Unreached distance.
pub const INF: u64 = u64::MAX;

/// Result of an SSSP computation.
#[derive(Clone, Debug)]
pub struct SsspResult {
    /// Shortest distance per vertex (`INF` if unreachable).
    pub dist: Vec<u64>,
    /// Frontier rounds executed.
    pub rounds: usize,
    /// Total relaxations that improved a distance.
    pub relaxations: u64,
}

/// Parallel frontier Bellman–Ford from `src`.
pub fn parallel_sssp(g: &WCsr, src: V) -> SsspResult {
    let n = g.n();
    assert!((src as usize) < n);
    let dist: Vec<AtomicU64> = (0..n).map(|_| AtomicU64::new(INF)).collect();
    dist[src as usize].store(0, Ordering::Relaxed);
    // queued[v]: v is already in the current/next frontier.
    let queued = AtomicBits::new(n);
    queued.set(src as usize);
    let bag: HashBag<u32> = HashBag::with_config(n, BagConfig::default());
    let relaxed = AtomicU64::new(0);

    let mut frontier: Vec<V> = vec![src];
    let mut rounds = 0usize;
    while !frontier.is_empty() {
        rounds += 1;
        // Vertices processed this round may be re-queued by later
        // improvements, so release their flags before relaxing.
        par_range(0..frontier.len(), 2048, &|r| {
            for i in r {
                queued.clear(frontier[i] as usize);
            }
        });
        par_range(0..frontier.len(), 1, &|r| {
            let mut local_relaxed = 0u64;
            for i in r {
                let v = frontier[i];
                let dv = dist[v as usize].load(Ordering::Relaxed);
                if dv == INF {
                    continue;
                }
                let (targets, weights) = g.neighbors(v);
                for (&u, &w) in targets.iter().zip(weights) {
                    let cand = dv + w as u64;
                    // Atomic min relaxation.
                    let mut cur = dist[u as usize].load(Ordering::Relaxed);
                    while cand < cur {
                        match dist[u as usize].compare_exchange_weak(
                            cur,
                            cand,
                            Ordering::Relaxed,
                            Ordering::Relaxed,
                        ) {
                            Ok(_) => {
                                local_relaxed += 1;
                                // Wake u unless it is already queued.
                                if queued.test_and_set(u as usize) {
                                    bag.insert(u);
                                }
                                break;
                            }
                            Err(now) => cur = now,
                        }
                    }
                }
            }
            relaxed.fetch_add(local_relaxed, Ordering::Relaxed);
        });
        frontier = bag.extract_all();
    }

    SsspResult {
        dist: dist.into_iter().map(|d| d.into_inner()).collect(),
        rounds,
        relaxations: relaxed.load(Ordering::Relaxed),
    }
}

/// Sequential Dijkstra oracle (binary heap).
pub fn dijkstra(g: &WCsr, src: V) -> Vec<u64> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;
    let n = g.n();
    let mut dist = vec![INF; n];
    dist[src as usize] = 0;
    let mut heap = BinaryHeap::new();
    heap.push(Reverse((0u64, src)));
    while let Some(Reverse((d, v))) = heap.pop() {
        if d > dist[v as usize] {
            continue;
        }
        let (targets, weights) = g.neighbors(v);
        for (&u, &w) in targets.iter().zip(weights) {
            let cand = d + w as u64;
            if cand < dist[u as usize] {
                dist[u as usize] = cand;
                heap.push(Reverse((cand, u)));
            }
        }
    }
    dist
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use pscc_runtime::SplitMix64;

    fn random_wgraph(n: usize, m: usize, max_w: u32, seed: u64) -> WCsr {
        let mut rng = SplitMix64::new(seed);
        let edges: Vec<(V, V, u32)> = (0..m)
            .map(|_| {
                (
                    rng.next_below(n as u64) as V,
                    rng.next_below(n as u64) as V,
                    rng.next_below(max_w as u64) as u32 + 1,
                )
            })
            .collect();
        WCsr::from_edges(n, &edges)
    }

    #[test]
    fn weighted_path() {
        let g = WCsr::from_edges(4, &[(0, 1, 5), (1, 2, 3), (2, 3, 2)]);
        let got = parallel_sssp(&g, 0);
        assert_eq!(got.dist, vec![0, 5, 8, 10]);
    }

    #[test]
    fn shortcut_beats_direct_edge() {
        // 0->2 direct costs 10; 0->1->2 costs 3.
        let g = WCsr::from_edges(3, &[(0, 2, 10), (0, 1, 1), (1, 2, 2)]);
        let got = parallel_sssp(&g, 0);
        assert_eq!(got.dist[2], 3);
    }

    #[test]
    fn revisiting_updates_downstream() {
        // Long chain discovered first, then a cheaper entry point forces
        // re-relaxation of the whole chain (the §8 revisit case).
        let g = WCsr::from_edges(5, &[(0, 1, 100), (1, 2, 1), (2, 3, 1), (0, 4, 1), (4, 1, 1)]);
        let got = parallel_sssp(&g, 0);
        assert_eq!(got.dist, vec![0, 2, 3, 4, 1]);
    }

    #[test]
    fn unreachable_is_inf() {
        let g = WCsr::from_edges(3, &[(0, 1, 1)]);
        let got = parallel_sssp(&g, 0);
        assert_eq!(got.dist[2], INF);
    }

    #[test]
    fn zero_weight_edges_ok() {
        let g = WCsr::from_edges(3, &[(0, 1, 0), (1, 2, 0)]);
        let got = parallel_sssp(&g, 0);
        assert_eq!(got.dist, vec![0, 0, 0]);
    }

    #[test]
    fn matches_dijkstra_on_random_graphs() {
        for seed in 0..6u64 {
            let g = random_wgraph(300, 1500, 50, seed);
            let got = parallel_sssp(&g, 0);
            assert_eq!(got.dist, dijkstra(&g, 0), "seed {seed}");
        }
    }

    #[test]
    fn unit_weights_match_bfs_levels() {
        let g = random_wgraph(200, 800, 1, 8);
        let got = parallel_sssp(&g, 0);
        let want = dijkstra(&g, 0);
        assert_eq!(got.dist, want);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        #[test]
        fn prop_matches_dijkstra(
            n in 2usize..80,
            edges in proptest::collection::vec((0u32..80, 0u32..80, 1u32..100), 0..250),
            src in 0u32..80,
        ) {
            let edges: Vec<(V, V, u32)> = edges
                .into_iter()
                .map(|(a, b, w)| (a % n as u32, b % n as u32, w))
                .collect();
            let g = WCsr::from_edges(n, &edges);
            let src = src % n as u32;
            let got = parallel_sssp(&g, src);
            prop_assert_eq!(got.dist, dijkstra(&g, src));
        }
    }
}

//! A complete 2-SAT solver via SCCs of the implication graph
//! (Aspvall–Plass–Tarjan): the textbook demonstration that a fast SCC
//! primitive immediately solves a non-graph problem.
//!
//! Encoding: variable `x` has vertices `2x` (x true) and `2x + 1`
//! (x false). A clause `(a ∨ b)` adds the implications `¬a → b` and
//! `¬b → a`. The formula is satisfiable iff no variable shares an SCC with
//! its negation; a model assigns `x := true` iff `x`'s component comes
//! *after* `¬x`'s in a topological order of the condensation.

use pscc_core::SccConfig;
use pscc_graph::{DiGraph, V};

use crate::toposort::scc_topological_order;

/// A literal: variable index plus polarity.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Lit {
    /// Variable index (0-based).
    pub var: u32,
    /// `true` for the positive literal `x`, `false` for `¬x`.
    pub positive: bool,
}

impl Lit {
    /// Positive literal of `var`.
    pub fn pos(var: u32) -> Self {
        Self { var, positive: true }
    }

    /// Negative literal of `var`.
    pub fn neg(var: u32) -> Self {
        Self { var, positive: false }
    }

    fn vertex(self) -> V {
        self.var * 2 + (!self.positive) as u32
    }

    fn negation_vertex(self) -> V {
        self.var * 2 + self.positive as u32
    }
}

/// A 2-SAT instance.
#[derive(Clone, Debug, Default)]
pub struct TwoSat {
    num_vars: usize,
    clauses: Vec<(Lit, Lit)>,
}

impl TwoSat {
    /// An instance over `num_vars` variables.
    pub fn new(num_vars: usize) -> Self {
        Self { num_vars, clauses: Vec::new() }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Number of clauses.
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Adds the clause `(a ∨ b)`.
    pub fn add_clause(&mut self, a: Lit, b: Lit) {
        assert!((a.var as usize) < self.num_vars && (b.var as usize) < self.num_vars);
        self.clauses.push((a, b));
    }

    /// Adds the unit clause `(a)` as `(a ∨ a)`.
    pub fn add_unit(&mut self, a: Lit) {
        self.add_clause(a, a);
    }

    /// The implication digraph (2 vertices per variable).
    pub fn implication_graph(&self) -> DiGraph {
        let mut edges = Vec::with_capacity(self.clauses.len() * 2);
        for &(a, b) in &self.clauses {
            edges.push((a.negation_vertex(), b.vertex()));
            edges.push((b.negation_vertex(), a.vertex()));
        }
        DiGraph::from_edges(self.num_vars * 2, &edges)
    }

    /// Solves the instance: `Some(assignment)` with one bool per variable,
    /// or `None` if unsatisfiable. Uses the parallel SCC under `cfg`.
    pub fn solve(&self, cfg: &SccConfig) -> Option<Vec<bool>> {
        if self.num_vars == 0 {
            return Some(Vec::new());
        }
        let g = self.implication_graph();
        let (cond, rank) = scc_topological_order(&g, cfg);
        let mut assignment = Vec::with_capacity(self.num_vars);
        for x in 0..self.num_vars as u32 {
            let c_pos = cond.comp_of[(2 * x) as usize];
            let c_neg = cond.comp_of[(2 * x + 1) as usize];
            if c_pos == c_neg {
                return None; // x ≡ ¬x: contradiction
            }
            // x := true iff comp(x) is later in topological order, i.e. it
            // is implied rather than implying its own negation.
            assignment.push(rank[c_pos as usize] > rank[c_neg as usize]);
        }
        Some(assignment)
    }

    /// Checks an assignment against all clauses.
    pub fn is_satisfied_by(&self, assignment: &[bool]) -> bool {
        assignment.len() == self.num_vars
            && self.clauses.iter().all(|&(a, b)| {
                let va = assignment[a.var as usize] == a.positive;
                let vb = assignment[b.var as usize] == b.positive;
                va || vb
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn solve(ts: &TwoSat) -> Option<Vec<bool>> {
        ts.solve(&SccConfig::default())
    }

    #[test]
    fn trivial_sat() {
        let mut ts = TwoSat::new(2);
        ts.add_clause(Lit::pos(0), Lit::pos(1));
        let model = solve(&ts).expect("satisfiable");
        assert!(ts.is_satisfied_by(&model));
    }

    #[test]
    fn forced_chain() {
        // x0 ∧ (¬x0 ∨ x1) ∧ (¬x1 ∨ x2) forces all true.
        let mut ts = TwoSat::new(3);
        ts.add_unit(Lit::pos(0));
        ts.add_clause(Lit::neg(0), Lit::pos(1));
        ts.add_clause(Lit::neg(1), Lit::pos(2));
        let model = solve(&ts).unwrap();
        assert_eq!(model, vec![true, true, true]);
    }

    #[test]
    fn direct_contradiction_unsat() {
        let mut ts = TwoSat::new(1);
        ts.add_unit(Lit::pos(0));
        ts.add_unit(Lit::neg(0));
        assert!(solve(&ts).is_none());
    }

    #[test]
    fn xor_cycle_unsat() {
        // (x0 ∨ x1)(¬x0 ∨ x1)(x0 ∨ ¬x1)(¬x0 ∨ ¬x1) is unsatisfiable.
        let mut ts = TwoSat::new(2);
        ts.add_clause(Lit::pos(0), Lit::pos(1));
        ts.add_clause(Lit::neg(0), Lit::pos(1));
        ts.add_clause(Lit::pos(0), Lit::neg(1));
        ts.add_clause(Lit::neg(0), Lit::neg(1));
        assert!(solve(&ts).is_none());
    }

    #[test]
    fn empty_instance_is_sat() {
        let ts = TwoSat::new(0);
        assert_eq!(solve(&ts), Some(vec![]));
        let ts5 = TwoSat::new(5);
        let model = solve(&ts5).unwrap();
        assert_eq!(model.len(), 5);
    }

    /// Brute-force satisfiability for small instances.
    fn brute_force_sat(ts: &TwoSat) -> bool {
        let n = ts.num_vars();
        (0..1u32 << n).any(|mask| {
            let assignment: Vec<bool> = (0..n).map(|i| mask >> i & 1 == 1).collect();
            ts.is_satisfied_by(&assignment)
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn solver_agrees_with_brute_force(
            n in 1usize..10,
            raw in proptest::collection::vec((0u32..10, any::<bool>(), 0u32..10, any::<bool>()), 0..25),
        ) {
            let mut ts = TwoSat::new(n);
            for (a, ap, b, bp) in raw {
                ts.add_clause(
                    Lit { var: a % n as u32, positive: ap },
                    Lit { var: b % n as u32, positive: bp },
                );
            }
            match solve(&ts) {
                Some(model) => {
                    prop_assert!(ts.is_satisfied_by(&model), "returned model must satisfy");
                }
                None => {
                    prop_assert!(!brute_force_sat(&ts), "claimed UNSAT but a model exists");
                }
            }
        }
    }
}

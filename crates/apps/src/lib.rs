//! # pscc-apps — applications built on parallel SCC
//!
//! The paper's introduction motivates SCC as a primitive for downstream
//! problems — "graph matching, topological sort, graph contraction, and
//! code analysis" (§1). This crate implements the classic ones on top of
//! `pscc-core`:
//!
//! * [`condensation`] — contract every SCC into a single vertex, yielding
//!   the condensation DAG (graph contraction);
//! * [`toposort`] — topological ordering of a DAG and, composed with
//!   condensation, of an arbitrary digraph's components;
//! * [`twosat`] — a complete 2-SAT solver: satisfiability and a model via
//!   SCCs of the implication graph;
//! * [`kcore`] — k-core decomposition with hash-bag wake-up frontiers
//!   (the §8 "wake-up strategy" application);
//! * [`sssp`] — weighted shortest paths with relaxation re-queuing (the
//!   §8 "revisiting for relaxation" design).

pub mod condensation;
pub mod kcore;
pub mod sssp;
pub mod toposort;
pub mod twosat;

pub use condensation::{condense, topo_levels_of, Condensation};
pub use kcore::{core_numbers, core_numbers_sequential};
pub use sssp::{dijkstra, parallel_sssp, SsspResult};
pub use toposort::{scc_topological_order, topological_order};
pub use twosat::{Lit, TwoSat};

//! Topological ordering (Kahn's algorithm) and SCC-based topological
//! ordering of arbitrary digraphs.

use pscc_core::{parallel_scc, SccConfig};
use pscc_graph::{DiGraph, V};

use crate::condensation::{condense, Condensation};

/// Returns a topological order of `g`'s vertices, or `None` if `g` has a
/// cycle.
pub fn topological_order(g: &DiGraph) -> Option<Vec<V>> {
    let n = g.n();
    let mut indeg: Vec<usize> = (0..n).map(|v| g.in_degree(v as V)).collect();
    // Self loops are cycles.
    for v in 0..n as V {
        if g.out_neighbors(v).contains(&v) {
            return None;
        }
    }
    let mut order = Vec::with_capacity(n);
    let mut queue: Vec<V> = (0..n as V).filter(|&v| indeg[v as usize] == 0).collect();
    while let Some(v) = queue.pop() {
        order.push(v);
        for &u in g.out_neighbors(v) {
            indeg[u as usize] -= 1;
            if indeg[u as usize] == 0 {
                queue.push(u);
            }
        }
    }
    (order.len() == n).then_some(order)
}

/// Computes SCCs of `g` and a topological order of the condensation:
/// returns the condensation and `rank` where `rank[c]` is the position of
/// component `c` (every original edge goes from lower to equal-or-higher
/// rank). The classic "topological sort of a cyclic graph".
pub fn scc_topological_order(g: &DiGraph, cfg: &SccConfig) -> (Condensation, Vec<u32>) {
    let res = parallel_scc(g, cfg);
    let cond = condense(g, &res.labels);
    // analyze: allow(panic): condensing an SCC labelling cannot leave a cycle
    let order = topological_order(&cond.dag).expect("condensation is a DAG by construction");
    let mut rank = vec![0u32; cond.num_components()];
    for (pos, &c) in order.iter().enumerate() {
        rank[c as usize] = pos as u32;
    }
    (cond, rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pscc_graph::generators::random::gnm_digraph;
    use pscc_graph::generators::simple::{cycle_digraph, dag_layers, path_digraph};

    #[test]
    fn path_orders_left_to_right() {
        let g = path_digraph(10);
        let order = topological_order(&g).unwrap();
        let mut pos = [0usize; 10];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for v in 0..9 {
            assert!(pos[v] < pos[v + 1]);
        }
    }

    #[test]
    fn cycle_has_no_order() {
        assert!(topological_order(&cycle_digraph(5)).is_none());
    }

    #[test]
    fn self_loop_has_no_order() {
        let g = DiGraph::from_edges(2, &[(0, 0), (0, 1)]);
        assert!(topological_order(&g).is_none());
    }

    #[test]
    fn dag_order_respects_all_edges() {
        let g = dag_layers(10, 20, 3, 2);
        let order = topological_order(&g).unwrap();
        let mut pos = vec![0usize; g.n()];
        for (i, &v) in order.iter().enumerate() {
            pos[v as usize] = i;
        }
        for (u, v) in g.out_csr().edges() {
            assert!(pos[u as usize] < pos[v as usize], "edge {u}->{v}");
        }
    }

    #[test]
    fn scc_topo_rank_monotone_along_edges() {
        for seed in 0..4u64 {
            let g = gnm_digraph(200, 600, seed);
            let (cond, rank) = scc_topological_order(&g, &SccConfig::default());
            for (u, v) in g.out_csr().edges() {
                let (cu, cv) = (cond.comp_of[u as usize], cond.comp_of[v as usize]);
                if cu != cv {
                    assert!(
                        rank[cu as usize] < rank[cv as usize],
                        "edge {u}->{v} violates component order (seed {seed})"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_graph_has_empty_order() {
        let g = DiGraph::from_edges(0, &[]);
        assert_eq!(topological_order(&g), Some(vec![]));
    }
}
